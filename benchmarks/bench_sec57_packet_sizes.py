"""Section 5.7: effects of packet sizes.

The paper benchmarks all packet sizes between 64 and 128 bytes and finds no
difference in CPU cycles per packet for transmission — and, unlike the 2012
netmap evaluation, none for reception either.  Minimum-sized packets are
the worst case because per-packet costs dominate.
"""

import statistics

import pytest

from conftest import print_table, run_once, sweep_jobs
from repro import MoonGenEnv
from repro.parallel import run_parallel
from repro.units import line_rate_pps, SPEED_10G

SIZES = (64, 72, 80, 88, 96, 104, 112, 120, 128)
DURATION_NS = 150_000


def tx_cycles_per_packet(frame_size: int, seed: int = 17) -> float:
    env = MoonGenEnv(seed=seed, core_freq_hz=2.4e9)
    tx = env.config_device(0, tx_queues=1)
    rx = env.config_device(1, rx_queues=1)
    env.connect(tx, rx)

    def slave(env, queue):
        mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(
            pkt_length=frame_size - 4))
        bufs = mem.buf_array()
        while env.running():
            bufs.alloc(frame_size - 4)
            yield queue.send(bufs)

    task = env.launch(slave, env, tx.get_tx_queue(0))
    env.wait_for_slaves(duration_ns=DURATION_NS)
    return task.core.busy_cycles / tx.tx_packets


def rx_cycles_per_packet(frame_size: int, seed: int = 18) -> float:
    env = MoonGenEnv(seed=seed, core_freq_hz=2.4e9)
    tx = env.config_device(0, tx_queues=1)
    rx = env.config_device(1, rx_queues=1)
    env.connect(tx, rx)

    def sender(env, queue):
        mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(
            pkt_length=frame_size - 4))
        bufs = mem.buf_array()
        while env.running():
            bufs.alloc(frame_size - 4)
            yield queue.send(bufs)

    received = [0]

    def receiver(env, queue):
        mem = env.create_mempool()
        bufs = mem.buf_array()
        while env.running():
            n = yield queue.recv(bufs, timeout_ns=50_000)
            received[0] += n
            bufs.free_all()

    env.launch(sender, env, tx.get_tx_queue(0))
    rx_task = env.launch(receiver, env, rx.get_rx_queue(0))
    env.wait_for_slaves(duration_ns=DURATION_NS)
    return rx_task.core.busy_cycles / max(received[0], 1)


def _tx_cost_point(size, _seed):
    """Sweep point: tx cost at one frame size (seeds pinned in the runner)."""
    return tx_cycles_per_packet(size)


def _rx_cost_point(size, _seed):
    """Sweep point: rx cost at one frame size (seeds pinned in the runner)."""
    return rx_cycles_per_packet(size)


def test_sec57_tx_cost_independent_of_size(benchmark):
    def experiment():
        return dict(zip(SIZES, run_parallel(SIZES, _tx_cost_point,
                                            jobs=sweep_jobs())))

    costs = run_once(benchmark, experiment)
    rows = [[size, f"{c:.1f}"] for size, c in costs.items()]
    print_table(
        "Section 5.7: tx cycles/packet vs frame size (paper: no difference)",
        ["size [B]", "cycles/pkt"],
        rows,
    )
    values = list(costs.values())
    spread = max(values) - min(values)
    mean = statistics.mean(values)
    assert spread / mean < 0.05, "tx cost should not depend on packet size"


def test_sec57_rx_cost_independent_of_size(benchmark):
    """The netmap-2012 receive-side effect does not appear (Section 5.7)."""
    def experiment():
        sizes = (64, 96, 128)
        return dict(zip(sizes, run_parallel(sizes, _rx_cost_point,
                                            jobs=sweep_jobs())))

    costs = run_once(benchmark, experiment)
    rows = [[size, f"{c:.1f}"] for size, c in costs.items()]
    print_table("Section 5.7: rx cycles/packet vs frame size",
                ["size [B]", "cycles/pkt"], rows)
    values = list(costs.values())
    assert (max(values) - min(values)) / statistics.mean(values) < 0.08


def test_sec57_minimum_size_is_worst_case(benchmark):
    """Fewer packets at line rate with larger frames: lower total IO cost."""
    def experiment():
        return {
            size: line_rate_pps(size, SPEED_10G) * tx_cycles_per_packet(size)
            for size in (64, 128)
        }

    cycle_rates = run_once(benchmark, experiment)
    print_table(
        "total cycles/s to saturate 10 GbE",
        ["size [B]", "cycles/s"],
        [[s, f"{c:.3e}"] for s, c in cycle_rates.items()],
    )
    assert cycle_rates[64] > cycle_rates[128]
