"""Table 2: per-packet costs of randomized vs counter-based fields.

Measures the cost of generating and writing 1/2/4/8 varying header fields,
either with a random number generator or with wrapping counters, relative
to the 85.1 cycles/pkt baseline (constant write + send), as in
Section 5.6.2.
"""

import statistics

import pytest

from conftest import print_table, run_once
from repro import MoonGenEnv

PAPER_RANDOM = {1: 32.3, 2: 39.8, 4: 66.0, 8: 133.5}
PAPER_COUNTER = {1: 27.1, 2: 33.1, 4: 38.1, 8: 41.7}
PAPER_BASELINE = 85.1
REPEATS = 8
DURATION_NS = 120_000


def measure(kind: str, fields: int, seed: int) -> float:
    env = MoonGenEnv(seed=seed, core_freq_hz=2.4e9)
    tx = env.config_device(0, tx_queues=1)
    rx = env.config_device(1, rx_queues=1)
    env.connect(tx, rx)

    def slave(env, queue):
        mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(pkt_length=60))
        bufs = mem.buf_array()
        while env.running():
            bufs.alloc(60)
            if kind == "random":
                bufs.charge_random_fields(fields)
            elif kind == "counter":
                bufs.charge_counter_fields(fields)
            elif kind == "baseline":
                bufs.charge_modify(1)
            yield queue.send(bufs)

    task = env.launch(slave, env, tx.get_tx_queue(0))
    env.wait_for_slaves(duration_ns=DURATION_NS)
    cycles = task.core.busy_cycles / tx.tx_packets
    if kind != "baseline":
        cycles -= task.core.model.costs.tx_base.at(2.4e9)
    return cycles


def test_table2_baseline(benchmark):
    samples = run_once(
        benchmark, lambda: [measure("baseline", 0, s) for s in range(REPEATS)]
    )
    mean = statistics.mean(samples)
    print_table(
        "Table 2 baseline: constant write + send",
        ["paper", "measured"],
        [[f"{PAPER_BASELINE}", f"{mean:.1f} ± {statistics.stdev(samples):.1f}"]],
    )
    assert mean == pytest.approx(PAPER_BASELINE, abs=2.0)


@pytest.mark.parametrize("fields", [1, 2, 4, 8])
def test_table2_random_fields(benchmark, fields):
    samples = run_once(
        benchmark,
        lambda: [measure("random", fields, s) for s in range(REPEATS)],
    )
    mean = statistics.mean(samples)
    print_table(
        f"Table 2: {fields} randomized field(s)",
        ["paper cycles/pkt", "measured"],
        [[f"{PAPER_RANDOM[fields]}", f"{mean:.1f} ± {statistics.stdev(samples):.1f}"]],
    )
    assert mean == pytest.approx(PAPER_RANDOM[fields], rel=0.05)


@pytest.mark.parametrize("fields", [1, 2, 4, 8])
def test_table2_counter_fields(benchmark, fields):
    samples = run_once(
        benchmark,
        lambda: [measure("counter", fields, s) for s in range(REPEATS)],
    )
    mean = statistics.mean(samples)
    print_table(
        f"Table 2: {fields} wrapping counter field(s)",
        ["paper cycles/pkt", "measured"],
        [[f"{PAPER_COUNTER[fields]}", f"{mean:.1f} ± {statistics.stdev(samples):.1f}"]],
    )
    assert mean == pytest.approx(PAPER_COUNTER[fields], rel=0.08)


def test_table2_counters_always_cheaper(benchmark):
    """Section 5.6.2's conclusion: prefer wrapping counters."""
    def experiment():
        return {
            n: (measure("random", n, 1), measure("counter", n, 1))
            for n in (1, 2, 4, 8)
        }

    results = run_once(benchmark, experiment)
    rows = [
        [n, f"{rand:.1f}", f"{ctr:.1f}"] for n, (rand, ctr) in results.items()
    ]
    print_table("random vs counter", ["fields", "random", "counter"], rows)
    assert all(ctr < rand for rand, ctr in results.values())
