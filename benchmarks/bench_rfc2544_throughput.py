"""Extension: RFC 2544 throughput test of the simulated DuT.

The hardware generators MoonGen replaces are built for RFC 2544 device
tests (Section 2); with precise rate control and loss accounting the
reproduction can run the same methodology.  The binary search finds the
OvS DuT's zero-loss rate (~1.9 Mpps for 64 B; line-rate for large frames
where line rate in pps drops below the DuT's capacity).
"""

import pytest

from conftest import print_table, run_once, sweep_jobs
from repro import units
from repro.analysis.rfc2544 import (
    default_loss_probe,
    throughput_sweep,
    throughput_test,
)


def test_rfc2544_64b_throughput(benchmark):
    result = run_once(
        benchmark,
        lambda: throughput_test(
            default_loss_probe(seed=2),
            units.LINE_RATE_10G_64B_PPS,
            resolution=0.01,
        ),
    )
    rows = [[f"{t.offered_pps / 1e6:.3f}",
             "pass" if t.passed else f"{t.loss_fraction * 100:.2f}% loss"]
            for t in result.trials]
    print_table("RFC 2544 binary search, 64 B frames", ["offered Mpps", "result"], rows)
    print_table(
        "RFC 2544 throughput",
        ["DuT capacity (Section 8.3)", "measured zero-loss rate"],
        [["~1.9 Mpps", f"{result.throughput_mpps:.2f} Mpps"]],
    )
    assert result.throughput_pps == pytest.approx(1.93e6, rel=0.06)
    assert not result.trials[0].passed  # line rate overloads the DuT


def test_rfc2544_frame_size_sweep(benchmark):
    def experiment():
        # Per-size searches are independent simulations: fan them out
        # through the parallel engine (serial unless REPRO_BENCH_JOBS).
        return throughput_sweep(
            frame_sizes=(64, 128, 256, 512, 1518),
            resolution=0.02, seed=3, duration_s=0.03,
            jobs=sweep_jobs(),
        )

    results = run_once(benchmark, experiment)
    rows = [
        [r.frame_size, f"{r.throughput_mpps:.2f}",
         f"{r.throughput_gbps():.2f}",
         f"{units.line_rate_pps(r.frame_size, units.SPEED_10G) / 1e6:.2f}"]
        for r in results
    ]
    print_table(
        "RFC 2544 frame-size sweep (simulated OvS DuT)",
        ["frame [B]", "zero-loss Mpps", "Gbit/s", "line rate Mpps"],
        rows,
    )

    by_size = {r.frame_size: r for r in results}
    # Small frames: pps-bound by the DuT (~1.9 Mpps regardless of size).
    assert by_size[64].throughput_mpps == pytest.approx(1.93, rel=0.07)
    assert by_size[128].throughput_mpps == pytest.approx(1.93, rel=0.07)
    # Large frames: line rate in pps falls below the DuT capacity.
    line_1518 = units.line_rate_pps(1518, units.SPEED_10G)
    assert by_size[1518].throughput_pps == pytest.approx(line_1518, rel=0.02)
