"""Section 5.2: MoonGen vs Pktgen-DPDK frequency sweep.

Both generators craft minimum-sized UDP packets with 256 varying source IP
addresses on one core; the CPU frequency is raised in 100 MHz steps until
each reaches the 14.88 Mpps line rate.  Paper result: MoonGen needs
1.5 GHz, Pktgen-DPDK 1.7 GHz (14.12 Mpps at 1.5 GHz) — the price of
Pktgen's one-size-fits-all main loop versus MoonGen's pay-only-for-what-
you-use script.
"""

import pytest

from conftest import print_table, run_once
from repro import MoonGenEnv
from repro.nicsim.cpu import frequency_steps
from repro.units import LINE_RATE_10G_64B_PPS, to_mpps

DURATION_NS = 700_000
#: Pktgen-DPDK's generic main loop costs extra cycles per packet even for
#: simple workloads (it checks every configurable feature); calibrated so
#: the simulated generator reproduces the paper's 1.7 GHz line-rate point.
PKTGEN_LOOP_OVERHEAD_CYCLES = 4.0


def run_generator(freq_hz: float, loop_overhead: float, seed: int = 9) -> float:
    env = MoonGenEnv(seed=seed, core_freq_hz=freq_hz)
    tx = env.config_device(0, tx_queues=1)
    rx = env.config_device(1, rx_queues=1)
    env.connect(tx, rx)

    def slave(env, queue):
        mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(
            pkt_length=60, udp_dst=319))
        bufs = mem.buf_array()
        while env.running():
            bufs.alloc(60)
            bufs.charge_random_fields(1)  # 256 varying source IPs
            bufs.offload_udp_checksums()
            op = queue.send(bufs)
            op.extra_cycles = loop_overhead * len(bufs)
            yield op

    env.launch(slave, env, tx.get_tx_queue(0))
    # Steady-state rate: skip the ring-fill ramp-up, snapshot before drain.
    env.run_for(100_000)
    count0, t0 = tx.tx_packets, env.now_ns
    env.run_for(DURATION_NS)
    count1, t1 = tx.tx_packets, env.now_ns
    env.stop()
    for task in env.tasks:
        task.kill()
    return (count1 - count0) / ((t1 - t0) / 1e9)


def line_rate_frequency(loop_overhead: float) -> float:
    """Lowest 100 MHz step reaching 14.88 Mpps, the paper's methodology."""
    for freq in frequency_steps():
        if run_generator(freq, loop_overhead) >= 0.999 * LINE_RATE_10G_64B_PPS:
            return freq
    return float("nan")


def test_sec52_line_rate_frequencies(benchmark):
    def experiment():
        return {
            "MoonGen": line_rate_frequency(0.0),
            "Pktgen-DPDK": line_rate_frequency(PKTGEN_LOOP_OVERHEAD_CYCLES),
        }

    freqs = run_once(benchmark, experiment)
    print_table(
        "Section 5.2: minimum frequency for 14.88 Mpps line rate",
        ["generator", "paper", "measured"],
        [
            ["MoonGen", "1.5 GHz", f"{freqs['MoonGen'] / 1e9:.1f} GHz"],
            ["Pktgen-DPDK", "1.7 GHz", f"{freqs['Pktgen-DPDK'] / 1e9:.1f} GHz"],
        ],
    )
    assert freqs["MoonGen"] == pytest.approx(1.5e9)
    assert freqs["Pktgen-DPDK"] == pytest.approx(1.7e9)
    assert freqs["MoonGen"] < freqs["Pktgen-DPDK"]


def test_sec52_pktgen_rate_at_1_5ghz(benchmark):
    """Paper: Pktgen-DPDK achieves 14.12 Mpps at 1.5 GHz."""
    pps = run_once(
        benchmark,
        lambda: run_generator(1.5e9, PKTGEN_LOOP_OVERHEAD_CYCLES),
    )
    print_table(
        "Pktgen-DPDK at 1.5 GHz",
        ["paper", "measured"],
        [["14.12 Mpps", f"{to_mpps(pps):.2f} Mpps"]],
    )
    assert to_mpps(pps) == pytest.approx(14.12, abs=0.45)
    assert pps < LINE_RATE_10G_64B_PPS  # below line rate


def test_sec52_moongen_more_efficient(benchmark):
    """At every sub-line-rate frequency MoonGen outperforms Pktgen-DPDK."""
    def experiment():
        return {
            freq: (run_generator(freq, 0.0),
                   run_generator(freq, PKTGEN_LOOP_OVERHEAD_CYCLES))
            for freq in (1.2e9, 1.3e9, 1.4e9)
        }

    results = run_once(benchmark, experiment)
    rows = [
        [f"{f / 1e9:.1f} GHz", f"{to_mpps(m):.2f}", f"{to_mpps(p):.2f}"]
        for f, (m, p) in results.items()
    ]
    print_table("rate below line rate [Mpps]",
                ["frequency", "MoonGen", "Pktgen-DPDK"], rows)
    for freq, (moongen, pktgen) in results.items():
        assert moongen > pktgen
