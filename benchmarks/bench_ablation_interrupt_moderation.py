"""Ablation: the DuT's interrupt moderation design.

Figures 7/10/11 hinge on the DuT's adaptive ITR.  This ablation swaps the
moderation policy to quantify its role:

* **no moderation** — one interrupt per idle-wakeup, no rate cap:
  minimal latency at low load, but an interrupt storm under CBR;
* **adaptive (default)** — the ixgbe-style behaviour used in the paper;
* **heavy static** — a bulk-only 8 kHz cap: few interrupts, but packets
  wait for the next interrupt slot, inflating low-load latency.
"""

import numpy as np
import pytest

from conftest import print_table, run_once, sweep_jobs
from repro import units
from repro.dut import ItrConfig, simulate_forwarder
from repro.generators import MoonGenHwRateModel
from repro.parallel import run_parallel

LOAD_PPS = 0.5e6
WINDOW_S = 0.03

CONFIGS = {
    "no moderation": ItrConfig(
        lowest_rate_hz=1e9, low_rate_hz=1e9, bulk_rate_hz=1e9,
        clump_degrade=10 ** 9, bytes_degrade=10 ** 12,
    ),
    "adaptive (paper)": ItrConfig(),
    "heavy static": ItrConfig(
        lowest_rate_hz=8_000, low_rate_hz=8_000, bulk_rate_hz=8_000,
    ),
}


def run_config(itr: ItrConfig, seed: int = 3):
    model = MoonGenHwRateModel(speed_bps=units.SPEED_10G)
    arrivals = model.departures_ns(LOAD_PPS, int(LOAD_PPS * WINDOW_S), seed=seed)
    return simulate_forwarder(arrivals, itr=itr)


def _config_point(name, _seed):
    """Sweep point: one moderation policy (seed pinned in run_config)."""
    return run_config(CONFIGS[name])


def test_ablation_interrupt_moderation(benchmark):
    def experiment():
        names = list(CONFIGS)
        return dict(zip(names, run_parallel(names, _config_point,
                                            jobs=sweep_jobs())))

    results = run_once(benchmark, experiment)
    rows = []
    for name, res in results.items():
        q1, med, q3 = res.latency_percentiles()
        rows.append([
            name,
            f"{res.interrupt_rate_hz / 1e3:.1f} kHz",
            f"{med / 1e3:.1f} µs",
        ])
    print_table(
        f"Ablation: interrupt moderation @ {LOAD_PPS / 1e6:.1f} Mpps CBR",
        ["policy", "interrupt rate", "median latency"],
        rows,
    )

    none, adaptive, heavy = (
        results["no moderation"],
        results["adaptive (paper)"],
        results["heavy static"],
    )
    # Without moderation the CPU interrupts as fast as NAPI lets it: the
    # 2 µs interrupt overhead means every second 0.5 Mpps packet arrives
    # during servicing, so the storm runs at ~half the packet rate —
    # still far above any moderated policy.
    assert none.interrupt_rate_hz == pytest.approx(LOAD_PPS / 2, rel=0.1)
    assert none.interrupt_rate_hz > 1.5 * 150e3
    # Adaptive keeps the rate at its lowest-latency cap.
    assert adaptive.interrupt_rate_hz == pytest.approx(150e3, rel=0.1)
    # Heavy moderation trades latency for interrupts.
    assert heavy.interrupt_rate_hz == pytest.approx(8e3, rel=0.15)
    lat = {k: r.latency_percentiles()[1] for k, r in results.items()}
    assert lat["no moderation"] <= lat["adaptive (paper)"] <= lat["heavy static"]
    # The static-8kHz DuT batches ~60 packets per interrupt: median wait is
    # tens of microseconds instead of the adaptive policy's few.
    assert lat["heavy static"] > lat["adaptive (paper)"] + 20_000


def test_ablation_moderation_saves_cpu(benchmark):
    """The point of moderation: interrupt entry costs CPU that would
    otherwise forward packets.  At a moderate load the unmoderated DuT
    burns an order of magnitude more CPU time on interrupt handling."""
    def experiment():
        out = {}
        for name in ("no moderation", "adaptive (paper)"):
            model = MoonGenHwRateModel(speed_bps=units.SPEED_10G)
            arrivals = model.departures_ns(0.5e6, 15_000, seed=4)
            res = simulate_forwarder(arrivals, itr=CONFIGS[name])
            overhead_ns = CONFIGS[name].interrupt_overhead_ns
            cpu_share = (res.interrupts * overhead_ns) / res.duration_ns
            out[name] = (res, cpu_share)
        return out

    results = run_once(benchmark, experiment)
    rows = [[k, f"{r.interrupts}", f"{share * 100:.1f}%"]
            for k, (r, share) in results.items()]
    print_table(
        "CPU time spent in interrupt entry @ 0.5 Mpps",
        ["policy", "interrupts", "CPU share"],
        rows,
    )
    share_none = results["no moderation"][1]
    share_adaptive = results["adaptive (paper)"][1]
    assert share_none > 1.5 * share_adaptive
    assert share_none > 0.3  # an interrupt storm eats a third of the core
