"""Table 3: hardware timestamping accuracy over known cables (Section 6.1).

Measures PTP probe latencies across fiber (82599) and copper (X540) cables
of the paper's lengths, then fits t = k + l / v_p to recover the
(de)modulation constant and propagation speed, exactly like the paper.
Also reproduces the 8.5 m fiber bimodality caused by the 82599's 12.8 ns
latch grid.
"""

import numpy as np
import pytest

from conftest import print_table, run_once
from repro import MoonGenEnv, Timestamper
from repro.nicsim.link import COPPER_CAT5E, FIBER_OM3, Cable
from repro.nicsim.nic import CHIP_82599, CHIP_X540

#: (setup name, chip, medium, lengths, paper medians per length, paper k, paper v_p/c)
SETUPS = [
    ("82599 (fiber)", CHIP_82599, FIBER_OM3,
     {2.0: 320.0, 8.5: 352.0, 20.0: 403.2}, 310.7, 0.72),
    ("X540 (copper)", CHIP_X540, COPPER_CAT5E,
     {2.0: 2156.8, 10.0: 2195.2, 50.0: 2387.2}, 2147.2, 0.69),
]

N_PROBES = 400
C_M_PER_NS = 0.299792458


def measure_latency(chip, medium, length_m, seed):
    env = MoonGenEnv(seed=seed)
    a = env.config_device(0, tx_queues=1, rx_queues=1, chip=chip)
    b = env.config_device(1, tx_queues=1, rx_queues=1, chip=chip)
    env.connect(a, b, cable=Cable(medium, length_m))
    ts = Timestamper(env, a.get_tx_queue(0), b, seed=seed)
    env.launch(ts.probe_task, N_PROBES, 5_000.0)
    env.wait_for_slaves(duration_ns=N_PROBES * 20_000.0)
    return ts.histogram


def fit_k_vp(lengths, latencies):
    """Least-squares fit of t = k + l / v_p."""
    slope, intercept = np.polyfit(lengths, latencies, 1)
    vp_fraction = (1.0 / slope) / C_M_PER_NS
    return intercept, vp_fraction


@pytest.mark.parametrize("setup", SETUPS, ids=lambda s: s[0])
def test_table3_setup(benchmark, setup):
    name, chip, medium, paper_values, paper_k, paper_vp = setup

    def experiment():
        return {
            length: measure_latency(chip, medium, length, seed=3)
            for length in paper_values
        }

    results = run_once(benchmark, experiment)
    lengths = sorted(paper_values)
    # Use the mean (the paper's Table 3 averages the bimodal cases).
    means = {length: results[length].avg() for length in lengths}
    k, vp = fit_k_vp(lengths, [means[l] for l in lengths])
    rows = [
        [f"{l} m", f"{paper_values[l]:.1f}", f"{means[l]:.1f}"]
        for l in lengths
    ]
    rows.append(["k [ns]", f"{paper_k}", f"{k:.1f}"])
    rows.append(["v_p [c]", f"{paper_vp}", f"{vp:.3f}"])
    print_table(f"Table 3: {name}", ["cable", "paper", "measured"], rows)

    for length in lengths:
        assert means[length] == pytest.approx(paper_values[length], abs=8.0)
    assert k == pytest.approx(paper_k, abs=10.0)
    assert vp == pytest.approx(paper_vp, abs=0.06)


def test_table3_fiber_8_5m_bimodality(benchmark):
    """Section 6.1: the 8.5 m fiber alternates between 345.6 and 358.4 ns
    (the 12.8 ns latch grid of the 82599)."""
    hist = run_once(
        benchmark, lambda: measure_latency(CHIP_82599, FIBER_OM3, 8.5, seed=5)
    )
    values, counts = np.unique(np.round(hist.samples, 1), return_counts=True)
    table = dict(zip(values.tolist(), counts.tolist()))
    print_table(
        "8.5 m fiber bimodality",
        ["latency [ns]", "share"],
        [[v, f"{c / len(hist) * 100:.1f}%"] for v, c in sorted(table.items())],
    )
    top_two = set(
        v for v, _ in sorted(table.items(), key=lambda kv: -kv[1])[:2]
    )
    assert top_two <= {345.6, 358.4, 332.8}
    assert len(top_two & {345.6, 358.4}) >= 1
    assert sum(table.get(v, 0) for v in (345.6, 358.4)) / len(hist) > 0.9


def test_table3_x540_precision(benchmark):
    """Section 6.1: >99.5 % of X540 samples within ±6.4 ns of the median,
    total range 64 ns, independent of cable length."""
    def experiment():
        return {
            length: measure_latency(CHIP_X540, COPPER_CAT5E, length, seed=7)
            for length in (2.0, 50.0)
        }

    results = run_once(benchmark, experiment)
    rows = []
    for length, hist in results.items():
        med = hist.median()
        within = hist.fraction_within(med, 6.4 + 1e-6)
        spread = hist.max() - hist.min()
        rows.append([f"{length} m", f"{within * 100:.1f}%", f"{spread:.1f} ns"])
        # Paper: >99.5 %.  Our per-probe clock resync occasionally flips a
        # quantization boundary and shifts a few samples by one tick, so
        # the bound here is slightly looser.
        assert within > 0.90
        assert spread <= 64.0
    print_table(
        "X540 precision", ["cable", "within ±6.4 ns of median", "range"], rows
    )
