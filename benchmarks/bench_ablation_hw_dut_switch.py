"""Ablation: the store-and-forward switch workaround for hardware DuTs.

Section 8.4's caveat: the CRC-gap mechanism assumes the DuT drops invalid
frames for free, which holds for NICs but not necessarily for hardware
appliances whose lookup pipeline processes every frame.  Routing the test
traffic through a store-and-forward switch (which validates the FCS and
drops fillers) restores clean behaviour at the cost of the switch's own
queueing.
"""

import statistics

import pytest

from conftest import print_table, run_once
from repro import CbrPattern, GapFiller, MoonGenEnv
from repro.dut import HardwareAppliance, StoreAndForwardSwitch
from repro.nicsim.link import Wire

N_PACKETS = 250
RATE_PPS = 2e6


def run_path(use_switch: bool, seed: int = 4):
    env = MoonGenEnv(seed=seed)
    tx = env.config_device(0, tx_queues=1)
    rx = env.config_device(1, rx_queues=1)
    hw = HardwareAppliance(env.loop, pipeline_ns=400.0)
    if use_switch:
        switch = StoreAndForwardSwitch(env.loop)
        env.connect_to_sink(tx, switch.ingress)
        wire = Wire(env.loop, tx.port.speed_bps)
        wire.connect(hw.ingress)
        switch.connect_output(wire)
    else:
        env.connect_to_sink(tx, hw.ingress)
    hw.connect_output(env.wire_to_device(rx))
    filler = GapFiller()

    def craft(buf, index):
        buf.eth_packet.fill(eth_type=0x0800)

    env.launch(filler.load_task, env, tx.get_tx_queue(0),
               CbrPattern(RATE_PPS), N_PACKETS, craft)
    env.wait_for_slaves(duration_ns=10_000_000)
    return hw


def test_ablation_switch_workaround(benchmark):
    def experiment():
        return {
            "direct (fillers hit appliance)": run_path(False),
            "via switch (fillers stripped)": run_path(True),
        }

    results = run_once(benchmark, experiment)
    rows = []
    for name, hw in results.items():
        med = statistics.median(hw.latency_samples_ns)
        rows.append([
            name, hw.forwarded, hw.discarded_invalid, f"{med:.0f} ns",
        ])
    print_table(
        f"Ablation: hardware appliance at {RATE_PPS / 1e6:.0f} Mpps CRC-gap CBR",
        ["path", "forwarded", "fillers processed", "median latency"],
        rows,
    )

    direct = results["direct (fillers hit appliance)"]
    via = results["via switch (fillers stripped)"]
    # Same useful traffic either way.
    assert direct.forwarded == via.forwarded == N_PACKETS
    # The appliance wastes pipeline slots on fillers without the switch.
    assert direct.discarded_invalid > 0
    assert via.discarded_invalid == 0
    # And pays for it in latency.
    med_direct = statistics.median(direct.latency_samples_ns)
    med_via = statistics.median(via.latency_samples_ns)
    assert med_direct > med_via


def test_ablation_software_dut_needs_no_switch(benchmark):
    """Control: the OvS-style DuT drops fillers in its NIC hardware, so the
    CRC stream costs it nothing (Figure 10's premise)."""
    from repro.dut import OvsForwarder

    def experiment():
        env = MoonGenEnv(seed=5)
        tx = env.config_device(0, tx_queues=1)
        rx = env.config_device(1, rx_queues=1)
        dut = OvsForwarder(env.loop)
        env.connect_to_sink(tx, dut.ingress)
        dut.connect_output(env.wire_to_device(rx))
        filler = GapFiller()

        def craft(buf, index):
            buf.eth_packet.fill(eth_type=0x0800)

        env.launch(filler.load_task, env, tx.get_tx_queue(0),
                   CbrPattern(RATE_PPS), N_PACKETS, craft)
        env.wait_for_slaves(duration_ns=10_000_000)
        return dut

    dut = run_once(benchmark, experiment)
    print_table(
        "control: software DuT",
        ["forwarded", "fillers dropped in NIC", "software saw fillers"],
        [[dut.forwarded, dut.rx_crc_errors, "no"]],
    )
    assert dut.forwarded == N_PACKETS
    assert dut.rx_crc_errors > 0
    assert dut.rx_dropped == 0
