"""Figure 11: forwarding latency of Open vSwitch, CBR vs Poisson traffic.

Sweeps the offered load from 0.1 to 2.0 Mpps and records the 25th/50th/75th
latency percentiles for CBR (hardware rate control) and Poisson (CRC-gap
software rate control) patterns.  The paper's shape:

* CBR latency stays low and flat until the DuT approaches overload;
* Poisson latency rises with load — the bursts temporarily overload the
  DuT and stress its buffers;
* at ~1.9 Mpps the system overloads and latency jumps to ~2 ms (all
  buffers full), identical for both patterns;
* the overall throughput is the same regardless of the pattern.
"""

import numpy as np
import pytest

from conftest import print_table, run_once
from repro import units
from repro.core.ratecontrol import PoissonPattern
from repro.dut import simulate_forwarder
from repro.generators import MoonGenCrcGapModel, MoonGenHwRateModel

LOADS_MPPS = (0.1, 0.4, 0.7, 1.0, 1.3, 1.6, 1.8, 1.9, 2.2)
WINDOW_S = 0.03


def run_pattern(kind: str, pps: float, seed: int = 13):
    n = max(int(pps * WINDOW_S), 2000)
    if kind == "cbr":
        arrivals = MoonGenHwRateModel(
            speed_bps=units.SPEED_10G).departures_ns(pps, n, seed=seed)
    else:
        model = MoonGenCrcGapModel(speed_bps=units.SPEED_10G)
        arrivals = model.departures_for_pattern(
            PoissonPattern(pps, seed=seed), n)
    return simulate_forwarder(arrivals)


def test_fig11_latency_curves(benchmark):
    def experiment():
        out = {}
        for mpps in LOADS_MPPS:
            out[mpps] = (run_pattern("cbr", mpps * 1e6),
                         run_pattern("poisson", mpps * 1e6))
        return out

    results = run_once(benchmark, experiment)
    rows = []
    for mpps, (cbr, poisson) in results.items():
        c = cbr.latency_percentiles()
        p = poisson.latency_percentiles()
        rows.append([
            f"{mpps:.1f}",
            f"{c[0] / 1e3:6.1f}/{c[1] / 1e3:6.1f}/{c[2] / 1e3:6.1f}",
            f"{p[0] / 1e3:6.1f}/{p[1] / 1e3:6.1f}/{p[2] / 1e3:6.1f}",
            f"{cbr.drop_rate:.3f}/{poisson.drop_rate:.3f}",
        ])
    print_table(
        "Figure 11: latency quartiles [µs] (q1/median/q3) vs load",
        ["load Mpps", "CBR", "Poisson", "drops"],
        rows,
    )

    # Poisson stresses the buffers: higher latency in the loaded region.
    for mpps in (1.3, 1.6, 1.8):
        c = results[mpps][0].latency_percentiles()[1]
        p = results[mpps][1].latency_percentiles()[1]
        assert p > c, f"Poisson should exceed CBR at {mpps} Mpps"

    # CBR stays flat before the knee.
    cbr_medians = [results[m][0].latency_percentiles()[1]
                   for m in (0.1, 0.4, 0.7, 1.0, 1.3)]
    assert max(cbr_medians) < 1.6 * min(cbr_medians)

    # Overload: ~2 ms latency (all buffers full) and drops, both patterns.
    for kind in (0, 1):
        over = results[2.2][kind]
        lat = over.latencies_ns[~np.isnan(over.latencies_ns)]
        tail = float(np.median(lat[len(lat) // 2:]))
        assert tail == pytest.approx(2.2e6, rel=0.2)
        assert over.dropped > 0

    # Throughput identical regardless of pattern (Section 8.3).
    for mpps in LOADS_MPPS:
        cbr, poisson = results[mpps]
        assert cbr.forwarded == pytest.approx(poisson.forwarded, rel=0.03)


def test_fig11_poisson_percentile_spread(benchmark):
    """Poisson's quartile band is wider than CBR's (visible in the figure)."""
    def experiment():
        cbr = run_pattern("cbr", 1.5e6)
        poisson = run_pattern("poisson", 1.5e6)
        return cbr.latency_percentiles(), poisson.latency_percentiles()

    c, p = run_once(benchmark, experiment)
    spread_c = c[2] - c[0]
    spread_p = p[2] - p[0]
    print_table(
        "quartile spread @ 1.5 Mpps",
        ["pattern", "q3-q1 [µs]"],
        [["CBR", f"{spread_c / 1e3:.1f}"], ["Poisson", f"{spread_p / 1e3:.1f}"]],
    )
    assert spread_p > spread_c
