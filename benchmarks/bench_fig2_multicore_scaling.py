"""Figure 2: multi-core scaling under high load.

The heavy Section 5.3 script (8 random numbers per packet for addresses,
ports, and payload) runs on 1-8 simulated 1.2 GHz cores, each transmitting
to its own queues on two shared 10 GbE ports.  Scaling is linear until the
aggregate line rate of 29.76 Mpps is reached — the paper's Figure 2 curve.
"""

import pytest

from conftest import print_table, run_once, sweep_jobs
from repro import MoonGenEnv
from repro.parallel import run_parallel
from repro.units import LINE_RATE_10G_64B_PPS, to_mpps

FREQ_HZ = 1.2e9
DURATION_NS = 300_000
MAX_CORES = 8
LINE_RATE_2PORTS = 2 * LINE_RATE_10G_64B_PPS


def heavy_slave(env, queues):
    mem = env.create_mempool(
        fill=lambda b: b.udp_packet.fill(pkt_length=60)
    )
    arrays = [mem.buf_array() for _ in queues]
    while env.running():
        for queue, bufs in zip(queues, arrays):
            bufs.alloc(60)
            bufs.charge_random_fields(8)
            bufs.offload_ip_checksums()
            yield queue.send(bufs)


def run_cores(n_cores: int) -> float:
    env = MoonGenEnv(seed=3, core_freq_hz=FREQ_HZ)
    ports = [env.config_device(i, tx_queues=n_cores) for i in (0, 1)]
    sinks = [env.config_device(i + 2, rx_queues=1) for i in (0, 1)]
    for port, sink in zip(ports, sinks):
        env.connect(port, sink)
    for core in range(n_cores):
        env.launch(heavy_slave, env, [p.get_tx_queue(core) for p in ports])
    env.wait_for_slaves(duration_ns=DURATION_NS)
    return sum(p.tx_packets for p in ports) / (env.now_ns / 1e9)


def _rate_point(n_cores, _seed):
    """Sweep point for the parallel engine (seed pinned inside run_cores)."""
    return run_cores(n_cores)


def test_fig2_multicore_scaling(benchmark):
    def experiment():
        cores = list(range(1, MAX_CORES + 1))
        return dict(zip(cores, run_parallel(cores, _rate_point,
                                            jobs=sweep_jobs())))

    rates = run_once(benchmark, experiment)
    rows = [
        [cores, f"{to_mpps(pps):.2f}",
         f"{min(to_mpps(cores * rates[1]), to_mpps(LINE_RATE_2PORTS)):.2f}"]
        for cores, pps in rates.items()
    ]
    print_table(
        "Figure 2: packet rate vs cores (1.2 GHz, 2x10GbE, line rate 29.76 Mpps)",
        ["cores", "measured Mpps", "linear-scaling expectation"],
        rows,
    )

    # Linear region: each added core contributes the single-core rate.
    single = rates[1]
    linear_cores = int(LINE_RATE_2PORTS // single)
    for cores in range(1, min(linear_cores, MAX_CORES) + 1):
        assert rates[cores] == pytest.approx(cores * single, rel=0.08), \
            f"linear scaling broken at {cores} cores"

    # Saturation region: pinned at the two-port line rate.
    assert rates[MAX_CORES] == pytest.approx(LINE_RATE_2PORTS, rel=0.05)
    # The paper's qualitative claim: scaling is linear *up to* line rate.
    assert rates[MAX_CORES] <= LINE_RATE_2PORTS * 1.001
