"""Section 5.6.3: the cost-estimation example.

The paper predicts the heavy Section 5.3 script's throughput by composing
per-operation costs — 10.47 ± 0.18 Mpps on a 2.4 GHz core — and measures
10.3 Mpps.  Here the same composition is checked against the simulated
measurement; predictor and simulation share no code path beyond the cost
table, so agreement validates the decomposition, as in the paper.
"""

import pytest

from conftest import print_table, run_once
from repro import MoonGenEnv
from repro.analysis import ScriptCost, estimate_script
from repro.units import to_mpps

FREQ_HZ = 2.4e9
DURATION_NS = 700_000


def simulate_heavy_script() -> float:
    env = MoonGenEnv(seed=31, core_freq_hz=FREQ_HZ)
    tx = env.config_device(0, tx_queues=1)
    rx = env.config_device(1, rx_queues=1)
    env.connect(tx, rx)

    def slave(env, queue):
        mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(pkt_length=60))
        bufs = mem.buf_array()
        while env.running():
            bufs.alloc(60)
            bufs.charge_modify(1)          # payload write
            bufs.charge_random_fields(8)   # addresses, ports, payload
            bufs.offload_ip_checksums()
            yield queue.send(bufs)

    env.launch(slave, env, tx.get_tx_queue(0))
    env.run_for(100_000)
    c0, t0 = tx.tx_packets, env.now_ns
    env.run_for(DURATION_NS)
    c1, t1 = tx.tx_packets, env.now_ns
    env.stop()
    for task in env.tasks:
        task.kill()
    return (c1 - c0) / ((t1 - t0) / 1e9)


def test_sec56_prediction_vs_measurement(benchmark):
    script = ScriptCost(random_fields=8, modify_cachelines=1, offload_ip=True)
    predicted = estimate_script(script, FREQ_HZ)

    measured = run_once(benchmark, simulate_heavy_script)

    print_table(
        "Section 5.6.3: cost estimation example (2.4 GHz, heavy script)",
        ["quantity", "paper", "this reproduction"],
        [
            ["predicted", "10.47 ± 0.18 Mpps", f"{to_mpps(predicted):.2f} Mpps"],
            ["measured", "10.3 Mpps", f"{to_mpps(measured):.2f} Mpps"],
            ["cycles/pkt", "229.2 ± 3.9",
             f"{script.cycles_per_packet(FREQ_HZ):.1f}"],
        ],
    )
    # Prediction matches the simulation within the paper's error band.
    assert measured == pytest.approx(predicted, rel=0.02)
    # And both land in the paper's measured range.
    assert to_mpps(measured) == pytest.approx(10.3, abs=0.3)
    assert script.cycles_per_packet(FREQ_HZ) == pytest.approx(229.2, abs=6.0)


def test_sec56_prediction_scales_with_frequency(benchmark):
    """The estimator's core property: rate = frequency / cost."""
    script = ScriptCost(random_fields=8, modify_cachelines=1, offload_ip=True)

    def experiment():
        return {f: estimate_script(script, f) for f in (1.2e9, 1.8e9, 2.4e9)}

    results = run_once(benchmark, experiment)
    rows = [[f"{f / 1e9:.1f} GHz", f"{to_mpps(p):.2f} Mpps"]
            for f, p in results.items()]
    print_table("predicted throughput vs frequency", ["frequency", "rate"], rows)
    # Higher frequency helps monotonically, but sub-linearly: the packet-IO
    # memory stalls do not speed up with the core clock (this is why the
    # paper's measurements need a down-clocked CPU to be meaningful at all).
    assert results[1.2e9] < results[1.8e9] < results[2.4e9]
    ratio = results[2.4e9] / results[1.2e9]
    expected = 2.0 * (
        script.cycles_per_packet(1.2e9) / script.cycles_per_packet(2.4e9)
    )
    assert ratio == pytest.approx(expected, rel=1e-6)
    assert ratio < 2.0
