"""Shared helpers for the paper-reproduction benches.

Every bench prints a paper-vs-measured comparison table; the pytest-benchmark
fixture wraps the experiment once (``pedantic`` with a single round — these
are simulations whose *output* matters, not their wall time).

Sweep-style benches fan their independent points out through
``repro.parallel.run_parallel``; ``REPRO_BENCH_JOBS`` sets the worker
count (default 1 = serial in-process, bit-identical results either way).
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence


def sweep_jobs() -> int:
    """Worker count for bench sweeps (env ``REPRO_BENCH_JOBS``, default 1)."""
    return max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence[object]]) -> None:
    """Print an aligned comparison table."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))
