"""Shared helpers for the paper-reproduction benches.

Every bench prints a paper-vs-measured comparison table; the pytest-benchmark
fixture wraps the experiment once (``pedantic`` with a single round — these
are simulations whose *output* matters, not their wall time).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence[object]]) -> None:
    """Print an aligned comparison table."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))
