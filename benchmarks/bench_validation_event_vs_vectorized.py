"""Cross-validation: the event-driven and vectorized paths must agree.

DESIGN.md section 6 commits to two implementations sharing one
calibration: the event-driven NIC/DuT models (scripts, integration tests)
and the vectorized models (million-packet benches).  This bench runs the
same experiments through both and checks they agree — the guard against
the two paths drifting apart as the code evolves.
"""

import numpy as np
import pytest

from conftest import print_table, run_once
from repro import CbrPattern, GapFiller, MoonGenEnv, units
from repro.dut import DutConfig, OvsForwarder, simulate_forwarder
from repro.nicsim.nic import SimFrame


def event_driven_dut(arrivals_ns):
    """Feed explicit arrival times through the event-driven forwarder."""
    env = MoonGenEnv(seed=1)
    dut = OvsForwarder(env.loop)
    latencies = []

    def sink(frame, t):
        latencies.append((frame.meta["dut_departure_ps"]
                          - frame.meta["dut_arrival_ps"]) / 1000.0)

    from repro.nicsim.link import Wire
    wire = Wire(env.loop, units.SPEED_10G)
    wire.connect(sink)
    dut.connect_output(wire)
    for t in arrivals_ns:
        env.loop.schedule_at(
            round(t * 1000),
            lambda: dut.ingress(SimFrame(b"\x00" * 60), env.loop.now_ps),
        )
    env.loop.run()
    return np.asarray(latencies), dut


def test_validation_dut_latency_agrees(benchmark):
    """Same arrivals, same latencies: event loop vs fastpath."""
    def experiment():
        arrivals = np.arange(3000) * 1000.0  # 1 Mpps CBR
        fast = simulate_forwarder(arrivals)
        event_lat, dut = event_driven_dut(arrivals)
        fast_lat = fast.latencies_ns[~np.isnan(fast.latencies_ns)]
        return fast_lat, event_lat, fast, dut

    fast_lat, event_lat, fast, dut = run_once(benchmark, experiment)
    rows = [
        ["forwarded", fast.forwarded, dut.forwarded],
        ["interrupts", fast.interrupts, dut.interrupts],
        ["median latency [µs]",
         f"{np.median(fast_lat) / 1e3:.2f}", f"{np.median(event_lat) / 1e3:.2f}"],
        ["p90 latency [µs]",
         f"{np.percentile(fast_lat, 90) / 1e3:.2f}",
         f"{np.percentile(event_lat, 90) / 1e3:.2f}"],
    ]
    print_table("event-driven vs vectorized DuT @ 1 Mpps CBR",
                ["metric", "fastpath", "event loop"], rows)
    assert dut.forwarded == fast.forwarded
    assert dut.interrupts == pytest.approx(fast.interrupts, rel=0.02)
    assert np.median(event_lat) == pytest.approx(np.median(fast_lat), rel=0.02)
    assert np.percentile(event_lat, 90) == pytest.approx(
        np.percentile(fast_lat, 90), rel=0.05)


def test_validation_crc_gap_wire_schedule(benchmark):
    """The event-driven CRC-gap load task realises the planner's schedule."""
    def experiment():
        pattern = CbrPattern(2e6)
        filler = GapFiller()
        plan = filler.plan_pattern(CbrPattern(2e6), 79)

        env = MoonGenEnv(seed=2)
        tx = env.config_device(0, tx_queues=1)
        rx = env.config_device(1, rx_queues=1)
        env.connect(tx, rx)
        arrivals = []
        original = rx.port.receive

        def spy(frame, t):
            if frame.fcs_ok:
                arrivals.append(t / 1000.0)
            original(frame, t)

        tx.port.wire.connect(spy)

        def craft(buf, index):
            buf.eth_packet.fill(eth_type=0x0800)

        env.launch(filler.load_task, env, tx.get_tx_queue(0),
                   pattern, 80, craft)
        env.wait_for_slaves(duration_ns=5_000_000)
        return np.diff(arrivals), plan.actual_gaps_ns

    event_gaps, planned_gaps = run_once(benchmark, experiment)
    print_table(
        "CRC-gap schedule: plan vs wire",
        ["source", "mean gap [ns]", "max |dev| from 500 ns"],
        [
            ["planner", f"{planned_gaps.mean():.2f}",
             f"{np.abs(planned_gaps - 500).max():.2f}"],
            ["event-driven wire", f"{event_gaps.mean():.2f}",
             f"{np.abs(event_gaps - 500).max():.2f}"],
        ],
    )
    assert event_gaps.mean() == pytest.approx(planned_gaps.mean(), rel=1e-3)
    assert np.abs(event_gaps - planned_gaps[:len(event_gaps)]).max() <= 1.0


def test_validation_fast_forward_agrees(benchmark):
    """``MoonGenEnv(fast_forward=True)`` must be invisible in the results.

    The steady-state accelerator replaces per-frame MAC events with one
    arithmetic batch per CBR segment; the final counters must match the
    event-driven run exactly, and it must actually have engaged."""
    def run(fast_forward):
        env = MoonGenEnv(seed=7, fast_forward=fast_forward)
        tx = env.config_device(0, tx_queues=1)
        rx = env.config_device(1, rx_queues=1)
        env.connect(tx, rx)

        def slave(env, queue):
            mem = env.create_mempool(
                fill=lambda b: b.udp_packet.fill(pkt_length=60))
            bufs = mem.buf_array()
            while env.running():
                bufs.alloc(60)
                yield queue.send(bufs)

        env.launch(slave, env, tx.get_tx_queue(0))
        env.wait_for_slaves(duration_ns=2_000_000)
        return {
            "tx_packets": tx.tx_packets,
            "tx_bytes": tx.tx_bytes,
            "rx_packets": rx.rx_packets,
            "rx_bytes": rx.rx_bytes,
            "now_ps": env.loop.now_ps,
            "events": env.loop.events_processed,
            "fast_forwarded": tx.port.fast_forwarded,
        }

    def experiment():
        return run(fast_forward=False), run(fast_forward=True)

    plain, fast = run_once(benchmark, experiment)
    print_table(
        "steady-state fast-forward vs event-driven @ 10 GbE line rate",
        ["metric", "event-driven", "fast-forward"],
        [[key, plain[key], fast[key]]
         for key in ("tx_packets", "rx_packets", "events", "fast_forwarded")],
    )
    assert fast["fast_forwarded"] > 0, "accelerator never engaged"
    assert plain["fast_forwarded"] == 0
    assert fast["events"] < plain["events"], "accelerator saved no events"
    for key in ("tx_packets", "tx_bytes", "rx_packets", "rx_bytes", "now_ps"):
        assert fast[key] == plain[key], f"{key} diverged under fast_forward"


def test_validation_batch_tier_agrees(benchmark):
    """``MoonGenEnv(batch=True)`` must be invisible in the results.

    The batch tier generalizes the fast-forward accelerator: a run
    detector finds homogeneous event trains and executes them through
    arithmetic kernels (``repro.batch``).  Counters, bytes, and the final
    simulation clock must match the event-driven run bit for bit, the
    tier must have batched the bulk of the frames, and every fallback it
    took must carry a documented reason."""
    from repro.batch import FALLBACK_REASONS

    def run(batch):
        env = MoonGenEnv(seed=7, batch=batch)
        tx = env.config_device(0, tx_queues=1)
        rx = env.config_device(1, rx_queues=1)
        env.connect(tx, rx)

        def slave(env, queue):
            mem = env.create_mempool(
                fill=lambda b: b.udp_packet.fill(pkt_length=60))
            bufs = mem.buf_array()
            while env.running():
                bufs.alloc(60)
                yield queue.send(bufs)

        env.launch(slave, env, tx.get_tx_queue(0))
        env.wait_for_slaves(duration_ns=2_000_000)
        counters = {
            "tx_packets": tx.tx_packets,
            "tx_bytes": tx.tx_bytes,
            "rx_packets": rx.rx_packets,
            "rx_bytes": rx.rx_bytes,
            "rx_missed": rx.rx_missed,
            "now_ps": env.loop.now_ps,
        }
        return counters, env.loop.events_processed, env.batch

    def experiment():
        return run(batch=False), run(batch=True)

    (plain, plain_events, _), (batched, batch_events, tier) = run_once(
        benchmark, experiment)
    stats = tier.stats()
    print_table(
        "batch tier vs event-driven @ 10 GbE line rate",
        ["metric", "event-driven", "batch tier"],
        [["tx_packets", plain["tx_packets"], batched["tx_packets"]],
         ["rx_packets", plain["rx_packets"], batched["rx_packets"]],
         ["events processed", plain_events, batch_events],
         ["frames batched", 0, stats["frames"]],
         ["trains", 0, stats["trains"]],
         ["events saved", 0, stats["events_saved"]]],
    )
    assert batched == plain, "batch tier changed simulation results"
    assert stats["trains"] > 0, "batch tier never engaged"
    assert stats["frames"] > 0.5 * batched["tx_packets"], \
        "batch tier fell back for most frames"
    assert batch_events < plain_events, "batch tier saved no events"
    # events_saved counts 2 per batched frame; the train's own _mac_done
    # still runs as an event, so the effective total undercounts the
    # event-driven run by about one event per train.
    assert batch_events + stats["events_saved"] >= 0.95 * plain_events
    assert set(stats["fallbacks"]) <= set(FALLBACK_REASONS)


def test_validation_hw_rate_average(benchmark):
    """The event-driven hardware limiter and the vectorized model agree on
    the average rate (their jitter models differ by design: the event
    limiter is the mechanism, the vectorized model is calibrated to the
    measured Table 4 spread)."""
    def experiment():
        env = MoonGenEnv(seed=3)
        tx = env.config_device(0, tx_queues=1)
        rx = env.config_device(1, rx_queues=1)
        env.connect(tx, rx)
        queue = tx.get_tx_queue(0)
        queue.set_rate_pps(1e6, 64)
        times = []
        tx.port.tx_observers.append(lambda f, t: times.append(t))

        def slave(env, queue):
            mem = env.create_mempool()
            bufs = mem.buf_array(32)
            sent = 0
            while env.running() and sent < 500:
                bufs.alloc(60)
                sent += yield queue.send(bufs)

        env.launch(slave, env, queue)
        env.wait_for_slaves(duration_ns=2_000_000)
        gaps = np.diff(times) / 1000.0
        from repro.generators import MoonGenHwRateModel
        model_gaps = MoonGenHwRateModel(
            speed_bps=units.SPEED_10G).gaps_ns(1e6, 2000, seed=3)
        return gaps, model_gaps

    event_gaps, model_gaps = run_once(benchmark, experiment)
    print_table(
        "hardware CBR @ 1 Mpps: event mechanism vs calibrated model",
        ["source", "mean gap [ns]"],
        [
            ["event-driven limiter", f"{event_gaps.mean():.2f}"],
            ["vectorized model", f"{model_gaps.mean():.2f}"],
        ],
    )
    assert event_gaps.mean() == pytest.approx(1000.0, rel=0.005)
    assert model_gaps.mean() == pytest.approx(1000.0, rel=0.005)
