"""Timer-churn microbench: heap vs calendar scheduler head to head.

The ``timer_churn`` scenario (``repro.perf``) distills the
``wait_any``-timeout pattern — thousands of flows each keep a periodic
event plus a far-future guard timeout armed, and ~90 % of the timeouts
are cancelled before firing.  The pending set stays large for the whole
run, which is exactly where the heap's O(log n) pops and compaction
sweeps lose to the calendar queue's O(1) bucket operations.

This bench runs the same workload through both backends and checks the
event fingerprint is bit-identical — the speedup must come from the
data structure, not from doing different work.  The full-size numbers
live in ``BENCH_core.json`` (``delta_vs_heap``, recorded by
``benchmarks/harness.py --scheduler calendar``); this smoke-sized run
guards the plumbing and the equivalence, not the ratio.
"""

from conftest import print_table, run_once
from repro import perf


def test_timer_churn_heap_vs_calendar(benchmark):
    """Same churn workload, both schedulers: identical event counts."""
    def experiment():
        return {
            scheduler: perf.measure("timer_churn", smoke=True, repeats=1,
                                    scheduler=scheduler)
            for scheduler in perf.SCHEDULERS
        }

    results = run_once(benchmark, experiment)
    heap, cal = results["heap"], results["calendar"]
    ratio = cal["events_per_sec"] / heap["events_per_sec"]
    print_table(
        "timer churn (smoke): heap vs calendar scheduler",
        ["metric", "heap", "calendar"],
        [
            ["events", f"{heap['events']:.0f}", f"{cal['events']:.0f}"],
            ["wall [s]", f"{heap['wall_s']:.3f}", f"{cal['wall_s']:.3f}"],
            ["events/s", f"{heap['events_per_sec']:,.0f}",
             f"{cal['events_per_sec']:,.0f}"],
            ["calendar/heap", "1.00x", f"{ratio:.2f}x"],
        ],
    )
    # The differential invariant: both backends process the exact same
    # event stream.  (Wall-clock ratios are asserted only on the
    # full-size workload in BENCH_core.json — smoke sizes are too small
    # for the asymptotic win to show.)
    assert cal["events"] == heap["events"]
    assert heap["events"] > 0
