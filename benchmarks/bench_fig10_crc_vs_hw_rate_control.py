"""Figure 10: CBR via hardware rate control vs the CRC-gap method.

The paper validates the novel software rate control (Section 8.2) by
showing that a DuT cannot tell the difference: the relative deviation of
the 25th/50th/75th latency percentiles between the two CBR generation
methods is within ~1.2 sigma of 0 % across 0.1-1.9 Mpps, despite the DuT
being bombarded with invalid filler frames in one case.
"""

import numpy as np
import pytest

from conftest import print_table, run_once
from repro import units
from repro.dut import simulate_forwarder
from repro.generators import MoonGenCrcGapModel, MoonGenHwRateModel
from repro.analysis.latencystats import mean_and_std

LOADS_MPPS = (0.1, 0.3, 0.5, 0.7, 0.9, 1.1, 1.3, 1.5, 1.7, 1.9)
REPEATS = 10
WINDOW_S = 0.012


def quartiles(model, pps, seed):
    n = max(int(pps * WINDOW_S), 1500)
    arrivals = model.departures_ns(pps, n, seed=seed)
    res = simulate_forwarder(arrivals)
    return np.array(res.latency_percentiles())


def test_fig10_relative_deviation(benchmark):
    hw = MoonGenHwRateModel(speed_bps=units.SPEED_10G)
    crc = MoonGenCrcGapModel(speed_bps=units.SPEED_10G)

    def experiment():
        out = {}
        for mpps in LOADS_MPPS:
            pps = mpps * 1e6
            deviations = []
            for seed in range(REPEATS):
                q_hw = quartiles(hw, pps, seed)
                q_crc = quartiles(crc, pps, seed + 100)
                deviations.append((q_crc - q_hw) / q_hw)
            out[mpps] = np.array(deviations)
        return out

    results = run_once(benchmark, experiment)
    rows = []
    for mpps, devs in results.items():
        mean_med, std_med = mean_and_std(devs[:, 1] * 100)
        rows.append([
            f"{mpps:.1f}",
            f"{np.mean(devs[:, 0]) * 100:+.2f}%",
            f"{mean_med:+.2f}% ± {std_med:.2f}",
            f"{np.mean(devs[:, 2]) * 100:+.2f}%",
        ])
    print_table(
        "Figure 10: latency deviation, CRC-gap CBR vs hardware CBR",
        ["load Mpps", "q1 dev", "median dev", "q3 dev"],
        rows,
    )

    # Paper: deviation within 1.2 sigma of 0 % for almost all measurement
    # points — with exactly one outlier ("only the 1st quartile at
    # 0.23 Mpps deviates by 1.5 % ± 0.5 %"), an interrupt-moderation
    # resonance.  The simulation reproduces such a resonance at 0.3 Mpps,
    # so one deviating point in the low-load region is expected.
    outliers = 0
    for mpps, devs in results.items():
        for col, name in ((0, "q1"), (1, "median"), (2, "q3")):
            mean, std = mean_and_std(devs[:, col])
            if abs(mean) >= max(2.0 * std, 0.05):
                outliers += 1
                assert mpps <= 0.5 and abs(mean) < 0.10, (
                    f"{name} deviates at {mpps} Mpps: {mean:.3f} ± {std:.3f}"
                )
    assert outliers <= 3  # at most one resonant load point (3 quartiles)


def test_fig10_fillers_reach_dut_nic_only(benchmark):
    """Sanity: the CRC stream carries more frames but the same valid rate."""
    crc = MoonGenCrcGapModel(speed_bps=units.SPEED_10G)

    def experiment():
        from repro.core.ratecontrol import CbrPattern, GapFiller
        plan = GapFiller().plan_pattern(CbrPattern(1e6), 20_000)
        return plan

    plan = run_once(benchmark, experiment)
    from repro.core.ratecontrol import crc_rate_control_frame_rate, effective_pps
    print_table(
        "CRC stream composition @ 1 Mpps CBR",
        ["metric", "value"],
        [
            ["valid packet rate", f"{effective_pps(plan) / 1e6:.3f} Mpps"],
            ["total frame rate", f"{crc_rate_control_frame_rate(plan) / 1e6:.3f} Mpps"],
            ["fillers per valid packet", f"{plan.n_fillers / 20_000:.2f}"],
        ],
    )
    assert effective_pps(plan) == pytest.approx(1e6, rel=0.001)
    assert plan.n_fillers > 0
