"""Figure 8: histograms of inter-arrival times at 500 and 1000 kpps.

Regenerates the six panels (three generators x two rates) as 64 ns-binned
distributions — the 82580's measurement precision — and checks each
panel's qualitative signature:

* MoonGen: a tight oscillation around the target, almost no bursts;
* Pktgen-DPDK: a wider lobe, growing burst spike at 1000 kpps;
* zsend: a dominating spike at the back-to-back spacing (672 ns, the
  figure's black arrow) plus a smeared remainder.
"""

import pytest

from conftest import print_table, run_once
from repro.analysis import measure_interarrival
from repro.analysis.interarrival import histogram_bins_64ns
from repro.generators import MoonGenHwRateModel, PktgenDpdkModel, ZsendModel

N = 1_000_000  # the paper observed at least 1,000,000 packets
BURST_BIN = 640.0  # 672 ns falls into the [640, 704) bin


def panel(model, pps):
    departures = model.departures_ns(pps, N, seed=21)
    stats = measure_interarrival(departures, pps, model.name)
    return stats, histogram_bins_64ns(stats)


def print_panel(name, pps, bins, max_rows=18):
    peak = max(bins.values())
    rows = []
    for edge, pct in bins.items():
        if pct < 0.05 or len(rows) >= max_rows:
            continue
        bar = "#" * max(1, round(pct / peak * 40))
        rows.append([f"{edge / 1000:.3f} µs", f"{pct:5.1f}%", bar])
    print_table(f"Figure 8: {name} @ {pps // 1000} kpps",
                ["inter-arrival", "prob", ""], rows)


@pytest.mark.parametrize("pps", [500_000, 1_000_000])
def test_fig8_moongen_panel(benchmark, pps):
    stats, bins = run_once(
        benchmark, lambda: panel(MoonGenHwRateModel(), pps)
    )
    print_panel("MoonGen", pps, bins)
    target_bin = (1e9 / pps) // 64 * 64
    # Mass concentrated within ±256 ns of the target.
    near = sum(p for e, p in bins.items() if abs(e - target_bin) <= 256)
    assert near > 90.0
    assert bins.get(BURST_BIN, 0.0) < 2.0  # bursts nearly absent


@pytest.mark.parametrize("pps", [500_000, 1_000_000])
def test_fig8_pktgen_panel(benchmark, pps):
    stats, bins = run_once(
        benchmark, lambda: panel(PktgenDpdkModel(), pps)
    )
    print_panel("Pktgen-DPDK", pps, bins)
    if pps == 1_000_000:
        # The 14 % burst spike at the 672 ns back-to-back spacing.
        assert bins.get(BURST_BIN, 0.0) == pytest.approx(14.2, abs=3.0)
    else:
        assert bins.get(BURST_BIN, 0.0) < 1.0


@pytest.mark.parametrize("pps", [500_000, 1_000_000])
def test_fig8_zsend_panel(benchmark, pps):
    stats, bins = run_once(benchmark, lambda: panel(ZsendModel(), pps))
    print_panel("zsend", pps, bins)
    # The dominant feature is the burst spike at 672 ns (the black arrow).
    burst_mass = bins.get(BURST_BIN, 0.0) + bins.get(BURST_BIN + 64, 0.0)
    assert burst_mass == pytest.approx(
        28.6 if pps == 500_000 else 52.0, abs=8.0
    )
    assert burst_mass == max(
        bins.get(BURST_BIN, 0.0) + bins.get(BURST_BIN + 64, 0.0),
        *(p for e, p in bins.items()),
    ) or burst_mass > 20.0


def test_fig8_moongen_sharper_than_pktgen(benchmark):
    """Comparing panel peakedness: MoonGen's lobe is the tightest."""
    def experiment():
        out = {}
        for model in (MoonGenHwRateModel(), PktgenDpdkModel()):
            stats, _ = panel(model, 500_000)
            out[model.name] = stats.histogram.stddev()
        return out

    spreads = run_once(benchmark, experiment)
    print_table(
        "inter-arrival spread @ 500 kpps",
        ["generator", "stddev [ns]"],
        [[k, f"{v:.0f}"] for k, v in spreads.items()],
    )
    assert spreads["MoonGen"] < spreads["Pktgen-DPDK"]
