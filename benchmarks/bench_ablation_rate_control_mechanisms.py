"""Ablation: the three rate-control mechanisms, measured event-driven.

`compare-rate-control-mechanisms.lua` (Section 9) compares how traffic is
actually paced.  Here all three mechanisms run through the full simulated
pipeline — CPU task → descriptor ring → MAC → wire → 82580 receiver with
per-packet timestamps — and the realised inter-arrival precision is
measured identically for each:

* **sleep-paced software** (the push model of Section 7.1): timer
  quantization and DMA-fetch jitter smear the gaps;
* **hardware CBR** (Section 7.2): the NIC's pacer, tight but CBR-only;
* **CRC-gap software** (Section 8): byte-exact gaps via invalid fillers.
"""

import pytest

from conftest import print_table, run_once
from repro import CbrPattern, GapFiller, MoonGenEnv, units
from repro.core.measure import InterArrivalMeasurement
from repro.core.softpace import SleepPacedLoadTask
from repro.nicsim.nic import CHIP_82580, CHIP_X540

TARGET_PPS = 500e3
N_PACKETS = 400


def build_pipeline(seed):
    env = MoonGenEnv(seed=seed)
    tx = env.config_device(0, tx_queues=1, chip=CHIP_X540,
                           speed_bps=units.SPEED_1G)
    rx = env.config_device(1, rx_queues=1, chip=CHIP_82580)
    env.connect(tx, rx)
    measurement = InterArrivalMeasurement(env, rx)
    env.launch(measurement.task, N_PACKETS)
    return env, tx, measurement


def craft(buf, index):
    buf.eth_packet.fill(eth_type=0x0800)


def run_mechanism(kind: str, seed: int = 6):
    env, tx, measurement = build_pipeline(seed)
    pattern = CbrPattern(TARGET_PPS)
    if kind == "sleep":
        pacer = SleepPacedLoadTask(env, tx.get_tx_queue(0), pattern,
                                   craft=craft, seed=seed)
        env.launch(pacer.task, N_PACKETS)
    elif kind == "hardware":
        queue = tx.get_tx_queue(0)
        queue.set_rate_pps(TARGET_PPS, 64)

        def hw_load(env, queue):
            mem = env.create_mempool()
            bufs = mem.buf_array(16)
            sent = 0
            while env.running() and sent < N_PACKETS:
                bufs.alloc(60)
                for buf in bufs:
                    craft(buf, sent)
                sent += yield queue.send(bufs)

        env.launch(hw_load, env, queue)
    elif kind == "crc":
        filler = GapFiller(frame_size=64, speed_bps=units.SPEED_1G)
        env.launch(filler.load_task, env, tx.get_tx_queue(0), pattern,
                   N_PACKETS, craft)
    env.wait_for_slaves(duration_ns=N_PACKETS * 2_000.0 * 2 + 5e6)
    return measurement.histogram


def test_ablation_rate_control_mechanisms(benchmark):
    def experiment():
        return {
            "sleep-paced software": run_mechanism("sleep"),
            "hardware CBR": run_mechanism("hardware"),
            "CRC-gap software": run_mechanism("crc"),
        }

    results = run_once(benchmark, experiment)
    target_gap = 1e9 / TARGET_PPS
    rows = []
    for name, hist in results.items():
        within64 = hist.fraction_within(target_gap, 64.0 + 1e-6)
        rows.append([
            name, len(hist),
            f"{within64 * 100:.1f}%",
            f"{hist.stddev():.0f} ns",
        ])
    print_table(
        f"Ablation: rate-control mechanisms @ {TARGET_PPS / 1e3:.0f} kpps "
        f"(event-driven, 82580-measured)",
        ["mechanism", "gaps", "within ±64 ns", "stddev"],
        rows,
    )

    sleep, hw, crc = (results["sleep-paced software"],
                      results["hardware CBR"],
                      results["CRC-gap software"])
    # All three hit the average rate...
    for hist in (sleep, hw, crc):
        assert hist.avg() == pytest.approx(target_gap, rel=0.02)
    # ...but precision differs exactly as the paper orders it.
    def within(hist):
        return hist.fraction_within(target_gap, 64.0 + 1e-6)

    assert within(crc) >= within(hw) >= 0.9
    assert within(sleep) < within(hw)
    assert sleep.stddev() > 2 * crc.stddev()


def test_ablation_timer_resolution_matters(benchmark):
    """Coarser sleep timers make software pacing strictly worse."""
    def experiment():
        out = {}
        for res_ns in (100.0, 1000.0, 10_000.0):
            env, tx, measurement = build_pipeline(seed=9)
            pacer = SleepPacedLoadTask(
                env, tx.get_tx_queue(0), CbrPattern(TARGET_PPS),
                craft=craft, timer_resolution_ns=res_ns, seed=9,
            )
            env.launch(pacer.task, 250)
            env.wait_for_slaves(duration_ns=250 * 4_000.0 + 5e6)
            out[res_ns] = measurement.histogram.stddev()
        return out

    spreads = run_once(benchmark, experiment)
    print_table(
        "software pacing vs timer resolution",
        ["timer resolution", "gap stddev"],
        [[f"{k:.0f} ns", f"{v:.0f} ns"] for k, v in spreads.items()],
    )
    values = [spreads[k] for k in sorted(spreads)]
    assert values[0] < values[-1]
