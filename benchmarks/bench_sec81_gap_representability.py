"""Section 8.1/8.4: limits of the CRC-gap mechanism.

* NICs refuse frames below 33 B wire length; MoonGen enforces a 76 B
  minimum for fillers (short frames cap at ~15.6 Mpps);
* gaps of 0.8-60.8 ns are unrepresentable and approximated by
  skip-and-stretch with high accuracy but ±~30 ns precision — still better
  than every software alternative;
* 10GBASE-T's 3200-bit PHY frames mean sub-76 B gaps are invisible above
  the physical layer anyway (two packets closer than 232 B arrive as a
  burst).
"""

import numpy as np
import pytest

from conftest import print_table, run_once
from repro import units
from repro.core.ratecontrol import (
    CbrPattern,
    DEFAULT_MIN_FILLER_WIRE,
    GapFiller,
    HARD_MIN_WIRE,
    SHORT_FRAME_MAX_PPS,
    crc_rate_control_frame_rate,
)
from repro.errors import GapError


def test_sec81_minimum_wire_length(benchmark):
    def experiment():
        filler = GapFiller()
        low, high = filler.unrepresentable_gap_range_ns()
        return filler, low, high

    filler, low, high = run_once(benchmark, experiment)
    print_table(
        "Section 8.1: representability limits at 10 GbE",
        ["constraint", "paper", "this reproduction"],
        [
            ["hard NIC minimum", "33 B wire length", f"{HARD_MIN_WIRE} B"],
            ["enforced filler minimum", "76 B", f"{DEFAULT_MIN_FILLER_WIRE} B"],
            ["unrepresentable gaps", "0.8-60.8 ns", f"{low:.1f}-{high + 0.8:.1f} ns"],
            ["short-frame packet rate cap", "15.6 Mpps",
             f"{SHORT_FRAME_MAX_PPS / 1e6} Mpps"],
        ],
    )
    assert low == pytest.approx(0.8)
    assert high + 0.8 == pytest.approx(60.8)
    with pytest.raises(GapError):
        GapFiller(min_filler_wire=HARD_MIN_WIRE - 1)


def test_sec84_skip_and_stretch_precision(benchmark):
    """Unrepresentable gaps: accuracy high, precision ±~30 ns."""
    def experiment():
        filler = GapFiller()
        out = {}
        for gap in (70.0, 90.0, 110.0, 127.0):
            plan = filler.plan([gap] * 20_000)
            out[gap] = (
                float(plan.actual_gaps_ns.mean()),
                float(np.abs(plan.actual_gaps_ns - gap).max()),
            )
        return out

    results = run_once(benchmark, experiment)
    rows = [
        [f"{gap:.0f}", f"{mean:.2f}", f"±{worst:.1f}"]
        for gap, (mean, worst) in results.items()
    ]
    print_table(
        "Section 8.4: skip-and-stretch for unrepresentable gaps",
        ["desired gap [ns]", "achieved mean [ns]", "per-gap error"],
        rows,
    )
    for gap, (mean, worst) in results.items():
        assert mean == pytest.approx(gap, rel=0.002)  # accuracy: high
        assert worst <= 61.0  # precision: bounded by the minimum filler


def test_sec84_smaller_min_filler_tightens_precision(benchmark):
    """Lowering the enforced minimum (paper: possible for larger packets or
    lower rates) shrinks the unrepresentable range."""
    def experiment():
        out = {}
        for min_wire in (33, 76):
            filler = GapFiller(min_filler_wire=min_wire)
            plan = filler.plan([90.0] * 10_000)
            out[min_wire] = float(np.abs(plan.actual_gaps_ns - 90.0).max())
        return out

    worst = run_once(benchmark, experiment)
    print_table(
        "precision vs enforced filler minimum (90 ns gaps)",
        ["min filler wire [B]", "worst gap error [ns]"],
        [[k, f"{v:.1f}"] for k, v in worst.items()],
    )
    assert worst[33] < worst[76]


def test_sec84_phy_frame_argument(benchmark):
    """10GBASE-T carries 3200-bit PHY frames: packets closer than 232 B
    (185.6 ns) arrive as one burst, so failing to represent gaps below
    60.8 ns is invisible above layer 1 (Section 8.4's argument)."""
    def experiment():
        phy_frame_bits = 3200
        phy_frame_bytes = phy_frame_bits // 8  # 400 B of line coding
        # Worst case from the paper: two back-to-back packets cannot be
        # distinguished from two packets with a gap of 232 B.
        worst_gap_bytes = 232
        worst_gap_ns = worst_gap_bytes * units.byte_time_ps(units.SPEED_10G) / 1000
        return phy_frame_bytes, worst_gap_ns

    phy_bytes, worst_gap_ns = run_once(benchmark, experiment)
    print_table(
        "10GBASE-T PHY framing",
        ["quantity", "value"],
        [
            ["PHY frame payload", f"{phy_bytes * 8} bits"],
            ["indistinguishable gap (worst case)", f"{worst_gap_ns:.1f} ns"],
        ],
    )
    assert worst_gap_ns == pytest.approx(185.6)
    # The unrepresentable range is far inside what the PHY hides anyway.
    low, high = GapFiller().unrepresentable_gap_range_ns()
    assert high < worst_gap_ns


def test_sec81_filler_overhead_accounting(benchmark):
    """Filler frames are real frames: the NIC's total frame rate must stay
    under the short-frame cap even for the densest plans."""
    def experiment():
        filler = GapFiller()
        rates = {}
        for mpps in (1, 3, 5, 7, 9, 11, 13):
            plan = filler.plan_pattern(CbrPattern(mpps * 1e6), 5000)
            rates[mpps] = crc_rate_control_frame_rate(plan)
        return rates

    rates = run_once(benchmark, experiment)
    print_table(
        "total frame rate (valid + fillers) vs target rate",
        ["target [Mpps]", "total frames [Mpps]"],
        [[k, f"{v / 1e6:.2f}"] for k, v in rates.items()],
    )
    for mpps, total in rates.items():
        assert total <= SHORT_FRAME_MAX_PPS * 1.001
