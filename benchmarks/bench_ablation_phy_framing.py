"""Ablation: 10GBASE-T physical-layer framing (Section 8.4).

The copper standard ships 3200-bit PHY frames, so "any layers above the
physical layer will receive multiple packets encoded in the same frame as
a burst" — two back-to-back packets are indistinguishable from two packets
232 B apart.  This ablation toggles the PHY framing on the simulated wire
and measures its effect on observed inter-arrival times, justifying the
paper's argument that the CRC-gap mechanism's unrepresentable 0.8-60.8 ns
range is invisible on 10GBASE-T.
"""

import numpy as np
import pytest

from conftest import print_table, run_once, sweep_jobs
from repro import MoonGenEnv, units
from repro.nicsim.eventloop import EventLoop
from repro.nicsim.link import Wire
from repro.parallel import run_parallel

PHY_FRAME_BITS = 3200


def observed_gaps(tx_gaps_ns, phy: bool):
    """Send packets with given start-to-start gaps; measure arrival gaps."""
    loop = EventLoop()
    wire = Wire(loop, units.SPEED_10G,
                phy_frame_bits=PHY_FRAME_BITS if phy else 0)
    arrivals = []
    wire.connect(lambda f, t: arrivals.append(t))
    t = 0.0
    wire.transmit("p", 64, start_ps=0)
    for gap in tx_gaps_ns:
        t += gap * 1000
        wire.transmit("p", 64, start_ps=round(t))
    loop.run()
    return np.diff(arrivals) / 1000.0


def _burst_point(phy, _seed):
    """Sweep point: alternating 67.2/1000 ns gaps through one PHY model."""
    return observed_gaps([67.2, 1000.0] * 200, phy=phy)


def test_ablation_phy_framing_bursts(benchmark):
    def experiment():
        gaps = run_parallel([False, True], _burst_point, jobs=sweep_jobs())
        return {"ideal PHY": gaps[0], "10GBASE-T PHY": gaps[1]}

    results = run_once(benchmark, experiment)
    rows = []
    for name, gaps in results.items():
        small = gaps[::2]
        rows.append([name, f"{np.median(small):.1f} ns",
                     f"{np.median(gaps[1::2]):.1f} ns"])
    print_table(
        "Ablation: observed gaps with/without PHY framing",
        ["wire", "median small gap", "median large gap"],
        rows,
    )
    # Without PHY framing the small gaps survive; with it they collapse
    # into bursts (delivered inside one PHY frame).
    assert np.median(results["ideal PHY"][::2]) == pytest.approx(67.2, abs=1.0)
    assert np.median(results["10GBASE-T PHY"][::2]) < 10.0


def test_ablation_phy_hides_crc_gap_imprecision(benchmark):
    """Gaps differing by less than a PHY frame arrive identically: the
    skip-and-stretch imprecision (< 61 ns) cannot be observed on copper."""
    def experiment():
        base = [500.0] * 100
        jittered = [500.0 + (30.0 if i % 2 else -30.0) for i in range(100)]
        return (
            observed_gaps(base, phy=True),
            observed_gaps(jittered, phy=True),
        )

    base_gaps, jitter_gaps = run_once(benchmark, experiment)
    print_table(
        "±30 ns tx jitter through the 10GBASE-T PHY",
        ["stream", "observed gap values"],
        [
            ["exact 500 ns", f"{sorted(set(np.round(base_gaps, 1)))}"],
            ["500 ± 30 ns", f"{sorted(set(np.round(jitter_gaps, 1)))}"],
        ],
    )
    # Observed arrivals quantize to the 320 ns PHY grid in both cases; the
    # distributions of observed gaps are indistinguishable.
    phy_ns = PHY_FRAME_BITS / units.SPEED_10G * 1e9
    for gaps in (base_gaps, jitter_gaps):
        assert all(abs(g % phy_ns) < 1e-6 or abs(g % phy_ns - phy_ns) < 1e-6
                   for g in gaps)
    assert np.mean(base_gaps) == pytest.approx(np.mean(jitter_gaps), rel=0.01)


def test_ablation_average_rate_unchanged(benchmark):
    """PHY framing delays deliveries but preserves the average rate."""
    def experiment():
        tx_gaps = [750.0] * 500
        return (
            observed_gaps(tx_gaps, phy=False).mean(),
            observed_gaps(tx_gaps, phy=True).mean(),
        )

    ideal, phy = run_once(benchmark, experiment)
    print_table(
        "average observed gap (750 ns CBR)",
        ["ideal PHY", "10GBASE-T PHY"],
        [[f"{ideal:.1f} ns", f"{phy:.1f} ns"]],
    )
    assert phy == pytest.approx(ideal, rel=0.01)
