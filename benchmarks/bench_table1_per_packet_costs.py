"""Table 1: per-packet costs of basic operations (Section 5.6.1).

Measures cycles/packet for each basic operation exactly the way the paper
does: run a transmit loop exercising only that operation on a simulated
core, divide busy cycles by packets sent, repeat ten times, report
mean ± standard deviation.
"""

import statistics

import pytest

from conftest import print_table, run_once
from repro import MoonGenEnv

PAPER = {
    "Packet transmission": (76.0, 0.8),
    "Packet modification": (9.1, 1.2),
    "Packet modification (two cachelines)": (15.0, 1.3),
    "IP checksum offloading": (15.2, 1.2),
    "UDP checksum offloading": (33.1, 3.5),
    "TCP checksum offloading": (34.0, 3.3),
}

REPEATS = 10
DURATION_NS = 150_000


def measure(op_name: str, seed: int) -> float:
    """Cycles per packet for one operation (cost over the tx baseline)."""
    env = MoonGenEnv(seed=seed, core_freq_hz=2.4e9)
    tx = env.config_device(0, tx_queues=1)
    rx = env.config_device(1, rx_queues=1)
    env.connect(tx, rx)
    # Busy cycles exclude time blocked on the NIC, so the measurement is
    # valid even when the wire, not the CPU, is the bottleneck.

    def slave(env, queue):
        mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(pkt_length=60))
        bufs = mem.buf_array()
        while env.running():
            bufs.alloc(60)
            if op_name == "Packet modification":
                bufs.charge_modify(1)
            elif op_name == "Packet modification (two cachelines)":
                bufs.charge_modify(2)
            elif op_name == "IP checksum offloading":
                bufs.offload_ip_checksums()
            elif op_name == "UDP checksum offloading":
                bufs.offload_udp_checksums()
            elif op_name == "TCP checksum offloading":
                bufs.offload_tcp_checksums()
            yield queue.send(bufs)

    task = env.launch(slave, env, tx.get_tx_queue(0))
    env.wait_for_slaves(duration_ns=DURATION_NS)
    cycles_per_pkt = task.core.busy_cycles / tx.tx_packets
    if op_name != "Packet transmission":
        # Report the op's own cost: subtract the measured IO baseline.
        base = task.core.model.costs.tx_base.at(2.4e9)
        cycles_per_pkt -= base
    return cycles_per_pkt


@pytest.mark.parametrize("op_name", list(PAPER))
def test_table1_operation(benchmark, op_name):
    def experiment():
        return [measure(op_name, seed) for seed in range(REPEATS)]

    samples = run_once(benchmark, experiment)
    mean = statistics.mean(samples)
    std = statistics.stdev(samples)
    paper_mean, paper_std = PAPER[op_name]
    print_table(
        f"Table 1: {op_name}",
        ["metric", "paper", "measured"],
        [
            ["cycles/pkt", f"{paper_mean} ± {paper_std}", f"{mean:.1f} ± {std:.1f}"],
        ],
    )
    assert mean == pytest.approx(paper_mean, abs=3 * paper_std + 0.5)
