"""Ablation: the enforced minimum filler size of the CRC-gap mechanism.

MoonGen enforces 76 B wire length for invalid frames although the NICs
accept 33 B, because short frames overload the MAC (max ~15.6 Mpps,
Section 8.1).  The trade-off: a smaller minimum shrinks the
unrepresentable gap range (better precision for tiny gaps) but pushes the
total frame rate toward the MAC limit.  This ablation quantifies both
sides of the design choice.
"""

import numpy as np
import pytest

from conftest import print_table, run_once, sweep_jobs
from repro.core.ratecontrol import (
    CbrPattern,
    GapFiller,
    SHORT_FRAME_MAX_PPS,
    crc_rate_control_frame_rate,
)
from repro.parallel import run_parallel

MIN_FILLERS = (33, 50, 76, 120)


def _precision_point(min_wire, _seed):
    """Sweep point: worst/mean gap error for one minimum filler size."""
    filler = GapFiller(min_filler_wire=min_wire)
    plan = filler.plan([95.0] * 20_000)  # 27.8 ns idle: tiny gap
    return (
        float(np.abs(plan.actual_gaps_ns - 95.0).max()),
        float(plan.actual_gaps_ns.mean()),
    )


def _frame_rate_point(min_wire, _seed):
    """Sweep point: total frame rate at 8 Mpps CBR for one filler size."""
    filler = GapFiller(min_filler_wire=min_wire)
    plan = filler.plan_pattern(CbrPattern(8e6), 20_000)
    return crc_rate_control_frame_rate(plan)


def test_ablation_precision_vs_min_filler(benchmark):
    """Smaller minimum filler -> tighter worst-case gap error."""
    def experiment():
        return dict(zip(MIN_FILLERS,
                        run_parallel(MIN_FILLERS, _precision_point,
                                     jobs=sweep_jobs())))

    results = run_once(benchmark, experiment)
    rows = [
        [m, f"±{worst:.1f} ns", f"{mean:.2f} ns",
         f"{(m - 1) * 0.8:.1f} ns"]
        for m, (worst, mean) in results.items()
    ]
    print_table(
        "Ablation: 95 ns gaps, worst per-gap error vs minimum filler",
        ["min filler [B]", "worst error", "achieved mean", "unrepresentable up to"],
        rows,
    )
    worst_errors = [results[m][0] for m in MIN_FILLERS]
    assert worst_errors == sorted(worst_errors)  # monotone in the minimum
    for m, (worst, mean) in results.items():
        assert mean == pytest.approx(95.0, rel=0.002)  # accuracy always high
        assert worst <= m * 0.8  # error bounded by the filler size


def test_ablation_frame_rate_vs_min_filler(benchmark):
    """Smaller fillers mean more frames: the MAC-limit headroom shrinks."""
    def experiment():
        return dict(zip(MIN_FILLERS,
                        run_parallel(MIN_FILLERS, _frame_rate_point,
                                     jobs=sweep_jobs())))

    rates = run_once(benchmark, experiment)
    rows = [
        [m, f"{r / 1e6:.2f} Mpps", f"{r / SHORT_FRAME_MAX_PPS * 100:.0f}%"]
        for m, r in rates.items()
    ]
    print_table(
        "Ablation: total frame rate at 8 Mpps CBR vs minimum filler",
        ["min filler [B]", "total frames", "of MAC limit"],
        rows,
    )
    # More headroom with larger fillers.
    series = [rates[m] for m in MIN_FILLERS]
    assert series == sorted(series, reverse=True)
    # The default (76 B) keeps the stream within the MAC's 15.6 Mpps.
    assert rates[76] <= SHORT_FRAME_MAX_PPS


def test_ablation_default_is_balanced(benchmark):
    """The 76 B default: worst-case error ~30 ns (already better than any
    software pacing, Section 8.4) with the MAC limit respected across the
    whole feasible CBR range."""
    def experiment():
        filler = GapFiller()  # default 76 B
        errors = {}
        for rate_mpps in (1, 5, 9, 13):
            plan = filler.plan_pattern(CbrPattern(rate_mpps * 1e6), 10_000)
            errors[rate_mpps] = (
                plan.max_error_ns(),
                crc_rate_control_frame_rate(plan),
            )
        return errors

    results = run_once(benchmark, experiment)
    rows = [
        [f"{m} Mpps", f"{err:.1f} ns", f"{fr / 1e6:.2f} Mpps"]
        for m, (err, fr) in results.items()
    ]
    print_table("default 76 B filler across CBR rates",
                ["target", "max gap error", "total frame rate"], rows)
    for mpps, (err, frame_rate) in results.items():
        # Worst case bounded by the minimum filler's wire time (60.8 ns);
        # the typical skip-and-stretch error is ±~30 ns (Section 8.4).
        assert err <= 61.0
        assert frame_rate <= SHORT_FRAME_MAX_PPS * 1.001
