"""Table 4: rate control precision of MoonGen, Pktgen-DPDK, and zsend.

Generates 1,000,000+ inter-arrival samples per generator and rate (the
paper's measurement count), computes micro-burst fractions and the
±64/128/256/512 ns buckets, and compares each cell against Table 4.
"""

import pytest

from conftest import print_table, run_once
from repro.analysis import measure_interarrival
from repro.generators import MoonGenHwRateModel, PktgenDpdkModel, ZsendModel

N_PACKETS = 1_000_000

#: Table 4 of the paper: (bursts %, ±64, ±128, ±256, ±512).
PAPER = {
    ("MoonGen", 500_000): (0.02, 49.9, 74.9, 99.8, 99.8),
    ("Pktgen-DPDK", 500_000): (0.01, 37.7, 72.3, 92.0, 94.5),
    ("zsend", 500_000): (28.6, 3.9, 5.4, 6.4, 13.8),
    ("MoonGen", 1_000_000): (1.2, 50.5, 52.0, 97.0, 100.0),
    ("Pktgen-DPDK", 1_000_000): (14.2, 36.7, 58.0, 70.6, 95.9),
    ("zsend", 1_000_000): (52.0, 4.6, 7.9, 24.2, 88.1),
}

#: Absolute tolerance (percentage points) per generator: the models are
#: calibrated, not fitted sample-exactly; zsend's bug model is the coarsest.
TOLERANCE = {"MoonGen": 4.0, "Pktgen-DPDK": 8.0, "zsend": 15.0}

MODELS = {
    "MoonGen": MoonGenHwRateModel,
    "Pktgen-DPDK": PktgenDpdkModel,
    "zsend": ZsendModel,
}


@pytest.mark.parametrize("generator", list(MODELS))
@pytest.mark.parametrize("pps", [500_000, 1_000_000])
def test_table4_cell(benchmark, generator, pps):
    model = MODELS[generator]()

    def experiment():
        departures = model.departures_ns(pps, N_PACKETS, seed=42)
        return measure_interarrival(departures, pps, generator)

    stats = run_once(benchmark, experiment)
    paper = PAPER[(generator, pps)]
    measured = (
        stats.micro_burst_fraction * 100,
        stats.within[64.0] * 100,
        stats.within[128.0] * 100,
        stats.within[256.0] * 100,
        stats.within[512.0] * 100,
    )
    headers = ["metric", "paper", "measured"]
    labels = ["micro-bursts %", "±64 ns %", "±128 ns %", "±256 ns %", "±512 ns %"]
    rows = [
        [label, f"{p:.2f}", f"{m:.2f}"]
        for label, p, m in zip(labels, paper, measured)
    ]
    print_table(f"Table 4: {generator} @ {pps // 1000} kpps", headers, rows)

    tol = TOLERANCE[generator]
    for label, p, m in zip(labels, paper, measured):
        assert m == pytest.approx(p, abs=tol), f"{generator} {label}"


def test_table4_ordering(benchmark):
    """The table's story: MoonGen best-in-every-column, zsend worst."""
    def experiment():
        out = {}
        for name, cls in MODELS.items():
            for pps in (500_000, 1_000_000):
                dep = cls().departures_ns(pps, 200_000, seed=7)
                out[(name, pps)] = measure_interarrival(dep, pps, name)
        return out

    stats = run_once(benchmark, experiment)
    rows = [[f"{name} @ {pps//1000}k", s.format_row()]
            for (name, pps), s in stats.items()]
    print_table("Table 4 summary", ["cell", "metrics"], rows)
    for pps in (500_000, 1_000_000):
        m = stats[("MoonGen", pps)]
        p = stats[("Pktgen-DPDK", pps)]
        z = stats[("zsend", pps)]
        assert m.within[64.0] >= p.within[64.0] > z.within[64.0]
        assert m.micro_burst_fraction <= p.micro_burst_fraction + 1e-3
        assert z.micro_burst_fraction > p.micro_burst_fraction
