"""Ablation: the DuT's rx ring depth sets the overload latency plateau.

Section 8.3 observes "a very large latency (about 2 ms in this test setup)
as all buffers are filled".  The plateau is the ring depth times the
per-packet service time: 4096 x 526 ns ≈ 2.15 ms.  Sweeping the ring depth
confirms the linear relation and anchors the calibration choice in
DESIGN.md.
"""

import numpy as np
import pytest

from conftest import print_table, run_once
from repro.dut import simulate_forwarder
from repro.dut.fastpath import DEFAULT_SERVICE_NS

RING_SIZES = (512, 1024, 2048, 4096, 8192)
OVERLOAD_PPS = 2.6e6
WINDOW_S = 0.05


def overload_latency(ring_size: int) -> tuple:
    arrivals = np.arange(int(OVERLOAD_PPS * WINDOW_S)) * (1e9 / OVERLOAD_PPS)
    res = simulate_forwarder(arrivals, ring_size=ring_size)
    lat = res.latencies_ns[~np.isnan(res.latencies_ns)]
    # The steady-state plateau: the latency after the ring has filled.
    tail = float(np.median(lat[len(lat) // 2:]))
    return tail, res.drop_rate


def test_ablation_ring_size_sets_plateau(benchmark):
    def experiment():
        return {size: overload_latency(size) for size in RING_SIZES}

    results = run_once(benchmark, experiment)
    rows = []
    for size, (tail, drops) in results.items():
        predicted = size * DEFAULT_SERVICE_NS
        rows.append([
            size, f"{tail / 1e6:.2f} ms", f"{predicted / 1e6:.2f} ms",
            f"{drops * 100:.1f}%",
        ])
    print_table(
        "Ablation: overload latency plateau vs rx ring depth (2.6 Mpps)",
        ["ring", "measured plateau", "ring x service", "drops"],
        rows,
    )

    for size, (tail, drops) in results.items():
        assert tail == pytest.approx(size * DEFAULT_SERVICE_NS, rel=0.15)
        assert drops > 0

    # The paper's setup: 4096 descriptors -> "about 2 ms".
    tail_4096, _ = results[4096]
    assert tail_4096 == pytest.approx(2.15e6, rel=0.1)

    # Linearity: doubling the ring doubles the plateau.
    assert results[8192][0] == pytest.approx(2 * results[4096][0], rel=0.1)
