"""Ablation: why batch processing matters (Section 4.2).

"Batch processing is an important technique for high-speed packet
processing" — the bufArray exists so packets pass to DPDK in batches
rather than one by one.  This ablation adds an explicit per-send-call cost
(driver entry + doorbell write, amortized away at the default batch size)
and sweeps the batch size: per-packet cost explodes for tiny batches and
converges once the call overhead is spread over ~32+ packets.
"""

import pytest

from conftest import print_table, run_once, sweep_jobs
from repro import MoonGenEnv
from repro.nicsim.cpu import CycleCostModel, OpCost, OpCosts
from repro.parallel import run_parallel
from repro.units import to_mpps

#: A realistic per-call cost: driver entry, descriptor-ring tail update,
#: and the uncached doorbell write to the NIC.
CALL_OVERHEAD = OpCost(cycles=120.0, stall_ns=60.0)
BATCH_SIZES = (1, 2, 4, 8, 16, 32, 63, 128)
DURATION_NS = 250_000


def run_batch(batch_size: int, freq_hz: float = 1.2e9) -> float:
    env = MoonGenEnv(seed=13, core_freq_hz=freq_hz)
    costs = OpCosts(tx_call_overhead=CALL_OVERHEAD)
    env.cost_model = CycleCostModel(costs=costs, seed=13)
    tx = env.config_device(0, tx_queues=1)
    rx = env.config_device(1, rx_queues=1)
    env.connect(tx, rx)

    def slave(env, queue):
        mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(pkt_length=60))
        bufs = mem.buf_array(batch_size)
        while env.running():
            bufs.alloc(60)
            # CPU-bound workload so the link never masks the call overhead.
            bufs.charge_random_fields(8)
            yield queue.send(bufs)

    env.launch(slave, env, tx.get_tx_queue(0))
    env.wait_for_slaves(duration_ns=DURATION_NS)
    return tx.tx_packets / (env.now_ns / 1e9)


def _batch_point(batch_size, _seed):
    """Sweep point for the parallel engine (seed pinned in run_batch)."""
    return run_batch(batch_size)


def test_ablation_batch_size(benchmark):
    def experiment():
        return dict(zip(BATCH_SIZES, run_parallel(BATCH_SIZES, _batch_point,
                                                  jobs=sweep_jobs())))

    rates = run_once(benchmark, experiment)
    best = max(rates.values())
    rows = [
        [b, f"{to_mpps(pps):.2f}", f"{pps / best * 100:.0f}%"]
        for b, pps in rates.items()
    ]
    print_table(
        "Ablation: throughput vs batch size (1.2 GHz, per-call overhead on)",
        ["batch", "Mpps", "relative"],
        rows,
    )

    # One-by-one processing loses roughly a third of the throughput.
    assert rates[1] < 0.75 * best
    # Batching converges: 32 is within a few percent of 128.
    assert rates[32] > 0.95 * rates[128]
    # Monotone improvement with batch size.
    series = [rates[b] for b in BATCH_SIZES]
    assert all(b >= a * 0.99 for a, b in zip(series, series[1:]))


def test_ablation_default_model_batch_insensitive(benchmark):
    """Control: with the calibrated default costs (call overhead already
    amortized into tx_base) the batch size barely matters, confirming the
    ablation isolates the per-call term."""
    def experiment():
        def run_default(batch_size):
            env = MoonGenEnv(seed=14, core_freq_hz=1.2e9)
            tx = env.config_device(0, tx_queues=1)
            rx = env.config_device(1, rx_queues=1)
            env.connect(tx, rx)

            def slave(env, queue):
                mem = env.create_mempool(
                    fill=lambda b: b.udp_packet.fill(pkt_length=60))
                bufs = mem.buf_array(batch_size)
                while env.running():
                    bufs.alloc(60)
                    bufs.charge_random_fields(8)
                    yield queue.send(bufs)

            env.launch(slave, env, tx.get_tx_queue(0))
            env.wait_for_slaves(duration_ns=DURATION_NS)
            return tx.tx_packets / (env.now_ns / 1e9)

        return run_default(1), run_default(63)

    one, many = run_once(benchmark, experiment)
    print_table(
        "control: default cost model",
        ["batch", "Mpps"],
        [[1, f"{to_mpps(one):.2f}"], [63, f"{to_mpps(many):.2f}"]],
    )
    assert one == pytest.approx(many, rel=0.05)
