"""Section 6.2/6.3: clock synchronisation accuracy and clock drift.

* the 7-read median synchronisation achieves ±1 clock cycle (6.4 ns at
  10 GbE), 19.2 ns worst case across two synchronized ports;
* ~5 % of reads are outliers; the median filters them;
* the worst observed drift is 35 µs/s; resynchronising before each probe
  reduces it to a 0.0035 % relative error.
"""

import random
import statistics

import pytest

from conftest import print_table, run_once
from repro.core.timestamping import (
    clock_difference_ns,
    measure_drift,
    sync_clocks,
)
from repro.nicsim.clock import NicClock
from repro.nicsim.eventloop import EventLoop

TRIALS = 300


def test_sec62_sync_accuracy(benchmark):
    def experiment():
        loop = EventLoop()
        errors = []
        rng = random.Random(0)
        for trial in range(TRIALS):
            a = NicClock(loop, tick_ns=6.4, offset_ns=rng.uniform(-1e6, 1e6))
            b = NicClock(loop, tick_ns=6.4)
            sync_clocks(a, b, random.Random(trial))
            errors.append(abs(a.raw_time_ns() - b.raw_time_ns()))
        return errors

    errors = run_once(benchmark, experiment)
    worst = max(errors)
    print_table(
        "Section 6.2: clock sync residual error",
        ["metric", "paper", "measured"],
        [
            ["worst case", "±1 cycle (6.4 ns)", f"{worst:.2f} ns"],
            ["mean", "-", f"{statistics.mean(errors):.2f} ns"],
        ],
    )
    assert worst <= 6.4 + 1e-6


def test_sec62_outlier_rate(benchmark):
    """About 5 % of single difference measurements are outliers."""
    def experiment():
        loop = EventLoop()
        a = NicClock(loop, tick_ns=6.4, offset_ns=1000.0)
        b = NicClock(loop, tick_ns=6.4)
        rng = random.Random(1)
        outliers = 0
        for i in range(2000):
            diff = clock_difference_ns(a, b, rng, reads=1,
                                       at_ps=loop.now_ps + i * 1000)
            if abs(diff - 1000.0) > 64.0:
                outliers += 1
        return outliers / 2000

    rate = run_once(benchmark, experiment)
    print_table(
        "single-read outlier rate",
        ["paper", "measured"],
        [["~5 %", f"{rate * 100:.1f} %"]],
    )
    # Each measurement does two read pairs; either being an outlier spoils
    # it, so the per-measurement rate is roughly doubled.
    assert rate == pytest.approx(0.10, abs=0.04)


def test_sec62_median_of_7_robust(benchmark):
    """7 reads give >99.999 % probability of >=3 clean measurements; the
    median sync almost never lands on an outlier."""
    def experiment():
        loop = EventLoop()
        failures = 0
        for trial in range(TRIALS):
            a = NicClock(loop, tick_ns=6.4, offset_ns=777.0)
            b = NicClock(loop, tick_ns=6.4)
            sync_clocks(a, b, random.Random(trial + 5000))
            if abs(a.raw_time_ns() - b.raw_time_ns()) > 19.2:
                failures += 1
        return failures

    failures = run_once(benchmark, experiment)
    print_table(
        "gross sync failures over 300 trials",
        ["paper", "measured"],
        [["<0.001 %", f"{failures}"]],
    )
    assert failures == 0


def test_sec63_drift_measurement(benchmark):
    """drift.lua: measure inter-clock drift in µs/s."""
    def experiment():
        loop = EventLoop()
        rows = []
        for drift_ppm in (0.0, 5.0, 35.0):
            a = NicClock(loop, tick_ns=6.4, drift_ppm=drift_ppm)
            b = NicClock(loop, tick_ns=6.4)
            measured = measure_drift(a, b, random.Random(9))
            rows.append((drift_ppm, measured))
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Section 6.3: clock drift (worst case in the paper: 35 µs/s)",
        ["configured [µs/s]", "measured [µs/s]"],
        [[f"{cfg}", f"{meas:.2f}"] for cfg, meas in rows],
    )
    for configured, measured in rows:
        assert measured == pytest.approx(configured, abs=0.5)


def test_sec63_resync_relative_error(benchmark):
    """35 µs/s drift + resync before each probe = 0.0035 % relative error.

    A probe is in flight for ~100 µs at most between resync and timestamp;
    the drift accumulated over that window is 35e-6 * t."""
    def experiment():
        drift_rate = 35e-6  # 35 µs per second
        flight_time_ns = 100_000.0  # time between resync and measurement
        accumulated = drift_rate * flight_time_ns
        return accumulated / flight_time_ns

    rel_error = run_once(benchmark, experiment)
    print_table(
        "drift error with per-packet resync",
        ["paper", "computed"],
        [["0.0035 %", f"{rel_error * 100:.4f} %"]],
    )
    assert rel_error == pytest.approx(35e-6, rel=1e-9)
