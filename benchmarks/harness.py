#!/usr/bin/env python
"""Perf-regression harness CLI: run the pinned micro-suite, record the
trajectory in ``BENCH_core.json``.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/harness.py --smoke
    PYTHONPATH=src python benchmarks/harness.py --rebaseline
    PYTHONPATH=src python benchmarks/harness.py --scenario bench_table1

Equivalent to ``moongen-repro bench``; the implementation lives in
``repro.perf`` (see docs/PERFORMANCE.md for how to read the output).
Exits 0 even on perf regressions — regressions are warnings (the CI
bench-smoke job surfaces them as annotations), not failures, because
wall-clock numbers are machine-dependent.
"""

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import perf  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="short runs (CI-sized workloads)")
    parser.add_argument("--batch", action="store_true",
                        help="run under the vectorized batch tier; records "
                             "the '-batch' modes plus delta_vs_event (the "
                             "tier's speedup over the event baseline)")
    parser.add_argument("--scheduler", choices=perf.SCHEDULERS,
                        default="heap",
                        help="event-loop scheduler backend; 'calendar' runs "
                             "land in the '-calendar' modes plus "
                             "delta_vs_heap (the calendar queue's speedup "
                             "over the heap baseline)")
    parser.add_argument("--scenario", action="append", dest="scenarios",
                        choices=sorted(perf.SCENARIOS),
                        help="run only this scenario (repeatable)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="rounds per scenario; fastest wall time wins")
    parser.add_argument("--out", default=perf.BENCH_FILE,
                        help=f"trajectory file (default {perf.BENCH_FILE})")
    parser.add_argument("--rebaseline", action="store_true",
                        help="replace the stored baseline with this run")
    parser.add_argument("--warn-threshold", type=float, default=0.85,
                        help="warn when events/sec falls below this ratio "
                             "of baseline (default 0.85)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="shard scenario rounds across this many worker "
                             "processes (default 1: serial; fingerprints "
                             "are identical either way)")
    args = parser.parse_args(argv)

    start = time.perf_counter()
    results = perf.run_suite(args.scenarios, smoke=args.smoke,
                             repeats=args.repeats, jobs=args.jobs,
                             batch=args.batch, scheduler=args.scheduler)
    sweep_wall_s = time.perf_counter() - start
    doc = perf.write_bench(args.out, results, rebaseline=args.rebaseline,
                           smoke=args.smoke, jobs=args.jobs,
                           sweep_wall_s=sweep_wall_s, batch=args.batch,
                           scheduler=args.scheduler)
    print(perf.format_report(doc))
    print(f"\nsuite wall time {sweep_wall_s:.2f} s with jobs={args.jobs}")
    print(f"wrote {args.out}")
    for warning in perf.check_regression(doc, threshold=args.warn_threshold):
        print(f"::warning::{warning}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
