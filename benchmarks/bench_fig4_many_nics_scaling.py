"""Figure 4: multi-core scaling across many 10 GbE NICs (Section 5.5).

Twelve ports (six simulated dual-port X540 cards) driven by 1-12 cores at
2 GHz, generating UDP packets from varying IP addresses.  Each core
saturates its port, so the aggregate reaches 178.5 Mpps — line rate at
120 Gbit/s — with perfectly linear scaling, as the paper reports.
"""

import pytest

from conftest import print_table, run_once, sweep_jobs
from repro import MoonGenEnv
from repro.parallel import run_parallel
from repro.units import LINE_RATE_10G_64B_PPS, to_mpps, wire_rate_gbps

FREQ_HZ = 2.0e9
DURATION_NS = 120_000
MAX_CORES = 12


def slave(env, queue):
    mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(pkt_length=60))
    bufs = mem.buf_array()
    while env.running():
        bufs.alloc(60)
        bufs.charge_random_fields(1)
        yield queue.send(bufs)


def run_cores(n_cores: int) -> float:
    env = MoonGenEnv(seed=4, core_freq_hz=FREQ_HZ)
    ports = []
    for i in range(n_cores):
        tx = env.config_device(2 * i, tx_queues=1)
        rx = env.config_device(2 * i + 1, rx_queues=1)
        env.connect(tx, rx)
        ports.append(tx)
        env.launch(slave, env, tx.get_tx_queue(0))
    env.wait_for_slaves(duration_ns=DURATION_NS)
    return sum(p.tx_packets for p in ports) / (env.now_ns / 1e9)


def _rate_point(n_cores, _seed):
    """Sweep point for the parallel engine (seed pinned inside run_cores)."""
    return run_cores(n_cores)


def test_fig4_many_nics(benchmark):
    def experiment():
        cores = [1, 2, 4, 8, 12]
        return dict(zip(cores, run_parallel(cores, _rate_point,
                                            jobs=sweep_jobs())))

    rates = run_once(benchmark, experiment)
    rows = [
        [cores, f"{to_mpps(pps):.2f}", f"{wire_rate_gbps(pps, 64):.1f}"]
        for cores, pps in rates.items()
    ]
    print_table(
        "Figure 4: aggregate rate vs cores (2 GHz, one 10 GbE port per core)",
        ["cores", "Mpps", "wire Gbit/s"],
        rows,
    )

    # Each core drives its port at line rate: perfectly linear scaling.
    single = rates[1]
    assert single == pytest.approx(LINE_RATE_10G_64B_PPS, rel=0.02)
    for cores, pps in rates.items():
        assert pps == pytest.approx(cores * single, rel=0.02)

    # The paper's headline: 178.5 Mpps at 120 Gbit/s with 12 cores.
    assert to_mpps(rates[12]) == pytest.approx(178.5, rel=0.02)
    assert wire_rate_gbps(rates[12], 64) == pytest.approx(120.0, rel=0.02)


def test_fig4_reduced_clock_still_line_rate(benchmark):
    """Section 5.5: the clock can drop to 1.5 GHz for this workload."""
    def experiment():
        env = MoonGenEnv(seed=5, core_freq_hz=1.5e9)
        tx = env.config_device(0, tx_queues=1)
        rx = env.config_device(1, rx_queues=1)
        env.connect(tx, rx)
        env.launch(slave, env, tx.get_tx_queue(0))
        # Long window: the first few µs are ring-fill ramp-up.
        env.wait_for_slaves(duration_ns=1_000_000)
        return tx.tx_packets / (env.now_ns / 1e9)

    pps = run_once(benchmark, experiment)
    print_table(
        "line rate at 1.5 GHz",
        ["paper", "measured"],
        [["14.88 Mpps", f"{to_mpps(pps):.2f} Mpps"]],
    )
    assert pps == pytest.approx(LINE_RATE_10G_64B_PPS, rel=0.02)
