"""Figure 7: interrupt rate of a Linux forwarder under micro-bursts.

Open vSwitch (simulated) forwards traffic from MoonGen (CBR via hardware
rate control) and zsend (micro-bursty software pacing) at increasing
offered loads.  MoonGen's evenly spaced packets sustain a high interrupt
rate (up to the moderation cap ~1.5e5 Hz); zsend's bursts trip the
adaptive moderation early and collapse the rate — the paper's
"measurable impact of bad rate control on the tested system".
"""

import pytest

from conftest import print_table, run_once
from repro import units
from repro.dut import simulate_forwarder
from repro.generators import MoonGenHwRateModel, ZsendModel

LOADS_MPPS = (0.1, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5)
WINDOW_S = 0.04


def interrupt_rate(model, pps: float) -> float:
    n = max(int(pps * WINDOW_S), 2000)
    arrivals = model.departures_ns(pps, n, seed=11)
    return simulate_forwarder(arrivals).interrupt_rate_hz


def test_fig7_interrupt_rates(benchmark):
    moongen = MoonGenHwRateModel(speed_bps=units.SPEED_10G)
    zsend = ZsendModel(speed_bps=units.SPEED_10G)

    def experiment():
        return {
            pps: (interrupt_rate(moongen, pps * 1e6),
                  interrupt_rate(zsend, pps * 1e6))
            for pps in LOADS_MPPS
        }

    results = run_once(benchmark, experiment)
    rows = [
        [f"{pps:.2f}", f"{m / 1e3:.1f}", f"{z / 1e3:.1f}"]
        for pps, (m, z) in results.items()
    ]
    print_table(
        "Figure 7: interrupt rate [kHz] vs offered load [Mpps]",
        ["load", "MoonGen (CBR)", "zsend (bursty)"],
        rows,
    )

    for pps, (m, z) in results.items():
        # The paper's core finding: bursts produce a far lower rate.
        assert z < m / 2, f"zsend should moderate early at {pps} Mpps"

    # MoonGen's rate climbs to the moderation cap (~1.5e5 Hz) and stays high.
    m_rates = [m for m, _ in results.values()]
    assert max(m_rates) == pytest.approx(150e3, rel=0.1)
    # zsend never gets anywhere near the cap.
    z_rates = [z for _, z in results.values()]
    assert max(z_rates) < 60e3


def test_fig7_rate_rises_then_caps(benchmark):
    """MoonGen's interrupt rate is arrival-limited at low load and
    moderation-capped afterwards."""
    moongen = MoonGenHwRateModel(speed_bps=units.SPEED_10G)

    def experiment():
        return {
            pps: interrupt_rate(moongen, pps * 1e6)
            for pps in (0.05, 0.1, 0.5, 1.0)
        }

    rates = run_once(benchmark, experiment)
    print_table(
        "MoonGen interrupt rate shape",
        ["load Mpps", "kHz"],
        [[pps, f"{r / 1e3:.1f}"] for pps, r in rates.items()],
    )
    assert rates[0.05] == pytest.approx(50e3, rel=0.1)  # one per packet
    assert rates[0.1] == pytest.approx(100e3, rel=0.1)
    assert rates[0.5] == pytest.approx(150e3, rel=0.1)  # capped
