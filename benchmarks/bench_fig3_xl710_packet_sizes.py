"""Figure 3: throughput with an XL710 40 GbE NIC vs packet size and cores.

Reproduces Section 5.4's findings on the simulated XL710:

* packet sizes of 128 B or less cannot reach 40 GbE line rate,
* using more than two cores does not help (a hardware bottleneck),
* larger packets reach line rate.
"""

import pytest

from conftest import print_table, run_once
from repro import MoonGenEnv, units
from repro.nicsim.nic import CHIP_XL710, NicCard

SIZES = (64, 96, 128, 160, 192, 224, 256)
CORES = (1, 2, 3)
FREQ_HZ = 2.4e9
DURATION_NS = 200_000


def slave(env, queue, size):
    mem = env.create_mempool(fill=lambda b: b.eth_packet.fill(eth_type=0x0800))
    bufs = mem.buf_array()
    while env.running():
        bufs.alloc(size - 4)  # buffer excludes FCS
        bufs.charge_modify(1)
        yield queue.send(bufs)


def run_config(size: int, cores: int) -> float:
    env = MoonGenEnv(seed=5, core_freq_hz=FREQ_HZ)
    card = NicCard(CHIP_XL710)
    tx = env.config_device(0, tx_queues=cores, chip=CHIP_XL710, card=card)
    rx = env.config_device(1, rx_queues=1, chip=CHIP_XL710)
    env.connect(tx, rx)
    for core in range(cores):
        env.launch(slave, env, tx.get_tx_queue(core), size)
    env.wait_for_slaves(duration_ns=DURATION_NS)
    pps = tx.tx_packets / (env.now_ns / 1e9)
    return units.throughput_gbps(pps, size)


def test_fig3_xl710_throughput(benchmark):
    def experiment():
        return {
            (size, cores): run_config(size, cores)
            for size in SIZES for cores in CORES
        }

    results = run_once(benchmark, experiment)
    rows = []
    for size in SIZES:
        line = units.throughput_gbps(
            units.line_rate_pps(size, units.SPEED_40G), size
        )
        rows.append(
            [size] + [f"{results[(size, c)]:.1f}" for c in CORES]
            + [f"{line:.1f}"]
        )
    print_table(
        "Figure 3: XL710 throughput [Gbit/s]",
        ["size [B]", "1 core", "2 cores", "3 cores", "line rate"],
        rows,
    )

    # <=128 B cannot reach line rate with any number of cores.
    for size in (64, 96, 128):
        line = units.throughput_gbps(
            units.line_rate_pps(size, units.SPEED_40G), size
        )
        assert results[(size, 3)] < 0.99 * line, f"{size} B should be capped"

    # A third core adds nothing: the bottleneck is the hardware.
    for size in SIZES:
        assert results[(size, 3)] == pytest.approx(
            results[(size, 2)], rel=0.05
        ), f"3rd core should not help at {size} B"

    # Large packets reach line rate.
    for size in (192, 224, 256):
        line = units.throughput_gbps(
            units.line_rate_pps(size, units.SPEED_40G), size
        )
        assert results[(size, 2)] == pytest.approx(line, rel=0.05)

    # Throughput grows with packet size (the figure's overall shape).
    for cores in CORES:
        series = [results[(size, cores)] for size in SIZES]
        assert all(b >= a * 0.98 for a, b in zip(series, series[1:]))


def test_fig3_dual_port_aggregate(benchmark):
    """Section 5.4: dual-port XL710 peaks at ~50 Gbit/s aggregate with
    large frames and ~42 Mpps with small ones."""
    def experiment():
        env = MoonGenEnv(seed=6, core_freq_hz=FREQ_HZ)
        card = NicCard(CHIP_XL710)
        ports = [env.config_device(i, tx_queues=2, chip=CHIP_XL710, card=card)
                 for i in (0, 1)]
        sinks = [env.config_device(i + 2, rx_queues=1, chip=CHIP_XL710)
                 for i in (0, 1)]
        for p, s in zip(ports, sinks):
            env.connect(p, s)
        for p in ports:
            for q in range(2):
                env.launch(slave, env, p.get_tx_queue(q), 1518)
        env.wait_for_slaves(duration_ns=DURATION_NS)
        pps = sum(p.tx_packets for p in ports) / (env.now_ns / 1e9)
        return units.throughput_gbps(pps, 1518)

    gbps = run_once(benchmark, experiment)
    print_table(
        "XL710 dual-port aggregate (1518 B)",
        ["paper", "measured"],
        [["50 Gbit/s", f"{gbps:.1f} Gbit/s"]],
    )
    assert gbps == pytest.approx(50.0, rel=0.06)
    assert gbps < 80.0  # far below 2x40G line rate
