"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` works through this file offline;
all project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
