"""Applications beyond packet generation.

Section 10: "MoonGen's flexible architecture allows for further
applications like analyzing traffic in line rate on 10 GbE networks or
doing Internet-wide scans from 10 GbE uplinks."  These modules build both
on the public API:

* :mod:`repro.apps.scanner` — a SYN scanner sweeping an address range at a
  controlled rate, with a simulated responder population;
* :mod:`repro.apps.analyzer` — a multi-queue line-rate flow analyzer using
  RSS to spread the load over cores.
"""

from repro.apps.analyzer import FlowAnalyzer, FlowStats
from repro.apps.scanner import ResponderPopulation, SynScanner

__all__ = [
    "FlowAnalyzer",
    "FlowStats",
    "ResponderPopulation",
    "SynScanner",
]
