"""Line-rate traffic analysis (Section 10's second future application).

A :class:`FlowAnalyzer` spreads incoming traffic over several receive
queues with RSS and runs one counting task per queue/core — the same
multi-queue architecture the generator side uses (Section 3.3).  Each task
maintains a per-flow table; results merge at the end.  Because RSS is
flow-sticky, no flow is split across tables and merging is trivial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.filters import install_rss
from repro.core.memory import MemPool
from repro.errors import ConfigurationError

#: A flow key: (src ip, dst ip, src port, dst port).
FlowKey = Tuple[int, int, int, int]


@dataclass
class FlowStats:
    """Per-flow counters."""

    packets: int = 0
    bytes: int = 0

    def account(self, size: int) -> None:
        self.packets += 1
        self.bytes += size


class FlowAnalyzer:
    """Multi-queue flow accounting over a device's receive path."""

    def __init__(self, env, device) -> None:
        n_queues = len(device.port.rx_queues)
        if n_queues < 1:
            raise ConfigurationError("device has no rx queues")
        self.env = env
        self.device = device
        self.rss = install_rss(device)
        self.tables: List[Dict[FlowKey, FlowStats]] = [
            {} for _ in range(n_queues)
        ]
        self.non_ip = 0
        self._pool = MemPool(n_buffers=4096)

    # -- per-queue counting task ---------------------------------------------

    def queue_task(self, queue_index: int):
        """Slave task: count flows arriving on one rx queue."""
        env = self.env
        queue = self.device.get_rx_queue(queue_index)
        table = self.tables[queue_index]
        bufs = self._pool.buf_array(64)
        while env.running():
            n = yield queue.recv(bufs, timeout_ns=1_000_000)
            for i in range(n):
                pkt = bufs[i].pkt
                kind = pkt.classify()
                if kind not in ("udp4", "tcp4"):
                    self.non_ip += 1
                    continue
                view = pkt.udp_packet if kind == "udp4" else pkt.tcp_packet
                l4 = view.udp if kind == "udp4" else view.tcp
                key = (
                    int(view.ip.src), int(view.ip.dst),
                    l4.src_port, l4.dst_port,
                )
                stats = table.get(key)
                if stats is None:
                    stats = FlowStats()
                    table[key] = stats
                stats.account(pkt.size + 4)
            bufs.free_all()

    def launch_all(self) -> None:
        """Start one counting task per configured rx queue."""
        for index in range(len(self.tables)):
            self.env.launch(self.queue_task, index,
                            name=f"analyzer-q{index}")

    # -- results ------------------------------------------------------------------

    def merged(self) -> Dict[FlowKey, FlowStats]:
        """All per-queue tables merged (RSS keeps flows disjoint)."""
        out: Dict[FlowKey, FlowStats] = {}
        for table in self.tables:
            for key, stats in table.items():
                if key in out:
                    out[key].packets += stats.packets
                    out[key].bytes += stats.bytes
                else:
                    out[key] = FlowStats(stats.packets, stats.bytes)
        return out

    def top_flows(self, n: int = 10) -> List[Tuple[FlowKey, FlowStats]]:
        """The n heaviest flows by packet count."""
        return sorted(
            self.merged().items(), key=lambda kv: -kv[1].packets
        )[:n]

    @property
    def total_packets(self) -> int:
        return sum(s.packets for t in self.tables for s in t.values())

    def queue_loads(self) -> List[int]:
        """Packets per queue: how evenly RSS spread the work."""
        return [sum(s.packets for s in table.values())
                for table in self.tables]
