"""SYN scanning: the Internet-wide-scan application of Section 10.

The scanner sweeps an IPv4 range with TCP SYN probes at a configured rate
(wrapping-counter address generation — the cheap strategy of Table 2),
while a collector task matches SYN-ACKs.  A :class:`ResponderPopulation`
stands in for the scanned network: a deterministic subset of addresses
answers with SYN-ACK after a configurable latency, the rest stay silent
(or answer RST).
"""

from __future__ import annotations

import random
from typing import Optional, Set

from repro.core.memory import MemPool
from repro.errors import ConfigurationError
from repro.nicsim.eventloop import EventLoop
from repro.nicsim.link import Wire
from repro.nicsim.nic import SimFrame
from repro.packet import PacketData
from repro.packet.address import Ip4Address, MacAddress
from repro.packet.ethernet import EtherType
from repro.packet.ip4 import IpProtocol
from repro.packet.tcp import TcpFlags

PROBE_SIZE = 60


class SynScanner:
    """Sweeps ``base .. base+count-1`` with SYN probes and collects answers."""

    def __init__(
        self,
        env,
        device,
        base_address: str,
        count: int,
        source_ip: str = "10.99.0.1",
        target_port: int = 80,
        probe_rate_pps: float = 1e6,
        tx_queue_index: int = 0,
        rx_queue_index: int = 0,
    ) -> None:
        if count <= 0:
            raise ConfigurationError(f"scan range must be positive: {count}")
        self.env = env
        self.device = device
        self.base = Ip4Address(base_address)
        self.count = count
        self.source_ip = Ip4Address(source_ip)
        self.target_port = target_port
        self.probe_rate_pps = probe_rate_pps
        self.tx_queue = device.get_tx_queue(tx_queue_index)
        self.rx_queue = device.get_rx_queue(rx_queue_index)
        self.probes_sent = 0
        self.responders: Set[Ip4Address] = set()
        self.rst_seen = 0
        self._pool = MemPool(n_buffers=2048)

    # -- transmit side ---------------------------------------------------------

    def scan_task(self, batch: int = 32):
        """Slave task: send one SYN per target address at the probe rate."""
        env = self.env
        self.tx_queue.set_rate_pps(
            min(self.probe_rate_pps, 8e6), PROBE_SIZE + 4)
        bufs = self._pool.buf_array(batch)
        next_addr = 0
        while next_addr < self.count and env.running():
            n = min(batch, self.count - next_addr)
            if n < batch:
                bufs = self._pool.buf_array(n)
            bufs.alloc(PROBE_SIZE)
            for buf in bufs:
                p = buf.pkt.tcp_packet
                p.fill(
                    pkt_length=PROBE_SIZE,
                    eth_src=self.device.mac,
                    eth_dst="02:ff:00:00:00:01",  # the gateway/population
                    ip_src=self.source_ip,
                    ip_dst=self.base + next_addr,
                    tcp_src=40_000 + (next_addr % 20_000),
                    tcp_dst=self.target_port,
                    tcp_seq=next_addr,
                    tcp_flags=TcpFlags.SYN,
                )
                next_addr += 1
            bufs.charge_counter_fields(2)  # address + port counters
            bufs.offload_tcp_checksums()
            sent = yield self.tx_queue.send(bufs)
            self.probes_sent += sent

    # -- receive side -------------------------------------------------------------

    def collect_task(self):
        """Slave task: match SYN-ACK / RST answers to the sweep."""
        env = self.env
        bufs = self._pool.buf_array(64)
        while env.running():
            n = yield self.rx_queue.recv(bufs, timeout_ns=1_000_000)
            for i in range(n):
                pkt = bufs[i].pkt
                if pkt.classify() != "tcp4":
                    continue
                tcp_pkt = pkt.tcp_packet
                flags = tcp_pkt.tcp.flags
                if flags & TcpFlags.SYN and flags & TcpFlags.ACK:
                    self.responders.add(tcp_pkt.ip.src)
                elif flags & TcpFlags.RST:
                    self.rst_seen += 1
            bufs.free_all()

    @property
    def open_hosts(self) -> int:
        return len(self.responders)


class ResponderPopulation:
    """A simulated scanned network: some addresses answer SYN-ACK.

    Acts as a wire sink; attach its output wire back to the scanner.
    ``response_probability`` controls the responder density; selection is
    deterministic per address for a given seed, so repeated scans agree.
    """

    def __init__(
        self,
        loop: EventLoop,
        response_probability: float = 0.1,
        rst_probability: float = 0.2,
        latency_ns: float = 50_000.0,
        seed: int = 0,
    ) -> None:
        if not 0 <= response_probability <= 1:
            raise ConfigurationError("response probability must be in [0,1]")
        self.loop = loop
        self.response_probability = response_probability
        self.rst_probability = rst_probability
        self.latency_ns = latency_ns
        self.seed = seed
        self.output: Optional[Wire] = None
        self.probes_seen = 0
        self.mac = MacAddress("02:ff:00:00:00:01")

    def connect_output(self, wire: Wire) -> None:
        self.output = wire

    def _address_responds(self, addr: int) -> Optional[str]:
        """Deterministic per-address behaviour: 'synack', 'rst', or None."""
        rng = random.Random((addr << 16) ^ self.seed)
        roll = rng.random()
        if roll < self.response_probability:
            return "synack"
        if roll < self.response_probability + self.rst_probability:
            return "rst"
        return None

    def ingress(self, frame: SimFrame, arrival_ps: int) -> None:
        if not frame.fcs_ok:
            return
        data = frame.data
        if len(data) < 54 or ((data[12] << 8) | data[13]) != EtherType.IP4:
            return
        if data[23] != IpProtocol.TCP:
            return
        probe = PacketData.wrap(bytearray(data)).tcp_packet
        if not probe.tcp.has_flag(TcpFlags.SYN):
            return
        self.probes_seen += 1
        behaviour = self._address_responds(int(probe.ip.dst))
        if behaviour is None or self.output is None:
            return
        reply = PacketData(PROBE_SIZE)
        rp = reply.tcp_packet
        rp.fill(
            pkt_length=PROBE_SIZE,
            eth_src=self.mac,
            eth_dst=probe.eth.src,
            ip_src=probe.ip.dst,
            ip_dst=probe.ip.src,
            tcp_src=probe.tcp.dst_port,
            tcp_dst=probe.tcp.src_port,
            tcp_ack=probe.tcp.seq_number + 1,
            tcp_flags=(TcpFlags.SYN | TcpFlags.ACK
                       if behaviour == "synack" else TcpFlags.RST),
        )
        rp.calculate_ip_checksum()
        rp.calculate_tcp_checksum()
        out_frame = SimFrame(reply.bytes())

        def respond(out_frame=out_frame) -> None:
            self.output.transmit(out_frame, out_frame.size)

        self.loop.schedule(round(self.latency_ns * 1000), respond)

    def expected_responders(self, base: str, count: int) -> int:
        """Ground truth for a scan range (tests compare against this)."""
        base_int = int(Ip4Address(base))
        return sum(
            1 for i in range(count)
            if self._address_responds(base_int + i) == "synack"
        )
