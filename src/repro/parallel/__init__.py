"""Parallel experiment engine (``repro.parallel``).

Shards independent ``MoonGenEnv`` simulations — bench sweep points,
RFC 2544 searches, repeat rounds — across host cores with a
deterministic merge: results are bit-identical to serial execution
regardless of worker count or completion order.

Public surface:

* :func:`run_parallel` — run ``fn(point, seed)`` over points, results in
  submission order; per-point timeouts, crash retry, serial fallback.
* :class:`Sweep` / :class:`SweepResult` — declarative named sweeps.
* :func:`seed_for` / :func:`point_key` — pure per-point seed derivation.
* :func:`default_jobs` — usable host core count.

Named, CLI-runnable sweeps live in :mod:`repro.parallel.sweeps`.
See docs/PERFORMANCE.md ("The parallel experiment engine").
"""

from repro.parallel.engine import (
    Sweep,
    SweepResult,
    default_jobs,
    run_parallel,
)
from repro.parallel.seeding import point_key, seed_for

__all__ = [
    "Sweep",
    "SweepResult",
    "default_jobs",
    "point_key",
    "run_parallel",
    "seed_for",
]
