"""Process-pool experiment engine: shard independent simulations.

The paper's headline scaling result is multi-core (one core saturates
10 GbE, twelve reach 178.5 Mpps), and our benches mirror that shape: a
sweep is *many independent simulations* — one ``MoonGenEnv`` per point —
whose results are merged into one table.  ``run_parallel`` fans those
points out across host cores the way MoonGen fans userscript slaves out
across NIC queues, with one hard guarantee:

**bit-identical results regardless of worker count or completion order.**

Three design rules enforce it:

* Workers receive *picklable per-point specs*, never live simulation
  state.  The experiment function builds its own ``MoonGenEnv`` from the
  spec, so no RNG stream or event queue is ever shared between points.
* Every point's seed is ``seed_for(root_seed, point)`` — a pure
  function of the sweep and the point value (`repro.parallel.seeding`),
  independent of which worker runs it or when.
* Results are returned in submission order, whatever order workers
  finish in.

Robustness: a per-point ``timeout_s``, detection of crashed workers
(a worker that dies without reporting), and a bounded per-point retry
budget for both.  Degradation is graceful: ``jobs=1``, a single point,
an unpicklable payload, or a platform without ``fork`` all fall back to
plain in-process serial execution with identical results.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import pickle
import time
import traceback
import warnings
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import (
    PointFailedError,
    PointTimeoutError,
    WorkerCrashError,
)
from repro.parallel.seeding import point_key, seed_for

#: An experiment function: ``fn(point, seed) -> result``.  It must be a
#: module-level callable (picklable by reference) and its result must be
#: picklable; the point spec carries all configuration.
ExperimentFn = Callable[[Any, int], Any]

#: Grace period for a terminated worker to exit before SIGKILL.
_TERM_GRACE_S = 2.0


def default_jobs() -> int:
    """Worker count when ``jobs`` is not given: the usable host cores."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    """The ``fork`` multiprocessing context, or ``None`` where absent.

    Workers are forked, not spawned: a forked child inherits the already
    imported simulator modules, so a sweep point costs one ``fork()``
    rather than a fresh interpreter boot per point.  Platforms without
    ``fork`` (Windows; macOS restricts it) degrade to serial execution.
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        return None
    return multiprocessing.get_context("fork")


def _payload_picklable(fn: ExperimentFn, points: Sequence[Any]) -> bool:
    try:
        pickle.dumps(fn)
        pickle.dumps(list(points))
        return True
    except Exception:
        return False


# ---------------------------------------------------------------------------
# worker side


def _worker_main(conn, fn: ExperimentFn, point: Any, seed: int) -> None:
    """Run one point in a forked child; report via the pipe and exit.

    The protocol is a single ``(status, value, detail)`` message:
    ``("ok", result, None)`` or ``("raised", message, traceback)``.  A
    worker that dies without sending anything (segfault, ``os._exit``,
    OOM-kill) is detected by the parent as EOF on the pipe.
    """
    try:
        try:
            payload = ("ok", fn(point, seed), None)
        except BaseException as exc:  # report, don't die: fn errors are data
            payload = ("raised", f"{type(exc).__name__}: {exc}",
                       traceback.format_exc())
        try:
            conn.send(payload)
        except Exception as exc:
            # The result itself would not pickle; that is an fn bug, not
            # a worker crash — report it as a raised error.
            conn.send(("raised",
                       f"result of {fn.__name__} is not picklable: "
                       f"{type(exc).__name__}: {exc}", None))
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# parent side


@dataclass
class _Running:
    """Bookkeeping for one in-flight worker process."""

    proc: Any
    conn: Any
    index: int
    attempt: int
    deadline: Optional[float]


def _stop_worker(worker: _Running) -> None:
    if worker.proc.is_alive():
        worker.proc.terminate()
        worker.proc.join(_TERM_GRACE_S)
        if worker.proc.is_alive():
            worker.proc.kill()
    worker.proc.join()
    worker.conn.close()


def _run_pool(
    points: List[Any],
    fn: ExperimentFn,
    seeds: List[int],
    jobs: int,
    timeout_s: Optional[float],
    retries: int,
    ctx,
    progress: Optional[Callable[[int, int, Any], None]] = None,
) -> List[Any]:
    n = len(points)
    results: List[Any] = [None] * n
    done = [False] * n
    done_count = 0
    attempts = [0] * n
    pending: deque = deque(range(n))
    running: Dict[Any, _Running] = {}

    def launch(index: int) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, fn, points[index], seeds[index]),
            daemon=True,
        )
        attempts[index] += 1
        proc.start()
        child_conn.close()  # the child holds the only write end: EOF == death
        deadline = (time.monotonic() + timeout_s) if timeout_s else None
        running[parent_conn] = _Running(
            proc, parent_conn, index, attempts[index], deadline)

    def fail_or_retry(worker: _Running, exc: Exception) -> None:
        if worker.attempt <= retries:
            pending.append(worker.index)
        else:
            raise exc

    try:
        while pending or running:
            while pending and len(running) < jobs:
                launch(pending.popleft())
            wait_s = None
            now = time.monotonic()
            deadlines = [w.deadline for w in running.values() if w.deadline]
            if deadlines:
                wait_s = max(0.0, min(deadlines) - now)
            ready = multiprocessing.connection.wait(list(running), wait_s)
            for conn in ready:
                worker = running.pop(conn)
                try:
                    status, value, detail = conn.recv()
                except EOFError:
                    # Died without reporting: a genuine worker crash.
                    _stop_worker(worker)
                    fail_or_retry(worker, WorkerCrashError(
                        f"worker for point {worker.index} "
                        f"(key {point_key(points[worker.index])!r}) "
                        f"died with exit code "
                        f"{worker.proc.exitcode} after "
                        f"{worker.attempt} attempt(s)"))
                    continue
                worker.proc.join()
                conn.close()
                if status == "ok":
                    results[worker.index] = value
                    done[worker.index] = True
                    done_count += 1
                    if progress is not None:
                        progress(done_count, n, value)
                else:
                    raise PointFailedError(
                        f"point {worker.index} ({points[worker.index]!r}) "
                        f"raised {value}"
                        + (f"\n{detail}" if detail else ""))
            now = time.monotonic()
            expired = [w for w in running.values()
                       if w.deadline is not None and now >= w.deadline]
            for worker in expired:
                del running[worker.conn]
                _stop_worker(worker)
                fail_or_retry(worker, PointTimeoutError(
                    f"point {worker.index} "
                    f"(key {point_key(points[worker.index])!r}) "
                    f"exceeded {timeout_s} s on every one of "
                    f"{worker.attempt} attempt(s)"))
    finally:
        for worker in list(running.values()):
            _stop_worker(worker)
        running.clear()
    assert all(done)
    return results


def _run_serial(
    points: List[Any],
    fn: ExperimentFn,
    seeds: List[int],
    progress: Optional[Callable[[int, int, Any], None]] = None,
) -> List[Any]:
    results = []
    for index, (point, seed) in enumerate(zip(points, seeds)):
        try:
            results.append(fn(point, seed))
        except Exception as exc:
            raise PointFailedError(
                f"point {index} ({point!r}) raised "
                f"{type(exc).__name__}: {exc}") from exc
        if progress is not None:
            progress(index + 1, len(points), results[-1])
    return results


def run_parallel(
    points: Sequence[Any],
    fn: ExperimentFn,
    *,
    jobs: Optional[int] = None,
    root_seed: int = 0,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    progress: Optional[Callable[[int, int, Any], None]] = None,
) -> List[Any]:
    """Run ``fn(point, seed)`` for every point; results in point order.

    ``jobs`` is the worker-process count (default: host cores).  The
    per-point ``seed`` is ``seed_for(root_seed, point)``, so the output
    is bit-identical for any ``jobs`` — parallel execution is purely a
    wall-clock optimization.

    ``timeout_s`` bounds each point's wall time per attempt; ``retries``
    is the extra-attempt budget per point after a worker crash or a
    timeout (an exception *raised by fn* is deterministic and fails the
    sweep immediately as :class:`~repro.errors.PointFailedError`).

    ``progress`` (optional) is called in the parent as
    ``progress(done_count, total, result)`` after every completed point,
    in *completion* order — purely observational (the ``--live`` CLI
    line); it must not mutate results.

    Falls back to in-process serial execution — same results, same
    exceptions — when ``jobs=1``, there are fewer than two points, the
    payload does not pickle, or the platform lacks ``fork``.
    """
    points = list(points)
    seeds = [seed_for(root_seed, p) for p in points]
    if jobs is None:
        jobs = default_jobs()
    jobs = max(1, int(jobs))
    if jobs == 1 or len(points) <= 1:
        return _run_serial(points, fn, seeds, progress)
    ctx = _fork_context()
    if ctx is None:
        warnings.warn(
            "repro.parallel: no 'fork' start method on this platform; "
            "running the sweep serially", RuntimeWarning, stacklevel=2)
        return _run_serial(points, fn, seeds, progress)
    if not _payload_picklable(fn, points):
        warnings.warn(
            "repro.parallel: experiment fn or points are not picklable; "
            "running the sweep serially", RuntimeWarning, stacklevel=2)
        return _run_serial(points, fn, seeds, progress)
    return _run_pool(points, fn, seeds, min(jobs, len(points)),
                     timeout_s, retries, ctx, progress)


# ---------------------------------------------------------------------------
# sweeps


@dataclass
class SweepResult:
    """Outcome of :meth:`Sweep.run`: points with values, in point order."""

    name: str
    points: List[Any]
    values: List[Any]
    wall_s: float
    jobs: int

    def as_dict(self) -> Dict[Any, Any]:
        """``{point: value}`` (points must be hashable)."""
        return dict(zip(self.points, self.values))

    def __iter__(self):
        return iter(zip(self.points, self.values))

    def __len__(self) -> int:
        return len(self.points)


@dataclass
class Sweep:
    """A named parameter sweep: points plus the experiment function.

    Thin declarative wrapper over :func:`run_parallel` so benches and the
    CLI share one spelling::

        sweep = Sweep("fig2-cores", points=range(1, 9), fn=_rate_for_cores)
        result = sweep.run(jobs=4)
        rates = result.as_dict()
    """

    name: str
    points: Sequence[Any]
    fn: ExperimentFn
    root_seed: int = 0
    timeout_s: Optional[float] = None
    retries: int = 1

    def run(self, jobs: Optional[int] = None,
            progress: Optional[Callable[[int, int, Any], None]] = None,
            ) -> SweepResult:
        """Execute the sweep; see :func:`run_parallel` for semantics."""
        resolved = default_jobs() if jobs is None else max(1, int(jobs))
        start = time.perf_counter()
        values = run_parallel(
            self.points, self.fn, jobs=resolved, root_seed=self.root_seed,
            timeout_s=self.timeout_s, retries=self.retries,
            progress=progress)
        wall = time.perf_counter() - start
        return SweepResult(self.name, list(self.points), values,
                           wall_s=wall, jobs=resolved)
