"""Process-pool experiment engine: shard independent simulations.

The paper's headline scaling result is multi-core (one core saturates
10 GbE, twelve reach 178.5 Mpps), and our benches mirror that shape: a
sweep is *many independent simulations* — one ``MoonGenEnv`` per point —
whose results are merged into one table.  ``run_parallel`` fans those
points out across host cores the way MoonGen fans userscript slaves out
across NIC queues, with one hard guarantee:

**bit-identical results regardless of worker count or completion order.**

Three design rules enforce it:

* Workers receive *picklable per-point specs*, never live simulation
  state.  The experiment function builds its own ``MoonGenEnv`` from the
  spec, so no RNG stream or event queue is ever shared between points.
* Every point's seed is ``seed_for(root_seed, point)`` — a pure
  function of the sweep and the point value (`repro.parallel.seeding`),
  independent of which worker runs it or when.
* Results are returned in submission order, whatever order workers
  finish in.

Robustness: a per-point ``timeout_s``, detection of crashed workers
(a worker that dies without reporting), and a bounded per-point retry
budget for both.  Degradation is graceful: ``jobs=1``, a single point,
an unpicklable payload, or a platform without ``fork`` all fall back to
plain in-process serial execution with identical results.

Supervision (``repro.supervise``, docs/RESILIENCE.md) layers on top:

* ``journal=`` — a :class:`~repro.supervise.journal.SweepJournal`;
  completed points are fsync'd to disk as they land and skipped on
  restart, so a killed-and-resumed campaign produces byte-identical
  results and a byte-identical sealed journal for any ``jobs``.
* ``supervise=`` — a :class:`~repro.supervise.policy.SupervisePolicy`;
  workers heartbeat on a dedicated pipe (*hung* vs *slow* vs *crashed*
  classification), retries wait out a deterministic seeded backoff, and
  ``quarantine=True`` turns exhausted points into journaled
  :class:`~repro.supervise.policy.PoisonedPoint` placeholders instead of
  aborting the sweep.
* ``report=`` — a caller-visible
  :class:`~repro.supervise.policy.DegradationReport` mutated in place.
* SIGINT/SIGTERM during a pooled sweep terminate every child (the
  existing grace path), flush the journal, and raise
  :class:`~repro.errors.SweepCancelledError` with a distinct exit code.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import pickle
import signal
import threading
import time
import traceback
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import (
    JournalCorruptError,
    PointFailedError,
    PointTimeoutError,
    SweepCancelledError,
    WorkerCrashError,
)
from repro.parallel.seeding import point_key, seed_for
from repro.supervise.policy import DegradationReport, PoisonedPoint

#: An experiment function: ``fn(point, seed) -> result``.  It must be a
#: module-level callable (picklable by reference) and its result must be
#: picklable; the point spec carries all configuration.
ExperimentFn = Callable[[Any, int], Any]

#: Grace period for a terminated worker to exit before SIGKILL.
_TERM_GRACE_S = 2.0


def default_jobs() -> int:
    """Worker count when ``jobs`` is not given: the usable host cores."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    """The ``fork`` multiprocessing context, or ``None`` where absent.

    Workers are forked, not spawned: a forked child inherits the already
    imported simulator modules, so a sweep point costs one ``fork()``
    rather than a fresh interpreter boot per point.  Platforms without
    ``fork`` (Windows; macOS restricts it) degrade to serial execution.
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        return None
    return multiprocessing.get_context("fork")


def _payload_picklable(fn: ExperimentFn, points: Sequence[Any]) -> bool:
    try:
        pickle.dumps(fn)
        pickle.dumps(list(points))
        return True
    except Exception:
        return False


def _journal_keys(points: Sequence[Any]) -> List[str]:
    """Journal key per point: ``point_key``, ``#k``-suffixed for repeats.

    A sweep may legitimately contain the same point value more than once
    (bench repeat rounds); each occurrence is a distinct unit of work
    and needs its own journal identity, so the k-th duplicate gets a
    ``#k`` suffix.  Identical points share a seed, so their results are
    identical anyway — the suffix only keeps the completion accounting
    one-to-one.
    """
    seen: Dict[str, int] = {}
    keys: List[str] = []
    for p in points:
        key = point_key(p)
        n = seen.get(key, 0)
        seen[key] = n + 1
        keys.append(key if n == 0 else f"{key}#{n}")
    return keys


# ---------------------------------------------------------------------------
# signal handling


class _Cancelled(BaseException):
    """Raised *by the signal handler* to break out of blocking waits.

    A ``BaseException`` on purpose (like ``KeyboardInterrupt``): the
    engine's ``except Exception`` paths must not swallow a cancellation.
    Raising from the handler is also what interrupts
    ``multiprocessing.connection.wait`` — with a non-raising handler,
    PEP 475 would transparently retry the ``poll()`` syscall and the
    coordinator would never notice the signal.
    """

    def __init__(self, signum: int) -> None:
        super().__init__(signum)
        self.signum = signum


def _install_cancel_handlers() -> Optional[Dict[int, Any]]:
    """Route SIGINT/SIGTERM into :class:`_Cancelled`; return old handlers.

    Returns ``None`` when not on the main thread (signal handlers can
    only be installed there); the caller then keeps default delivery.
    """

    def _handler(signum: int, frame: Any) -> None:
        raise _Cancelled(signum)

    previous: Dict[int, Any] = {}
    try:
        for sig in (signal.SIGINT, signal.SIGTERM):
            previous[sig] = signal.signal(sig, _handler)
    except ValueError:  # not the main thread
        _restore_cancel_handlers(previous)
        return None
    return previous


def _restore_cancel_handlers(previous: Optional[Dict[int, Any]]) -> None:
    if not previous:
        return
    for sig, old in previous.items():
        try:
            signal.signal(sig, old)
        except (ValueError, TypeError):
            pass


def _shield_signals() -> Optional[Dict[int, Any]]:
    """Ignore SIGINT/SIGTERM during teardown so a second Ctrl-C cannot
    interrupt worker cleanup and orphan children."""
    previous: Dict[int, Any] = {}
    try:
        for sig in (signal.SIGINT, signal.SIGTERM):
            previous[sig] = signal.signal(sig, signal.SIG_IGN)
    except ValueError:
        return previous or None
    return previous


# ---------------------------------------------------------------------------
# worker side


def _heartbeat_main(hb_conn, interval_s: float) -> None:
    """Daemon-thread body: tick the heartbeat pipe until the process dies.

    Runs beside the experiment function in the child.  If the experiment
    wedges the interpreter itself (C-level spin, deadlocked GIL), this
    thread stops ticking too — which is exactly the signal the
    coordinator uses to call the worker *hung* rather than *slow*.
    """
    try:
        while True:
            time.sleep(interval_s)
            hb_conn.send(1)
    except Exception:
        pass  # parent went away or we are exiting: nothing to report


def _worker_main(conn, hb_conn, fn: ExperimentFn, point: Any, seed: int,
                 hb_interval_s: float) -> None:
    """Run one point in a forked child; report via the pipe and exit.

    The protocol is a single ``(status, value, detail)`` message:
    ``("ok", result, None)`` or ``("raised", message, traceback)``.  A
    worker that dies without sending anything (segfault, ``os._exit``,
    OOM-kill) is detected by the parent as EOF on the pipe.
    """
    try:
        if hb_conn is not None:
            threading.Thread(
                target=_heartbeat_main, args=(hb_conn, hb_interval_s),
                daemon=True, name="repro-heartbeat").start()
        try:
            payload = ("ok", fn(point, seed), None)
        except BaseException as exc:  # report, don't die: fn errors are data
            payload = ("raised", f"{type(exc).__name__}: {exc}",
                       traceback.format_exc())
        try:
            conn.send(payload)
        except Exception as exc:
            # The result itself would not pickle; that is an fn bug, not
            # a worker crash — report it as a raised error.
            conn.send(("raised",
                       f"result of {fn.__name__} is not picklable: "
                       f"{type(exc).__name__}: {exc}", None))
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# parent side


@dataclass
class _Running:
    """Bookkeeping for one in-flight worker process."""

    proc: Any
    conn: Any
    index: int
    attempt: int
    deadline: Optional[float]
    hb_conn: Any = None
    last_beat: float = 0.0


def _stop_worker(worker: _Running) -> None:
    if worker.proc.is_alive():
        worker.proc.terminate()
        worker.proc.join(_TERM_GRACE_S)
        if worker.proc.is_alive():
            worker.proc.kill()
    worker.proc.join()
    worker.conn.close()
    if worker.hb_conn is not None:
        worker.hb_conn.close()


@dataclass
class _SweepState:
    """Everything one sweep execution shares between launcher and reaper.

    Built by :func:`run_parallel` (including the journal-resume prefill)
    and threaded through the serial and pooled paths so both record
    completions, poisonings, and progress identically.
    """

    points: List[Any]
    seeds: List[int]
    keys: List[str]
    fn: ExperimentFn
    progress: Optional[Callable[[int, int, Any], None]]
    journal: Any
    policy: Any
    report: DegradationReport
    results: List[Any] = field(default_factory=list)
    done: List[bool] = field(default_factory=list)
    done_count: int = 0

    def record(self, index: int, value: Any) -> Any:
        """Store one fresh success (journaling it first when armed)."""
        if self.journal is not None:
            # The journal hands back the JSON round-trip of the payload —
            # what a resumed run would see — so fresh and resumed results
            # agree bit-for-bit.
            value = self.journal.record_point(
                self.keys[index], self.seeds[index], value)
        self.results[index] = value
        self.done[index] = True
        self.done_count += 1
        self.report.completed += 1
        if self.progress is not None:
            self.progress(self.done_count, len(self.points), value)
        return value

    def poison(self, index: int, error: str, attempts: int) -> PoisonedPoint:
        """Quarantine one point: journal it and leave a placeholder."""
        key = self.keys[index]
        seed = self.seeds[index]
        if self.journal is not None:
            self.journal.record_poisoned(key, seed, error, attempts)
        placeholder = PoisonedPoint(key=key, seed=seed, error=str(error),
                                    attempts=int(attempts))
        self.results[index] = placeholder
        self.done[index] = True
        self.done_count += 1
        self.report.poisoned.append(placeholder)
        if self.progress is not None:
            self.progress(self.done_count, len(self.points), placeholder)
        return placeholder

    @property
    def quarantine(self) -> bool:
        return self.policy is not None and self.policy.quarantine


def _prefill_from_journal(state: _SweepState) -> None:
    """Mark journaled points done before any worker is launched.

    Each resumed record's seed is re-checked against the freshly derived
    ``seed_for(root_seed, point)`` — a mismatch means the journal does
    not describe this sweep (or the key derivation changed) and trusting
    it would splice two seed universes into one result set.
    """
    for index, key in enumerate(state.keys):
        record = state.journal.lookup(key)
        if record is None:
            continue
        if record["seed"] != state.seeds[index]:
            raise JournalCorruptError(
                f"{state.journal.path}: record for key {key!r} carries "
                f"seed {record['seed']}, but this sweep derives "
                f"{state.seeds[index]} — journal does not match the sweep")
        if record["kind"] == "point":
            state.results[index] = record["payload"]
        else:
            placeholder = PoisonedPoint(
                key=key, seed=record["seed"], error=record["error"],
                attempts=record["attempts"])
            state.results[index] = placeholder
            state.report.poisoned.append(placeholder)
        state.done[index] = True
        state.done_count += 1
        state.report.resumed += 1


def _run_pool(state: _SweepState, jobs: int, timeout_s: Optional[float],
              retries: int, ctx) -> List[Any]:
    points, seeds = state.points, state.seeds
    n = len(points)
    policy = state.policy
    report = state.report
    attempts = [0] * n
    pending: deque = deque(i for i in range(n) if not state.done[i])
    running: Dict[Any, _Running] = {}
    hb_watch: Dict[Any, _Running] = {}
    #: Earliest monotonic instant each index may be (re)launched at;
    #: populated only by supervised backoff.
    not_before: Dict[int, float] = {}

    def launch(index: int) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        hb_parent = hb_child = None
        if policy is not None:
            hb_parent, hb_child = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, hb_child, state.fn, points[index],
                  seeds[index],
                  policy.heartbeat_interval_s if policy else 0.0),
            daemon=True,
        )
        attempts[index] += 1
        proc.start()
        child_conn.close()  # the child holds the only write end: EOF == death
        if hb_child is not None:
            hb_child.close()
        deadline = (time.monotonic() + timeout_s) if timeout_s else None
        worker = _Running(proc, parent_conn, index, attempts[index],
                          deadline, hb_conn=hb_parent,
                          last_beat=time.monotonic())
        running[parent_conn] = worker
        if hb_parent is not None:
            hb_watch[hb_parent] = worker

    def unwatch(worker: _Running) -> None:
        if worker.hb_conn is not None:
            hb_watch.pop(worker.hb_conn, None)

    def fail_or_retry(worker: _Running, exc: Exception) -> None:
        if worker.attempt <= retries:
            report.retried += 1
            if policy is not None:
                not_before[worker.index] = time.monotonic() + policy.backoff_s(
                    seeds[worker.index], worker.attempt)
            pending.append(worker.index)
        elif state.quarantine:
            state.poison(worker.index, str(exc), worker.attempt)
        else:
            raise exc

    try:
        while pending or running:
            now = time.monotonic()
            while pending and len(running) < jobs:
                # Launch any index whose backoff has elapsed; rotate the
                # rest so backoff never blocks ready work behind it.
                for _ in range(len(pending)):
                    index = pending.popleft()
                    if not_before.get(index, 0.0) <= now:
                        launch(index)
                        break
                    pending.append(index)
                else:
                    break  # every pending index is still backing off
            if not running:
                if not pending:
                    break
                # Everything is waiting out a backoff: sleep to the
                # earliest relaunch instant instead of spinning.
                earliest = min(not_before.get(i, 0.0) for i in pending)
                time.sleep(max(0.0, min(earliest - time.monotonic(), 0.1)))
                continue
            wait_s = None
            deadlines = [w.deadline for w in running.values() if w.deadline]
            if pending and len(running) < jobs:
                deadlines.extend(not_before.get(i) for i in pending
                                 if not_before.get(i) is not None)
            if deadlines:
                wait_s = max(0.0, min(deadlines) - now)
            ready = multiprocessing.connection.wait(
                list(running) + list(hb_watch), wait_s)
            for conn in ready:
                if conn in hb_watch:
                    worker = hb_watch[conn]
                    beats = 0
                    try:
                        while conn.poll():
                            conn.recv()
                            beats += 1
                    except (EOFError, OSError):
                        # The worker side is gone; death itself is
                        # detected on the *result* pipe, so just stop
                        # listening here.
                        del hb_watch[conn]
                        continue
                    if beats:
                        worker.last_beat = time.monotonic()
                    continue
                worker = running.pop(conn, None)
                if worker is None:
                    continue  # already reaped via its heartbeat twin
                unwatch(worker)
                try:
                    status, value, detail = conn.recv()
                except EOFError:
                    # Died without reporting: a genuine worker crash.
                    _stop_worker(worker)
                    report.crashed += 1
                    fail_or_retry(worker, WorkerCrashError(
                        f"worker for point {worker.index} "
                        f"(key {point_key(points[worker.index])!r}) "
                        f"died with exit code "
                        f"{worker.proc.exitcode} after "
                        f"{worker.attempt} attempt(s)"))
                    continue
                worker.proc.join()
                conn.close()
                if worker.hb_conn is not None:
                    worker.hb_conn.close()
                if status == "ok":
                    state.record(worker.index, value)
                elif state.quarantine:
                    # An error raised *by fn* is deterministic — retrying
                    # cannot help — so it poisons immediately, with the
                    # same "<Type>: <msg>" string the serial path writes.
                    state.poison(worker.index, value, worker.attempt)
                else:
                    raise PointFailedError(
                        f"point {worker.index} ({points[worker.index]!r}) "
                        f"raised {value}"
                        + (f"\n{detail}" if detail else ""))
            now = time.monotonic()
            expired = [w for w in running.values()
                       if w.deadline is not None and now >= w.deadline]
            for worker in expired:
                del running[worker.conn]
                unwatch(worker)
                _stop_worker(worker)
                verdict = ""
                if policy is not None and worker.hb_conn is not None:
                    silent_s = now - worker.last_beat
                    if silent_s >= policy.hung_after_s:
                        report.hung += 1
                        verdict = (f" (hung: heartbeat silent for "
                                   f"{silent_s:.2f} s)")
                    else:
                        report.slow += 1
                        verdict = " (slow: heartbeats were still arriving)"
                fail_or_retry(worker, PointTimeoutError(
                    f"point {worker.index} "
                    f"(key {point_key(points[worker.index])!r}) "
                    f"exceeded {timeout_s} s on every one of "
                    f"{worker.attempt} attempt(s)" + verdict))
    finally:
        shield = _shield_signals()
        try:
            for worker in list(running.values()):
                _stop_worker(worker)
            running.clear()
            hb_watch.clear()
        finally:
            _restore_cancel_handlers(shield)
    assert all(state.done)
    return state.results


def _run_serial(state: _SweepState) -> List[Any]:
    points = state.points
    for index, (point, seed) in enumerate(zip(points, state.seeds)):
        if state.done[index]:
            continue
        try:
            value = state.fn(point, seed)
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
            if state.quarantine:
                state.poison(index, error, attempts=1)
                continue
            raise PointFailedError(
                f"point {index} ({point!r}) raised {error}") from exc
        state.record(index, value)
    return state.results


def run_parallel(
    points: Sequence[Any],
    fn: ExperimentFn,
    *,
    jobs: Optional[int] = None,
    root_seed: int = 0,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    progress: Optional[Callable[[int, int, Any], None]] = None,
    journal: Any = None,
    supervise: Any = None,
    report: Optional[DegradationReport] = None,
) -> List[Any]:
    """Run ``fn(point, seed)`` for every point; results in point order.

    ``jobs`` is the worker-process count (default: host cores).  The
    per-point ``seed`` is ``seed_for(root_seed, point)``, so the output
    is bit-identical for any ``jobs`` — parallel execution is purely a
    wall-clock optimization.

    ``timeout_s`` bounds each point's wall time per attempt; ``retries``
    is the extra-attempt budget per point after a worker crash or a
    timeout (an exception *raised by fn* is deterministic and fails the
    sweep immediately as :class:`~repro.errors.PointFailedError`).

    ``progress`` (optional) is called in the parent as
    ``progress(done_count, total, result)`` after every completed point,
    in *completion* order — purely observational (the ``--live`` CLI
    line); it must not mutate results.

    Supervision (all optional; see docs/RESILIENCE.md):

    * ``journal`` — a :class:`~repro.supervise.journal.SweepJournal`.
      ``run_parallel`` owns its lifecycle: opens it against
      ``root_seed``, skips points it already records (fingerprints
      re-verified), fsyncs each fresh completion, and *seals* it in
      canonical point order on success.  With a journal armed every
      result — fresh or resumed — is JSON-canonicalized, so resume is
      bit-identical.  Results must be JSON-serializable.
    * ``supervise`` — a :class:`~repro.supervise.policy.SupervisePolicy`
      enabling worker heartbeats (hung/slow/crashed classification),
      deterministic seeded retry backoff, and (``quarantine=True``)
      poison-point quarantine: an exhausted point becomes a
      :class:`~repro.supervise.policy.PoisonedPoint` placeholder in the
      results instead of an exception.
    * ``report`` — a :class:`~repro.supervise.policy.DegradationReport`
      mutated in place (one is created internally when omitted).

    While a pooled sweep runs on the main thread, SIGINT/SIGTERM are
    routed into a clean cancellation: children terminated (grace, then
    SIGKILL), journal flushed and closed, and
    :class:`~repro.errors.SweepCancelledError` raised (exit code
    ``128 + signum`` via ``.exit_code``).

    Falls back to in-process serial execution — same results, same
    exceptions — when ``jobs=1``, there are fewer than two points, the
    payload does not pickle, or the platform lacks ``fork``.
    """
    points = list(points)
    seeds = [seed_for(root_seed, p) for p in points]
    state = _SweepState(
        points=points, seeds=seeds, keys=_journal_keys(points), fn=fn,
        progress=progress, journal=journal, policy=supervise,
        report=report if report is not None else DegradationReport(),
        results=[None] * len(points), done=[False] * len(points))
    if journal is not None:
        journal.open(root_seed)
    if jobs is None:
        jobs = default_jobs()
    jobs = max(1, int(jobs))

    def dispatch() -> List[Any]:
        if journal is not None:
            _prefill_from_journal(state)
        remaining = state.done.count(False)
        if jobs == 1 or remaining <= 1 or len(points) <= 1:
            return _run_serial(state)
        ctx = _fork_context()
        if ctx is None:
            warnings.warn(
                "repro.parallel: no 'fork' start method on this platform; "
                "running the sweep serially", RuntimeWarning, stacklevel=3)
            return _run_serial(state)
        if not _payload_picklable(fn, points):
            warnings.warn(
                "repro.parallel: experiment fn or points are not picklable; "
                "running the sweep serially", RuntimeWarning, stacklevel=3)
            return _run_serial(state)
        return _run_pool(state, min(jobs, remaining), timeout_s, retries,
                         ctx)

    supervised = journal is not None or supervise is not None
    handlers = _install_cancel_handlers() if (supervised or jobs > 1) else None
    try:
        results = dispatch()
    except _Cancelled as exc:
        raise SweepCancelledError(exc.signum) from None
    finally:
        _restore_cancel_handlers(handlers)
        if journal is not None:
            journal.close()
    if journal is not None:
        journal.seal(state.keys)
    return results


# ---------------------------------------------------------------------------
# sweeps


@dataclass
class SweepResult:
    """Outcome of :meth:`Sweep.run`: points with values, in point order."""

    name: str
    points: List[Any]
    values: List[Any]
    wall_s: float
    jobs: int

    def as_dict(self) -> Dict[Any, Any]:
        """``{point: value}`` (points must be hashable)."""
        return dict(zip(self.points, self.values))

    def __iter__(self):
        return iter(zip(self.points, self.values))

    def __len__(self) -> int:
        return len(self.points)


@dataclass
class Sweep:
    """A named parameter sweep: points plus the experiment function.

    Thin declarative wrapper over :func:`run_parallel` so benches and the
    CLI share one spelling::

        sweep = Sweep("fig2-cores", points=range(1, 9), fn=_rate_for_cores)
        result = sweep.run(jobs=4)
        rates = result.as_dict()
    """

    name: str
    points: Sequence[Any]
    fn: ExperimentFn
    root_seed: int = 0
    timeout_s: Optional[float] = None
    retries: int = 1

    def run(self, jobs: Optional[int] = None,
            progress: Optional[Callable[[int, int, Any], None]] = None,
            journal: Any = None,
            supervise: Any = None,
            report: Optional[DegradationReport] = None,
            ) -> SweepResult:
        """Execute the sweep; see :func:`run_parallel` for semantics."""
        resolved = default_jobs() if jobs is None else max(1, int(jobs))
        start = time.perf_counter()
        values = run_parallel(
            self.points, self.fn, jobs=resolved, root_seed=self.root_seed,
            timeout_s=self.timeout_s, retries=self.retries,
            progress=progress, journal=journal, supervise=supervise,
            report=report)
        wall = time.perf_counter() - start
        return SweepResult(self.name, list(self.points), values,
                           wall_s=wall, jobs=resolved)
