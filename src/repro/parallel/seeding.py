"""Deterministic per-point seed derivation for parallel sweeps.

Every sweep point gets its RNG seed from ``seed_for(root_seed, key)``,
a pure function of the sweep's root seed and the point's *canonical key*
— never from worker identity, submission order, or a shared RNG stream.
That is what makes ``run_parallel`` results bit-identical regardless of
worker count or completion order: each simulation owns an independent,
reproducible stream, the same shape a data-parallel evaluation harness
uses to shard work across devices.

The canonical key is a stable string built from the point's value
(``point_key``).  It is pinned by a golden test
(``tests/test_parallel.py``) so a refactor cannot silently reshuffle
every sweep's RNG streams.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any

#: Derived seeds are 63-bit non-negative ints: safe for ``random.Random``,
#: ``numpy.random.default_rng``, and anything expecting a C ``int64``.
SEED_BITS = 63
_SEED_MASK = (1 << SEED_BITS) - 1

#: Separator between root seed and key in the hash input; never appears
#: in decimal root seeds, so distinct (root, key) pairs cannot collide
#: by concatenation.
_SEP = "\x1f"


def _canon(obj: Any) -> str:
    """Stable, type-tagged canonical form of a sweep-point value.

    Tuples and lists canonicalize identically (a sweep over ``[1, 2]``
    and ``(1, 2)`` is the same sweep); dict and set items are sorted so
    iteration order never leaks into seeds.  Dataclasses canonicalize by
    class name and field values.  ``bool`` is tagged separately from
    ``int`` (``True != 1`` here).
    """
    if obj is None:
        return "none"
    if isinstance(obj, bool):
        return f"bool:{obj}"
    if isinstance(obj, int):
        return f"int:{obj}"
    if isinstance(obj, float):
        return f"float:{obj!r}"
    if isinstance(obj, str):
        return f"str:{obj}"
    if isinstance(obj, bytes):
        return f"bytes:{obj.hex()}"
    if isinstance(obj, (tuple, list)):
        return "seq:[" + ",".join(_canon(item) for item in obj) + "]"
    if isinstance(obj, (set, frozenset)):
        return "set:{" + ",".join(sorted(_canon(item) for item in obj)) + "}"
    if isinstance(obj, dict):
        items = sorted(
            (_canon(k), _canon(v)) for k, v in obj.items()
        )
        return "map:{" + ",".join(f"{k}={v}" for k, v in items) + "}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = ",".join(
            f"{f.name}={_canon(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj)
        )
        return f"obj:{type(obj).__name__}:{{{fields}}}"
    return f"repr:{obj!r}"


def point_key(point: Any) -> str:
    """Canonical key of a sweep point (see :func:`_canon`)."""
    return _canon(point)


def seed_for(root_seed: int, point: Any) -> int:
    """Derive the RNG seed for one sweep point.

    ``point`` is the point *value*; it is always canonicalized via
    :func:`point_key` (a string point value is a value like any other —
    there is deliberately no "pre-computed key" shortcut, which would
    make ``seed_for(root, "int:1")`` and ``seed_for(root, 1)`` collide).
    The result is a 63-bit non-negative int, a pure function of
    ``(root_seed, point)`` — independent of worker count, scheduling,
    and platform (BLAKE2b is stable everywhere).
    """
    material = f"int:{int(root_seed)}{_SEP}{point_key(point)}".encode("utf-8")
    digest = hashlib.blake2b(material, digest_size=8).digest()
    return int.from_bytes(digest, "big") & _SEED_MASK
