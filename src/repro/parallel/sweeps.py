"""Named parameter sweeps runnable from the CLI (``moongen-repro sweep``).

Each entry reproduces one of the paper's swept measurements as a
self-contained, picklable experiment function plus its default point
set, fanned out through :func:`repro.parallel.run_parallel`:

* ``fig2-cores`` — Figure 2: heavy randomization script (8 random fields
  + IP checksum offload per packet), 1.2 GHz cores on two shared 10 GbE
  ports; aggregate Mpps per core count.
* ``fig4-cores`` — Figure 4 / Section 5.5: one 2 GHz core per 10 GbE
  port, up to twelve ports; aggregate Mpps (178.5 at twelve).
* ``sec57-sizes`` — Section 5.7: transmit cycles/packet across frame
  sizes 64-128 B (the paper finds no size dependence).
* ``rfc2544`` — RFC 2544 zero-loss throughput search per standard frame
  size against the simulated OvS DuT.

Every experiment seeds its ``MoonGenEnv`` from the engine-derived
per-point seed, so a sweep's output is a pure function of
``(sweep, root_seed)`` — identical for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.parallel.engine import ExperimentFn, Sweep, SweepResult

#: ``MoonGenEnv(seed=...)`` and the generator models take 32-bit-ish
#: seeds; fold the 63-bit engine seed down without losing determinism.
_ENV_SEED_MASK = (1 << 31) - 1


def _env_seed(seed: int) -> int:
    return (seed & _ENV_SEED_MASK) or 1


# ---------------------------------------------------------------------------
# experiment functions (module-level: picklable by reference)


def _fig2_point(n_cores: int, seed: int) -> float:
    """Aggregate Mpps for ``n_cores`` heavy-randomization cores."""
    from repro import MoonGenEnv

    def heavy_slave(env, queues):
        mem = env.create_mempool(
            fill=lambda b: b.udp_packet.fill(pkt_length=60))
        arrays = [mem.buf_array() for _ in queues]
        while env.running():
            for queue, bufs in zip(queues, arrays):
                bufs.alloc(60)
                bufs.charge_random_fields(8)
                bufs.offload_ip_checksums()
                yield queue.send(bufs)

    env = MoonGenEnv(seed=_env_seed(seed), core_freq_hz=1.2e9)
    ports = [env.config_device(i, tx_queues=n_cores) for i in (0, 1)]
    sinks = [env.config_device(i + 2, rx_queues=1) for i in (0, 1)]
    for port, sink in zip(ports, sinks):
        env.connect(port, sink)
    for core in range(n_cores):
        env.launch(heavy_slave, env, [p.get_tx_queue(core) for p in ports])
    env.wait_for_slaves(duration_ns=300_000)
    return sum(p.tx_packets for p in ports) / (env.now_ns / 1e9) / 1e6


def _fig4_point(n_cores: int, seed: int) -> float:
    """Aggregate Mpps with one 2 GHz core per 10 GbE port."""
    from repro import MoonGenEnv

    def slave(env, queue):
        mem = env.create_mempool(
            fill=lambda b: b.udp_packet.fill(pkt_length=60))
        bufs = mem.buf_array()
        while env.running():
            bufs.alloc(60)
            bufs.charge_random_fields(1)
            yield queue.send(bufs)

    env = MoonGenEnv(seed=_env_seed(seed), core_freq_hz=2.0e9)
    ports = []
    for i in range(n_cores):
        tx = env.config_device(2 * i, tx_queues=1)
        rx = env.config_device(2 * i + 1, rx_queues=1)
        env.connect(tx, rx)
        ports.append(tx)
        env.launch(slave, env, tx.get_tx_queue(0))
    env.wait_for_slaves(duration_ns=120_000)
    return sum(p.tx_packets for p in ports) / (env.now_ns / 1e9) / 1e6


def _sec57_point(frame_size: int, seed: int) -> float:
    """Transmit cycles per packet at one frame size (Section 5.7)."""
    from repro import MoonGenEnv

    env = MoonGenEnv(seed=_env_seed(seed), core_freq_hz=2.4e9)
    tx = env.config_device(0, tx_queues=1)
    rx = env.config_device(1, rx_queues=1)
    env.connect(tx, rx)

    def slave(env, queue):
        mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(
            pkt_length=frame_size - 4))
        bufs = mem.buf_array()
        while env.running():
            bufs.alloc(frame_size - 4)
            yield queue.send(bufs)

    task = env.launch(slave, env, tx.get_tx_queue(0))
    env.wait_for_slaves(duration_ns=150_000)
    return task.core.busy_cycles / tx.tx_packets


def _rfc2544_point(frame_size: int, seed: int) -> float:
    """RFC 2544 zero-loss throughput (Mpps) at one frame size."""
    from repro import units
    from repro.analysis.rfc2544 import default_loss_probe, throughput_test

    line = units.line_rate_pps(frame_size, units.SPEED_10G)
    result = throughput_test(
        default_loss_probe(frame_size=frame_size, seed=_env_seed(seed)),
        line, frame_size=frame_size, resolution=0.02,
    )
    return result.throughput_mpps


# ---------------------------------------------------------------------------
# registry


@dataclass
class SweepSpec:
    """A registered sweep: experiment fn, default points, presentation."""

    name: str
    description: str
    fn: ExperimentFn
    default_points: Tuple[Any, ...]
    headers: Tuple[str, str]
    format_value: Callable[[Any], str] = field(default=lambda v: f"{v:.2f}")

    def build(self, points: Optional[Sequence[Any]] = None,
              root_seed: int = 0) -> Sweep:
        """Instantiate a runnable :class:`Sweep` (optionally a subset)."""
        return Sweep(self.name,
                     tuple(points) if points else self.default_points,
                     self.fn, root_seed=root_seed)


SWEEPS: Dict[str, SweepSpec] = {
    spec.name: spec for spec in (
        SweepSpec(
            name="fig2-cores",
            description="Figure 2: heavy script, aggregate Mpps vs cores "
                        "(1.2 GHz, 2x10GbE)",
            fn=_fig2_point,
            default_points=tuple(range(1, 9)),
            headers=("cores", "Mpps"),
        ),
        SweepSpec(
            name="fig4-cores",
            description="Figure 4: one core per 10 GbE port, aggregate "
                        "Mpps vs cores (2 GHz)",
            fn=_fig4_point,
            default_points=(1, 2, 4, 8, 12),
            headers=("cores", "Mpps"),
        ),
        SweepSpec(
            name="sec57-sizes",
            description="Section 5.7: tx cycles/packet vs frame size",
            fn=_sec57_point,
            default_points=(64, 72, 80, 88, 96, 104, 112, 120, 128),
            headers=("size [B]", "cycles/pkt"),
            format_value=lambda v: f"{v:.1f}",
        ),
        SweepSpec(
            name="rfc2544",
            description="RFC 2544 zero-loss throughput vs frame size "
                        "(simulated OvS DuT)",
            fn=_rfc2544_point,
            default_points=(64, 128, 256, 512, 1024, 1280, 1518),
            headers=("size [B]", "zero-loss Mpps"),
        ),
    )
}


def format_sweep_table(spec: SweepSpec, result: SweepResult) -> str:
    """Aligned two-column table plus a wall-clock/jobs footer."""
    from repro.supervise.policy import PoisonedPoint

    rows = [(str(point),
             f"poisoned: {value.error}" if isinstance(value, PoisonedPoint)
             else spec.format_value(value))
            for point, value in result]
    widths = [max(len(h), *(len(r[i]) for r in rows))
              for i, h in enumerate(spec.headers)]
    lines = ["  ".join(h.ljust(w) for h, w in zip(spec.headers, widths))]
    lines.append("-" * len(lines[0]))
    lines.extend("  ".join(c.ljust(w) for c, w in zip(row, widths))
                 for row in rows)
    lines.append(f"({len(result)} points, jobs={result.jobs}, "
                 f"wall {result.wall_s:.2f} s)")
    return "\n".join(lines)
