"""Inter-arrival time analysis (Section 7.3: Figure 8 and Table 4).

The paper measures inter-arrival times with an Intel 82580, which
timestamps every received packet at 64 ns precision; histograms use 64 ns
bins and Table 4 reports the fraction of inter-arrival times within
±64/±128/±256/±512 ns of the target plus the fraction of micro-bursts
(back-to-back packets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro._optional import np, require_numpy

from repro import units
from repro.core.histogram import Histogram
from repro.nicsim.clock import TICK_82580_NS

#: Table 4's tolerance buckets.
TOLERANCES_NS = (64.0, 128.0, 256.0, 512.0)


@dataclass
class InterArrivalStats:
    """The metrics of one Table 4 row."""

    generator: str
    target_pps: float
    n_samples: int
    micro_burst_fraction: float
    within: Dict[float, float]  # tolerance -> fraction
    histogram: Histogram

    def format_row(self) -> str:
        cells = " ".join(
            f"±{int(tol)}ns={self.within[tol] * 100:5.1f}%" for tol in TOLERANCES_NS
        )
        return (
            f"{self.generator:<14} @{self.target_pps / 1e3:6.0f} kpps  "
            f"bursts={self.micro_burst_fraction * 100:6.2f}%  {cells}"
        )


def quantize_timestamps(times_ns: np.ndarray, grain_ns: float = TICK_82580_NS,
                        phase_ns: float = 0.0) -> np.ndarray:
    """Apply the receive-side timestamp quantization (82580: 64 ns grid)."""
    return np.floor((times_ns - phase_ns) / grain_ns) * grain_ns + phase_ns


def measure_interarrival(
    departures_ns: np.ndarray,
    target_pps: float,
    generator: str = "",
    frame_size: int = units.MIN_FRAME_SIZE,
    speed_bps: int = units.SPEED_1G,
    quantize: bool = False,
    burst_slack_ns: float = 32.0,
) -> InterArrivalStats:
    """Compute Figure 8 / Table 4 metrics from packet departure times.

    ``quantize=True`` additionally applies the 82580's 64 ns grid — use it
    for event-driven measurements; the calibrated generator models already
    produce as-measured distributions.

    A micro-burst is an inter-arrival time at (or within ``burst_slack_ns``
    of) the back-to-back wire spacing — 672 ns for 64 B at GbE, the black
    arrow in Figure 8.
    """
    require_numpy("inter-arrival statistics")
    times = np.asarray(departures_ns, dtype=float)
    if times.size < 2:
        raise ValueError("need at least two departures")
    if quantize:
        times = quantize_timestamps(times)
    gaps = np.diff(times)
    target_gap = units.NS_PER_S / target_pps
    wire_gap = units.frame_time_ns(frame_size, speed_bps)
    bursts = float(np.mean(gaps <= wire_gap + burst_slack_ns))
    deviations = gaps - target_gap
    within = {
        tol: float(np.mean(np.abs(deviations) <= tol)) for tol in TOLERANCES_NS
    }
    return InterArrivalStats(
        generator=generator,
        target_pps=target_pps,
        n_samples=int(gaps.size),
        micro_burst_fraction=bursts,
        within=within,
        histogram=Histogram(gaps),
    )


def rate_control_table_row(stats: InterArrivalStats) -> Dict[str, float]:
    """Table-4-shaped dict for one generator/rate combination."""
    row = {
        "generator": stats.generator,
        "rate_kpps": stats.target_pps / 1e3,
        "micro_bursts_pct": stats.micro_burst_fraction * 100,
    }
    for tol in TOLERANCES_NS:
        row[f"within_{int(tol)}ns_pct"] = stats.within[tol] * 100
    return row


def histogram_bins_64ns(stats: InterArrivalStats,
                        max_gap_ns: Optional[float] = None) -> Dict[float, float]:
    """Figure 8's histogram: 64 ns bins, probabilities in percent."""
    bins = stats.histogram.bins(TICK_82580_NS, start=0.0)
    total = sum(bins.values())
    out = {}
    for edge, count in bins.items():
        if max_gap_ns is not None and edge > max_gap_ns:
            break
        out[edge] = 100.0 * count / total
    return out
