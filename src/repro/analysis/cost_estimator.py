"""The Section 5.6.3 cost estimator.

The paper composes per-packet operation costs (Tables 1 and 2) to predict a
script's throughput: the heavy Section 5.3 script — packet IO, payload
modification, 8 random fields, IP checksum offloading — is predicted at
10.47 ± 0.18 Mpps on one 2.4 GHz core, and measured at 10.3 Mpps.  This
module provides the same composition over the calibrated cost model so
benches can compare prediction and simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.nicsim.cpu import OpCosts, predict_throughput_pps


@dataclass
class ScriptCost:
    """Declares the per-packet operations of a transmit-loop script."""

    #: Number of randomized header fields per packet.
    random_fields: int = 0
    #: Number of wrapping-counter fields per packet.
    counter_fields: int = 0
    #: Constant-field writes: how many cachelines the writes touch (0 = none).
    modify_cachelines: int = 0
    offload_ip: bool = False
    offload_udp: bool = False
    offload_tcp: bool = False
    #: Additional script-specific cycles per packet.
    extra_cycles: float = 0.0
    costs: OpCosts = field(default_factory=OpCosts)

    def cycles_per_packet(self, freq_hz: float) -> float:
        """Expected per-packet cost at a core frequency (see OpCosts)."""
        c = self.costs
        total = c.tx_base.at(freq_hz)
        if self.modify_cachelines == 1:
            total += c.modify.at(freq_hz)
        elif self.modify_cachelines >= 2:
            total += c.modify_two_cachelines.at(freq_hz)
        if self.random_fields:
            total += c.random_cost(self.random_fields)
        if self.counter_fields:
            total += c.counter_cost(self.counter_fields)
        if self.offload_ip and not (self.offload_udp or self.offload_tcp):
            total += c.offload_ip.at(freq_hz)
        if self.offload_udp:
            total += c.offload_udp.at(freq_hz)
        if self.offload_tcp:
            total += c.offload_tcp.at(freq_hz)
        return total + self.extra_cycles


def estimate_script(script: ScriptCost, freq_hz: float,
                    line_rate_pps: Optional[float] = None) -> float:
    """Predicted throughput in packets per second (optionally line-capped)."""
    pps = predict_throughput_pps(script.cycles_per_packet(freq_hz), freq_hz)
    if line_rate_pps is not None:
        pps = min(pps, line_rate_pps)
    return pps
