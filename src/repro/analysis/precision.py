"""Rate-control precision audits (Section 7.3, Figure 8) — in-dataplane.

The paper's Figure 8 compares how precisely different rate-control
mechanisms space packets on the wire by histogramming receive-side
inter-arrival times.  This module reproduces that audit inside the
simulator using the in-dataplane observation layer
(:mod:`repro.metrics.dataplane`): each method drives a two-port
topology at the same target rate and the receiving NIC latches the gap
between consecutive FCS-valid arrivals into
``interarrival.port1.rx``.

Three methods, one per mechanism family the paper measures:

* ``hardware`` — per-queue CBR pacing on the NIC (Section 7.2); the
  precision baseline.
* ``crc`` — the Section 8 software rate control: the wire stays full
  and gaps are realised by inserting bad-FCS filler frames the
  receiver drops in hardware.  The CBR schedule is planned with the
  same carry arithmetic as :meth:`~repro.core.ratecontrol.GapFiller.plan`
  but in pure Python, so the audit runs without numpy.
* ``software-burst`` — naive software pacing: bursts leave
  back-to-back, then the sender sleeps until the next burst is due
  (the pktgen/zsend shape: micro-bursts plus long gaps).

Every method's result carries the raw ``Log2Histogram`` state,
interpolated percentiles, and a fingerprint over the canonical JSON of
the histogram — bit-identical for any ``jobs`` value, either scheduler
backend, and with the batch tier on or off.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro import units
from repro.core.ratecontrol import GapFiller
from repro.errors import ConfigurationError
from repro.metrics.registry import Log2Histogram, MetricsRegistry
from repro.metrics.snapshot import canonical_json

#: The audited mechanisms, in report order.
METHODS = ("hardware", "crc", "software-burst")

#: Packets per burst for the ``software-burst`` method (the paper's
#: software generators transmit in batches of this order).
BURST_SIZE = 32

#: Percentiles reported per method.
PERCENTILES = (1.0, 50.0, 99.0)


def cbr_filler_schedule(filler: GapFiller, gap_ns: float) -> Iterator[List[int]]:
    """Endless per-packet filler schedules for a constant-bit-rate gap.

    Pure-Python mirror of :meth:`GapFiller.plan` for the constant-gap
    case: the same skip-and-stretch carry arithmetic, the same
    :meth:`GapFiller._split_filler` decomposition — just without
    materializing a numpy array, so the audit runs on a numpy-free
    install.
    """
    byte_ns = filler.byte_time_ns
    min_gap_ns = filler.pkt_wire_bytes * byte_ns
    if gap_ns < min_gap_ns - 1e-9:
        raise ConfigurationError(
            f"desired gap {gap_ns:.1f} ns is below the frame's wire time "
            f"({min_gap_ns:.1f} ns); the requested rate exceeds line rate")
    min_fill = filler.min_filler_wire
    carry = 0.0
    while True:
        idle_bytes_f = (gap_ns - min_gap_ns) / byte_ns + carry
        if idle_bytes_f < min_fill:
            idle_bytes = 0 if idle_bytes_f < min_fill / 2 else min_fill
        else:
            idle_bytes = int(round(idle_bytes_f))
        carry = idle_bytes_f - idle_bytes
        yield filler._split_filler(idle_bytes)


def _craft(buf, src: str, dst: str) -> None:
    buf.eth_packet.fill(eth_src=src, eth_dst=dst, eth_type=0x0800)


def run_method(
    method: str,
    rate_mpps: float = 1.0,
    frame_size: int = units.MIN_FRAME_SIZE,
    duration_ns: float = 4e6,
    seed: int = 1,
    batch: bool = False,
    scheduler: Optional[str] = None,
) -> Dict[str, Any]:
    """Run one rate-control method and audit its inter-arrival precision.

    Returns a plain dict (picklable, deep-diffable): target rate and
    gap, receive counters, the raw histogram state, interpolated
    percentiles, the histogram mean, and a fingerprint over the
    canonical JSON of the histogram state.
    """
    if method not in METHODS:
        raise ConfigurationError(
            f"unknown rate-control method {method!r}; "
            f"expected one of {METHODS}")
    from repro import MoonGenEnv

    pps = rate_mpps * 1e6
    gap_ns = units.NS_PER_S / pps
    env = MoonGenEnv(seed=seed, metrics=True, dataplane=True, batch=batch,
                     scheduler=scheduler)
    tx = env.config_device(0, tx_queues=1)
    rx = env.config_device(1, rx_queues=1)
    env.connect(tx, rx)
    queue = tx.get_tx_queue(0)
    src, dst = str(tx.mac), str(rx.mac)
    payload = frame_size - units.FCS_SIZE

    if method == "hardware":
        queue.set_rate_pps(pps, frame_size)

        def slave(env, queue):
            mem = env.create_mempool()
            bufs = mem.buf_array(32)
            while env.running():
                bufs.alloc(payload)
                for buf in bufs:
                    _craft(buf, src, dst)
                yield queue.send(bufs)

    elif method == "crc":
        filler = GapFiller(frame_size=frame_size,
                           speed_bps=tx.port.speed_bps)
        schedule = cbr_filler_schedule(filler, gap_ns)

        def slave(env, queue):
            mem = env.create_mempool()
            bufs = mem.buf_array(1)
            while env.running():
                bufs.alloc(payload)
                _craft(bufs[0], src, dst)
                yield queue.send(bufs)
                for wire_len in next(schedule):
                    bufs.alloc(wire_len - units.WIRE_OVERHEAD
                               - units.FCS_SIZE)
                    bufs[0].corrupt_fcs = True
                    _craft(bufs[0], "02:00:00:00:00:ff",
                           "ff:ff:ff:ff:ff:ff")
                    yield queue.send(bufs)

    else:  # software-burst
        period_ns = BURST_SIZE * gap_ns

        def slave(env, queue):
            mem = env.create_mempool()
            bufs = mem.buf_array(BURST_SIZE)
            next_ns = 0.0
            while env.running():
                bufs.alloc(payload)
                for buf in bufs:
                    _craft(buf, src, dst)
                yield queue.send(bufs)
                next_ns += period_ns
                delay = next_ns - env.now_ns
                if delay > 0:
                    yield env.sleep_ns(delay)

    env.launch(slave, env, queue)
    env.wait_for_slaves(duration_ns=duration_ns)

    name = f"interarrival.port{rx.port.port_id}.rx"
    state = env.dataplane.histograms[name].read()
    hist = env.dataplane.histograms[name]
    return {
        "method": method,
        "target_pps": pps,
        "target_gap_ns": gap_ns,
        "tx_packets": tx.tx_packets,
        "rx_packets": rx.rx_packets,
        "rx_crc_errors": rx.rx_crc_errors,
        "histogram": state,
        "percentiles": env.dataplane.percentiles(name, PERCENTILES),
        "mean_ns": (hist.sum / hist.total) if hist.total else 0.0,
        "fingerprint": hashlib.blake2b(
            canonical_json(state).encode("utf-8"),
            digest_size=8).hexdigest(),
    }


def _audit_point(point: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """``run_parallel`` experiment fn: the per-point seed the engine
    derives is ignored — the user's seed rides in the point itself, so
    serial and sharded runs are bit-identical by construction."""
    return run_method(
        point["method"],
        rate_mpps=point["rate_mpps"],
        frame_size=point["frame_size"],
        duration_ns=point["duration_ns"],
        seed=point["seed"],
        batch=point["batch"],
        scheduler=point["scheduler"],
    )


def run_precision_audit(
    rate_mpps: float = 1.0,
    frame_size: int = units.MIN_FRAME_SIZE,
    duration_ns: float = 4e6,
    seed: int = 1,
    methods: Sequence[str] = METHODS,
    jobs: int = 1,
    batch: bool = False,
    scheduler: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Audit every method at one rate; results in ``methods`` order.

    ``jobs > 1`` fans the per-method simulations across worker
    processes through the deterministic parallel engine; results are
    bit-identical either way.
    """
    points = [
        {"method": m, "rate_mpps": rate_mpps, "frame_size": frame_size,
         "duration_ns": duration_ns, "seed": seed, "batch": batch,
         "scheduler": scheduler}
        for m in methods
    ]
    if jobs and jobs > 1:
        from repro.parallel import run_parallel

        return run_parallel(points, _audit_point, jobs=jobs)
    return [_audit_point(p, seed) for p in points]


def restore_histogram(name: str, state: Dict[str, Any],
                      registry: MetricsRegistry,
                      help: str = "") -> Log2Histogram:
    """Re-register a histogram from its ``read()`` state.

    The audit runs each method in its own environment (possibly in a
    worker process); the exporters want one registry.  Counts, total,
    and sum are restored exactly — ``read()`` loses nothing a
    ``Log2Histogram`` holds.
    """
    hist = registry.log2_histogram(name, help)
    for bucket, count in state["buckets"].items():
        hist.counts[int(bucket)] = count
    hist.total = state["total"]
    hist.sum = state["sum"]
    return hist


def audit_registry(results: Sequence[Dict[str, Any]]) -> MetricsRegistry:
    """One registry holding ``precision.interarrival.<method>`` per
    result — the export surface for the CSV/Prometheus artifacts."""
    registry = MetricsRegistry()
    for result in results:
        restore_histogram(
            f"precision.interarrival.{result['method']}",
            result["histogram"], registry,
            help="rx inter-arrival gap (ns) under this rate control")
    return registry


def write_audit_csv(results: Sequence[Dict[str, Any]], fh) -> None:
    """Figure-8-shaped CSV: one bucket row per method, plus totals.

    Columns: method, bucket lower/upper edge in ns (upper empty for the
    overflow bucket), count, cumulative count.
    """
    fh.write("method,bucket_lo_ns,bucket_hi_ns,count,cumulative\n")
    for result in results:
        cumulative = 0
        buckets = result["histogram"]["buckets"]
        for bucket in sorted(buckets, key=int):
            i = int(bucket)
            lo = 0 if i == 0 else 1 << (i - 1)
            hi = "" if i == Log2Histogram.N_BUCKETS - 1 else str(1 << i)
            cumulative += buckets[bucket]
            fh.write(f"{result['method']},{lo},{hi},"
                     f"{buckets[bucket]},{cumulative}\n")


def format_audit_table(results: Sequence[Dict[str, Any]]) -> str:
    """The Figure 8 comparison table, one row per method."""
    lines = [f"{'method':<16} {'rx pkts':>8} {'target ns':>10} "
             f"{'p1 ns':>8} {'p50 ns':>8} {'p99 ns':>8} {'mean ns':>9} "
             f"{'fingerprint':>16}"]
    for r in results:
        p = r["percentiles"]
        lines.append(
            f"{r['method']:<16} {r['rx_packets']:>8} "
            f"{r['target_gap_ns']:>10.1f} "
            f"{p.get('p1', 0.0):>8.1f} {p.get('p50', 0.0):>8.1f} "
            f"{p.get('p99', 0.0):>8.1f} {r['mean_ns']:>9.1f} "
            f"{r['fingerprint']:>16}")
    return "\n".join(lines)


__all__ = [
    "BURST_SIZE",
    "METHODS",
    "PERCENTILES",
    "audit_registry",
    "cbr_filler_schedule",
    "format_audit_table",
    "restore_histogram",
    "run_method",
    "run_precision_audit",
    "write_audit_csv",
]
