"""RFC 2544 benchmarking methodology.

The hardware packet generators MoonGen competes with are "tailored to
special use cases such as performing RFC 2544 compliant device tests"
(Section 2); the paper also cites its latency rule (one timestamped packet
per 120 s interval — Section 6.4 notes MoonGen samples thousands per
second instead).  This module implements the RFC 2544 throughput test on
top of the simulated DuT: a binary search for the highest offered rate the
device forwards without loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro import units
from repro.dut.fastpath import simulate_forwarder
from repro.errors import ConfigurationError
from repro.generators.moongen import MoonGenCrcGapModel

#: RFC 2544 standard frame sizes for Ethernet.
STANDARD_FRAME_SIZES = (64, 128, 256, 512, 1024, 1280, 1518)


@dataclass
class Trial:
    """One load trial of the binary search.

    ``tolerance`` is the loss fraction the trial is allowed (RFC 2544
    proper demands 0.0; a lossy medium needs its intrinsic loss budgeted
    — see :func:`throughput_test`'s ``loss_tolerance``).
    """

    offered_pps: float
    loss_fraction: float
    tolerance: float = 0.0

    @property
    def passed(self) -> bool:
        return self.loss_fraction <= self.tolerance


@dataclass
class ThroughputResult:
    """Outcome of an RFC 2544 throughput search."""

    frame_size: int
    throughput_pps: float
    trials: List[Trial] = field(default_factory=list)

    @property
    def throughput_mpps(self) -> float:
        return self.throughput_pps / 1e6

    def throughput_gbps(self) -> float:
        return units.throughput_gbps(self.throughput_pps, self.frame_size)


def default_loss_probe(
    frame_size: int = 64,
    # Short trials hide mild overload: the rx ring absorbs the excess
    # until it fills (this is why RFC 2544 mandates 60 s trials).  40 ms
    # is long enough for the simulated DuT's 4096-deep ring.
    duration_s: float = 0.04,
    speed_bps: int = units.SPEED_10G,
    seed: int = 0,
    **forwarder_kwargs,
) -> Callable[[float], float]:
    """A loss probe driving the simulated OvS forwarder with CBR traffic."""
    model = MoonGenCrcGapModel(frame_size=frame_size, speed_bps=speed_bps)

    def probe(pps: float) -> float:
        n = max(int(pps * duration_s), 100)
        arrivals = model.departures_ns(pps, n, seed=seed)
        result = simulate_forwarder(arrivals, pkt_size=frame_size,
                                    **forwarder_kwargs)
        return result.drop_rate

    return probe


def throughput_test(
    loss_probe: Callable[[float], float],
    line_rate_pps: float,
    frame_size: int = 64,
    resolution: float = 0.005,
    min_rate_pps: Optional[float] = None,
    loss_tolerance: float = 0.0,
) -> ThroughputResult:
    """RFC 2544 section 26.1: binary search for the zero-loss rate.

    ``resolution`` is the relative rate granularity at which the search
    stops.  Starts at line rate (the standard's first trial) and halves the
    interval on loss.

    ``loss_tolerance`` relaxes the pass criterion to ``loss_fraction <=
    loss_tolerance``.  On a faulty medium (burst loss, link flaps — the
    ``repro.faults`` regimes) some loss is intrinsic to the channel and
    *every* rate fails the strict criterion: the search then degenerates
    to the floor rate instead of characterizing the DuT.  Budgeting the
    channel's intrinsic loss keeps the search convergent and the result
    meaningful; the per-trial record keeps the tolerance used.
    """
    if not 0 < resolution < 1:
        raise ConfigurationError(f"resolution must be in (0, 1): {resolution}")
    if not 0.0 <= loss_tolerance < 1.0:
        raise ConfigurationError(
            f"loss_tolerance must be in [0, 1): {loss_tolerance}"
        )
    low = min_rate_pps if min_rate_pps is not None else line_rate_pps * 0.01
    high = line_rate_pps
    trials: List[Trial] = []

    trial = Trial(high, loss_probe(high), loss_tolerance)
    trials.append(trial)
    if trial.passed:
        return ThroughputResult(frame_size, high, trials)

    best = 0.0
    while (high - low) / line_rate_pps > resolution:
        mid = (low + high) / 2
        trial = Trial(mid, loss_probe(mid), loss_tolerance)
        trials.append(trial)
        if trial.passed:
            best = mid
            low = mid
        else:
            high = mid
    return ThroughputResult(frame_size, max(best, low), trials)


def frame_size_sweep(
    line_rate_for: Callable[[int], float],
    probe_factory: Callable[[int], Callable[[float], float]],
    frame_sizes: Tuple[int, ...] = STANDARD_FRAME_SIZES,
    resolution: float = 0.005,
) -> List[ThroughputResult]:
    """Run the throughput test over the standard frame sizes."""
    results = []
    for size in frame_sizes:
        results.append(
            throughput_test(
                probe_factory(size), line_rate_for(size),
                frame_size=size, resolution=resolution,
            )
        )
    return results


def _sweep_point(point: Tuple, _seed: int) -> ThroughputResult:
    """One frame size of :func:`throughput_sweep` (picklable spec).

    The probe seed travels inside the point spec rather than using the
    engine-derived seed, so a multi-size sweep reproduces exactly what a
    series of single-size ``throughput_test`` calls with the same seed
    would measure.
    """
    size, resolution, seed, speed_bps, duration_s = point
    probe = default_loss_probe(frame_size=size, duration_s=duration_s,
                               speed_bps=speed_bps, seed=seed)
    return throughput_test(probe, units.line_rate_pps(size, speed_bps),
                           frame_size=size, resolution=resolution)


def throughput_sweep(
    frame_sizes: Tuple[int, ...] = STANDARD_FRAME_SIZES,
    resolution: float = 0.005,
    seed: int = 0,
    speed_bps: int = units.SPEED_10G,
    duration_s: float = 0.04,
    jobs: int = 1,
) -> List[ThroughputResult]:
    """RFC 2544 searches over frame sizes, one search per worker.

    Each frame size's binary search is an independent simulation, so the
    searches fan out through :func:`repro.parallel.run_parallel`
    (``jobs`` workers; ``jobs=1`` runs serially in-process).  Results
    come back in ``frame_sizes`` order and are bit-identical for any
    ``jobs`` value.
    """
    from repro.parallel import run_parallel

    points = [(int(size), float(resolution), int(seed), int(speed_bps),
               float(duration_s)) for size in frame_sizes]
    return run_parallel(points, _sweep_point, jobs=jobs, root_seed=seed)
