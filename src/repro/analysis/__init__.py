"""Measurement analysis: inter-arrival metrics, latency statistics,
rate-control precision audits, and the Section 5.6.3 cost estimator."""

from repro.analysis.cost_estimator import ScriptCost, estimate_script
from repro.analysis.interarrival import (
    InterArrivalStats,
    measure_interarrival,
    rate_control_table_row,
)
from repro.analysis.latencystats import LatencySummary, summarize_latencies
from repro.analysis.precision import (
    format_audit_table,
    run_method,
    run_precision_audit,
)
from repro.analysis.rfc2544 import (
    ThroughputResult,
    default_loss_probe,
    frame_size_sweep,
    throughput_test,
)

__all__ = [
    "InterArrivalStats",
    "LatencySummary",
    "ScriptCost",
    "ThroughputResult",
    "default_loss_probe",
    "estimate_script",
    "format_audit_table",
    "frame_size_sweep",
    "measure_interarrival",
    "rate_control_table_row",
    "run_method",
    "run_precision_audit",
    "summarize_latencies",
    "throughput_test",
]
