"""Latency statistics for the forwarding experiments (Figures 10 and 11)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro._optional import np, require_numpy


@dataclass
class LatencySummary:
    """Quartiles of a latency distribution, the series of Figures 10/11."""

    offered_load_pps: float
    q1_ns: float
    median_ns: float
    q3_ns: float
    n_samples: int
    drop_rate: float = 0.0

    def as_us(self) -> Tuple[float, float, float]:
        return self.q1_ns / 1e3, self.median_ns / 1e3, self.q3_ns / 1e3


def summarize_latencies(latencies_ns: Sequence[float], offered_load_pps: float,
                        drop_rate: float = 0.0) -> LatencySummary:
    """Quartile summary of a latency sample set (NaNs = drops, excluded)."""
    require_numpy("latency statistics")
    arr = np.asarray(latencies_ns, dtype=float)
    arr = arr[~np.isnan(arr)]
    if arr.size == 0:
        raise ValueError("no latency samples")
    q1, med, q3 = (float(np.percentile(arr, p)) for p in (25, 50, 75))
    return LatencySummary(
        offered_load_pps=offered_load_pps,
        q1_ns=q1,
        median_ns=med,
        q3_ns=q3,
        n_samples=int(arr.size),
        drop_rate=drop_rate,
    )


def relative_deviation(a: LatencySummary, b: LatencySummary) -> Dict[str, float]:
    """Per-quartile relative deviation (a - b) / b, Figure 10's metric."""
    return {
        "q1": (a.q1_ns - b.q1_ns) / b.q1_ns,
        "median": (a.median_ns - b.median_ns) / b.median_ns,
        "q3": (a.q3_ns - b.q3_ns) / b.q3_ns,
    }


def mean_and_std(values: Sequence[float]) -> Tuple[float, float]:
    """Mean and sample standard deviation over repeated runs."""
    vals = list(values)
    mean = sum(vals) / len(vals)
    if len(vals) < 2:
        return mean, 0.0
    var = sum((v - mean) ** 2 for v in vals) / (len(vals) - 1)
    return mean, math.sqrt(var)
