"""Exception hierarchy for the MoonGen reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A device, queue, or task was configured with invalid parameters."""


class DeviceError(ReproError):
    """An operation was attempted on a device in the wrong state."""


class QueueError(ReproError):
    """A queue operation failed (unknown queue, exhausted ring, ...)."""


class PacketError(ReproError):
    """Packet crafting or parsing failed."""


class AddressError(PacketError):
    """A MAC or IP address could not be parsed or is out of range."""


class TimestampingError(ReproError):
    """The timestamping engine was misused or hit a hardware restriction."""


class RateControlError(ReproError):
    """A rate-control configuration is invalid or unsupported."""


class GapError(RateControlError):
    """A requested inter-packet gap cannot be represented on the wire."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class TaskError(ReproError):
    """A master/slave task failed or was misused."""


class ParallelError(ReproError):
    """The parallel experiment engine could not complete a sweep."""


class PointFailedError(ParallelError):
    """A sweep point raised inside the experiment function."""


class WorkerCrashError(ParallelError):
    """A worker process died (signal/exit) more times than the retry budget."""


class PointTimeoutError(ParallelError):
    """A sweep point exceeded its per-point timeout on every attempt."""
