"""Exception hierarchy for the MoonGen reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A device, queue, or task was configured with invalid parameters."""


class DeviceError(ReproError):
    """An operation was attempted on a device in the wrong state."""


class QueueError(ReproError):
    """A queue operation failed (unknown queue, exhausted ring, ...)."""


class PacketError(ReproError):
    """Packet crafting or parsing failed."""


class AddressError(PacketError):
    """A MAC or IP address could not be parsed or is out of range."""


class TimestampingError(ReproError):
    """The timestamping engine was misused or hit a hardware restriction."""


class RateControlError(ReproError):
    """A rate-control configuration is invalid or unsupported."""


class GapError(RateControlError):
    """A requested inter-packet gap cannot be represented on the wire."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class SimAborted(SimulationError):
    """A simulation watchdog tripped (wall-clock deadline or livelock).

    Carries a ``diagnostics`` dict — simulated clock, pending-event
    count, top pending-event owners, live metrics when a registry is
    attached — so an unattended run that had to be killed still explains
    *where* it was stuck (docs/RESILIENCE.md).
    """

    def __init__(self, message: str, diagnostics: dict = None) -> None:
        super().__init__(message)
        self.diagnostics = diagnostics or {}


class TaskError(ReproError):
    """A master/slave task failed or was misused."""


class ParallelError(ReproError):
    """The parallel experiment engine could not complete a sweep."""


class PointFailedError(ParallelError):
    """A sweep point raised inside the experiment function."""


class WorkerCrashError(ParallelError):
    """A worker process died (signal/exit) more times than the retry budget."""


class PointTimeoutError(ParallelError):
    """A sweep point exceeded its per-point timeout on every attempt."""


class PoisonedPointError(ParallelError):
    """A point exhausted its attempt budget and was quarantined.

    Under a :class:`repro.supervise.SupervisePolicy` with quarantine
    enabled the sweep does not abort: the point is recorded as poisoned
    (in the journal, when one is armed) and the sweep completes with
    partial results.  This error is raised only when a caller *insists*
    on the poisoned value (``PoisonedPoint.raise_()``)."""


class SweepCancelledError(ParallelError):
    """The sweep coordinator received SIGINT/SIGTERM and shut down cleanly.

    All in-flight workers were terminated (no orphans) and the journal —
    when one was armed — was flushed, so ``--resume`` continues exactly
    where the cancelled run stopped.  ``exit_code`` is the conventional
    ``128 + signum`` shell code for the delivering signal."""

    def __init__(self, signum: int) -> None:
        import signal as _signal

        try:
            name = _signal.Signals(signum).name
        except ValueError:
            name = f"signal {signum}"
        super().__init__(f"sweep cancelled by {name}; workers terminated, "
                         "journal flushed")
        self.signum = signum
        self.signal_name = name

    @property
    def exit_code(self) -> int:
        return 128 + self.signum


class SuperviseError(ReproError):
    """The crash-safe execution layer (``repro.supervise``) failed."""


class JournalCorruptError(SuperviseError):
    """A sweep journal is damaged beyond the recoverable final record.

    A truncated *last* line is normal (the coordinator died mid-append)
    and is dropped silently; damage anywhere else — unparseable interior
    records, fingerprint mismatches, a foreign header — raises this."""
