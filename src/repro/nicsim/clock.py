"""Simulated NIC PTP clocks.

Models the timestamping clocks of the Intel chips the paper uses
(Section 6.1):

* 82599 / X540 run at 156.25 MHz on 10 GbE links → 6.4 ns precision; at
  1 GbE the frequency drops to 15.625 MHz → 64 ns.
* On the 82599 the latched timer increments only every *two* clock cycles,
  so timestamps land on a 12.8 ns grid even though timestamping operates at
  6.4 ns — this produces the bimodal latency the paper observes for the
  8.5 m fiber cable.
* The 82580 produces timestamps of the form ``t = n * 64 ns + k * 8 ns``
  with ``k`` constant between resets.

Each clock may drift relative to simulation (wall) time; the paper measured
up to 35 µs/s (35 ppm) between a mainboard NIC and a discrete NIC.  Clocks
support atomic adjustment, which the synchronisation algorithm in
:mod:`repro.core.timestamping` uses.
"""

from __future__ import annotations

from typing import Optional

from repro.nicsim.eventloop import EventLoop

#: 82599/X540 timestamp clock tick at 10 GbE speeds (156.25 MHz).
TICK_10G_NS = 6.4
#: Same clock divided down at 1 GbE speeds (15.625 MHz).
TICK_1G_NS = 64.0
#: 82580 (GbE) timestamp precision.
TICK_82580_NS = 64.0


class NicClock:
    """A free-running NIC timestamp clock.

    ``tick_ns``
        granularity of the free-running timer,
    ``latch_ticks``
        how many ticks the *latched* (timestamp) value advances per update —
        2 on the 82599, 1 elsewhere,
    ``phase_ns``
        a constant offset of the tick grid (the 82580's ``k * 8 ns``),
    ``drift_ppm``
        clock rate error relative to simulation time in parts per million.
    """

    def __init__(
        self,
        loop: EventLoop,
        tick_ns: float = TICK_10G_NS,
        latch_ticks: int = 1,
        phase_ns: float = 0.0,
        drift_ppm: float = 0.0,
        offset_ns: float = 0.0,
    ) -> None:
        self.loop = loop
        self.tick_ns = float(tick_ns)
        self.latch_ticks = int(latch_ticks)
        self.phase_ns = float(phase_ns)
        self.drift_ppm = float(drift_ppm)
        self._offset_ns = float(offset_ns)

    # -- raw clock ------------------------------------------------------------

    def raw_time_ns(self, at_ps: Optional[int] = None) -> float:
        """Unquantized clock reading at simulation time ``at_ps`` (default now)."""
        sim_ns = (self.loop.now_ps if at_ps is None else at_ps) / 1000.0
        return sim_ns * (1.0 + self.drift_ppm * 1e-6) + self._offset_ns

    def _quantize(self, value_ns: float, grain_ns: float) -> float:
        steps = (value_ns - self.phase_ns) // grain_ns
        return steps * grain_ns + self.phase_ns

    def read_ns(self, at_ps: Optional[int] = None) -> float:
        """Read the free-running timer (SYSTIM register), tick-quantized."""
        return self._quantize(self.raw_time_ns(at_ps), self.tick_ns)

    def timestamp_ns(self, at_ps: Optional[int] = None) -> float:
        """The value latched into a timestamp register for an event now.

        Quantized to ``latch_ticks * tick_ns`` — coarser than the timer on
        chips like the 82599 that update the latch every other cycle.
        """
        return self._quantize(
            self.raw_time_ns(at_ps), self.tick_ns * self.latch_ticks
        )

    # -- adjustment (used by clock synchronisation) ----------------------------

    def adjust(self, delta_ns: float) -> None:
        """Atomically add ``delta_ns`` to the clock (read-modify-write on HW)."""
        self._offset_ns += float(delta_ns)

    def set_drift_ppm(self, drift_ppm: float) -> None:
        """Change the drift rate, preserving the current clock reading.

        Without rebasing, changing the rate would retroactively move past
        readings; the offset is folded so the raw time is continuous.
        """
        now_raw = self.raw_time_ns()
        self.drift_ppm = float(drift_ppm)
        sim_ns = self.loop.now_ps / 1000.0
        self._offset_ns = now_raw - sim_ns * (1.0 + self.drift_ppm * 1e-6)

    def offset_to(self, other: "NicClock", at_ps: Optional[int] = None) -> float:
        """Unquantized difference ``self - other`` at a given instant."""
        return self.raw_time_ns(at_ps) - other.raw_time_ns(at_ps)


def clock_for_speed(
    loop: EventLoop,
    speed_bps: int,
    latch_ticks: int = 1,
    drift_ppm: float = 0.0,
    phase_ns: float = 0.0,
) -> NicClock:
    """Build a clock with the tick the chip uses at the given link speed."""
    tick = TICK_10G_NS if speed_bps >= 10 * 10 ** 9 else TICK_1G_NS
    return NicClock(
        loop, tick_ns=tick, latch_ticks=latch_ticks,
        phase_ns=phase_ns, drift_ppm=drift_ppm,
    )
