"""Calendar-queue scheduler: amortized O(1) insert/extract for many timers.

A classic calendar queue (Brown 1988) adapted to the loop's determinism
rules.  Time is divided into *days* of ``width_ps`` picoseconds; day ``d``
hashes to bucket ``d % nbuckets``, so the bucket array covers one *year*
of ``nbuckets * width_ps`` and wraps.  Extraction walks the bucket ring
from the current day forward, firing everything due in each bucket's
current-year window; insertion drops an entry into its bucket directly.
With the width matched to the observed inter-event spacing each bucket
holds O(1) entries and both operations are amortized O(1) — versus
O(log n) for the binary heap, whose extract touches ~log2(n) random
cache lines per pop once the pending set outgrows the cache.

Determinism contract (shared with :class:`repro.nicsim.eventloop.HeapScheduler`):

* entries are the same ``(time_ps, seq, Event)`` tuples, drawn from one
  ``itertools.count`` — same-instant events pop in insertion order, so a
  simulation's event order is **bit-for-bit identical** on either backend;
* each bucket is a small binary heap of those tuples (a sorted bucket is
  a valid heap, which re-bucketing exploits);
* no wall clock, no randomness: bucket geometry adapts only to the stored
  entry times, so two runs of the same workload resize identically.

Adaptivity — every geometry rebuild is a :meth:`_resize` call that drops
lazily-cancelled entries, re-derives the day width from the median
inter-event gap of a bounded entry sample, and re-buckets in place:

* **grow** (double buckets) when live entries exceed ``4 x`` the bucket
  count; **shrink** (halve) when they fall below ``1 x`` — the hysteresis
  band prevents resize thrash at a boundary;
* **compaction** reuses the same rebuild at the current size once
  cancelled entries exceed half the structure (the heap's lazy-cancel
  rule, ported);
* a queue whose entries are much sparser than one year triggers the
  *direct-search* escape: after one fruitless year walk the queue scans
  all buckets for the earliest live entry and jumps the cursor straight
  to its day.  Repeated escapes mean the width no longer matches the
  spacing (e.g. the pending set's span drifted), so a handful of them
  also forces a same-size rebuild to re-derive it.
"""

from __future__ import annotations

import itertools
from heapq import heapify, heappop, heappush
from typing import Iterator, List, Optional, Tuple

from repro.nicsim.eventloop import _COMPACT_MIN, Event

#: Initial/minimum bucket count (power of two so index masking works).
_MIN_BUCKETS = 16
#: Upper bound on the bucket array — doubling stops here.
_MAX_BUCKETS = 1 << 20
#: Starting day width before any spacing has been observed.
_INITIAL_WIDTH_PS = 1024
#: At most this many pending entries are sampled to re-derive the width.
_WIDTH_SAMPLE = 256
#: Direct-search escapes tolerated before a same-size rebuild re-derives
#: the width (each escape is an O(nbuckets) scan — a stale width would
#: otherwise pay it on every pop until an occupancy resize happens by
#: chance).
_SPARSE_JUMP_LIMIT = 4


class CalendarScheduler:
    """Drop-in ``EventLoop`` scheduler backend (see module docstring)."""

    name = "calendar"

    __slots__ = (
        "_buckets", "_nbuckets", "_mask", "_width", "_seq", "_count",
        "_cancelled_pending", "_cur", "_window_start", "_window_end",
        "_grow_at", "_shrink_at", "_sparse_jumps", "live",
        "resizes", "compactions", "max_occupancy",
    )

    def __init__(self, width_ps: int = _INITIAL_WIDTH_PS,
                 buckets: int = _MIN_BUCKETS) -> None:
        if buckets < 1 or buckets & (buckets - 1):
            raise ValueError(f"bucket count must be a power of two: {buckets}")
        self._buckets: List[List[Tuple[int, int, Event]]] = [
            [] for _ in range(buckets)
        ]
        self._seq = itertools.count()
        #: Entries currently stored, including lazily-cancelled ones.
        self._count = 0
        #: Cancelled events still stored (lazy deletion).
        self._cancelled_pending = 0
        #: Live (non-cancelled) events currently enqueued — maintained
        #: exactly via the owner accounting on :class:`Event`.
        self.live = 0
        self.resizes = 0
        self.compactions = 0
        self.max_occupancy = 0
        self._sparse_jumps = 0
        self._set_geometry(buckets, max(1, int(width_ps)), 0)

    def _set_geometry(self, nbuckets: int, width: int, day: int) -> None:
        """Install bucket-count/width and anchor the cursor on ``day``."""
        self._nbuckets = nbuckets
        self._mask = nbuckets - 1
        self._width = width
        self._cur = day & (nbuckets - 1)
        self._window_start = day * width
        self._window_end = (day + 1) * width
        self._grow_at = (nbuckets << 2) if nbuckets < _MAX_BUCKETS else (1 << 62)
        self._shrink_at = nbuckets if nbuckets > _MIN_BUCKETS else -1
        self._sparse_jumps = 0

    # -- scheduling ------------------------------------------------------------

    def insert(self, time_ps: int, event: Event) -> None:
        heappush(self._buckets[(time_ps // self._width) & self._mask],
                 (time_ps, next(self._seq), event))
        self._count += 1
        live = self.live + 1
        self.live = live
        if time_ps < self._window_start:
            # Landed before the current search window (the cursor had
            # advanced past this day): rewind so the walk cannot skip it.
            day = time_ps // self._width
            self._cur = day & self._mask
            self._window_start = day * self._width
            self._window_end = self._window_start + self._width
        if live > self._grow_at:
            self._resize(self._nbuckets << 1)

    def pop_due(self, bound_ps: Optional[int]) -> Optional[Event]:
        """Pop the earliest live event iff its time is <= ``bound_ps``.

        ``None`` bound means unbounded.  Returns ``None`` — without
        popping — when the structure is empty or the earliest live event
        lies beyond the bound.
        """
        if self.live == 0:
            return None
        # Fast path: the cursor bucket's head is live and due in the
        # current window — the common case once the width matches the
        # event spacing (the next event is in the same or next day).
        bucket = self._buckets[self._cur]
        if bucket:
            head = bucket[0]
            if head[0] >= self._window_end or head[2].cancelled:
                head = None
        else:
            head = None
        if head is None:
            if self._locate() is None:
                return None
            bucket = self._buckets[self._cur]
            head = bucket[0]
        if bound_ps is not None and head[0] > bound_ps:
            return None
        heappop(bucket)
        event = head[2]
        event._in_sched = False
        self._count -= 1
        live = self.live - 1
        self.live = live
        if live < self._shrink_at:
            self._resize(self._nbuckets >> 1)
        return event

    def peek_time(self) -> Optional[int]:
        """Time of the earliest live entry, or ``None`` when empty."""
        if self.live == 0:
            return None
        bucket = self._buckets[self._cur]
        if bucket:
            head = bucket[0]
            if head[0] < self._window_end and not head[2].cancelled:
                return head[0]
        return self._locate()

    def _locate(self) -> Optional[int]:
        """Advance the cursor to the bucket holding the earliest live entry.

        Returns that entry's time (it is then the head of bucket ``_cur``)
        or ``None`` when no live entries remain.  Cancelled bucket heads
        met along the way are discarded.  One fruitless year walk falls
        back to a direct search over all buckets, jumping the cursor to
        the earliest entry's day (the sparse-queue escape).
        """
        if self.live == 0:
            return None
        buckets = self._buckets
        mask = self._mask
        width = self._width
        cur = self._cur
        top = self._window_end
        for _ in range(self._nbuckets):
            bucket = buckets[cur]
            while bucket:
                head = bucket[0]
                if head[2].cancelled:
                    heappop(bucket)
                    self._count -= 1
                    self._cancelled_pending -= 1
                    continue
                if head[0] < top:
                    self._cur = cur
                    self._window_start = top - width
                    self._window_end = top
                    return head[0]
                # Live head, but due in a later year: keep walking.
                break
            cur = (cur + 1) & mask
            top += width
        # Nothing due within one year of the cursor: the queue is sparse.
        # Find the globally earliest live entry and jump to its day.
        best: Optional[Tuple[int, int, Event]] = None
        for bucket in buckets:
            while bucket and bucket[0][2].cancelled:
                heappop(bucket)
                self._count -= 1
                self._cancelled_pending -= 1
            # Tuple comparison never reaches the Event: seq is unique.
            if bucket and (best is None or bucket[0] < best):
                best = bucket[0]
        if best is None:
            return None
        day = best[0] // width
        self._cur = day & mask
        self._window_start = day * width
        self._window_end = self._window_start + width
        self._sparse_jumps += 1
        if self._sparse_jumps > _SPARSE_JUMP_LIMIT and self._count > _COMPACT_MIN:
            # The width no longer matches the spacing — rebuild in place
            # to re-derive it (the cursor still points at ``best``'s day
            # afterwards: _resize anchors on the earliest live entry).
            self._resize(self._nbuckets)
            return best[0]
        return best[0]

    # -- lazy deletion ---------------------------------------------------------

    def note_cancelled(self) -> None:
        self.live -= 1
        cancelled = self._cancelled_pending + 1
        self._cancelled_pending = cancelled
        count = self._count
        if count > _COMPACT_MIN and (cancelled << 1) > count:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries bucket-by-bucket (O(n)).

        Cheaper than a :meth:`_resize`: geometry is untouched, each
        bucket is filtered and re-heapified at C speed, and the cursor
        stays put.  Occupancy-driven width changes still happen through
        :meth:`_resize` — a compaction only removes dead weight.
        """
        count = 0
        for bucket in self._buckets:
            bucket[:] = [entry for entry in bucket if not entry[2].cancelled]
            heapify(bucket)
            count += len(bucket)
        self._count = count
        self._cancelled_pending = 0
        self.compactions += 1

    # -- adaptive geometry -----------------------------------------------------

    def _pick_width(self, times: List[int]) -> int:
        """Day width from the median inter-event gap of a sample.

        The median (not the mean) keeps one far-future outlier — e.g. a
        single long timeout among thousands of short timers — from
        stretching every day.  Twice the median gap targets ~2 entries
        per bucket-day, the classic calendar-queue sweet spot.
        """
        times = sorted(set(times))
        if len(times) < 2:
            return self._width
        gaps = sorted(b - a for a, b in zip(times, times[1:]))
        return max(1, 2 * gaps[len(gaps) // 2])

    def _resize(self, nbuckets: int) -> None:
        """Re-bucket every live entry into ``nbuckets`` buckets (O(n)).

        Cancelled entries are dropped for free, the day width is
        re-derived from a bounded sample of the survivors, and the cursor
        re-anchors on the earliest one (an empty queue keeps its window
        position — inserts rewind the cursor if they land earlier).
        Doubling/halving amortizes the rebuild to O(1) per operation.
        """
        entries = [
            entry
            for bucket in self._buckets
            for entry in bucket
            if not entry[2].cancelled
        ]
        width = self._pick_width([entry[0] for entry in entries[:_WIDTH_SAMPLE]])
        first = min(entries)[0] if entries else self._window_start
        self._set_geometry(nbuckets, width, first // width)
        mask = self._mask
        buckets: List[List[Tuple[int, int, Event]]] = [
            [] for _ in range(nbuckets)
        ]
        for entry in entries:
            buckets[(entry[0] // width) & mask].append(entry)
        occupancy = self.max_occupancy
        for bucket in buckets:
            bucket.sort()  # sorted == heap-ordered for a list
            if len(bucket) > occupancy:
                occupancy = len(bucket)
        self._buckets = buckets
        self._count = len(entries)
        self._cancelled_pending = 0
        self.max_occupancy = occupancy
        self.resizes += 1

    # -- introspection (batch detector, metrics) -------------------------------

    def entry_count(self) -> int:
        """Entries currently stored, including lazily-cancelled ones."""
        return self._count

    def iter_entries(self) -> Iterator[Tuple[int, Event]]:
        """Yield ``(time_ps, event)`` for every stored entry."""
        for bucket in self._buckets:
            for time_ps, _seq, event in bucket:
                yield time_ps, event

    def metrics(self) -> dict:
        """Gauge callables published as ``loop.sched.*`` by the env.

        ``max_occupancy`` is a high-water mark sampled at every geometry
        rebuild (tracking it per insert would tax the hot path).
        """
        return {
            "entries": self.entry_count,
            "live": lambda: self.live,
            "compactions": lambda: self.compactions,
            "buckets": lambda: self._nbuckets,
            "day_width_ps": lambda: self._width,
            "resizes": lambda: self.resizes,
            "max_occupancy": lambda: self.max_occupancy,
        }
