"""CPU cycle-cost model.

The paper quantifies packet-generation performance as CPU cycles per packet
(Section 5.1: the clock frequency is lowered until the CPU becomes the
bottleneck).  This module makes that methodology executable: userscript
operations are charged costs from a table calibrated to Tables 1 and 2 of
the paper, and throughput falls out of ``frequency / cycles_per_packet``.

Each operation cost has two parts:

* ``cycles`` — pure compute, scales with the core frequency;
* ``stall_ns`` — memory/IO stalls (DMA descriptor writes, mempool metadata),
  constant in wall time, hence *more* cycles at higher frequency.

The split is what reconciles the paper's own numbers: Pktgen-DPDK does
14.12 Mpps at 1.5 GHz (106 cycles/pkt) yet needs 1.7 GHz for line rate
(which would be 114 cycles/pkt) — only a frequency-dependent term explains
both.  Costs quoted in Tables 1/2 are reproduced exactly at the reference
frequency of 2.4 GHz (the Xeon E5-2620 v3 used in the paper).

Calibration (cost at frequency f in GHz = cycles + stall_ns * f):

==============================  ========  =========  ==============
operation                        cycles    stall_ns   @2.4 GHz
==============================  ========  =========  ==============
packet transmission (alloc+tx)     1.0      31.25      76.0
modification (one cacheline)       9.1       0          9.1
modification (two cachelines)     15.0       0         15.0
IP checksum offload                0.2       6.25      15.2
UDP checksum offload               0.3      13.667     33.1
TCP checksum offload               0.4      14.0       34.0
==============================  ========  =========  ==============

Randomized / counter-based field modification costs (Table 2) are stored as
measured lookup tables over the number of fields with the paper's marginal
costs (≈17 cycles per random field, ≈1 cycle per counter field) used beyond
the measured points.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError

#: Frequency at which the paper's cycle tables were measured.
REFERENCE_FREQ_HZ = 2_400_000_000


@dataclass(frozen=True)
class OpCost:
    """Cost of one per-packet operation: pure cycles + memory stall."""

    cycles: float
    stall_ns: float = 0.0
    #: Relative standard deviation of run-to-run noise, from the paper's
    #: reported uncertainties (e.g. 76.0 ± 0.8 → ~1 %).
    rel_std: float = 0.01

    def at(self, freq_hz: float) -> float:
        """Mean cost in cycles per packet at the given core frequency."""
        return self.cycles + self.stall_ns * freq_hz / 1e9


def _interp_table(table: Dict[int, float], n: int, marginal: float) -> float:
    """Piecewise-linear interpolation over a measured {n: cost} table.

    Beyond the largest measured point the stated marginal cost per field is
    used; between points costs are interpolated linearly.
    """
    if n <= 0:
        return 0.0
    keys = sorted(table)
    if n in table:
        return table[n]
    if n > keys[-1]:
        return table[keys[-1]] + marginal * (n - keys[-1])
    if n < keys[0]:
        return table[keys[0]] * n / keys[0]
    for low, high in zip(keys, keys[1:]):
        if low < n < high:
            frac = (n - low) / (high - low)
            return table[low] + frac * (table[high] - table[low])
    raise AssertionError("unreachable")


@dataclass
class OpCosts:
    """The full operation-cost table; every value can be overridden."""

    tx_base: OpCost = field(default_factory=lambda: OpCost(1.0, 31.25, 0.011))
    modify: OpCost = field(default_factory=lambda: OpCost(9.1, 0.0, 0.13))
    modify_two_cachelines: OpCost = field(default_factory=lambda: OpCost(15.0, 0.0, 0.087))
    offload_ip: OpCost = field(default_factory=lambda: OpCost(0.2, 6.25, 0.079))
    offload_udp: OpCost = field(default_factory=lambda: OpCost(0.3, 13.4, 0.106))
    offload_tcp: OpCost = field(default_factory=lambda: OpCost(0.4, 14.0, 0.097))
    #: Measured costs of generating+writing n random fields (Table 2).
    random_fields: Dict[int, float] = field(
        default_factory=lambda: {1: 32.3, 2: 39.8, 4: 66.0, 8: 133.5}
    )
    #: Measured costs of n wrapping-counter fields (Table 2).
    counter_fields: Dict[int, float] = field(
        default_factory=lambda: {1: 27.1, 2: 33.1, 4: 38.1, 8: 41.7}
    )
    #: Marginal cost per additional random field (Section 5.6.2).
    random_marginal: float = 17.0
    #: Marginal cost per additional counter field.
    counter_marginal: float = 1.0
    #: Cost of receiving a batch of packets, per packet.
    rx_base: OpCost = field(default_factory=lambda: OpCost(1.0, 29.0, 0.02))
    #: Fixed cost per send *call* (driver entry, doorbell write).  Zero by
    #: default: Table 1's tx cost was measured at the standard batch size,
    #: so the call overhead is already amortized into ``tx_base``.  Ablation
    #: benches set this to expose why batching matters (Section 4.2).
    tx_call_overhead: OpCost = field(default_factory=lambda: OpCost(0.0, 0.0, 0.0))
    #: Software checksum calculation: the alternative the paper dismisses
    #: ("offloading checksums is not free but still cheaper than
    #: calculating them in software").  Cost grows with the summed bytes.
    sw_checksum_fixed_cycles: float = 30.0
    sw_checksum_per_byte: float = 0.75

    def software_checksum_cost(self, n_bytes: int) -> float:
        """Cycles to checksum ``n_bytes`` on the CPU."""
        return self.sw_checksum_fixed_cycles + self.sw_checksum_per_byte * n_bytes

    def random_cost(self, n_fields: int) -> float:
        """Cycles to generate and write ``n_fields`` random header fields."""
        return _interp_table(self.random_fields, n_fields, self.random_marginal)

    def counter_cost(self, n_fields: int) -> float:
        """Cycles to update and write ``n_fields`` wrapping counters."""
        return _interp_table(self.counter_fields, n_fields, self.counter_marginal)


class CycleCostModel:
    """Charges per-packet costs and converts them to simulated time.

    A single model instance is shared by all cores of a simulation so that
    noise is reproducible from one seed.
    """

    def __init__(self, costs: Optional[OpCosts] = None, seed: int = 0,
                 noisy: bool = True) -> None:
        self.costs = costs or OpCosts()
        self.rng = random.Random(seed)
        self.noisy = noisy

    def _noise(self, mean: float, rel_std: float) -> float:
        if not self.noisy or rel_std <= 0:
            return mean
        return max(0.0, self.rng.gauss(mean, mean * rel_std))

    def op_cycles(self, op: OpCost, freq_hz: float, batch: int = 1) -> float:
        """Cycles for ``batch`` packets of one operation (noise per batch)."""
        return self._noise(op.at(freq_hz), op.rel_std) * batch

    def random_fields_cycles(self, n_fields: int, freq_hz: float, batch: int = 1) -> float:
        cost = self.costs.random_cost(n_fields)
        return self._noise(cost, 0.01) * batch

    def counter_fields_cycles(self, n_fields: int, freq_hz: float, batch: int = 1) -> float:
        cost = self.costs.counter_cost(n_fields)
        return self._noise(cost, 0.03) * batch


class CpuCore:
    """A simulated CPU core a slave task is pinned to.

    Frequency is configurable in the 100 MHz steps the paper uses
    (Section 5.1); the busy-cycle counter lets tests derive cycles/packet
    exactly as the paper's methodology prescribes.
    """

    def __init__(self, core_id: int, freq_hz: float = REFERENCE_FREQ_HZ,
                 model: Optional[CycleCostModel] = None,
                 tracer=None) -> None:
        if freq_hz <= 0:
            raise ConfigurationError(f"invalid core frequency: {freq_hz}")
        self.core_id = core_id
        self.freq_hz = float(freq_hz)
        self.model = model or CycleCostModel()
        self.busy_cycles = 0.0
        #: Optional :class:`repro.trace.Tracer` recording cycle charges.
        self.tracer = tracer

    def set_frequency(self, freq_hz: float) -> None:
        if freq_hz <= 0:
            raise ConfigurationError(f"invalid core frequency: {freq_hz}")
        self.freq_hz = float(freq_hz)

    def cycles_to_ps(self, cycles: float) -> int:
        """Wall time consumed by ``cycles`` at the core's frequency."""
        return max(0, round(cycles / self.freq_hz * 1e12))

    def charge(self, cycles: float) -> int:
        """Account busy cycles and return the elapsed picoseconds.

        Called once per op batch on the send/receive hot path; the tracer
        guard reads the attribute into a local once so the disabled case
        stays a single test (the PR 1 zero-cost property).
        """
        self.busy_cycles += cycles
        elapsed_ps = round(cycles / self.freq_hz * 1e12)
        if elapsed_ps < 0:
            elapsed_ps = 0
        tracer = self.tracer
        if tracer is not None:
            tracer.emit("cpu", "cpu_charge", core=self.core_id,
                        cycles=round(cycles, 3), ps=elapsed_ps)
        return elapsed_ps


def predict_throughput_pps(total_cycles_per_pkt: float, freq_hz: float) -> float:
    """The paper's Section 5.6.3 estimator: rate = frequency / cost."""
    if total_cycles_per_pkt <= 0:
        raise ConfigurationError("cycles per packet must be positive")
    return freq_hz / total_cycles_per_pkt


def frequency_steps(min_ghz: float = 1.2, max_ghz: float = 2.4,
                    step_mhz: int = 100) -> Tuple[float, ...]:
    """The Xeon E5-2620 v3 frequency ladder used in Section 5 (in Hz)."""
    steps = []
    freq = round(min_ghz * 10)
    top = round(max_ghz * 10)
    while freq <= top:
        steps.append(freq * 1e8)
        freq += step_mhz // 100
    return tuple(steps)
