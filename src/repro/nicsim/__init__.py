"""Simulated hardware substrate.

This package replaces the testbed hardware of the paper — Intel NICs, wires,
and down-clocked Xeon CPUs — with a deterministic discrete-event simulation:

* :mod:`repro.nicsim.eventloop` — the event engine and coroutine processes,
* :mod:`repro.nicsim.clock` — per-NIC PTP clocks with drift and granularity,
* :mod:`repro.nicsim.cpu` — cycle-cost model for userscript operations,
* :mod:`repro.nicsim.nic` — chip descriptors and NIC port state
  (rings, FIFOs, rate limiters, timestamp units, counters),
* :mod:`repro.nicsim.link` — wires: serialization, propagation, PHY jitter.

All timing constants are calibrated to the values the paper reports; see
DESIGN.md section 5 for the calibration table.
"""

from repro.nicsim.eventloop import EventLoop, Process, Signal
from repro.nicsim.clock import NicClock
from repro.nicsim.cpu import CpuCore, CycleCostModel, OpCosts
from repro.nicsim.link import Cable, Wire
from repro.nicsim.nic import (
    CHIP_82580,
    CHIP_82599,
    CHIP_X520,
    CHIP_X540,
    CHIP_XL710,
    ChipModel,
    NicPort,
)

__all__ = [
    "Cable",
    "CHIP_82580",
    "CHIP_82599",
    "CHIP_X520",
    "CHIP_X540",
    "CHIP_XL710",
    "ChipModel",
    "CpuCore",
    "CycleCostModel",
    "EventLoop",
    "NicClock",
    "NicPort",
    "OpCosts",
    "Process",
    "Signal",
    "Wire",
]
