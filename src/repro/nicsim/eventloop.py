"""Deterministic discrete-event loop.

Time is integer picoseconds.  Events scheduled for the same instant fire in
insertion order (a monotonically increasing sequence number breaks ties), so
simulations are reproducible bit-for-bit given the same seeds.

Two execution styles coexist:

* **callback style** — components such as NIC MACs schedule plain callbacks;
* **process style** — tasks are generator coroutines wrapped in
  :class:`Process`; they ``yield`` delays (picoseconds) or :class:`Signal`
  objects to block.  This is how userscript slave tasks run (the analog of
  MoonGen's one-LuaJIT-VM-per-core model).

Hot-path structure (docs/PERFORMANCE.md):

* **pluggable scheduler** — the time-ordered structure behind
  ``schedule_at`` lives in a scheduler object: :class:`HeapScheduler`
  (binary heap, the default) or
  :class:`repro.nicsim.calqueue.CalendarScheduler` (amortized O(1)
  calendar queue for many-timer workloads).  Select with
  ``EventLoop(scheduler=...)``, ``MoonGenEnv(scheduler=...)``, or the
  ``REPRO_SCHEDULER`` environment variable.  Both backends share the
  ``(time_ps, seq, Event)`` entry format and one sequence counter, so
  same-instant ordering — and therefore every simulation result — is
  bit-for-bit identical across them.
* **same-instant fast lane** — events scheduled for the *current* instant
  (``schedule(0, ...)``, the process-resume pattern) go into a plain FIFO
  deque instead of the scheduler: O(1), no sequence number.  Ordering is
  preserved exactly: every scheduler entry at the current instant was
  scheduled before ``now`` reached it and therefore precedes every
  fast-lane entry, which are kept in insertion order by the deque.
* **lazy-deletion compaction** — ``Event.cancel`` only sets a flag; the
  scheduler entry stays until popped.  Long runs that cancel many timers
  (e.g. ``wait_any`` timeouts) would otherwise grow the structure without
  bound, so each scheduler counts lingering cancelled entries and rebuilds
  once they exceed half its size.
* **exact O(1) live counts** — every event knows its accounting owner
  (the scheduler, or the loop for lane events) and whether it is still
  enqueued, so cancels decrement the right live counter exactly once and
  cancelling an already-fired handle (the MAC-wakeup and
  ``wait_any``-timeout patterns) is a no-op.  ``pending_events`` is a
  counter read, not a scan.
* ``run()`` keeps the hot structures in locals and inlines the step
  logic; the tracer hook costs one local ``is not None`` test per event
  when disabled.  Attach tracers before calling ``run()``.
"""

from __future__ import annotations

import heapq
import itertools
import os
import time
from collections import Counter as _Counter, deque
from typing import Any, Callable, Deque, Generator, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError, SimAborted, SimulationError

#: Compact the scheduler when cancelled entries exceed this fraction of it.
_COMPACT_FRACTION = 0.5
#: ...but never bother compacting structures smaller than this.
_COMPACT_MIN = 64


class Event:
    """A scheduled callback; cancellable until it fires."""

    __slots__ = ("time_ps", "callback", "cancelled", "_owner", "_in_sched")

    def __init__(self, time_ps: int, callback: Callable[[], None],
                 owner: Optional[Any] = None) -> None:
        self.time_ps = time_ps
        self.callback = callback
        self.cancelled = False
        # Accounting owner for lazy deletion: the scheduler holding this
        # event, or the loop itself for fast-lane events.  ``_in_sched``
        # is cleared when the event is popped to fire, so cancelling a
        # stale handle afterwards cannot decrement a live counter twice.
        self._owner = owner
        self._in_sched = owner is not None

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self._in_sched:
            self._in_sched = False
            self._owner.note_cancelled()


class HeapScheduler:
    """The default binary-heap scheduler: O(log n) insert/extract.

    Entries are ``(time_ps, seq, Event)`` tuples ordered by the tuple
    itself; ``seq`` makes the order total, so the :class:`Event` is never
    compared.  ``EventLoop.run()`` inlines directly against ``_queue``
    for the hot path — any replacement scheduler instead goes through the
    generic :meth:`pop_due` loop.
    """

    name = "heap"

    __slots__ = ("_queue", "_seq", "_cancelled_pending", "live", "compactions")

    def __init__(self) -> None:
        self._queue: List[Tuple[int, int, Event]] = []
        self._seq = itertools.count()
        #: Cancelled events still sitting in the heap (lazy deletion).
        self._cancelled_pending = 0
        #: Live (non-cancelled) events currently enqueued — maintained
        #: exactly via the owner accounting on :class:`Event`.
        self.live = 0
        self.compactions = 0

    # -- scheduling ------------------------------------------------------------

    def insert(self, time_ps: int, event: Event) -> None:
        heapq.heappush(self._queue, (time_ps, next(self._seq), event))
        self.live += 1

    def pop_due(self, bound_ps: Optional[int]) -> Optional[Event]:
        """Pop the earliest live event iff its time is <= ``bound_ps``.

        ``None`` bound means unbounded.  Returns ``None`` — without
        popping — when the structure is empty or the earliest live event
        lies beyond the bound.
        """
        queue = self._queue
        while queue:
            entry = queue[0]
            event = entry[2]
            if event.cancelled:
                heapq.heappop(queue)
                self._cancelled_pending -= 1
                continue
            if bound_ps is not None and entry[0] > bound_ps:
                return None
            heapq.heappop(queue)
            event._in_sched = False
            self.live -= 1
            return event
        return None

    def peek_time(self) -> Optional[int]:
        """Time of the earliest live entry, or ``None`` when empty."""
        queue = self._queue
        while queue:
            time_ps, _, event = queue[0]
            if event.cancelled:
                heapq.heappop(queue)
                self._cancelled_pending -= 1
                continue
            return time_ps
        return None

    # -- lazy deletion ---------------------------------------------------------

    def note_cancelled(self) -> None:
        self.live -= 1
        self._cancelled_pending += 1
        queue = self._queue
        if (len(queue) > _COMPACT_MIN
                and self._cancelled_pending > len(queue) * _COMPACT_FRACTION):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and rebuild the heap (O(n)).

        Mutates the list in place: ``run()`` keeps the heap in a local,
        so rebinding ``_queue`` would strand it on a stale list.
        """
        queue = self._queue
        queue[:] = [entry for entry in queue if not entry[2].cancelled]
        heapq.heapify(queue)
        self._cancelled_pending = 0
        self.compactions += 1

    # -- introspection (batch detector, metrics) -------------------------------

    def entry_count(self) -> int:
        """Entries currently stored, including lazily-cancelled ones."""
        return len(self._queue)

    def iter_entries(self) -> Iterator[Tuple[int, Event]]:
        """Yield ``(time_ps, event)`` for every stored entry, heap order."""
        for time_ps, _seq, event in self._queue:
            yield time_ps, event

    def metrics(self) -> dict:
        """Gauge callables published as ``loop.sched.*`` by the env."""
        return {
            "entries": self.entry_count,
            "live": lambda: self.live,
            "compactions": lambda: self.compactions,
        }


class Watchdog:
    """Opt-in simulation watchdogs for :meth:`EventLoop.run`.

    Complements the existing ``max_events`` budget with two guards a
    long unattended campaign actually needs (docs/RESILIENCE.md):

    * ``wall_deadline_s`` — a *host wall-clock* ceiling for one ``run()``
      call.  A simulation that is making sim-time progress but will
      never finish within the operator's patience aborts with
      :class:`~repro.errors.SimAborted` instead of holding a worker
      forever.  Checked every ``check_every`` events to keep the per-
      event cost at one integer test.
    * ``max_zero_advance`` — a livelock detector: K *consecutive* events
      fired without the simulated clock advancing means some component
      is rescheduling itself at the current instant forever (the classic
      ``yield None`` spin).  ``max_events`` would eventually catch it,
      but only after minutes of useless work; this trips in micro-
      seconds and names the culprits.

    On a trip the loop raises :class:`~repro.errors.SimAborted` carrying
    a diagnostics snapshot: the simulated clock, live pending-event
    counts, the top pending-event owners (via the scheduler seam's
    ``iter_entries``), and — when ``registry`` is attached
    (``MoonGenEnv(metrics=..., watchdog=...)`` wires it) — the current
    value of every live metric.

    Both guards are opt-in and the watchdog object is reusable across
    ``run()`` calls; ``None`` fields disable the corresponding guard.
    """

    __slots__ = ("wall_deadline_s", "max_zero_advance", "check_every",
                 "registry")

    def __init__(self, wall_deadline_s: Optional[float] = None,
                 max_zero_advance: Optional[int] = None,
                 check_every: int = 4096,
                 registry: Any = None) -> None:
        if wall_deadline_s is not None and wall_deadline_s <= 0:
            raise ConfigurationError(
                f"wall_deadline_s must be positive, got {wall_deadline_s}")
        if max_zero_advance is not None and max_zero_advance < 1:
            raise ConfigurationError(
                f"max_zero_advance must be >= 1, got {max_zero_advance}")
        if int(check_every) < 1:
            raise ConfigurationError(
                f"check_every must be >= 1, got {check_every}")
        self.wall_deadline_s = wall_deadline_s
        self.max_zero_advance = max_zero_advance
        self.check_every = int(check_every)
        self.registry = registry


def resolve_scheduler(spec: Any = None) -> Any:
    """Turn a scheduler spec into a scheduler instance.

    ``spec`` may be ``None`` (consult the ``REPRO_SCHEDULER`` environment
    variable, default ``"heap"``), the name ``"heap"`` or ``"calendar"``,
    or an already-constructed scheduler object (returned as-is).
    """
    if spec is None:
        spec = os.environ.get("REPRO_SCHEDULER", "").strip() or "heap"
    if isinstance(spec, str):
        name = spec.strip().lower()
        if name == "heap":
            return HeapScheduler()
        if name == "calendar":
            from repro.nicsim.calqueue import CalendarScheduler
            return CalendarScheduler()
        raise ConfigurationError(
            f"unknown scheduler {spec!r}; expected 'heap' or 'calendar'"
        )
    return spec


class EventLoop:
    """The simulation scheduler."""

    def __init__(self, scheduler: Any = None) -> None:
        #: The pluggable time-ordered backend (:func:`resolve_scheduler`).
        self.scheduler = resolve_scheduler(scheduler)
        # Heap fast path for schedule_at: push straight onto the heap list
        # (compaction mutates it in place, so the cached reference stays
        # valid).  Other backends go through scheduler.insert().
        if type(self.scheduler) is HeapScheduler:
            self._heap_queue: Optional[List[Tuple[int, int, Event]]] = (
                self.scheduler._queue
            )
            self._heap_seq = self.scheduler._seq
        else:
            self._heap_queue = None
            self._heap_seq = None
        #: Same-instant FIFO fast lane: events for the current ``now_ps``.
        self._lane: Deque[Event] = deque()
        #: Live (non-cancelled) events in the lane — exact, see Event.
        self._lane_live = 0
        self.now_ps = 0
        self._running = False
        self._processes: List["Process"] = []
        #: Horizon of the innermost active ``run(until_ps=...)`` call, used
        #: by fast-forward helpers to bound arithmetic time skips.
        self._until_ps: Optional[int] = None
        #: Total events executed by :meth:`run`/:meth:`step` over the loop's
        #: lifetime (the perf harness's events/sec numerator).
        self.events_processed = 0
        #: Of those, events taken from the same-instant fast lane by
        #: :meth:`run` — ``lane_events_processed / events_processed`` is
        #: the fast-lane hit ratio published as ``loop.lane_hit_ratio``.
        self.lane_events_processed = 0
        #: Live-count cell for metrics (``repro.metrics``): ``None`` (the
        #: default) keeps :meth:`run`'s per-event cost at one local test,
        #: like the tracer hook; a ``[events, lane_events]`` list makes
        #: the in-progress counts of the *current* ``run()`` call visible
        #: to snapshot samplers (the totals above only flush on exit).
        self.live_counts = None
        #: Optional :class:`repro.trace.Tracer`; ``None`` keeps every
        #: instrumentation site on its zero-cost fast path.
        self.tracer = None
        #: Batch dispatch hook (``repro.batch``): a :class:`BatchTier`
        #: shared by every component on this loop, or ``None``.  Ports
        #: whose ``fast_forward`` flag is set route homogeneous event
        #: trains through ``batch.execute(port, start_ps)`` instead of
        #: scheduling them one event at a time; the tier owns the
        #: run-detection rules and the fallback accounting.
        self.batch = None
        #: Optional :class:`Watchdog`; ``None`` (default) keeps ``run()``
        #: on the uninstrumented fast paths.  With one armed, ``run()``
        #: dispatches to :meth:`_run_watched`, which adds a wall-clock
        #: deadline and a zero-advance livelock detector around the
        #: generic scheduler protocol.
        self.watchdog: Optional[Watchdog] = None

    @property
    def now_ns(self) -> float:
        """Current simulation time in nanoseconds."""
        return self.now_ps / 1000.0

    def schedule(self, delay_ps: int, callback: Callable[[], None]) -> Event:
        """Run ``callback`` after ``delay_ps`` picoseconds."""
        if delay_ps < 0:
            raise SimulationError(f"cannot schedule into the past: {delay_ps}")
        return self.schedule_at(self.now_ps + int(delay_ps), callback)

    def schedule_at(self, time_ps: int, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at absolute time ``time_ps``."""
        time_ps = int(time_ps)
        if time_ps == self.now_ps:
            # Same-instant fast lane: plain FIFO append.  Every scheduler
            # entry at this instant predates it, so scheduler-first keeps
            # seq order.
            event = Event(time_ps, callback, self)
            self._lane.append(event)
            self._lane_live += 1
            return event
        if time_ps < self.now_ps:
            raise SimulationError(
                f"cannot schedule at {time_ps} ps, now is {self.now_ps} ps"
            )
        scheduler = self.scheduler
        event = Event(time_ps, callback, scheduler)
        queue = self._heap_queue
        if queue is not None:
            heapq.heappush(queue, (time_ps, next(self._heap_seq), event))
            scheduler.live += 1
        else:
            scheduler.insert(time_ps, event)
        return event

    # -- lazy deletion ---------------------------------------------------------

    def note_cancelled(self) -> None:
        """A live fast-lane event was cancelled (owner-accounting hook)."""
        self._lane_live -= 1

    @property
    def pending_events(self) -> int:
        """Live (non-cancelled) events currently scheduled.

        An O(1) counter read: every event carries its accounting owner
        and an enqueued flag, so cancels decrement exactly once and
        cancelling an already-fired handle (the MAC-wakeup and
        ``wait_any``-timeout patterns) changes nothing.
        """
        return self.scheduler.live + self._lane_live

    def next_event_time_ps(self) -> Optional[int]:
        """Time of the next live event, or ``None`` if the loop is empty.

        Fast-forward helpers use this (plus the active ``run`` horizon,
        see :meth:`fast_forward_bound_ps`) to know how far state may be
        advanced arithmetically without skipping an observer.
        """
        if self._lane_live:
            return self.now_ps
        return self.scheduler.peek_time()

    def fast_forward_bound_ps(self, limit_ps: Optional[int] = None) -> Optional[int]:
        """Latest instant a batch/fast-forward may advance state to, exclusive.

        ``None`` means unbounded (empty queue, no active horizon).  Inside
        ``run(until_ps=...)`` the horizon caps the bound so counters never
        reflect frames the event-driven path would not have sent yet.
        ``limit_ps`` lets callers impose an extra cap (e.g. the batch
        tier's configurable train horizon); the returned bound is the
        minimum of all three.
        """
        bound = self.next_event_time_ps()
        if self._until_ps is not None:
            bound = self._until_ps if bound is None else min(bound, self._until_ps)
        if limit_ps is not None:
            bound = limit_ps if bound is None else min(bound, limit_ps)
        return bound

    # -- execution -------------------------------------------------------------

    def _next_event(self) -> Optional[Event]:
        """Pop the next live event in deterministic order (or ``None``)."""
        lane = self._lane
        scheduler = self.scheduler
        while True:
            if lane:
                # Scheduler entries at the current instant predate lane
                # entries, so they fire first.
                event = scheduler.pop_due(self.now_ps)
                if event is not None:
                    return event
                event = lane.popleft()
                if event.cancelled:
                    continue
                event._in_sched = False
                self._lane_live -= 1
                return event
            return scheduler.pop_due(None)

    def step(self) -> bool:
        """Run the next pending event; returns False if none are left."""
        event = self._next_event()
        if event is None:
            return False
        self.now_ps = event.time_ps
        if self.tracer is not None:
            self.tracer.emit("event", "event_fired",
                             cb=_callback_name(event.callback))
        event.callback()
        self.events_processed += 1
        return True

    def run(self, until_ps: Optional[int] = None, max_events: int = 50_000_000) -> None:
        """Run events until the queue drains or ``until_ps`` is reached.

        ``max_events`` guards against runaway simulations; exceeding it is a
        bug in the caller, not a normal exit.

        The default :class:`HeapScheduler` gets a fully inlined loop (the
        hottest code in the simulator); other schedulers run through the
        generic :meth:`~HeapScheduler.pop_due` protocol.  Both paths fire
        the same events in the same order with the same clock updates.

        With a :class:`Watchdog` armed the watched loop runs instead —
        same events, same order, same clocks, plus the wall-clock
        deadline and livelock guards.
        """
        if self.watchdog is not None:
            self._run_watched(until_ps, max_events)
        elif type(self.scheduler) is HeapScheduler:
            self._run_heap(until_ps, max_events)
        else:
            self._run_generic(until_ps, max_events)

    def _run_heap(self, until_ps: Optional[int], max_events: int) -> None:
        scheduler = self.scheduler
        lane = self._lane
        queue = scheduler._queue
        pop = heapq.heappop
        push = heapq.heappush
        tracer = self.tracer
        live = self.live_counts
        now = self.now_ps
        count = 0
        lane_count = 0
        prev_until = self._until_ps
        self._until_ps = until_ps
        try:
            # A horizon already in the past fires nothing (events at `now`
            # would overshoot it), mirroring the heap-only behaviour; past
            # entry the check never trips — the heap branch breaks first,
            # and lane events are always at `now`.
            while until_ps is None or until_ps >= now:
                # Inline _next_event(): this loop is the hottest code in the
                # simulator, every attribute load counts.
                if lane:
                    if queue and queue[0][0] <= now:
                        entry = pop(queue)
                        event = entry[2]
                        if event.cancelled:
                            scheduler._cancelled_pending -= 1
                            continue
                        event._in_sched = False
                        scheduler.live -= 1
                    else:
                        event = lane.popleft()
                        if event.cancelled:
                            continue
                        event._in_sched = False
                        self._lane_live -= 1
                        lane_count += 1
                elif queue:
                    entry = pop(queue)
                    event = entry[2]
                    if event.cancelled:
                        scheduler._cancelled_pending -= 1
                        continue
                    time_ps = entry[0]
                    if until_ps is not None and time_ps > until_ps:
                        # Crossed the horizon: put the (rare) overshooting
                        # event back — peeking every iteration costs more.
                        push(queue, entry)
                        break
                    event._in_sched = False
                    scheduler.live -= 1
                    now = time_ps
                    self.now_ps = time_ps
                else:
                    break
                if tracer is not None:
                    tracer.emit("event", "event_fired",
                                cb=_callback_name(event.callback))
                event.callback()
                count += 1
                if live is not None:
                    live[0] = count
                    live[1] = lane_count
                if count > max_events:
                    raise SimulationError(
                        f"event budget exhausted after {max_events} events at "
                        f"{self.now_ps} ps"
                    )
        finally:
            self._until_ps = prev_until
            self.events_processed += count
            self.lane_events_processed += lane_count
            if live is not None:
                live[0] = 0
                live[1] = 0
        if until_ps is not None and until_ps > self.now_ps:
            self.now_ps = until_ps

    def _run_generic(self, until_ps: Optional[int], max_events: int) -> None:
        """Scheduler-agnostic run loop — same order and clocks as above."""
        lane = self._lane
        pop_due = self.scheduler.pop_due
        tracer = self.tracer
        live = self.live_counts
        now = self.now_ps
        count = 0
        lane_count = 0
        prev_until = self._until_ps
        self._until_ps = until_ps
        try:
            while until_ps is None or until_ps >= now:
                if lane:
                    # Scheduler entries at the current instant fire before
                    # lane entries (seq order, see schedule_at).
                    event = pop_due(now)
                    if event is None:
                        event = lane.popleft()
                        if event.cancelled:
                            continue
                        event._in_sched = False
                        self._lane_live -= 1
                        lane_count += 1
                else:
                    event = pop_due(until_ps)
                    if event is None:
                        break
                    time_ps = event.time_ps
                    now = time_ps
                    self.now_ps = time_ps
                if tracer is not None:
                    tracer.emit("event", "event_fired",
                                cb=_callback_name(event.callback))
                event.callback()
                count += 1
                if live is not None:
                    live[0] = count
                    live[1] = lane_count
                if count > max_events:
                    raise SimulationError(
                        f"event budget exhausted after {max_events} events at "
                        f"{self.now_ps} ps"
                    )
        finally:
            self._until_ps = prev_until
            self.events_processed += count
            self.lane_events_processed += lane_count
            if live is not None:
                live[0] = 0
                live[1] = 0
        if until_ps is not None and until_ps > self.now_ps:
            self.now_ps = until_ps

    def _run_watched(self, until_ps: Optional[int], max_events: int) -> None:
        """The generic run loop wrapped in watchdog guards.

        Fires the same events in the same order with the same clock
        updates as :meth:`_run_heap`/:meth:`_run_generic` — the guards
        only *observe* (a wall-clock read every ``check_every`` events,
        one comparison per event for the zero-advance counter) and abort
        via :class:`~repro.errors.SimAborted` when tripped.
        """
        watchdog = self.watchdog
        deadline = (time.monotonic() + watchdog.wall_deadline_s
                    if watchdog.wall_deadline_s is not None else None)
        max_zero = watchdog.max_zero_advance
        check_every = watchdog.check_every
        lane = self._lane
        pop_due = self.scheduler.pop_due
        tracer = self.tracer
        live = self.live_counts
        now = self.now_ps
        zero_advance = 0
        count = 0
        lane_count = 0
        prev_until = self._until_ps
        self._until_ps = until_ps
        try:
            while until_ps is None or until_ps >= now:
                if lane:
                    event = pop_due(now)
                    if event is None:
                        event = lane.popleft()
                        if event.cancelled:
                            continue
                        event._in_sched = False
                        self._lane_live -= 1
                        lane_count += 1
                else:
                    event = pop_due(until_ps)
                    if event is None:
                        break
                    time_ps = event.time_ps
                    if time_ps > now:
                        zero_advance = -1  # this event advances the clock
                    now = time_ps
                    self.now_ps = time_ps
                if tracer is not None:
                    tracer.emit("event", "event_fired",
                                cb=_callback_name(event.callback))
                event.callback()
                count += 1
                zero_advance += 1
                if live is not None:
                    live[0] = count
                    live[1] = lane_count
                if count > max_events:
                    raise SimulationError(
                        f"event budget exhausted after {max_events} events at "
                        f"{self.now_ps} ps"
                    )
                if max_zero is not None and zero_advance >= max_zero:
                    raise SimAborted(
                        f"livelock: {zero_advance} consecutive events "
                        f"without sim-time progress at {self.now_ps} ps",
                        self.diagnostics_snapshot(
                            "livelock", count, zero_advance))
                if deadline is not None and count % check_every == 0 \
                        and time.monotonic() > deadline:
                    raise SimAborted(
                        f"wall-clock deadline: run() exceeded "
                        f"{watchdog.wall_deadline_s} s after {count} events "
                        f"at {self.now_ps} ps",
                        self.diagnostics_snapshot(
                            "wall_deadline", count, zero_advance))
        finally:
            self._until_ps = prev_until
            self.events_processed += count
            self.lane_events_processed += lane_count
            if live is not None:
                live[0] = 0
                live[1] = 0
        if until_ps is not None and until_ps > self.now_ps:
            self.now_ps = until_ps

    def diagnostics_snapshot(self, reason: str, events_run: int = 0,
                             zero_advance: int = 0, top: int = 8) -> dict:
        """What the simulation looks like *right now*, for abort reports.

        Walks the scheduler seam's ``iter_entries`` plus the fast lane to
        attribute pending events to their callback owners — on a livelock
        that list names the components spinning at the current instant.
        ``metrics`` is included when the armed watchdog carries a
        registry reference.
        """
        owners: _Counter = _Counter()
        for _time_ps, event in self.scheduler.iter_entries():
            if not event.cancelled:
                owners[_callback_name(event.callback)] += 1
        for event in self._lane:
            if not event.cancelled:
                owners[_callback_name(event.callback)] += 1
        snapshot = {
            "reason": reason,
            "now_ps": self.now_ps,
            "events_run": events_run,
            "events_processed_total": self.events_processed + events_run,
            "zero_advance": zero_advance,
            "pending_events": self.pending_events,
            "lane_live": self._lane_live,
            "top_owners": owners.most_common(top),
        }
        watchdog = self.watchdog
        if watchdog is not None and watchdog.registry is not None:
            try:
                snapshot["metrics"] = watchdog.registry.read_all()
            except Exception as exc:  # diagnostics must never mask the abort
                snapshot["metrics_error"] = f"{type(exc).__name__}: {exc}"
        return snapshot

    def run_for(self, duration_ps: int) -> None:
        """Run for ``duration_ps`` picoseconds of simulated time."""
        self.run(until_ps=self.now_ps + int(duration_ps))

    def spawn(self, generator: Generator[Any, Any, Any], name: str = "") -> "Process":
        """Start a coroutine process on this loop."""
        process = Process(self, generator, name)
        self._processes.append(process)
        return process

    def _next_pid(self) -> int:
        return len(self._processes)

    @property
    def processes(self) -> List["Process"]:
        return list(self._processes)


class Signal:
    """A broadcast condition processes and callbacks can wait on.

    ``trigger(value)`` wakes every current waiter exactly once.  Unlike a
    queue, values are not buffered: waiters registered after a trigger wait
    for the next one.
    """

    __slots__ = ("_waiters",)

    def __init__(self) -> None:
        self._waiters: List[Callable[[Any], None]] = []

    def wait(self, callback: Callable[[Any], None]) -> None:
        self._waiters.append(callback)

    def discard(self, callback: Callable[[Any], None]) -> bool:
        """Drop one registration of ``callback``; True if it was waiting.

        Lets parked processes and :func:`wait_any` combiners deregister
        themselves instead of leaving dead closures in the waiter list (a
        silent leak: a waiter on a signal that never triggers again is
        retained forever, and a process parked on a garbage-collected
        signal never completes).
        """
        try:
            self._waiters.remove(callback)
            return True
        except ValueError:
            return False

    def trigger(self, value: Any = None) -> None:
        waiters = self._waiters
        if not waiters:
            return
        self._waiters = []
        for waiter in waiters:
            waiter(value)

    @property
    def has_waiters(self) -> bool:
        return bool(self._waiters)


class Process:
    """A generator coroutine driven by the event loop.

    The generator may yield:

    * ``int``/``float`` — sleep that many picoseconds (floats truncate),
    * :class:`Signal` — block until the signal triggers; the trigger value is
      sent back into the generator,
    * ``None`` — reschedule immediately (cooperative yield).

    Termination (``StopIteration``) completes the process; uncaught
    exceptions are stored in :attr:`error` and re-raised by :meth:`check`.
    """

    __slots__ = (
        "loop", "generator", "name", "pid", "finished", "error", "result",
        "done_signal", "_stopped", "_parked_signal", "_parked_callback",
        "_resume",
    )

    def __init__(self, loop: EventLoop, generator: Generator, name: str = "") -> None:
        self.loop = loop
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.pid = loop._next_pid()
        self.finished = False
        self.error: Optional[BaseException] = None
        self.result: Any = None
        self.done_signal = Signal()
        self._stopped = False
        # The signal/callback pair this process is currently parked on, so
        # kill() can deregister instead of leaking the waiter.
        self._parked_signal: Optional[Signal] = None
        self._parked_callback: Optional[Callable[[Any], None]] = None
        # One reusable resume thunk instead of a fresh lambda per yield.
        self._resume = self._advance_none
        loop.schedule(0, self._resume)

    def _advance_none(self) -> None:
        self._advance(None)

    def stop(self) -> None:
        """Ask the process to stop: the pending yield raises GeneratorExit."""
        self._stopped = True

    def _finish(self, outcome: str) -> None:
        self.finished = True
        tracer = self.loop.tracer
        if tracer is not None:
            tracer.emit("proc", "proc_finish", pid=self.pid, name=self.name,
                        outcome=outcome)

    def _advance(self, value: Any) -> None:
        if self.finished:
            return
        self._parked_signal = None
        self._parked_callback = None
        tracer = self.loop.tracer
        if tracer is not None:
            tracer.emit("proc", "proc_advance", pid=self.pid, name=self.name)
        try:
            if self._stopped:
                self.generator.close()
                raise StopIteration
            yielded = self.generator.send(value)
        except StopIteration as stop:
            self.result = getattr(stop, "value", None)
            self._finish("ok")
            self.done_signal.trigger(self.result)
            return
        except BaseException as exc:  # noqa: BLE001 - stored and re-raised
            self.error = exc
            self._finish("error")
            self.done_signal.trigger(None)
            return
        # Dispatch cheapest-common-first: integer delays dominate (every
        # cycle charge), then None (cooperative yield), then signals.  All
        # other numerics — floats from ns-scale math, bools, IntEnum
        # members — funnel through one explicit truncation below, the
        # single place float delays are accepted.
        if type(yielded) is int:
            delay_ps = yielded
        elif yielded is None:
            delay_ps = 0
        elif isinstance(yielded, Signal):
            callback = self._advance
            self._parked_signal = yielded
            self._parked_callback = callback
            if tracer is not None:
                tracer.emit("proc", "proc_block", pid=self.pid, name=self.name)
            yielded.wait(callback)
            return
        elif isinstance(yielded, (int, float)):
            delay_ps = int(yielded)
        else:
            self.error = SimulationError(
                f"process {self.name!r} yielded unsupported value "
                f"{yielded!r}; expected delay, Signal, or None"
            )
            self._finish("error")
            self.done_signal.trigger(None)
            return
        self.loop.schedule(delay_ps, self._resume)

    def check(self) -> None:
        """Re-raise any exception the process died with."""
        if self.error is not None:
            raise self.error

    def kill(self) -> None:
        """Terminate the process immediately (it may be parked on a signal).

        Any pending waiter registration is dropped, so the parked-on signal
        does not retain (or later resume) a dead process.
        """
        if self.finished:
            return
        if self._parked_signal is not None and self._parked_callback is not None:
            self._parked_signal.discard(self._parked_callback)
            self._parked_signal = None
            self._parked_callback = None
        self._finish("killed")
        self.generator.close()
        self.done_signal.trigger(None)


def _callback_name(callback: Callable) -> str:
    """A deterministic human-readable label for a scheduled callback."""
    name = getattr(callback, "__qualname__", None)
    if name is None:
        name = type(callback).__name__
    return name


class _WaitAnyCombiner:
    """The exactly-once waiter behind :func:`wait_any`.

    One ``__slots__`` object per call instead of a state dict plus two
    closures: the instance itself is the callable registered on every
    source signal (and as the timeout callback), so winning — from any
    source or the timeout — deregisters the same object everywhere.
    """

    # Trace/profile label: keep the historical ``wait_any`` prefix so the
    # self-profiler still attributes these callbacks to the ``signal``
    # category (repro.metrics.profiler.CATEGORY_BY_PREFIX).
    __qualname__ = "wait_any.combiner"

    __slots__ = ("signals", "combined", "timeout_event", "fired")

    def __init__(self, signals: List[Signal], combined: Signal) -> None:
        self.signals = signals
        self.combined = combined
        self.timeout_event: Optional[Event] = None
        self.fired = False

    def __call__(self, value: Any = None) -> None:
        if self.fired:
            return
        self.fired = True
        for signal in self.signals:
            signal.discard(self)
        if self.timeout_event is not None:
            self.timeout_event.cancel()
        self.combined.trigger(value)


def wait_any(loop: EventLoop, signals: List[Signal], timeout_ps: Optional[int] = None) -> Signal:
    """A signal that fires when any source signal fires or a timeout elapses.

    Exactly-once semantics with no leaks: when one source (or the timeout)
    wins, the combiner deregisters itself from every other source signal
    and cancels the pending timeout event.  Long-lived signals (rx packet
    signals, pipe data signals) therefore never accumulate dead combiner
    objects across repeated ``wait_any`` calls.
    """
    combined = Signal()
    combiner = _WaitAnyCombiner(list(signals), combined)
    for signal in combiner.signals:
        signal.wait(combiner)
    if timeout_ps is not None:
        combiner.timeout_event = loop.schedule(max(0, int(timeout_ps)), combiner)
    return combined
