"""Deterministic discrete-event loop.

Time is integer picoseconds.  Events scheduled for the same instant fire in
insertion order (a monotonically increasing sequence number breaks ties), so
simulations are reproducible bit-for-bit given the same seeds.

Two execution styles coexist:

* **callback style** — components such as NIC MACs schedule plain callbacks;
* **process style** — tasks are generator coroutines wrapped in
  :class:`Process`; they ``yield`` delays (picoseconds) or :class:`Signal`
  objects to block.  This is how userscript slave tasks run (the analog of
  MoonGen's one-LuaJIT-VM-per-core model).

Hot-path structure (docs/PERFORMANCE.md):

* **same-instant fast lane** — events scheduled for the *current* instant
  (``schedule(0, ...)``, the process-resume pattern) go into a plain FIFO
  deque instead of the heap: O(1) instead of O(log n), no sequence number.
  Ordering is preserved exactly: every heap entry at the current instant
  was scheduled before ``now`` reached it and therefore precedes every
  fast-lane entry, which are kept in insertion order by the deque.
* **lazy-deletion compaction** — ``Event.cancel`` only sets a flag; the
  heap entry stays until popped.  Long runs that cancel many timers (e.g.
  ``wait_any`` timeouts) would otherwise grow the heap without bound, so
  the loop counts lingering cancelled entries and rebuilds the heap once
  they exceed half the queue.
* ``run()`` keeps the queue, deque, and ``heappop`` in locals and inlines
  the step logic; the tracer hook costs one local ``is not None`` test per
  event when disabled.  Attach tracers before calling ``run()``.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Deque, Generator, List, Optional, Tuple

from repro.errors import SimulationError

#: Compact the heap when cancelled entries exceed this fraction of it.
_COMPACT_FRACTION = 0.5
#: ...but never bother compacting queues smaller than this.
_COMPACT_MIN = 64


class Event:
    """A scheduled callback; cancellable until it fires."""

    __slots__ = ("time_ps", "callback", "cancelled", "_loop")

    def __init__(self, time_ps: int, callback: Callable[[], None],
                 loop: Optional["EventLoop"] = None) -> None:
        self.time_ps = time_ps
        self.callback = callback
        self.cancelled = False
        # Back-reference for lazy-deletion accounting; ``None`` for
        # fast-lane events (they drain within the current instant and
        # never linger in the heap).
        self._loop = loop

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        loop = self._loop
        if loop is not None:
            loop._note_cancelled()


class EventLoop:
    """The simulation scheduler."""

    def __init__(self) -> None:
        self._queue: List[Tuple[int, int, Event]] = []
        #: Same-instant FIFO fast lane: events for the current ``now_ps``.
        self._lane: Deque[Event] = deque()
        self._seq = itertools.count()
        self.now_ps = 0
        self._running = False
        self._processes: List["Process"] = []
        #: Cancelled events still sitting in the heap (lazy deletion).
        self._cancelled_pending = 0
        #: Horizon of the innermost active ``run(until_ps=...)`` call, used
        #: by fast-forward helpers to bound arithmetic time skips.
        self._until_ps: Optional[int] = None
        #: Total events executed by :meth:`run`/:meth:`step` over the loop's
        #: lifetime (the perf harness's events/sec numerator).
        self.events_processed = 0
        #: Of those, events taken from the same-instant fast lane by
        #: :meth:`run` — ``lane_events_processed / events_processed`` is
        #: the fast-lane hit ratio published as ``loop.lane_hit_ratio``.
        self.lane_events_processed = 0
        #: Live-count cell for metrics (``repro.metrics``): ``None`` (the
        #: default) keeps :meth:`run`'s per-event cost at one local test,
        #: like the tracer hook; a ``[events, lane_events]`` list makes
        #: the in-progress counts of the *current* ``run()`` call visible
        #: to snapshot samplers (the totals above only flush on exit).
        self.live_counts = None
        #: Optional :class:`repro.trace.Tracer`; ``None`` keeps every
        #: instrumentation site on its zero-cost fast path.
        self.tracer = None
        #: Batch dispatch hook (``repro.batch``): a :class:`BatchTier`
        #: shared by every component on this loop, or ``None``.  Ports
        #: whose ``fast_forward`` flag is set route homogeneous event
        #: trains through ``batch.execute(port, start_ps)`` instead of
        #: scheduling them one event at a time; the tier owns the
        #: run-detection rules and the fallback accounting.
        self.batch = None

    @property
    def now_ns(self) -> float:
        """Current simulation time in nanoseconds."""
        return self.now_ps / 1000.0

    def schedule(self, delay_ps: int, callback: Callable[[], None]) -> Event:
        """Run ``callback`` after ``delay_ps`` picoseconds."""
        if delay_ps < 0:
            raise SimulationError(f"cannot schedule into the past: {delay_ps}")
        return self.schedule_at(self.now_ps + int(delay_ps), callback)

    def schedule_at(self, time_ps: int, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at absolute time ``time_ps``."""
        time_ps = int(time_ps)
        if time_ps == self.now_ps:
            # Same-instant fast lane: plain FIFO append.  Every heap entry
            # at this instant predates it, so heap-first keeps seq order.
            event = Event(time_ps, callback)
            self._lane.append(event)
            return event
        if time_ps < self.now_ps:
            raise SimulationError(
                f"cannot schedule at {time_ps} ps, now is {self.now_ps} ps"
            )
        event = Event(time_ps, callback, self)
        heapq.heappush(self._queue, (time_ps, next(self._seq), event))
        return event

    # -- lazy deletion ---------------------------------------------------------

    def _note_cancelled(self) -> None:
        self._cancelled_pending += 1
        queue = self._queue
        if (len(queue) > _COMPACT_MIN
                and self._cancelled_pending > len(queue) * _COMPACT_FRACTION):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and rebuild the heap (O(n)).

        Mutates the list in place: ``run()`` keeps the heap in a local,
        so rebinding ``self._queue`` would strand it on a stale list.
        """
        queue = self._queue
        queue[:] = [entry for entry in queue if not entry[2].cancelled]
        heapq.heapify(queue)
        self._cancelled_pending = 0

    @property
    def pending_events(self) -> int:
        """Live (non-cancelled) events currently scheduled.

        Counted exactly (O(n)): ``_cancelled_pending`` only bounds the
        cancelled entries from above — cancelling a handle whose event
        already fired (the MAC-wakeup and ``wait_any``-timeout patterns)
        increments it without a matching heap entry, which would read as
        a negative count here.  This is a sampling-time read (the
        ``loop.pending`` metric), never hot-path work.
        """
        return (sum(1 for entry in self._queue if not entry[2].cancelled)
                + sum(1 for e in self._lane if not e.cancelled))

    def next_event_time_ps(self) -> Optional[int]:
        """Time of the next live event, or ``None`` if the loop is empty.

        Fast-forward helpers use this (plus the active ``run`` horizon,
        see :meth:`fast_forward_bound_ps`) to know how far state may be
        advanced arithmetically without skipping an observer.
        """
        for event in self._lane:
            if not event.cancelled:
                return self.now_ps
        queue = self._queue
        while queue:
            time_ps, _, event = queue[0]
            if event.cancelled:
                heapq.heappop(queue)
                self._cancelled_pending -= 1
                continue
            return time_ps
        return None

    def fast_forward_bound_ps(self, limit_ps: Optional[int] = None) -> Optional[int]:
        """Latest instant a batch/fast-forward may advance state to, exclusive.

        ``None`` means unbounded (empty queue, no active horizon).  Inside
        ``run(until_ps=...)`` the horizon caps the bound so counters never
        reflect frames the event-driven path would not have sent yet.
        ``limit_ps`` lets callers impose an extra cap (e.g. the batch
        tier's configurable train horizon); the returned bound is the
        minimum of all three.
        """
        bound = self.next_event_time_ps()
        if self._until_ps is not None:
            bound = self._until_ps if bound is None else min(bound, self._until_ps)
        if limit_ps is not None:
            bound = limit_ps if bound is None else min(bound, limit_ps)
        return bound

    # -- execution -------------------------------------------------------------

    def _next_event(self) -> Optional[Event]:
        """Pop the next live event in deterministic order (or ``None``)."""
        lane = self._lane
        queue = self._queue
        while True:
            if lane:
                # Heap entries at the current instant predate lane entries.
                if queue and queue[0][0] <= self.now_ps:
                    _, _, event = heapq.heappop(queue)
                    if event.cancelled:
                        self._cancelled_pending -= 1
                        continue
                    return event
                event = lane.popleft()
                if event.cancelled:
                    continue
                return event
            if not queue:
                return None
            _, _, event = heapq.heappop(queue)
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            return event

    def step(self) -> bool:
        """Run the next pending event; returns False if none are left."""
        event = self._next_event()
        if event is None:
            return False
        self.now_ps = event.time_ps
        if self.tracer is not None:
            self.tracer.emit("event", "event_fired",
                             cb=_callback_name(event.callback))
        event.callback()
        self.events_processed += 1
        return True

    def run(self, until_ps: Optional[int] = None, max_events: int = 50_000_000) -> None:
        """Run events until the queue drains or ``until_ps`` is reached.

        ``max_events`` guards against runaway simulations; exceeding it is a
        bug in the caller, not a normal exit.
        """
        lane = self._lane
        queue = self._queue
        pop = heapq.heappop
        push = heapq.heappush
        tracer = self.tracer
        live = self.live_counts
        now = self.now_ps
        count = 0
        lane_count = 0
        prev_until = self._until_ps
        self._until_ps = until_ps
        try:
            # A horizon already in the past fires nothing (events at `now`
            # would overshoot it), mirroring the heap-only behaviour; past
            # entry the check never trips — the heap branch breaks first,
            # and lane events are always at `now`.
            while until_ps is None or until_ps >= now:
                # Inline _next_event(): this loop is the hottest code in the
                # simulator, every attribute load counts.
                if lane:
                    if queue and queue[0][0] <= now:
                        entry = pop(queue)
                        event = entry[2]
                        if event.cancelled:
                            self._cancelled_pending -= 1
                            continue
                    else:
                        event = lane.popleft()
                        if event.cancelled:
                            continue
                        lane_count += 1
                elif queue:
                    entry = pop(queue)
                    event = entry[2]
                    if event.cancelled:
                        self._cancelled_pending -= 1
                        continue
                    time_ps = entry[0]
                    if until_ps is not None and time_ps > until_ps:
                        # Crossed the horizon: put the (rare) overshooting
                        # event back — peeking every iteration costs more.
                        push(queue, entry)
                        break
                    now = time_ps
                    self.now_ps = time_ps
                else:
                    break
                if tracer is not None:
                    tracer.emit("event", "event_fired",
                                cb=_callback_name(event.callback))
                event.callback()
                count += 1
                if live is not None:
                    live[0] = count
                    live[1] = lane_count
                if count > max_events:
                    raise SimulationError(
                        f"event budget exhausted after {max_events} events at "
                        f"{self.now_ps} ps"
                    )
        finally:
            self._until_ps = prev_until
            self.events_processed += count
            self.lane_events_processed += lane_count
            if live is not None:
                live[0] = 0
                live[1] = 0
        if until_ps is not None and until_ps > self.now_ps:
            self.now_ps = until_ps

    def run_for(self, duration_ps: int) -> None:
        """Run for ``duration_ps`` picoseconds of simulated time."""
        self.run(until_ps=self.now_ps + int(duration_ps))

    def spawn(self, generator: Generator[Any, Any, Any], name: str = "") -> "Process":
        """Start a coroutine process on this loop."""
        process = Process(self, generator, name)
        self._processes.append(process)
        return process

    def _next_pid(self) -> int:
        return len(self._processes)

    @property
    def processes(self) -> List["Process"]:
        return list(self._processes)


class Signal:
    """A broadcast condition processes and callbacks can wait on.

    ``trigger(value)`` wakes every current waiter exactly once.  Unlike a
    queue, values are not buffered: waiters registered after a trigger wait
    for the next one.
    """

    __slots__ = ("_waiters",)

    def __init__(self) -> None:
        self._waiters: List[Callable[[Any], None]] = []

    def wait(self, callback: Callable[[Any], None]) -> None:
        self._waiters.append(callback)

    def discard(self, callback: Callable[[Any], None]) -> bool:
        """Drop one registration of ``callback``; True if it was waiting.

        Lets parked processes and :func:`wait_any` combiners deregister
        themselves instead of leaving dead closures in the waiter list (a
        silent leak: a waiter on a signal that never triggers again is
        retained forever, and a process parked on a garbage-collected
        signal never completes).
        """
        try:
            self._waiters.remove(callback)
            return True
        except ValueError:
            return False

    def trigger(self, value: Any = None) -> None:
        waiters = self._waiters
        if not waiters:
            return
        self._waiters = []
        for waiter in waiters:
            waiter(value)

    @property
    def has_waiters(self) -> bool:
        return bool(self._waiters)


class Process:
    """A generator coroutine driven by the event loop.

    The generator may yield:

    * ``int``/``float`` — sleep that many picoseconds,
    * :class:`Signal` — block until the signal triggers; the trigger value is
      sent back into the generator,
    * ``None`` — reschedule immediately (cooperative yield).

    Termination (``StopIteration``) completes the process; uncaught
    exceptions are stored in :attr:`error` and re-raised by :meth:`check`.
    """

    __slots__ = (
        "loop", "generator", "name", "pid", "finished", "error", "result",
        "done_signal", "_stopped", "_parked_signal", "_parked_callback",
        "_resume",
    )

    def __init__(self, loop: EventLoop, generator: Generator, name: str = "") -> None:
        self.loop = loop
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.pid = loop._next_pid()
        self.finished = False
        self.error: Optional[BaseException] = None
        self.result: Any = None
        self.done_signal = Signal()
        self._stopped = False
        # The signal/callback pair this process is currently parked on, so
        # kill() can deregister instead of leaking the waiter.
        self._parked_signal: Optional[Signal] = None
        self._parked_callback: Optional[Callable[[Any], None]] = None
        # One reusable resume thunk instead of a fresh lambda per yield.
        self._resume = self._advance_none
        loop.schedule(0, self._resume)

    def _advance_none(self) -> None:
        self._advance(None)

    def stop(self) -> None:
        """Ask the process to stop: the pending yield raises GeneratorExit."""
        self._stopped = True

    def _finish(self, outcome: str) -> None:
        self.finished = True
        tracer = self.loop.tracer
        if tracer is not None:
            tracer.emit("proc", "proc_finish", pid=self.pid, name=self.name,
                        outcome=outcome)

    def _advance(self, value: Any) -> None:
        if self.finished:
            return
        self._parked_signal = None
        self._parked_callback = None
        tracer = self.loop.tracer
        if tracer is not None:
            tracer.emit("proc", "proc_advance", pid=self.pid, name=self.name)
        try:
            if self._stopped:
                self.generator.close()
                raise StopIteration
            yielded = self.generator.send(value)
        except StopIteration as stop:
            self.result = getattr(stop, "value", None)
            self._finish("ok")
            self.done_signal.trigger(self.result)
            return
        except BaseException as exc:  # noqa: BLE001 - stored and re-raised
            self.error = exc
            self._finish("error")
            self.done_signal.trigger(None)
            return
        # Dispatch cheapest-common-first: integer delays dominate (every
        # cycle charge), then None (cooperative yield), then signals.
        if type(yielded) is int:
            self.loop.schedule(yielded, self._resume)
        elif yielded is None:
            self.loop.schedule(0, self._resume)
        elif isinstance(yielded, Signal):
            callback = self._advance
            self._parked_signal = yielded
            self._parked_callback = callback
            if tracer is not None:
                tracer.emit("proc", "proc_block", pid=self.pid, name=self.name)
            yielded.wait(callback)
        elif isinstance(yielded, (int, float)):
            self.loop.schedule(int(yielded), self._resume)
        else:
            self.error = SimulationError(
                f"process {self.name!r} yielded unsupported value "
                f"{yielded!r}; expected delay, Signal, or None"
            )
            self._finish("error")
            self.done_signal.trigger(None)

    def check(self) -> None:
        """Re-raise any exception the process died with."""
        if self.error is not None:
            raise self.error

    def kill(self) -> None:
        """Terminate the process immediately (it may be parked on a signal).

        Any pending waiter registration is dropped, so the parked-on signal
        does not retain (or later resume) a dead process.
        """
        if self.finished:
            return
        if self._parked_signal is not None and self._parked_callback is not None:
            self._parked_signal.discard(self._parked_callback)
            self._parked_signal = None
            self._parked_callback = None
        self._finish("killed")
        self.generator.close()
        self.done_signal.trigger(None)


def _callback_name(callback: Callable) -> str:
    """A deterministic human-readable label for a scheduled callback."""
    name = getattr(callback, "__qualname__", None)
    if name is None:
        name = type(callback).__name__
    return name


def wait_any(loop: EventLoop, signals: List[Signal], timeout_ps: Optional[int] = None) -> Signal:
    """A signal that fires when any source signal fires or a timeout elapses.

    Exactly-once semantics with no leaks: when one source (or the timeout)
    wins, the combiner deregisters itself from every other source signal
    and cancels the pending timeout event.  Long-lived signals (rx packet
    signals, pipe data signals) therefore never accumulate dead combiner
    closures across repeated ``wait_any`` calls.
    """
    combined = Signal()
    state = {"fired": False, "event": None}

    def fire(value: Any = None) -> None:
        if state["fired"]:
            return
        state["fired"] = True
        for signal in signals:
            signal.discard(fire)
        if state["event"] is not None:
            state["event"].cancel()
        combined.trigger(value)

    for signal in signals:
        signal.wait(fire)
    if timeout_ps is not None:
        state["event"] = loop.schedule(max(0, int(timeout_ps)), fire)
    return combined
