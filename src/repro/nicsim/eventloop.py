"""Deterministic discrete-event loop.

Time is integer picoseconds.  Events scheduled for the same instant fire in
insertion order (a monotonically increasing sequence number breaks ties), so
simulations are reproducible bit-for-bit given the same seeds.

Two execution styles coexist:

* **callback style** — components such as NIC MACs schedule plain callbacks;
* **process style** — tasks are generator coroutines wrapped in
  :class:`Process`; they ``yield`` delays (picoseconds) or :class:`Signal`
  objects to block.  This is how userscript slave tasks run (the analog of
  MoonGen's one-LuaJIT-VM-per-core model).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.errors import SimulationError


class Event:
    """A scheduled callback; cancellable until it fires."""

    __slots__ = ("time_ps", "callback", "cancelled")

    def __init__(self, time_ps: int, callback: Callable[[], None]) -> None:
        self.time_ps = time_ps
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class EventLoop:
    """The simulation scheduler."""

    def __init__(self) -> None:
        self._queue: List[Tuple[int, int, Event]] = []
        self._seq = itertools.count()
        self.now_ps = 0
        self._running = False
        self._processes: List["Process"] = []
        #: Optional :class:`repro.trace.Tracer`; ``None`` keeps every
        #: instrumentation site on its zero-cost fast path.
        self.tracer = None

    @property
    def now_ns(self) -> float:
        """Current simulation time in nanoseconds."""
        return self.now_ps / 1000.0

    def schedule(self, delay_ps: int, callback: Callable[[], None]) -> Event:
        """Run ``callback`` after ``delay_ps`` picoseconds."""
        if delay_ps < 0:
            raise SimulationError(f"cannot schedule into the past: {delay_ps}")
        return self.schedule_at(self.now_ps + int(delay_ps), callback)

    def schedule_at(self, time_ps: int, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at absolute time ``time_ps``."""
        if time_ps < self.now_ps:
            raise SimulationError(
                f"cannot schedule at {time_ps} ps, now is {self.now_ps} ps"
            )
        event = Event(int(time_ps), callback)
        heapq.heappush(self._queue, (event.time_ps, next(self._seq), event))
        return event

    def step(self) -> bool:
        """Run the next pending event; returns False if none are left."""
        while self._queue:
            time_ps, _, event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now_ps = time_ps
            if self.tracer is not None:
                self.tracer.emit("event", "event_fired",
                                 cb=_callback_name(event.callback))
            event.callback()
            return True
        return False

    def run(self, until_ps: Optional[int] = None, max_events: int = 50_000_000) -> None:
        """Run events until the queue drains or ``until_ps`` is reached.

        ``max_events`` guards against runaway simulations; exceeding it is a
        bug in the caller, not a normal exit.
        """
        count = 0
        while self._queue:
            time_ps = self._queue[0][0]
            if until_ps is not None and time_ps > until_ps:
                break
            if not self.step():
                break
            count += 1
            if count > max_events:
                raise SimulationError(
                    f"event budget exhausted after {max_events} events at "
                    f"{self.now_ps} ps"
                )
        if until_ps is not None and until_ps > self.now_ps:
            self.now_ps = until_ps

    def run_for(self, duration_ps: int) -> None:
        """Run for ``duration_ps`` picoseconds of simulated time."""
        self.run(until_ps=self.now_ps + int(duration_ps))

    def spawn(self, generator: Generator[Any, Any, Any], name: str = "") -> "Process":
        """Start a coroutine process on this loop."""
        process = Process(self, generator, name)
        self._processes.append(process)
        return process

    def _next_pid(self) -> int:
        return len(self._processes)

    @property
    def processes(self) -> List["Process"]:
        return list(self._processes)


class Signal:
    """A broadcast condition processes and callbacks can wait on.

    ``trigger(value)`` wakes every current waiter exactly once.  Unlike a
    queue, values are not buffered: waiters registered after a trigger wait
    for the next one.
    """

    __slots__ = ("_waiters",)

    def __init__(self) -> None:
        self._waiters: List[Callable[[Any], None]] = []

    def wait(self, callback: Callable[[Any], None]) -> None:
        self._waiters.append(callback)

    def discard(self, callback: Callable[[Any], None]) -> bool:
        """Drop one registration of ``callback``; True if it was waiting.

        Lets parked processes and :func:`wait_any` combiners deregister
        themselves instead of leaving dead closures in the waiter list (a
        silent leak: a waiter on a signal that never triggers again is
        retained forever, and a process parked on a garbage-collected
        signal never completes).
        """
        try:
            self._waiters.remove(callback)
            return True
        except ValueError:
            return False

    def trigger(self, value: Any = None) -> None:
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(value)

    @property
    def has_waiters(self) -> bool:
        return bool(self._waiters)


class Process:
    """A generator coroutine driven by the event loop.

    The generator may yield:

    * ``int``/``float`` — sleep that many picoseconds,
    * :class:`Signal` — block until the signal triggers; the trigger value is
      sent back into the generator,
    * ``None`` — reschedule immediately (cooperative yield).

    Termination (``StopIteration``) completes the process; uncaught
    exceptions are stored in :attr:`error` and re-raised by :meth:`check`.
    """

    def __init__(self, loop: EventLoop, generator: Generator, name: str = "") -> None:
        self.loop = loop
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.pid = loop._next_pid()
        self.finished = False
        self.error: Optional[BaseException] = None
        self.result: Any = None
        self.done_signal = Signal()
        self._stopped = False
        # The signal/callback pair this process is currently parked on, so
        # kill() can deregister instead of leaking the waiter.
        self._parked_signal: Optional[Signal] = None
        self._parked_callback: Optional[Callable[[Any], None]] = None
        loop.schedule(0, lambda: self._advance(None))

    def stop(self) -> None:
        """Ask the process to stop: the pending yield raises GeneratorExit."""
        self._stopped = True

    def _finish(self, outcome: str) -> None:
        self.finished = True
        tracer = self.loop.tracer
        if tracer is not None:
            tracer.emit("proc", "proc_finish", pid=self.pid, name=self.name,
                        outcome=outcome)

    def _advance(self, value: Any) -> None:
        if self.finished:
            return
        self._parked_signal = None
        self._parked_callback = None
        tracer = self.loop.tracer
        if tracer is not None:
            tracer.emit("proc", "proc_advance", pid=self.pid, name=self.name)
        try:
            if self._stopped:
                self.generator.close()
                raise StopIteration
            yielded = self.generator.send(value)
        except StopIteration as stop:
            self.result = getattr(stop, "value", None)
            self._finish("ok")
            self.done_signal.trigger(self.result)
            return
        except BaseException as exc:  # noqa: BLE001 - stored and re-raised
            self.error = exc
            self._finish("error")
            self.done_signal.trigger(None)
            return
        if yielded is None:
            self.loop.schedule(0, lambda: self._advance(None))
        elif isinstance(yielded, Signal):
            callback = self._advance
            self._parked_signal = yielded
            self._parked_callback = callback
            if tracer is not None:
                tracer.emit("proc", "proc_block", pid=self.pid, name=self.name)
            yielded.wait(callback)
        elif isinstance(yielded, (int, float)):
            self.loop.schedule(int(yielded), lambda: self._advance(None))
        else:
            self.error = SimulationError(
                f"process {self.name!r} yielded unsupported value "
                f"{yielded!r}; expected delay, Signal, or None"
            )
            self._finish("error")
            self.done_signal.trigger(None)

    def check(self) -> None:
        """Re-raise any exception the process died with."""
        if self.error is not None:
            raise self.error

    def kill(self) -> None:
        """Terminate the process immediately (it may be parked on a signal).

        Any pending waiter registration is dropped, so the parked-on signal
        does not retain (or later resume) a dead process.
        """
        if self.finished:
            return
        if self._parked_signal is not None and self._parked_callback is not None:
            self._parked_signal.discard(self._parked_callback)
            self._parked_signal = None
            self._parked_callback = None
        self._finish("killed")
        self.generator.close()
        self.done_signal.trigger(None)


def _callback_name(callback: Callable) -> str:
    """A deterministic human-readable label for a scheduled callback."""
    name = getattr(callback, "__qualname__", None)
    if name is None:
        name = type(callback).__name__
    return name


def wait_any(loop: EventLoop, signals: List[Signal], timeout_ps: Optional[int] = None) -> Signal:
    """A signal that fires when any source signal fires or a timeout elapses.

    Exactly-once semantics with no leaks: when one source (or the timeout)
    wins, the combiner deregisters itself from every other source signal
    and cancels the pending timeout event.  Long-lived signals (rx packet
    signals, pipe data signals) therefore never accumulate dead combiner
    closures across repeated ``wait_any`` calls.
    """
    combined = Signal()
    state = {"fired": False, "event": None}

    def fire(value: Any = None) -> None:
        if state["fired"]:
            return
        state["fired"] = True
        for signal in signals:
            signal.discard(fire)
        if state["event"] is not None:
            state["event"].cancel()
        combined.trigger(value)

    for signal in signals:
        signal.wait(fire)
    if timeout_ps is not None:
        state["event"] = loop.schedule(max(0, int(timeout_ps)), fire)
    return combined
