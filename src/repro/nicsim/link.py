"""Wire and cable models.

Implements the physical layer the timestamping accuracy experiments
(Table 3) depend on:

* propagation delay ``l / v_p`` with the measured propagation speeds
  (0.72 c on OM3 fiber, 0.69 c on Cat 5e copper),
* a constant (de)modulation time ``k`` per medium (310.7 ns on the
  82599+SFP+ fiber path, 2147.2 ns on the X540 10GBASE-T path — the heavier
  line code of 10GBASE-T),
* PHY jitter: none measurable on fiber, a block-code-induced spread on
  10GBASE-T (> 99.5 % of samples within ±6.4 ns of the median, total range
  64 ns),
* serialization at line rate including preamble/SFD/IFG,
* optionally, 10GBASE-T's 3200-bit physical-layer frames (Section 8.4),
  which deliver back-to-back packets as bursts to the receiver.

Hot-path notes (docs/PERFORMANCE.md): serialization times are cached per
frame size, the cable latency is precomputed when the medium draws no
jitter (the jitter hook adds exactly ``0.0`` there, so the rounding is
identical), and deliveries share one bound drain callback instead of
allocating a closure per frame.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro import units
from repro.nicsim.eventloop import EventLoop

#: Speed of light in meters per nanosecond.
C_M_PER_NS = 0.299792458


@dataclass(frozen=True)
class Medium:
    """A cable technology: propagation speed, modulation time, jitter."""

    name: str
    #: Propagation speed as a fraction of c.
    velocity_factor: float
    #: Constant (de)modulation/encoding time in ns (the k of Table 3).
    modulation_ns: float
    #: Jitter distribution: maps an RNG to a delay offset in ns.
    jitter_name: str = "none"

    def propagation_ns(self, length_m: float) -> float:
        """One-way propagation delay for a cable of the given length."""
        return length_m / (self.velocity_factor * C_M_PER_NS)

    def jitter_ns(self, rng: random.Random) -> float:
        return _JITTER_MODELS[self.jitter_name](rng)


def _no_jitter(rng: random.Random) -> float:
    return 0.0


#: 10GBASE-T block-code jitter, quantized to the 6.4 ns symbol grid.
#: Calibrated to Section 6.1: >99.5 % of measurements within ±6.4 ns of the
#: median, min-max range 64 ns (±32 ns), independent of cable length.
_10GBASET_STEPS: Tuple[Tuple[float, float], ...] = (
    (0.0, 0.600),
    (-6.4, 0.199), (6.4, 0.199),
    (-12.8, 0.00045), (12.8, 0.00045),
    (-19.2, 0.00030), (19.2, 0.00030),
    (-25.6, 0.00015), (25.6, 0.00015),
    (-32.0, 0.00010), (32.0, 0.00010),
)


def _10gbaset_jitter(rng: random.Random) -> float:
    roll = rng.random()
    acc = 0.0
    for value, prob in _10GBASET_STEPS:
        acc += prob
        if roll < acc:
            return value
    return 0.0


_JITTER_MODELS: dict = {
    "none": _no_jitter,
    "10gbaset": _10gbaset_jitter,
}

#: OM3 multimode fiber with 10GBASE-SR SFP+ modules (82599 test setup).
FIBER_OM3 = Medium("om3-fiber", velocity_factor=0.72, modulation_ns=310.7)
#: Cat 5e copper with 10GBASE-T (X540 test setup).
COPPER_CAT5E = Medium(
    "cat5e-copper", velocity_factor=0.69, modulation_ns=2147.2,
    jitter_name="10gbaset",
)


@dataclass(frozen=True)
class Cable:
    """A physical cable: a medium plus a length."""

    medium: Medium
    length_m: float

    def latency_ns(self) -> float:
        """True one-way latency: modulation + propagation (no jitter)."""
        return self.medium.modulation_ns + self.medium.propagation_ns(self.length_m)


#: A zero-length ideal cable for experiments where the wire is irrelevant.
IDEAL_CABLE = Cable(Medium("ideal", 1.0, 0.0), 0.0)


class Wire:
    """One direction of a link: serializes frames and delivers them.

    ``Wire`` is used by the event-driven NIC model; it enforces line-rate
    serialization (a frame occupies the wire for its wire-length) and applies
    the cable's latency and jitter.  Frames are delivered in order.
    """

    __slots__ = (
        "loop", "speed_bps", "cable", "rng", "phy_frame_bits", "corrupt_rate",
        "corrupted", "sink", "busy_until_ps", "frames_sent", "bytes_sent",
        "_last_delivery_ps", "_ser_cache", "_jitter_free", "_latency_ps",
        "_phy_ps", "_pending", "carrier_up", "loss_model", "dropped",
        "faulted", "dp_hop", "dp_e2e",
    )

    def __init__(
        self,
        loop: EventLoop,
        speed_bps: int,
        cable: Cable = IDEAL_CABLE,
        seed: int = 0,
        phy_frame_bits: int = 0,
        corrupt_rate: float = 0.0,
    ) -> None:
        """``phy_frame_bits`` models 10GBASE-T's physical-layer framing
        (Section 8.4: 3200-bit PHY frames deliver close packets as bursts).
        ``corrupt_rate`` injects bit errors: the affected frame arrives with
        a broken FCS and is dropped by the receiving NIC."""
        self.loop = loop
        self.speed_bps = speed_bps
        self.cable = cable
        self.rng = random.Random(seed)
        self.phy_frame_bits = phy_frame_bits
        self.corrupt_rate = corrupt_rate
        self.corrupted = 0
        #: Carrier state: while ``False`` (a link flap, ``repro.faults``),
        #: transmitted frames are lost on the wire and counted in
        #: :attr:`dropped` — no RNG draw is consumed for them.
        self.carrier_up = True
        #: Optional per-frame loss decider (e.g. a Gilbert–Elliott model
        #: from ``repro.faults``): called as ``loss_model(frame_size)`` and
        #: returning True to lose the frame.  It owns its *own* RNG stream,
        #: so installing one never shifts this wire's jitter/corruption
        #: draws.
        self.loss_model: Optional[Callable[[int], bool]] = None
        #: Frames lost on the wire by faults (carrier down or loss model);
        #: corrupted frames are *not* counted here — they arrive with a bad
        #: FCS and are dropped (and counted) by the receiving NIC.
        self.dropped = 0
        #: Set by a fault injector that targets this wire; forces the
        #: event-driven path even while no fault window is active, so a
        #: fast-forward batch can never straddle a scheduled fault.
        self.faulted = False
        self.sink: Optional[Callable[[object, int], None]] = None
        #: Time the wire becomes free (end of last serialization), ps.
        self.busy_until_ps = 0
        self.frames_sent = 0
        self.bytes_sent = 0
        self._last_delivery_ps = 0
        #: frame size -> serialization time (frames repeat a few sizes).
        self._ser_cache: Dict[int, int] = {}
        #: When the medium draws no jitter, the per-frame latency is a
        #: constant: ``jitter_ns`` returns exactly 0.0, so precomputing
        #: ``round(latency_ns() * 1000)`` is bit-identical to the general
        #: expression and skips two calls plus a round per frame.
        self._jitter_free = cable.medium.jitter_name == "none"
        self._latency_ps = round(cable.latency_ns() * 1000)
        self._phy_ps = (round(phy_frame_bits * 1e12 / speed_bps)
                        if phy_frame_bits else 0)
        #: In-flight (frame, arrival_ps) pairs, ordered by arrival — one
        #: bound callback drains due entries instead of a closure per frame.
        self._pending: Deque[Tuple[object, int, object]] = deque()
        #: In-dataplane latency histograms (``repro.metrics.dataplane``):
        #: wire residence (``latency.hop.wire.<name>``) and end-to-end
        #: enqueue→arrival (``latency.e2e.<name>``).  ``None`` keeps the
        #: hot path a single ``is not None`` test.
        self.dp_hop = None
        self.dp_e2e = None

    def connect(self, sink: Callable[[object, int], None]) -> None:
        """Attach the receiving port: called as ``sink(frame, arrival_ps)``."""
        self.sink = sink

    def register_metrics(self, registry, name: str) -> None:
        """Publish this wire's counters under ``wire.<A>-><B>.*``.

        ``name`` is the directed endpoint pair (``"0->1"``); the wire does
        not know its own topology name, the environment passes it in.
        Pull-based — nothing on the serialization path changes.
        """
        base = f"wire.{name}"
        sent = registry.counter(f"{base}.frames", lambda: self.frames_sent,
                                help="frames serialized onto the wire")
        registry.rate(f"{base}.fps", sent,
                      help="frame rate between snapshots (sim time)")
        registry.counter(f"{base}.bytes", lambda: self.bytes_sent)
        registry.counter(f"{base}.dropped", lambda: self.dropped,
                         help="frames lost to faults (carrier/loss model)")
        registry.counter(f"{base}.corrupted", lambda: self.corrupted,
                         help="frames delivered with a broken FCS")
        registry.gauge(f"{base}.in_flight", lambda: len(self._pending),
                       help="frames serialized but not yet delivered")
        registry.gauge(f"{base}.carrier_up",
                       lambda: 1 if self.carrier_up else 0)

    def serialization_ps(self, frame_size: int) -> int:
        """Wire occupancy of a frame including preamble/SFD/IFG."""
        ser = self._ser_cache.get(frame_size)
        if ser is None:
            ser = units.frame_time_ps(frame_size, self.speed_bps)
            self._ser_cache[frame_size] = ser
        return ser

    def transmit(self, frame: object, frame_size: int, start_ps: Optional[int] = None) -> int:
        """Put a frame on the wire; returns the time the wire becomes free.

        ``frame_size`` is the frame length including FCS.  ``start_ps``
        defaults to now; transmission never begins before the wire is free
        (the MAC serializes frames one after another).
        """
        start = self.loop.now_ps if start_ps is None else start_ps
        busy = self.busy_until_ps
        if busy > start:
            start = busy
        ser = self._ser_cache.get(frame_size)
        if ser is None:
            ser = units.frame_time_ps(frame_size, self.speed_bps)
            self._ser_cache[frame_size] = ser
        end = start + ser
        self.busy_until_ps = end
        self.frames_sent += 1
        self.bytes_sent += frame_size
        tracer = self.loop.tracer
        if self.sink is not None:
            if not self.carrier_up:
                # Link flap: the carrier is down, the frame is lost on the
                # wire.  No RNG draw is consumed — the medium never carried
                # the frame — so the jitter/corruption streams of frames
                # after the flap are unaffected by its duration.
                self.dropped += 1
                if tracer is not None:
                    tracer.emit("drop", "wire_carrier_down",
                                frame=tracer.frame_id(frame),
                                size=frame_size)
                self._release(frame)
                return end
            # Per-frame RNG draw order is pinned (regression-tested in
            # tests/test_link.py): 1. medium jitter, then 2. corruption —
            # both from this wire's own RNG.  The fault loss model sits in
            # between but draws from its *own* stream, and a lost frame
            # skips the corruption draw entirely (see below).
            if self._jitter_free:
                arrival = end + self._latency_ps
            else:
                latency_ns = self.cable.latency_ns() + self.cable.medium.jitter_ns(self.rng)
                arrival = end + round(latency_ns * 1000)
            if self.phy_frame_bits:
                # The PHY ships fixed-size layer-1 frames: a packet is only
                # handed up when the PHY frame containing its end arrives,
                # so packets within one PHY frame appear back-to-back.
                phy_ps = self._phy_ps
                arrival = -(-arrival // phy_ps) * phy_ps
            if self.loss_model is not None and self.loss_model(frame_size):
                # Lost on the medium: whether the frame would also have
                # been corrupted is unobservable, so the corruption draw is
                # not consumed and ``dropped``/``corrupted`` stay disjoint.
                self.dropped += 1
                if tracer is not None:
                    tracer.emit("drop", "wire_loss",
                                frame=tracer.frame_id(frame),
                                size=frame_size)
                self._release(frame)
                return end
            corrupted = bool(self.corrupt_rate
                             and self.rng.random() < self.corrupt_rate)
            if corrupted:
                # A bit error on the wire: the FCS no longer matches.  The
                # counter and the trace drop-event move together with the
                # actual FCS mark, so ``corrupted`` always equals the
                # receiving NIC's eventual ``rx_crc_errors``.
                frame, corrupted = self._corrupt(frame)
                if corrupted:
                    self.corrupted += 1
            # Keep in-order delivery even if jitter would reorder frames.
            if arrival <= self._last_delivery_ps:
                arrival = self._last_delivery_ps + 1
            self._last_delivery_ps = arrival
            dp_hop = self.dp_hop
            if dp_hop is not None and getattr(frame, "fcs_ok", False):
                # Residence on this hop (serialization start → delivered
                # arrival) and end-to-end enqueue → arrival, FCS-valid
                # frames only — corrupted frames and CRC-gap fillers are
                # pacing artifacts, not observed traffic.
                dp_hop.observe((arrival - start) / 1000.0)
                enq = frame.meta.get("dp_enq_ps")
                if enq is not None:
                    self.dp_e2e.observe((arrival - enq) / 1000.0)
            if tracer is not None:
                tracer.emit("wire", "wire_tx", frame=tracer.frame_id(frame),
                            size=frame_size, start=start, end=end,
                            arrival=arrival)
                if corrupted:
                    tracer.emit("drop", "wire_corrupt",
                                frame=tracer.frame_id(frame),
                                size=frame_size)
            self._pending.append(
                (frame, arrival, self.loop.schedule_at(arrival, self._deliver_due))
            )
        elif tracer is not None:
            tracer.emit("wire", "wire_tx", frame=tracer.frame_id(frame),
                        size=frame_size, start=start, end=end)
        return end

    @staticmethod
    def _release(frame: object) -> None:
        """Recycle a frame lost on the wire: nothing can reach it again."""
        pool = getattr(frame, "pool", None)
        if pool is not None:
            pool.release(frame)

    def _deliver_due(self) -> None:
        """Hand every in-flight frame whose arrival is due to the sink.

        Arrivals are strictly increasing, so the deque is sorted: a
        delivery event fired at time T delivers exactly the frames with
        ``arrival <= T`` that an earlier event has not already drained
        (the fast-forward path drains ahead; its leftover events no-op).
        """
        pending = self._pending
        now = self.loop.now_ps
        sink = self.sink
        while pending and pending[0][1] <= now:
            frame, arrival, _ = pending.popleft()
            sink(frame, arrival)

    # -- steady-state fast-forward support (see nic.NicPort._fast_forward) ----

    def can_fast_forward(self) -> bool:
        """True if per-frame delivery needs no rng draw and no tracer.

        Jitter and corruption consume random numbers per frame, and the
        tracer records per-frame wire events — each forces the event-driven
        path to keep bit-for-bit fidelity.  A wire targeted by a fault
        injector (``faulted``) is likewise pinned to the event-driven path:
        its carrier/loss state can change at any scheduled fault boundary.
        """
        return (self.sink is not None
                and self._jitter_free
                and not self.corrupt_rate
                and not self.phy_frame_bits
                and not self.faulted
                and self.carrier_up
                and self.loss_model is None
                and self.loop.tracer is None)

    def batch_blockers(self) -> List[str]:
        """Name every condition pinning this wire to the event path.

        The batch tier (``repro.batch``) calls this only after
        :meth:`can_fast_forward` returned False, to attribute the fallback
        to a stable reason string in its statistics; the empty list means
        the wire is batchable.
        """
        reasons = []
        if self.sink is None:
            reasons.append("wire-unconnected")
        if not self._jitter_free:
            reasons.append("wire-jitter")
        if self.corrupt_rate:
            reasons.append("wire-corruption")
        if self.phy_frame_bits:
            reasons.append("wire-phy-framing")
        if self.faulted:
            reasons.append("wire-faulted")
        if not self.carrier_up:
            reasons.append("wire-carrier-down")
        if self.loss_model is not None:
            reasons.append("wire-loss-model")
        if self.loop.tracer is not None:
            reasons.append("tracer")
        return reasons

    def detach_pending(self) -> List[Tuple[object, int]]:
        """Pull the in-flight frames off the wire, cancelling their drain
        events; returns ``(frame, arrival_ps)`` pairs in arrival order.

        Fast-forward setup: the scheduled drain events would otherwise
        clamp :meth:`EventLoop.fast_forward_bound_ps` to the very next
        arrival.  The caller either delivers the pairs synchronously (their
        arrival stamps are kept, so the sink sees exactly the event-driven
        calls) or puts them back with :meth:`reattach_pending`.
        """
        out: List[Tuple[object, int]] = []
        pending = self._pending
        while pending:
            frame, arrival, event = pending.popleft()
            event.cancel()
            out.append((frame, arrival))
        return out

    def reattach_pending(self, entries: List[Tuple[object, int]]) -> None:
        """Undo :meth:`detach_pending` when a fast-forward batch bails."""
        pending = self._pending
        schedule_at = self.loop.schedule_at
        deliver = self._deliver_due
        for frame, arrival in entries:
            pending.append((frame, arrival, schedule_at(arrival, deliver)))

    def fast_transmit(self, frame: object, frame_size: int, start_ps: int) -> int:
        """``transmit`` minus the delivery event: the sink is called
        synchronously with the exact arrival stamp the event-driven path
        would have used.  Only valid when :meth:`can_fast_forward` holds
        and :meth:`detach_pending` drained the wire for this batch.
        """
        start = start_ps if start_ps > self.busy_until_ps else self.busy_until_ps
        ser = self._ser_cache.get(frame_size)
        if ser is None:
            ser = units.frame_time_ps(frame_size, self.speed_bps)
            self._ser_cache[frame_size] = ser
        end = start + ser
        self.busy_until_ps = end
        self.frames_sent += 1
        self.bytes_sent += frame_size
        arrival = end + self._latency_ps
        if arrival <= self._last_delivery_ps:
            arrival = self._last_delivery_ps + 1
        self._last_delivery_ps = arrival
        dp_hop = self.dp_hop
        if dp_hop is not None and getattr(frame, "fcs_ok", False):
            dp_hop.observe((arrival - start) / 1000.0)
            enq = frame.meta.get("dp_enq_ps")
            if enq is not None:
                self.dp_e2e.observe((arrival - enq) / 1000.0)
        self.sink(frame, arrival)
        return end

    @staticmethod
    def _corrupt(frame: object) -> Tuple[object, bool]:
        """Break the frame's FCS; returns ``(frame, mark_applied)``.

        Frames without an FCS flag (plain test payloads) cannot carry the
        mark; reporting that keeps the ``corrupted`` counter consistent
        with what the receiving NIC will actually drop.
        """
        if hasattr(frame, "fcs_ok"):
            frame.fcs_ok = False
            return frame, True
        return frame, False

    @property
    def in_flight(self) -> int:
        """Frames serialized but not yet delivered to the sink."""
        return len(self._pending)

    def utilization(self) -> float:
        """Fraction of elapsed wire time spent serializing frames.

        Frames never overlap, so bytes × byte-time (plus per-frame
        preamble/SFD/IFG overhead) is the exact busy time; the elapsed
        span runs from time zero to the end of the last serialization.
        """
        if self.busy_until_ps <= 0:
            return 0.0
        byte_ps = units.byte_time_ps(self.speed_bps)
        busy_ps = (self.bytes_sent + self.frames_sent * units.WIRE_OVERHEAD) * byte_ps
        return min(1.0, busy_ps / self.busy_until_ps)
