"""Simulated NIC ports.

Implements the hardware architecture Section 3.3 of the paper describes and
the rest of the paper exploits:

* multiple independent transmit/receive queues per port (descriptor rings),
* the asynchronous push-pull model: software enqueues descriptors, the NIC
  fetches and serializes frames on its own schedule (Section 7.1's Figure 5),
* per-queue hardware rate control (CBR) with the granularity of the chip's
  internal rate-control clock (Section 7.2/7.3),
* PTP timestamp units: one tx and one rx timestamp register that must be
  read back before the next packet can be timestamped (Section 6), or —
  on the 82580 — timestamping of *all* received packets,
* CRC checking on receive: frames with a bad FCS are dropped before queue
  assignment, only an error counter increments (the property Section 8's
  software rate control relies on),
* chip-specific capacity limits (the XL710's packet-rate and aggregate
  bandwidth caps from Section 5.4).

Hot-path notes (docs/PERFORMANCE.md): the per-frame classes carry
``__slots__``, frames come from a :class:`FramePool`, effective frame
times are cached per (size, speed), and steady-state CBR segments can be
fast-forwarded arithmetically when ``NicPort.fast_forward`` is enabled
(off by default; see :meth:`NicPort._fast_forward` for the fidelity
conditions that force the event-by-event path).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro import units
from repro.errors import ConfigurationError, QueueError
from repro.nicsim.clock import NicClock, clock_for_speed
from repro.nicsim.eventloop import EventLoop, Signal
from repro.nicsim.link import Wire
from repro.packet.ethernet import EtherType
from repro.packet.ip4 import IpProtocol
from repro.packet.ptp import PTP_UDP_PORT

_frame_seq = itertools.count()

#: Hoisted per-frame constants (``units`` lookups cost an attribute hop on
#: the hottest allocation path).
_FCS_SIZE = units.FCS_SIZE
_WIRE_OVERHEAD = units.WIRE_OVERHEAD


class SimFrame:
    """A frame in flight: an immutable snapshot of a packet buffer.

    ``data`` excludes the FCS; ``fcs_ok`` says whether the NIC computed a
    correct FCS (the CRC-gap mechanism intentionally sends broken ones).

    ``size``/``wire_size`` are plain attributes, not properties: the MAC,
    wire, and DUT models read them several times per frame.
    """

    __slots__ = ("data", "fcs_ok", "seq", "meta", "size", "wire_size", "pool",
                 "recycle")

    def __init__(self, data: bytes, fcs_ok: bool = True) -> None:
        self.data = data
        self.fcs_ok = fcs_ok
        self.seq = next(_frame_seq)
        #: Free-form metadata: flow ids, software send time, filler marks...
        self.meta: Dict[str, object] = {}
        #: Frame size including FCS, the paper's "packet size".
        size = len(data) + _FCS_SIZE
        self.size = size
        self.wire_size = size + _WIRE_OVERHEAD
        #: Owning :class:`FramePool`, or ``None`` for unpooled frames.
        self.pool: Optional["FramePool"] = None
        #: Descriptor-fetch hook: called (and cleared) when the NIC DMAs
        #: this frame out of a tx ring — the mempool recycle of Section
        #: 4.2.  A dedicated slot because it exists on every transmitted
        #: frame; ``meta["recycle"]`` is still honoured as a fallback for
        #: hand-built frames.
        self.recycle = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SimFrame(seq={self.seq}, size={self.size}, "
                f"fcs_ok={self.fcs_ok})")

    def is_ptp(self) -> bool:
        """True if the frame matches the NIC PTP timestamp filters.

        Either PTP over Ethernet (EtherType 0x88F7) or PTP over UDP port
        319; only the EtherType / port matters, plus a version byte check —
        exactly the filters the Intel chips implement.
        """
        d = self.data
        if len(d) < 14:
            return False
        ether_type = (d[12] << 8) | d[13]
        if ether_type == EtherType.PTP:
            return len(d) >= 16 and (d[15] & 0x0F) == 2
        if ether_type == EtherType.IP4 and len(d) >= 38:
            ihl = (d[14] & 0x0F) * 4
            if d[23] != IpProtocol.UDP:
                return False
            l4 = 14 + ihl
            if len(d) < l4 + 8 + 2:
                return False
            dst_port = (d[l4 + 2] << 8) | d[l4 + 3]
            if dst_port != PTP_UDP_PORT:
                return False
            # Section 6.4: the NICs refuse to timestamp UDP PTP packets
            # smaller than the expected 80 bytes.
            if self.size < 80:
                return False
            return (d[l4 + 8 + 1] & 0x0F) == 2
        return False

    def ptp_sequence(self) -> Optional[int]:
        """The PTP sequence id, used to match timestamps to probes."""
        d = self.data
        if len(d) < 14:
            return None
        ether_type = (d[12] << 8) | d[13]
        if ether_type == EtherType.PTP:
            offset = 14 + 30
        elif ether_type == EtherType.IP4:
            ihl = (d[14] & 0x0F) * 4
            offset = 14 + ihl + 8 + 30
        else:
            return None
        if len(d) < offset + 2:
            return None
        return (d[offset] << 8) | d[offset + 1]


class FramePool:
    """Recycles :class:`SimFrame` shells so steady-state transmit loops stop
    churning the allocator (the simulator's analog of DPDK's mempools).

    ``acquire`` re-initialises a retired shell with a **fresh sequence
    number and a fresh meta dict**, so observers that key on ``frame.seq``
    (the tracer's ``frame_id`` does) or that kept the old meta dict cannot
    tell a recycled frame from a new allocation — golden traces are
    byte-identical with pooling on or off.

    ``release`` is only called at provable end-of-life points: an FCS drop
    before queue assignment, an rx-ring overflow, or a transmit into an
    unwired port.  Frames software can still reach (rx rings, fetched
    ``RxPacket.frame`` references, observer callbacks) are never recycled;
    frames constructed directly (``pool is None``) are never recycled
    either, so tests that hold on to hand-made frames are unaffected.
    """

    __slots__ = ("max_free", "_free", "recycled")

    def __init__(self, max_free: int = 4096) -> None:
        self.max_free = max_free
        self._free: List[SimFrame] = []
        #: Shells handed out more than once (observability/debugging).
        self.recycled = 0

    def acquire(self, data: bytes, fcs_ok: bool = True) -> SimFrame:
        free = self._free
        if free:
            frame = free.pop()
            frame.data = data
            frame.fcs_ok = fcs_ok
            frame.seq = next(_frame_seq)
            frame.meta = {}
            size = len(data) + _FCS_SIZE
            frame.size = size
            frame.wire_size = size + _WIRE_OVERHEAD
            frame.pool = self
            self.recycled += 1
            return frame
        frame = SimFrame(data, fcs_ok)
        frame.pool = self
        return frame

    def release(self, frame: SimFrame) -> None:
        # ``pool`` doubles as the liveness flag: it is cleared here and
        # restored by acquire, so double releases and releases of unpooled
        # frames are no-ops.
        if frame.pool is not self:
            return
        frame.pool = None
        if len(self._free) < self.max_free:
            frame.data = b""
            # An unfetched frame can reach end-of-life (transmit into an
            # unwired port) with its hook still set; a stale hook on a
            # reused shell would recycle the wrong buffer.
            frame.recycle = None
            if frame.meta:
                frame.meta = {}
            self._free.append(frame)


#: Process-wide pool used by the packet-buffer materialization path.
default_frame_pool = FramePool()


@dataclass(frozen=True)
class ChipModel:
    """Static description of a NIC chip family."""

    name: str
    speed_bps: int
    queues: int
    tx_fifo_bytes: int
    rx_fifo_bytes: int
    #: Supports per-queue hardware rate control.
    hw_rate_control: bool
    #: Supports PTP timestamp registers.
    hw_timestamping: bool
    #: Timestamps every received packet (82580-style buffer prepend).
    timestamp_all_rx: bool = False
    #: Latch granularity in clock ticks (2 on the 82599, Section 6.1).
    latch_ticks: int = 1
    #: Grid phase term: the 82580's k*8 ns constant (set per reset).
    phase_step_ns: float = 0.0
    #: Hardware rate control becomes unpredictable above this rate
    #: (Section 7.5: ~9 Mpps on X520/X540).
    hw_rate_max_pps: float = float("inf")
    #: Max packet rate the MAC can emit per port regardless of size
    #: (Section 8.1: 15.6 Mpps with short frames on X540/82599; the XL710's
    #: small-packet bottleneck).
    max_pps: float = float("inf")
    #: Aggregate packet rate over all ports of one card (XL710: 42 Mpps).
    card_max_pps: float = float("inf")
    #: Aggregate wire bandwidth over all ports of one card
    #: (XL710: 50 Gbit/s measured, Section 5.4).
    card_max_bps: float = float("inf")
    #: Rate-control clock tick in ns (estimated; scales with link speed,
    #: Section 7.3 predicts 10x finer granularity at 10 GbE).
    rate_clock_ns: float = 2.56


CHIP_82599 = ChipModel(
    name="82599", speed_bps=units.SPEED_10G, queues=128,
    tx_fifo_bytes=160 * 1024, rx_fifo_bytes=512 * 1024,
    hw_rate_control=True, hw_timestamping=True,
    latch_ticks=2, hw_rate_max_pps=9e6, max_pps=15.6e6,
)

CHIP_X520 = ChipModel(
    name="X520", speed_bps=units.SPEED_10G, queues=128,
    tx_fifo_bytes=160 * 1024, rx_fifo_bytes=512 * 1024,
    hw_rate_control=True, hw_timestamping=True,
    latch_ticks=2, hw_rate_max_pps=9e6, max_pps=15.6e6,
)

CHIP_X540 = ChipModel(
    name="X540", speed_bps=units.SPEED_10G, queues=128,
    tx_fifo_bytes=160 * 1024, rx_fifo_bytes=512 * 1024,
    hw_rate_control=True, hw_timestamping=True,
    latch_ticks=1, hw_rate_max_pps=9e6, max_pps=15.6e6,
)

CHIP_82580 = ChipModel(
    name="82580", speed_bps=units.SPEED_1G, queues=8,
    tx_fifo_bytes=40 * 1024, rx_fifo_bytes=64 * 1024,
    hw_rate_control=False, hw_timestamping=True,
    timestamp_all_rx=True, phase_step_ns=8.0, rate_clock_ns=25.6,
)

CHIP_XL710 = ChipModel(
    name="XL710", speed_bps=units.SPEED_40G, queues=384,
    tx_fifo_bytes=512 * 1024, rx_fifo_bytes=1024 * 1024,
    hw_rate_control=False, hw_timestamping=False,
    max_pps=32e6, card_max_pps=42e6, card_max_bps=50e9,
)

#: Default descriptor ring size (DPDK's usual default).
DEFAULT_RING_SIZE = 512


class PendingSend:
    """A producer's in-progress blocking send, visible to the NIC.

    Producers that push a frame batch and park on ``space_signal`` until
    the whole batch is ringed (``Task._send``) open one of these around
    the operation.  ``enqueue`` advances :attr:`sent` as descriptors are
    accepted, and :attr:`parked` marks the spans spent waiting on the
    space signal.  The batch tier reads the handle to model the producer's
    park/wake sawtooth in closed form — and *writes* :attr:`sent` when a
    kernel performs the producer's pushes arithmetically, so the woken
    producer resumes from the right offset either way.

    :attr:`defer` is the tier's hand-off latch for a producer caught
    *mid-call* (inside its own ``enqueue``): the detector performs the
    producer's post-kick pushes up front, then sets ``defer`` so the
    producer's in-flight ``enqueue`` returns 0 and the task parks on the
    space signal even though slots may be free.  ``_fetch_from_ring``
    clears the latch at the instant it would genuinely wake the producer,
    restoring the ordinary sawtooth.
    """

    __slots__ = ("frames", "total", "sent", "parked", "defer")

    def __init__(self, frames: List["SimFrame"]) -> None:
        self.frames = frames
        self.total = len(frames)
        self.sent = 0
        self.parked = False
        self.defer = False


class TxQueueSim:
    """A transmit queue: descriptor ring + optional hardware rate limiter."""

    __slots__ = ("port", "index", "ring_size", "ring", "space_signal",
                 "space_wake_threshold", "rate_bps", "next_allowed_ps",
                 "_rate_error_ps", "tx_packets", "tx_bytes", "stalled",
                 "pending_send")

    def __init__(self, port: "NicPort", index: int,
                 ring_size: int = DEFAULT_RING_SIZE) -> None:
        self.port = port
        self.index = index
        self.ring_size = ring_size
        self.ring: Deque[SimFrame] = deque()
        self.space_signal = Signal()
        #: Producers parked on a full ring are woken once this many slots
        #: are free (or the ring empties), not per descriptor — the analog
        #: of DPDK's ``tx_free_thresh`` batch cleanup.  Totals and rates are
        #: unchanged; only the producer's wakeup instants coarsen.
        self.space_wake_threshold = min(32, max(1, ring_size // 4))
        #: Rate limit in bits/s of wire occupancy; 0 disables.
        self.rate_bps = 0.0
        self.next_allowed_ps = 0
        self._rate_error_ps = 0.0
        self.tx_packets = 0
        self.tx_bytes = 0
        #: Fault injection (``repro.faults``): a stalled queue is neither
        #: prefetched into the FIFO nor picked by the MAC — descriptors
        #: accumulate in the ring and producers back-pressure on the space
        #: signal.  Cleared by the injector, which then kicks the MAC.
        self.stalled = False
        #: The one blocking send in progress on this queue (or ``None``);
        #: see :class:`PendingSend`.
        self.pending_send: Optional[PendingSend] = None

    @property
    def free_slots(self) -> int:
        return self.ring_size - len(self.ring)

    def open_send(self, frames: List["SimFrame"]) -> Optional["PendingSend"]:
        """Declare a blocking batch send; ``None`` if one is already open.

        A second concurrent producer on the same queue falls back to the
        undeclared busy-wait protocol (the batch tier then refuses to model
        its park/wake instants — correct, just slower).
        """
        if self.pending_send is not None:
            return None
        pend = PendingSend(frames)
        self.pending_send = pend
        return pend

    def close_send(self, pend: "PendingSend") -> None:
        if self.pending_send is pend:
            self.pending_send = None

    def set_rate(self, mbps: float) -> None:
        """Configure hardware CBR rate control (MoonGen's ``setRate``).

        ``mbps`` counts wire occupancy (frame + preamble/SFD/IFG) like the
        NIC's own pacer.  Raises if the chip has no rate control.
        """
        if not self.port.chip.hw_rate_control and mbps > 0:
            raise ConfigurationError(
                f"chip {self.port.chip.name} has no hardware rate control"
            )
        if mbps < 0:
            raise ConfigurationError(f"negative rate: {mbps}")
        self.rate_bps = mbps * 1e6

    def set_rate_pps(self, pps: float, frame_size: int) -> None:
        """Configure the limiter for a target packet rate at a frame size."""
        wire_bits = units.wire_length(frame_size) * 8
        self.set_rate(pps * wire_bits / 1e6)

    def enqueue(self, frames: List[SimFrame], start: int = 0) -> int:
        """Append descriptors from ``frames[start:]``; returns how many fit.

        ``start`` lets a blocked producer resume mid-batch without slicing
        the remainder on every ring-space wakeup (the wakeups arrive one
        descriptor at a time when the ring is full).
        """
        ring = self.ring
        pend = self.pending_send
        if pend is not None and pend.defer and frames is pend.frames:
            # The batch tier already ringed this span arithmetically; the
            # producer's own in-flight enqueue must observe "no progress"
            # and park until the fetch path clears the latch.
            return 0
        free = self.ring_size - len(ring)
        if free <= 0:
            return 0
        avail = len(frames) - start
        if avail <= free:
            accepted = avail
            if start:
                ring.extend(frames[start:])
            else:
                ring.extend(frames)
        else:
            accepted = free
            ring.extend(frames[start:start + free])
        if accepted > 0:
            pend = self.pending_send
            if pend is not None and frames is pend.frames:
                # Keep the declared send's progress current *before* the
                # kick: the batch tier may continue the producer's pushes
                # arithmetically from exactly this offset.
                pend.sent = start + accepted
            port = self.port
            if port.dataplane is not None:
                # Ingress stamp: descriptor-ring entry time, read back by
                # the fetch path (tx-queue residence) and the wire (e2e).
                now_ps = port.loop.now_ps
                for f in frames[start:start + accepted]:
                    f.meta["dp_enq_ps"] = now_ps
            # A producer resumed from inside _prefetch (its space signal)
            # needs no kick: the prefetch loop re-reads the ring, and the
            # outer kick transmits once the FIFO is filled.
            if not port._prefetching:
                # Mark the kick as running synchronously inside a
                # producer's enqueue (the batch tier must preserve the
                # ring state its continuation observes).  ``_enqueue_short``
                # flags a partial accept: the caller still holds unsent
                # frames and reacts to the post-kick ring at this instant.
                port._in_enqueue += 1
                short = accepted < avail
                prev_short = port._enqueue_short
                if short:
                    port._enqueue_short = True
                port._mac_kick()
                port._in_enqueue -= 1
                port._enqueue_short = prev_short
        return accepted

    def _advance_rate_limiter(self, start_ps: int, frame: SimFrame) -> None:
        """Move the earliest next transmit time per the configured rate.

        The inter-departure time is quantized to the chip's rate-control
        clock; the quantization error is carried over so the average rate is
        exact (this is the dithering that causes the ±256 ns oscillation the
        paper measures in Section 7.3).
        """
        if self.rate_bps <= 0:
            self.next_allowed_ps = start_ps
            return
        gap_ps = frame.wire_size * 8 * 1e12 / self.rate_bps
        tick_ps = self.port.rate_clock_ps
        ideal = gap_ps + self._rate_error_ps
        ticks = max(1, round(ideal / tick_ps))
        actual = ticks * tick_ps
        self._rate_error_ps = ideal - actual
        self.next_allowed_ps = start_ps + round(actual)


class RxQueueSim:
    """A receive queue: descriptor ring filled by the NIC, drained by software."""

    __slots__ = ("port", "index", "ring_size", "ring", "packet_signal",
                 "rx_packets", "rx_bytes", "frozen")

    def __init__(self, port: "NicPort", index: int,
                 ring_size: int = DEFAULT_RING_SIZE) -> None:
        self.port = port
        self.index = index
        self.ring_size = ring_size
        self.ring: Deque[SimFrame] = deque()
        self.packet_signal = Signal()
        self.rx_packets = 0
        self.rx_bytes = 0
        #: Fault injection (``repro.faults``): a frozen descriptor ring
        #: refuses delivery, so arrivals take the existing ``rx_missed`` /
        #: ``drop_rx_ring`` overflow path.
        self.frozen = False

    def deliver(self, frame: SimFrame) -> bool:
        """NIC-side delivery; False if the ring overflowed (or is frozen)."""
        if self.frozen or len(self.ring) >= self.ring_size:
            return False
        self.ring.append(frame)
        self.rx_packets += 1
        self.rx_bytes += frame.size
        signal = self.packet_signal
        if signal._waiters:
            signal.trigger()
        return True

    def fetch(self, max_frames: int) -> List[SimFrame]:
        """Software-side poll: take up to ``max_frames`` from the ring."""
        out = []
        while self.ring and len(out) < max_frames:
            out.append(self.ring.popleft())
        return out


class NicCard:
    """A physical adapter: shares aggregate limits between its ports.

    Needed for the XL710, whose MAC layer caps the *sum* of both ports
    (Section 5.4); for other chips the caps are infinite and this class is
    inert bookkeeping.
    """

    __slots__ = ("chip", "ports", "_card_capped", "_pps_floor_ps", "_ft_cache")

    def __init__(self, chip: ChipModel) -> None:
        self.chip = chip
        self.ports: List["NicPort"] = []
        inf = float("inf")
        #: Card-level caps are shared between *active* ports, so their frame
        #: time depends on current port activity; the per-port pps cap and
        #: the plain wire time depend only on (size, speed) and are memoized
        #: without consulting the other ports.
        self._card_capped = (chip.card_max_pps != inf
                             or chip.card_max_bps != inf)
        self._pps_floor_ps = (round(1e12 / chip.max_pps)
                              if chip.max_pps != inf else 0)
        self._ft_cache: Dict[Tuple, int] = {}

    def active_tx_ports(self) -> int:
        return sum(1 for p in self.ports if p.has_pending_tx()) or 1

    def effective_frame_time_ps(self, frame: SimFrame, speed_bps: int) -> int:
        """MAC occupancy per frame after applying all hardware caps."""
        cache = self._ft_cache
        if not self._card_capped:
            key = (frame.size, speed_bps)
            time_ps = cache.get(key)
            if time_ps is None:
                time_ps = units.frame_time_ps(frame.size, speed_bps)
                floor = self._pps_floor_ps
                if floor > time_ps:
                    time_ps = floor
                cache[key] = time_ps
            return time_ps
        # Card-capped chips share limits between active ports: the activity
        # count is part of the cache key, so the memo stays exact.
        active = self.active_tx_ports()
        key = (frame.size, speed_bps, active)
        time_ps = cache.get(key)
        if time_ps is not None:
            return time_ps
        times = [units.frame_time_ps(frame.size, speed_bps)]
        chip = self.chip
        inf = float("inf")
        if chip.max_pps != inf:
            times.append(round(1e12 / chip.max_pps))
        if chip.card_max_pps != inf:
            times.append(round(1e12 * active / chip.card_max_pps))
        if chip.card_max_bps != inf:
            bits = frame.wire_size * 8
            times.append(round(bits * 1e12 * active / chip.card_max_bps))
        time_ps = max(times)
        cache[key] = time_ps
        return time_ps


class NicPort:
    """One network port of a simulated NIC."""

    __slots__ = (
        "loop", "chip", "port_id", "speed_bps", "card", "tx_queues",
        "rx_queues", "clock", "wire", "rate_clock_ps", "_tx_timestamp",
        "_tx_timestamp_seq", "_rx_timestamp", "_rx_timestamp_seq",
        "timestamp_missed", "rx_filter", "tx_packets", "tx_bytes",
        "rx_packets", "rx_bytes", "rx_crc_errors", "rx_missed", "_mac_busy",
        "_mac_wakeup", "_rr_next", "_fifo", "_fifo_bytes", "_prefetching",
        "_in_enqueue", "_enqueue_short", "tx_observers", "fast_forward",
        "fast_forwarded", "link_up", "link_changes", "link_signal",
        "dma_slowdown", "_batch_sink", "dataplane",
    )

    def __init__(
        self,
        loop: EventLoop,
        chip: ChipModel = CHIP_X540,
        port_id: int = 0,
        n_tx_queues: int = 1,
        n_rx_queues: int = 1,
        speed_bps: Optional[int] = None,
        card: Optional[NicCard] = None,
        clock_drift_ppm: float = 0.0,
        clock_phase_steps: int = 0,
    ) -> None:
        if n_tx_queues > chip.queues or n_rx_queues > chip.queues:
            raise ConfigurationError(
                f"{chip.name} supports {chip.queues} queues, requested "
                f"{n_tx_queues} tx / {n_rx_queues} rx"
            )
        self.loop = loop
        self.chip = chip
        self.port_id = port_id
        self.speed_bps = speed_bps or chip.speed_bps
        self.card = card or NicCard(chip)
        self.card.ports.append(self)
        self.tx_queues = [TxQueueSim(self, i) for i in range(n_tx_queues)]
        self.rx_queues = [RxQueueSim(self, i) for i in range(n_rx_queues)]
        self.clock: NicClock = clock_for_speed(
            loop, self.speed_bps,
            latch_ticks=chip.latch_ticks,
            drift_ppm=clock_drift_ppm,
            phase_ns=chip.phase_step_ns * clock_phase_steps,
        )
        self.wire: Optional[Wire] = None
        #: Rate-control clock tick (ps); scales with link speed (Section 7.3).
        scale = chip.speed_bps / self.speed_bps
        self.rate_clock_ps = round(chip.rate_clock_ns * scale * 1000)
        # Timestamp registers (one each for tx and rx, Section 6).
        self._tx_timestamp: Optional[float] = None
        self._tx_timestamp_seq: Optional[int] = None
        self._rx_timestamp: Optional[float] = None
        self._rx_timestamp_seq: Optional[int] = None
        self.timestamp_missed = 0
        # RX dispatch.
        self.rx_filter: Optional[Callable[[SimFrame], int]] = None
        # Counters (the NIC statistics registers).
        self.tx_packets = 0
        self.tx_bytes = 0
        self.rx_packets = 0
        self.rx_bytes = 0
        self.rx_crc_errors = 0
        self.rx_missed = 0
        # MAC state.
        self._mac_busy = False
        self._mac_wakeup = None
        self._rr_next = 0
        # On-chip transmit FIFO (Section 3.2: 160 kB on the X540 conceals
        # ~128 µs of pauses at 10 GbE).  The NIC prefetches descriptors
        # from unpaced queues into the FIFO; rate-limited queues are
        # fetched on their pacing schedule instead.  Entries are
        # (frame, source queue) pairs so the MAC can attribute per-queue
        # counters without touching the frame's meta dict.
        self._fifo: Deque[Tuple[SimFrame, TxQueueSim]] = deque()
        self._fifo_bytes = 0
        self._prefetching = False
        # Depth of synchronous ``enqueue -> _mac_kick`` frames on the call
        # stack, and whether the innermost one accepted fewer descriptors
        # than offered (``repro.batch`` detection inputs).
        self._in_enqueue = 0
        self._enqueue_short = False
        #: Observers called with (frame, tx_start_ps) for every sent frame;
        #: benches use this to record exact departure times.
        self.tx_observers: List[Callable[[SimFrame, int], None]] = []
        #: Opt-in steady-state accelerator (see :meth:`_fast_forward`).
        self.fast_forward = False
        #: Frames sent through the fast-forward path (observability).
        self.fast_forwarded = 0
        # Fault injection (``repro.faults``): link/carrier state as software
        # sees it (the LSC interrupt's view), and a DMA-slowdown factor that
        # stretches the per-frame MAC occupancy (PCIe contention model).
        self.link_up = True
        self.link_changes = 0
        self.link_signal = Signal()
        self.dma_slowdown = 1.0
        # ``repro.batch`` sink-validation memo: ``(wire, sink)`` pairs the
        # detector has already proven to end in ``NicPort.receive``.
        self._batch_sink: Optional[Tuple[object, object, "NicPort"]] = None
        #: In-dataplane latency observation state
        #: (:class:`repro.metrics.dataplane.PortDataplane`), attached by
        #: :meth:`repro.metrics.dataplane.DataplaneObserver.attach_port`.
        #: ``None`` keeps every hook a single ``is not None`` test.
        self.dataplane = None

    # -- wiring ----------------------------------------------------------------

    def attach_wire(self, wire: Wire) -> None:
        """Connect the transmit side of this port to a wire."""
        self.wire = wire

    def get_tx_queue(self, index: int) -> TxQueueSim:
        try:
            return self.tx_queues[index]
        except IndexError:
            raise QueueError(f"port {self.port_id} has no tx queue {index}") from None

    def get_rx_queue(self, index: int) -> RxQueueSim:
        try:
            return self.rx_queues[index]
        except IndexError:
            raise QueueError(f"port {self.port_id} has no rx queue {index}") from None

    def set_rx_filter(self, fn: Callable[[SimFrame], int]) -> None:
        """Install a Flow-Director-style filter mapping frames to rx queues."""
        self.rx_filter = fn

    def set_link_state(self, up: bool) -> None:
        """Fault injection: flip the port's carrier state (LSC event).

        Updates the software-visible link status, counts the transition,
        emits a ``fault`` trace record, and wakes anything parked on
        :attr:`link_signal` (monitors annotate the gap).  The wire-level
        consequence (frames lost while the carrier is down) is driven by
        the injector through :attr:`Wire.carrier_up` on the attached wires.
        """
        if up == self.link_up:
            return
        self.link_up = up
        self.link_changes += 1
        tracer = self.loop.tracer
        if tracer is not None:
            tracer.emit("fault", "link_up" if up else "link_down",
                        port=self.port_id, changes=self.link_changes)
        signal = self.link_signal
        if signal._waiters:
            signal.trigger()
        if up:
            # Coming back up: queued descriptors may be sendable again.
            self._mac_kick()

    def has_pending_tx(self) -> bool:
        return (self._mac_busy or bool(self._fifo)
                or any(q.ring for q in self.tx_queues))

    # -- observability -----------------------------------------------------------

    def register_metrics(self, registry) -> None:
        """Publish this port's statistics registers under ``nic<N>.*``.

        Pull-based: every metric is a reader over counters the port
        already maintains, so registration adds nothing to the transmit
        or receive paths (``repro.metrics`` design contract).
        """
        base = f"nic{self.port_id}"
        tx = registry.counter(f"{base}.tx.packets",
                              lambda: self.tx_packets,
                              help="frames transmitted onto the wire")
        rx = registry.counter(f"{base}.rx.packets",
                              lambda: self.rx_packets,
                              help="frames accepted into rx rings")
        registry.rate(f"{base}.tx.pps", tx,
                      help="tx rate between snapshots (sim time)")
        registry.rate(f"{base}.rx.pps", rx,
                      help="rx rate between snapshots (sim time)")
        registry.counter(f"{base}.tx.bytes", lambda: self.tx_bytes)
        registry.counter(f"{base}.rx.bytes", lambda: self.rx_bytes)
        registry.counter(f"{base}.rx.crc_errors",
                         lambda: self.rx_crc_errors,
                         help="frames dropped for bad FCS")
        registry.counter(f"{base}.rx.missed", lambda: self.rx_missed,
                         help="frames lost to full rx rings")
        registry.gauge(f"{base}.tx.ring", lambda: sum(
            len(q.ring) for q in self.tx_queues),
            help="descriptors queued across tx rings")
        registry.gauge(f"{base}.rx.ring", lambda: sum(
            len(q.ring) for q in self.rx_queues),
            help="frames waiting across rx rings")
        registry.gauge(f"{base}.fifo", lambda: len(self._fifo),
                       help="frames staged in the MAC fifo")
        registry.gauge(f"{base}.link_up", lambda: 1 if self.link_up else 0)
        registry.counter(f"{base}.link_changes", lambda: self.link_changes,
                         help="carrier transitions (LSC events)")

    # -- transmit path -----------------------------------------------------------

    def _pick_queue(self) -> Optional[TxQueueSim]:
        """Round-robin over queues that are non-empty and rate-eligible."""
        queues = self.tx_queues
        n = len(queues)
        now = self.loop.now_ps
        start = self._rr_next
        for i in range(n):
            idx = (start + i) % n
            queue = queues[idx]
            if queue.ring and not queue.stalled and queue.next_allowed_ps <= now:
                self._rr_next = (idx + 1) % n
                return queue
        return None

    def _earliest_pending_ps(self) -> Optional[int]:
        pending = [q.next_allowed_ps for q in self.tx_queues
                   if q.ring and not q.stalled]
        return min(pending) if pending else None

    def _fetch_from_ring(self, queue: TxQueueSim, tracer) -> SimFrame:
        """DMA one descriptor out of a ring: recycle + wake the producer.

        ``tracer`` is passed in by the caller (hoisted out of per-frame
        loops) so the disabled case costs a single ``is not None`` test.
        Parked producers are woken in batches of ``space_wake_threshold``
        freed slots (DPDK's ``tx_free_thresh``), not once per descriptor.
        """
        frame = queue.ring.popleft()
        if tracer is not None:
            tracer.emit("desc", "desc_fetch", port=self.port_id,
                        queue=queue.index, frame=tracer.frame_id(frame),
                        size=frame.size)
        dp = self.dataplane
        if dp is not None:
            enq = frame.meta.get("dp_enq_ps")
            if enq is not None:
                dp.txq[queue.index].observe(
                    (self.loop.now_ps - enq) / 1000.0)
        recycle = frame.recycle
        if recycle is not None:
            # The NIC has fetched the packet: DPDK's transmit function can
            # recycle the buffer into its mempool (Section 4.2).
            frame.recycle = None
            recycle()
        else:
            recycle = frame.meta.pop("recycle", None)
            if recycle is not None:
                recycle()
        signal = queue.space_signal
        if signal._waiters:
            ring_len = len(queue.ring)
            if ring_len == 0 or (
                queue.ring_size - ring_len >= queue.space_wake_threshold
            ):
                pend = queue.pending_send
                if pend is not None:
                    # Release a tier-deferred producer exactly at the
                    # instant the ordinary sawtooth would wake it.
                    pend.defer = False
                signal.trigger()
        return frame

    def _prefetch(self) -> None:
        """Fill the on-chip FIFO from unpaced queues (Section 3.2).

        Rate-limited queues are fetched on their pacing schedule instead,
        so hardware rate control timing is unaffected.
        """
        queues = self.tx_queues
        n = len(queues)
        fifo = self._fifo
        fifo_cap = self.chip.tx_fifo_bytes
        tracer = self.loop.tracer
        # NOTE: ``_fifo_bytes`` must be updated through self: the space
        # signal inside _fetch_from_ring can synchronously resume a task
        # whose enqueue->kick path pops the FIFO reentrantly (the ring is
        # re-read each iteration for the same reason).
        if n == 1:
            queue = queues[0]
            if queue.rate_bps:
                return
            ring = queue.ring
            while ring and self._fifo_bytes < fifo_cap:
                frame = self._fetch_from_ring(queue, tracer)
                fifo.append((frame, queue))
                self._fifo_bytes += frame.size
            return
        progress = True
        while progress and self._fifo_bytes < fifo_cap:
            progress = False
            for i in range(n):
                if self._fifo_bytes >= fifo_cap:
                    break
                queue = queues[i]
                if queue.rate_bps or not queue.ring:
                    continue
                frame = self._fetch_from_ring(queue, tracer)
                fifo.append((frame, queue))
                self._fifo_bytes += frame.size
                progress = True

    def _mac_done(self) -> None:
        """End of a frame's MAC occupancy: free the MAC, send the next."""
        self._mac_busy = False
        self._mac_kick()

    def _mac_kick(self) -> None:
        """Advance the MAC: send the next eligible frame, if any.

        The descriptor DMA (prefetch) runs on every kick — even while the
        MAC is serializing — so the FIFO fills in the background; the
        guard prevents re-entrant prefetching when a space signal resumes
        a task that immediately enqueues more frames.
        """
        if not self._prefetching and self._fifo_bytes < self.chip.tx_fifo_bytes:
            self._prefetching = True
            try:
                self._prefetch()
            finally:
                self._prefetching = False
        if self._mac_busy:
            return
        # Mark the MAC busy *before* waking software: space signals can
        # synchronously resume a task that immediately enqueues and kicks.
        self._mac_busy = True
        # The frame the MAC transmits next: FIFO first, then paced rings.
        fifo = self._fifo
        if fifo:
            frame, queue = fifo.popleft()
            self._fifo_bytes -= frame.size
        else:
            queue = self._pick_queue()
            if queue is None:
                self._mac_busy = False
                nxt = self._earliest_pending_ps()
                if nxt is not None and (
                    self._mac_wakeup is None or self._mac_wakeup.cancelled
                ):
                    self._mac_wakeup = self.loop.schedule_at(
                        max(nxt, self.loop.now_ps), self._mac_kick
                    )
                return
            frame = self._fetch_from_ring(queue, self.loop.tracer)
        if self._mac_wakeup is not None:
            self._mac_wakeup.cancel()
            self._mac_wakeup = None
        loop = self.loop
        now = loop.now_ps
        size = frame.size
        mac_time = self.card.effective_frame_time_ps(frame, self.speed_bps)
        if self.dma_slowdown != 1.0:
            mac_time = round(mac_time * self.dma_slowdown)
        # Timestamp late in the transmit path (Section 6: as the frame hits
        # the wire), if the descriptor asked for it and the register is free.
        if frame.meta.get("timestamp") and self.chip.hw_timestamping and frame.is_ptp():
            tracer = loop.tracer
            if self._tx_timestamp is None:
                self._tx_timestamp = self.clock.timestamp_ns(now)
                self._tx_timestamp_seq = frame.ptp_sequence()
                if tracer is not None:
                    tracer.emit("tstamp", "tx_tstamp_latch", port=self.port_id,
                                frame=tracer.frame_id(frame),
                                ns=self._tx_timestamp,
                                ptp_seq=self._tx_timestamp_seq)
            else:
                self.timestamp_missed += 1
                if tracer is not None:
                    tracer.emit("tstamp", "tstamp_missed", port=self.port_id,
                                side="tx", frame=tracer.frame_id(frame))
        frame.meta["tx_start_ps"] = now
        if self.tx_observers:
            for observer in self.tx_observers:
                observer(frame, now)
        wire = self.wire
        if wire is not None:
            wire.transmit(frame, size, start_ps=now)
        elif frame.pool is not None:
            # Transmit into the void: nothing can reach the frame again.
            frame.pool.release(frame)
        self.tx_packets += 1
        self.tx_bytes += size
        if queue is not None:
            queue.tx_packets += 1
            queue.tx_bytes += size
            # Inlined unpaced case of _advance_rate_limiter (the hot path).
            if queue.rate_bps <= 0:
                queue.next_allowed_ps = now
            else:
                queue._advance_rate_limiter(now, frame)
        end_ps = now + mac_time
        if self.fast_forward and (
            self._fifo or (queue is not None and queue.ring)
        ):
            end_ps = self._fast_forward(end_ps)
        loop.schedule_at(end_ps, self._mac_done)

    def _fast_forward(self, start_ps: int) -> int:
        """Route the MAC's pending work through the batch execution tier.

        Opt-in via :attr:`fast_forward`.  The tier (``repro.batch``)
        detects homogeneous event trains — FIFO drains, single-queue
        prefetch steady states, hardware-paced ring trains — and executes
        them arithmetically, skipping the per-frame ``_mac_done`` + wire
        delivery events while producing bit-identical state: each frame is
        delivered through the sink port's real ``receive`` with the exact
        arrival stamp the event path would have used.  Detection rules and
        fallback reasons live in :mod:`repro.batch.detector`; the
        equivalence claim is enforced by ``tests/test_batch_equivalence.py``
        and cross-validated in
        ``benchmarks/bench_validation_event_vs_vectorized.py``.

        The tier is shared per event loop (``loop.batch``); a port driven
        outside :class:`~repro.core.MoonGenEnv` lazily installs one.
        Returns the MAC-free time: advanced past every batched frame, or
        ``start_ps`` unchanged when the tier fell back.
        """
        loop = self.loop
        tier = loop.batch
        if tier is None:
            from repro.batch import BatchTier

            tier = loop.batch = BatchTier()
        return tier.execute(self, start_ps)

    def batch_ready_rx(self) -> bool:
        """True when a batch may deliver into this port synchronously.

        Software parked on an rx ``packet_signal`` must wake at exact
        per-frame instants, so any waiter pins the sender to the event
        path (``repro.batch`` detection rule).
        """
        for rxq in self.rx_queues:
            if rxq.packet_signal.has_waiters:
                return False
        return True

    # -- receive path --------------------------------------------------------------

    def receive(self, frame: SimFrame, arrival_ps: int) -> None:
        """Wire-side delivery into this port (the wire's sink callback)."""
        tracer = self.loop.tracer
        if not frame.fcs_ok:
            # Dropped before queue assignment; packet processing logic is
            # unaffected — the property Section 8 relies on.
            self.rx_crc_errors += 1
            if tracer is not None:
                tracer.emit("drop", "drop_fcs", port=self.port_id,
                            frame=tracer.frame_id(frame), size=frame.size)
            if frame.pool is not None:
                frame.pool.release(frame)
            return
        dp = self.dataplane
        if dp is not None:
            # Inter-arrival between FCS-valid frames only: bad-CRC fillers
            # are pacing artifacts, not traffic (Section 8's premise).
            last = dp.rx_last_ps
            if last >= 0:
                dp.rx_interarrival.observe((arrival_ps - last) / 1000.0)
            dp.rx_last_ps = arrival_ps
        if self.chip.hw_timestamping:
            # Timestamps are taken early in the receive path, referenced to
            # the start of the frame (the wire delivers at frame end).  The
            # back-reference is only computed for frames that are actually
            # stamped — non-PTP traffic skips it.
            if self.chip.timestamp_all_rx:
                stamp_ps = arrival_ps - units.frame_time_ps(frame.size, self.speed_bps)
                frame.meta["rx_timestamp_ns"] = self.clock.timestamp_ns(stamp_ps)
            elif frame.is_ptp():
                if self._rx_timestamp is None:
                    stamp_ps = arrival_ps - units.frame_time_ps(frame.size, self.speed_bps)
                    self._rx_timestamp = self.clock.timestamp_ns(stamp_ps)
                    self._rx_timestamp_seq = frame.ptp_sequence()
                    if tracer is not None:
                        tracer.emit("tstamp", "rx_tstamp_latch",
                                    port=self.port_id,
                                    frame=tracer.frame_id(frame),
                                    ns=self._rx_timestamp,
                                    ptp_seq=self._rx_timestamp_seq)
                else:
                    self.timestamp_missed += 1
                    if tracer is not None:
                        tracer.emit("tstamp", "tstamp_missed",
                                    port=self.port_id, side="rx",
                                    frame=tracer.frame_id(frame))
        queue_idx = 0
        if self.rx_filter is not None:
            queue_idx = self.rx_filter(frame) % len(self.rx_queues)
        self.rx_packets += 1
        self.rx_bytes += frame.size
        if not self.rx_queues[queue_idx].deliver(frame):
            self.rx_missed += 1
            if tracer is not None:
                tracer.emit("drop", "drop_rx_ring", port=self.port_id,
                            queue=queue_idx, frame=tracer.frame_id(frame))
            if frame.pool is not None:
                frame.pool.release(frame)

    # -- timestamp registers ----------------------------------------------------------

    def read_tx_timestamp(self) -> Optional[tuple]:
        """Read and clear the tx timestamp register: (value_ns, ptp_seq)."""
        if self._tx_timestamp is None:
            return None
        value = (self._tx_timestamp, self._tx_timestamp_seq)
        self._tx_timestamp = None
        self._tx_timestamp_seq = None
        return value

    def read_rx_timestamp(self) -> Optional[tuple]:
        """Read and clear the rx timestamp register: (value_ns, ptp_seq)."""
        if self._rx_timestamp is None:
            return None
        value = (self._rx_timestamp, self._rx_timestamp_seq)
        self._rx_timestamp = None
        self._rx_timestamp_seq = None
        return value
