"""Simulated NIC ports.

Implements the hardware architecture Section 3.3 of the paper describes and
the rest of the paper exploits:

* multiple independent transmit/receive queues per port (descriptor rings),
* the asynchronous push-pull model: software enqueues descriptors, the NIC
  fetches and serializes frames on its own schedule (Section 7.1's Figure 5),
* per-queue hardware rate control (CBR) with the granularity of the chip's
  internal rate-control clock (Section 7.2/7.3),
* PTP timestamp units: one tx and one rx timestamp register that must be
  read back before the next packet can be timestamped (Section 6), or —
  on the 82580 — timestamping of *all* received packets,
* CRC checking on receive: frames with a bad FCS are dropped before queue
  assignment, only an error counter increments (the property Section 8's
  software rate control relies on),
* chip-specific capacity limits (the XL710's packet-rate and aggregate
  bandwidth caps from Section 5.4).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro import units
from repro.errors import ConfigurationError, QueueError
from repro.nicsim.clock import NicClock, clock_for_speed
from repro.nicsim.eventloop import EventLoop, Signal
from repro.nicsim.link import Wire
from repro.packet.ethernet import EtherType
from repro.packet.ip4 import IpProtocol
from repro.packet.ptp import PTP_UDP_PORT

_frame_seq = itertools.count()


@dataclass
class SimFrame:
    """A frame in flight: an immutable snapshot of a packet buffer.

    ``data`` excludes the FCS; ``fcs_ok`` says whether the NIC computed a
    correct FCS (the CRC-gap mechanism intentionally sends broken ones).
    """

    data: bytes
    fcs_ok: bool = True
    seq: int = field(default_factory=lambda: next(_frame_seq))
    #: Free-form metadata: flow ids, software send time, filler marks...
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Frame size including FCS, the paper's "packet size"."""
        return len(self.data) + units.FCS_SIZE

    @property
    def wire_size(self) -> int:
        return units.wire_length(self.size)

    def is_ptp(self) -> bool:
        """True if the frame matches the NIC PTP timestamp filters.

        Either PTP over Ethernet (EtherType 0x88F7) or PTP over UDP port
        319; only the EtherType / port matters, plus a version byte check —
        exactly the filters the Intel chips implement.
        """
        d = self.data
        if len(d) < 14:
            return False
        ether_type = (d[12] << 8) | d[13]
        if ether_type == EtherType.PTP:
            return len(d) >= 16 and (d[15] & 0x0F) == 2
        if ether_type == EtherType.IP4 and len(d) >= 38:
            ihl = (d[14] & 0x0F) * 4
            if d[23] != IpProtocol.UDP:
                return False
            l4 = 14 + ihl
            if len(d) < l4 + 8 + 2:
                return False
            dst_port = (d[l4 + 2] << 8) | d[l4 + 3]
            if dst_port != PTP_UDP_PORT:
                return False
            # Section 6.4: the NICs refuse to timestamp UDP PTP packets
            # smaller than the expected 80 bytes.
            if self.size < 80:
                return False
            return (d[l4 + 8 + 1] & 0x0F) == 2
        return False

    def ptp_sequence(self) -> Optional[int]:
        """The PTP sequence id, used to match timestamps to probes."""
        d = self.data
        if len(d) < 14:
            return None
        ether_type = (d[12] << 8) | d[13]
        if ether_type == EtherType.PTP:
            offset = 14 + 30
        elif ether_type == EtherType.IP4:
            ihl = (d[14] & 0x0F) * 4
            offset = 14 + ihl + 8 + 30
        else:
            return None
        if len(d) < offset + 2:
            return None
        return (d[offset] << 8) | d[offset + 1]


@dataclass(frozen=True)
class ChipModel:
    """Static description of a NIC chip family."""

    name: str
    speed_bps: int
    queues: int
    tx_fifo_bytes: int
    rx_fifo_bytes: int
    #: Supports per-queue hardware rate control.
    hw_rate_control: bool
    #: Supports PTP timestamp registers.
    hw_timestamping: bool
    #: Timestamps every received packet (82580-style buffer prepend).
    timestamp_all_rx: bool = False
    #: Latch granularity in clock ticks (2 on the 82599, Section 6.1).
    latch_ticks: int = 1
    #: Grid phase term: the 82580's k*8 ns constant (set per reset).
    phase_step_ns: float = 0.0
    #: Hardware rate control becomes unpredictable above this rate
    #: (Section 7.5: ~9 Mpps on X520/X540).
    hw_rate_max_pps: float = float("inf")
    #: Max packet rate the MAC can emit per port regardless of size
    #: (Section 8.1: 15.6 Mpps with short frames on X540/82599; the XL710's
    #: small-packet bottleneck).
    max_pps: float = float("inf")
    #: Aggregate packet rate over all ports of one card (XL710: 42 Mpps).
    card_max_pps: float = float("inf")
    #: Aggregate wire bandwidth over all ports of one card
    #: (XL710: 50 Gbit/s measured, Section 5.4).
    card_max_bps: float = float("inf")
    #: Rate-control clock tick in ns (estimated; scales with link speed,
    #: Section 7.3 predicts 10x finer granularity at 10 GbE).
    rate_clock_ns: float = 2.56


CHIP_82599 = ChipModel(
    name="82599", speed_bps=units.SPEED_10G, queues=128,
    tx_fifo_bytes=160 * 1024, rx_fifo_bytes=512 * 1024,
    hw_rate_control=True, hw_timestamping=True,
    latch_ticks=2, hw_rate_max_pps=9e6, max_pps=15.6e6,
)

CHIP_X520 = ChipModel(
    name="X520", speed_bps=units.SPEED_10G, queues=128,
    tx_fifo_bytes=160 * 1024, rx_fifo_bytes=512 * 1024,
    hw_rate_control=True, hw_timestamping=True,
    latch_ticks=2, hw_rate_max_pps=9e6, max_pps=15.6e6,
)

CHIP_X540 = ChipModel(
    name="X540", speed_bps=units.SPEED_10G, queues=128,
    tx_fifo_bytes=160 * 1024, rx_fifo_bytes=512 * 1024,
    hw_rate_control=True, hw_timestamping=True,
    latch_ticks=1, hw_rate_max_pps=9e6, max_pps=15.6e6,
)

CHIP_82580 = ChipModel(
    name="82580", speed_bps=units.SPEED_1G, queues=8,
    tx_fifo_bytes=40 * 1024, rx_fifo_bytes=64 * 1024,
    hw_rate_control=False, hw_timestamping=True,
    timestamp_all_rx=True, phase_step_ns=8.0, rate_clock_ns=25.6,
)

CHIP_XL710 = ChipModel(
    name="XL710", speed_bps=units.SPEED_40G, queues=384,
    tx_fifo_bytes=512 * 1024, rx_fifo_bytes=1024 * 1024,
    hw_rate_control=False, hw_timestamping=False,
    max_pps=32e6, card_max_pps=42e6, card_max_bps=50e9,
)

#: Default descriptor ring size (DPDK's usual default).
DEFAULT_RING_SIZE = 512


class TxQueueSim:
    """A transmit queue: descriptor ring + optional hardware rate limiter."""

    def __init__(self, port: "NicPort", index: int,
                 ring_size: int = DEFAULT_RING_SIZE) -> None:
        self.port = port
        self.index = index
        self.ring_size = ring_size
        self.ring: Deque[SimFrame] = deque()
        self.space_signal = Signal()
        #: Rate limit in bits/s of wire occupancy; 0 disables.
        self.rate_bps = 0.0
        self.next_allowed_ps = 0
        self._rate_error_ps = 0.0
        self.tx_packets = 0
        self.tx_bytes = 0

    @property
    def free_slots(self) -> int:
        return self.ring_size - len(self.ring)

    def set_rate(self, mbps: float) -> None:
        """Configure hardware CBR rate control (MoonGen's ``setRate``).

        ``mbps`` counts wire occupancy (frame + preamble/SFD/IFG) like the
        NIC's own pacer.  Raises if the chip has no rate control.
        """
        if not self.port.chip.hw_rate_control and mbps > 0:
            raise ConfigurationError(
                f"chip {self.port.chip.name} has no hardware rate control"
            )
        if mbps < 0:
            raise ConfigurationError(f"negative rate: {mbps}")
        self.rate_bps = mbps * 1e6

    def set_rate_pps(self, pps: float, frame_size: int) -> None:
        """Configure the limiter for a target packet rate at a frame size."""
        wire_bits = units.wire_length(frame_size) * 8
        self.set_rate(pps * wire_bits / 1e6)

    def enqueue(self, frames: List[SimFrame]) -> int:
        """Append descriptors; returns how many fit into the ring."""
        accepted = 0
        for frame in frames:
            if len(self.ring) >= self.ring_size:
                break
            self.ring.append(frame)
            accepted += 1
        if accepted:
            self.port._mac_kick()
        return accepted

    def _advance_rate_limiter(self, start_ps: int, frame: SimFrame) -> None:
        """Move the earliest next transmit time per the configured rate.

        The inter-departure time is quantized to the chip's rate-control
        clock; the quantization error is carried over so the average rate is
        exact (this is the dithering that causes the ±256 ns oscillation the
        paper measures in Section 7.3).
        """
        if self.rate_bps <= 0:
            self.next_allowed_ps = start_ps
            return
        gap_ps = frame.wire_size * 8 * 1e12 / self.rate_bps
        tick_ps = self.port.rate_clock_ps
        ideal = gap_ps + self._rate_error_ps
        ticks = max(1, round(ideal / tick_ps))
        actual = ticks * tick_ps
        self._rate_error_ps = ideal - actual
        self.next_allowed_ps = start_ps + round(actual)


class RxQueueSim:
    """A receive queue: descriptor ring filled by the NIC, drained by software."""

    def __init__(self, port: "NicPort", index: int,
                 ring_size: int = DEFAULT_RING_SIZE) -> None:
        self.port = port
        self.index = index
        self.ring_size = ring_size
        self.ring: Deque[SimFrame] = deque()
        self.packet_signal = Signal()
        self.rx_packets = 0
        self.rx_bytes = 0

    def deliver(self, frame: SimFrame) -> bool:
        """NIC-side delivery; False if the ring overflowed."""
        if len(self.ring) >= self.ring_size:
            return False
        self.ring.append(frame)
        self.rx_packets += 1
        self.rx_bytes += frame.size
        self.packet_signal.trigger()
        return True

    def fetch(self, max_frames: int) -> List[SimFrame]:
        """Software-side poll: take up to ``max_frames`` from the ring."""
        out = []
        while self.ring and len(out) < max_frames:
            out.append(self.ring.popleft())
        return out


class NicCard:
    """A physical adapter: shares aggregate limits between its ports.

    Needed for the XL710, whose MAC layer caps the *sum* of both ports
    (Section 5.4); for other chips the caps are infinite and this class is
    inert bookkeeping.
    """

    def __init__(self, chip: ChipModel) -> None:
        self.chip = chip
        self.ports: List["NicPort"] = []

    def active_tx_ports(self) -> int:
        return sum(1 for p in self.ports if p.has_pending_tx()) or 1

    def effective_frame_time_ps(self, frame: SimFrame, speed_bps: int) -> int:
        """MAC occupancy per frame after applying all hardware caps."""
        times = [units.frame_time_ps(frame.size, speed_bps)]
        chip = self.chip
        if chip.max_pps != float("inf"):
            times.append(round(1e12 / chip.max_pps))
        active = self.active_tx_ports()
        if chip.card_max_pps != float("inf"):
            times.append(round(1e12 * active / chip.card_max_pps))
        if chip.card_max_bps != float("inf"):
            bits = frame.wire_size * 8
            times.append(round(bits * 1e12 * active / chip.card_max_bps))
        return max(times)


class NicPort:
    """One network port of a simulated NIC."""

    def __init__(
        self,
        loop: EventLoop,
        chip: ChipModel = CHIP_X540,
        port_id: int = 0,
        n_tx_queues: int = 1,
        n_rx_queues: int = 1,
        speed_bps: Optional[int] = None,
        card: Optional[NicCard] = None,
        clock_drift_ppm: float = 0.0,
        clock_phase_steps: int = 0,
    ) -> None:
        if n_tx_queues > chip.queues or n_rx_queues > chip.queues:
            raise ConfigurationError(
                f"{chip.name} supports {chip.queues} queues, requested "
                f"{n_tx_queues} tx / {n_rx_queues} rx"
            )
        self.loop = loop
        self.chip = chip
        self.port_id = port_id
        self.speed_bps = speed_bps or chip.speed_bps
        self.card = card or NicCard(chip)
        self.card.ports.append(self)
        self.tx_queues = [TxQueueSim(self, i) for i in range(n_tx_queues)]
        self.rx_queues = [RxQueueSim(self, i) for i in range(n_rx_queues)]
        self.clock: NicClock = clock_for_speed(
            loop, self.speed_bps,
            latch_ticks=chip.latch_ticks,
            drift_ppm=clock_drift_ppm,
            phase_ns=chip.phase_step_ns * clock_phase_steps,
        )
        self.wire: Optional[Wire] = None
        #: Rate-control clock tick (ps); scales with link speed (Section 7.3).
        scale = chip.speed_bps / self.speed_bps
        self.rate_clock_ps = round(chip.rate_clock_ns * scale * 1000)
        # Timestamp registers (one each for tx and rx, Section 6).
        self._tx_timestamp: Optional[float] = None
        self._tx_timestamp_seq: Optional[int] = None
        self._rx_timestamp: Optional[float] = None
        self._rx_timestamp_seq: Optional[int] = None
        self.timestamp_missed = 0
        # RX dispatch.
        self.rx_filter: Optional[Callable[[SimFrame], int]] = None
        # Counters (the NIC statistics registers).
        self.tx_packets = 0
        self.tx_bytes = 0
        self.rx_packets = 0
        self.rx_bytes = 0
        self.rx_crc_errors = 0
        self.rx_missed = 0
        # MAC state.
        self._mac_busy = False
        self._mac_wakeup = None
        self._rr_next = 0
        # On-chip transmit FIFO (Section 3.2: 160 kB on the X540 conceals
        # ~128 µs of pauses at 10 GbE).  The NIC prefetches descriptors
        # from unpaced queues into the FIFO; rate-limited queues are
        # fetched on their pacing schedule instead.
        self._fifo: Deque[SimFrame] = deque()
        self._fifo_bytes = 0
        self._prefetching = False
        #: Observers called with (frame, tx_start_ps) for every sent frame;
        #: benches use this to record exact departure times.
        self.tx_observers: List[Callable[[SimFrame, int], None]] = []

    # -- wiring ----------------------------------------------------------------

    def attach_wire(self, wire: Wire) -> None:
        """Connect the transmit side of this port to a wire."""
        self.wire = wire

    def get_tx_queue(self, index: int) -> TxQueueSim:
        try:
            return self.tx_queues[index]
        except IndexError:
            raise QueueError(f"port {self.port_id} has no tx queue {index}") from None

    def get_rx_queue(self, index: int) -> RxQueueSim:
        try:
            return self.rx_queues[index]
        except IndexError:
            raise QueueError(f"port {self.port_id} has no rx queue {index}") from None

    def set_rx_filter(self, fn: Callable[[SimFrame], int]) -> None:
        """Install a Flow-Director-style filter mapping frames to rx queues."""
        self.rx_filter = fn

    def has_pending_tx(self) -> bool:
        return (self._mac_busy or bool(self._fifo)
                or any(q.ring for q in self.tx_queues))

    # -- transmit path -----------------------------------------------------------

    def _pick_queue(self) -> Optional[TxQueueSim]:
        """Round-robin over queues that are non-empty and rate-eligible."""
        n = len(self.tx_queues)
        now = self.loop.now_ps
        for i in range(n):
            queue = self.tx_queues[(self._rr_next + i) % n]
            if queue.ring and queue.next_allowed_ps <= now:
                self._rr_next = (self.tx_queues.index(queue) + 1) % n
                return queue
        return None

    def _earliest_pending_ps(self) -> Optional[int]:
        pending = [q.next_allowed_ps for q in self.tx_queues if q.ring]
        return min(pending) if pending else None

    def _fetch_from_ring(self, queue: TxQueueSim) -> SimFrame:
        """DMA one descriptor out of a ring: recycle + wake the producer."""
        frame = queue.ring.popleft()
        tracer = self.loop.tracer
        if tracer is not None:
            tracer.emit("desc", "desc_fetch", port=self.port_id,
                        queue=queue.index, frame=tracer.frame_id(frame),
                        size=frame.size)
        recycle = frame.meta.pop("recycle", None)
        if recycle is not None:
            # The NIC has fetched the packet: DPDK's transmit function can
            # recycle the buffer into its mempool (Section 4.2).
            recycle()
        queue.space_signal.trigger()
        return frame

    def _prefetch(self) -> None:
        """Fill the on-chip FIFO from unpaced queues (Section 3.2).

        Rate-limited queues are fetched on their pacing schedule instead,
        so hardware rate control timing is unaffected.
        """
        n = len(self.tx_queues)
        progress = True
        while progress and self._fifo_bytes < self.chip.tx_fifo_bytes:
            progress = False
            for i in range(n):
                if self._fifo_bytes >= self.chip.tx_fifo_bytes:
                    break
                queue = self.tx_queues[i]
                if queue.rate_bps or not queue.ring:
                    continue
                frame = self._fetch_from_ring(queue)
                frame.meta["_tx_queue"] = queue
                self._fifo.append(frame)
                self._fifo_bytes += frame.size
                progress = True

    def _next_frame(self):
        """The frame the MAC transmits next: FIFO first, then paced rings."""
        if self._fifo:
            frame = self._fifo.popleft()
            self._fifo_bytes -= frame.size
            return frame, frame.meta.pop("_tx_queue", None)
        queue = self._pick_queue()
        if queue is None:
            return None, None
        frame = self._fetch_from_ring(queue)
        return frame, queue

    def _mac_kick(self) -> None:
        """Advance the MAC: send the next eligible frame, if any.

        The descriptor DMA (prefetch) runs on every kick — even while the
        MAC is serializing — so the FIFO fills in the background; the
        guard prevents re-entrant prefetching when a space signal resumes
        a task that immediately enqueues more frames.
        """
        if not self._prefetching:
            self._prefetching = True
            try:
                self._prefetch()
            finally:
                self._prefetching = False
        if self._mac_busy:
            return
        # Mark the MAC busy *before* waking software: space signals can
        # synchronously resume a task that immediately enqueues and kicks.
        self._mac_busy = True
        frame, queue = self._next_frame()
        if frame is None:
            self._mac_busy = False
            nxt = self._earliest_pending_ps()
            if nxt is not None and (
                self._mac_wakeup is None or self._mac_wakeup.cancelled
            ):
                self._mac_wakeup = self.loop.schedule_at(
                    max(nxt, self.loop.now_ps), self._mac_kick
                )
            return
        if self._mac_wakeup is not None:
            self._mac_wakeup.cancel()
            self._mac_wakeup = None
        now = self.loop.now_ps
        mac_time = self.card.effective_frame_time_ps(frame, self.speed_bps)
        # Timestamp late in the transmit path (Section 6: as the frame hits
        # the wire), if the descriptor asked for it and the register is free.
        if frame.meta.get("timestamp") and self.chip.hw_timestamping and frame.is_ptp():
            tracer = self.loop.tracer
            if self._tx_timestamp is None:
                self._tx_timestamp = self.clock.timestamp_ns(now)
                self._tx_timestamp_seq = frame.ptp_sequence()
                if tracer is not None:
                    tracer.emit("tstamp", "tx_tstamp_latch", port=self.port_id,
                                frame=tracer.frame_id(frame),
                                ns=self._tx_timestamp,
                                ptp_seq=self._tx_timestamp_seq)
            else:
                self.timestamp_missed += 1
                if tracer is not None:
                    tracer.emit("tstamp", "tstamp_missed", port=self.port_id,
                                side="tx", frame=tracer.frame_id(frame))
        frame.meta["tx_start_ps"] = now
        for observer in self.tx_observers:
            observer(frame, now)
        if self.wire is not None:
            self.wire.transmit(frame, frame.size, start_ps=now)
        self.tx_packets += 1
        self.tx_bytes += frame.size
        if queue is not None:
            queue.tx_packets += 1
            queue.tx_bytes += frame.size
            queue._advance_rate_limiter(now, frame)

        def done() -> None:
            self._mac_busy = False
            self._mac_kick()

        self.loop.schedule(mac_time, done)

    # -- receive path --------------------------------------------------------------

    def receive(self, frame: SimFrame, arrival_ps: int) -> None:
        """Wire-side delivery into this port (the wire's sink callback)."""
        tracer = self.loop.tracer
        if not frame.fcs_ok:
            # Dropped before queue assignment; packet processing logic is
            # unaffected — the property Section 8 relies on.
            self.rx_crc_errors += 1
            if tracer is not None:
                tracer.emit("drop", "drop_fcs", port=self.port_id,
                            frame=tracer.frame_id(frame), size=frame.size)
            return
        if self.chip.hw_timestamping:
            # Timestamps are taken early in the receive path, referenced to
            # the start of the frame (the wire delivers at frame end).
            stamp_ps = arrival_ps - units.frame_time_ps(frame.size, self.speed_bps)
            if self.chip.timestamp_all_rx:
                frame.meta["rx_timestamp_ns"] = self.clock.timestamp_ns(stamp_ps)
            elif frame.is_ptp():
                if self._rx_timestamp is None:
                    self._rx_timestamp = self.clock.timestamp_ns(stamp_ps)
                    self._rx_timestamp_seq = frame.ptp_sequence()
                    if tracer is not None:
                        tracer.emit("tstamp", "rx_tstamp_latch",
                                    port=self.port_id,
                                    frame=tracer.frame_id(frame),
                                    ns=self._rx_timestamp,
                                    ptp_seq=self._rx_timestamp_seq)
                else:
                    self.timestamp_missed += 1
                    if tracer is not None:
                        tracer.emit("tstamp", "tstamp_missed",
                                    port=self.port_id, side="rx",
                                    frame=tracer.frame_id(frame))
        queue_idx = 0
        if self.rx_filter is not None:
            queue_idx = self.rx_filter(frame) % len(self.rx_queues)
        self.rx_packets += 1
        self.rx_bytes += frame.size
        if not self.rx_queues[queue_idx].deliver(frame):
            self.rx_missed += 1
            if tracer is not None:
                tracer.emit("drop", "drop_rx_ring", port=self.port_id,
                            queue=queue_idx, frame=tracer.frame_id(frame))

    # -- timestamp registers ----------------------------------------------------------

    def read_tx_timestamp(self) -> Optional[tuple]:
        """Read and clear the tx timestamp register: (value_ns, ptp_seq)."""
        if self._tx_timestamp is None:
            return None
        value = (self._tx_timestamp, self._tx_timestamp_seq)
        self._tx_timestamp = None
        self._tx_timestamp_seq = None
        return value

    def read_rx_timestamp(self) -> Optional[tuple]:
        """Read and clear the rx timestamp register: (value_ns, ptp_seq)."""
        if self._rx_timestamp is None:
            return None
        value = (self._rx_timestamp, self._rx_timestamp_seq)
        self._rx_timestamp = None
        self._rx_timestamp_seq = None
        return value
