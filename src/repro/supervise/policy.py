"""Supervision policy: heartbeats, seeded backoff, poison quarantine.

The knobs the coordinator uses to keep a long campaign alive when
individual points crash, hang, or run slow — and the structured
:class:`DegradationReport` it hands back so an unattended multi-hour run
is diagnosable from its artifacts alone.

Everything here is deterministic on purpose: retry backoff delays are
derived from the per-point seed stream (``seed_for``), never from a
shared RNG or the wall clock, so a chaos replay schedules the same
delays in the same order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import PoisonedPointError
from repro.parallel.seeding import seed_for


def backoff_delay_s(
    point_seed: int,
    attempt: int,
    base_s: float = 0.05,
    factor: float = 2.0,
    max_s: float = 2.0,
) -> float:
    """Deterministic exponential backoff with seeded jitter.

    ``attempt`` is 1-based (the attempt that just failed).  The delay is
    ``min(max_s, base_s * factor**(attempt-1))`` scaled by a jitter drawn
    uniformly from [0.5, 1.0) out of the point's own seed stream —
    ``seed_for(point_seed, ("backoff", attempt))`` — so concurrent
    retries decorrelate without ever consulting a shared RNG.
    """
    attempt = max(1, int(attempt))
    delay = min(float(max_s), float(base_s) * float(factor) ** (attempt - 1))
    jitter = random.Random(
        seed_for(point_seed, ("backoff", attempt))).uniform(0.5, 1.0)
    return delay * jitter


@dataclass
class SupervisePolicy:
    """Worker-supervision knobs for ``run_parallel(supervise=...)``.

    * **heartbeats** — each worker runs a daemon thread ticking a
      dedicated pipe every ``heartbeat_interval_s``; the coordinator
      timestamps the ticks so a deadline expiry can distinguish a *hung*
      worker (interpreter wedged: silent for ``hung_after_s``) from a
      merely *slow* one (still ticking).  A worker that dies outright is
      *crashed* (EOF on the result pipe), exactly as before.
    * **backoff** — failed attempts are relaunched only after a
      deterministic seeded exponential delay (:func:`backoff_delay_s`),
      so a flapping host resource is not hammered in lockstep.
    * **quarantine** — with ``quarantine=True``, a point that exhausts
      its attempt budget is recorded as *poisoned* (journaled when a
      journal is armed) and the sweep completes with partial results and
      a :class:`DegradationReport` instead of aborting.
    """

    heartbeat_interval_s: float = 0.2
    hung_after_s: float = 1.0
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    quarantine: bool = False

    def backoff_s(self, point_seed: int, attempt: int) -> float:
        return backoff_delay_s(point_seed, attempt, self.backoff_base_s,
                               self.backoff_factor, self.backoff_max_s)


@dataclass(frozen=True)
class PoisonedPoint:
    """Placeholder result for a quarantined sweep point.

    Sits in the results list where the value would have gone, so indices
    and ordering stay intact for the surviving points.  ``raise_()``
    turns it back into the error for callers that cannot proceed without
    the value.
    """

    key: str
    seed: int
    error: str
    attempts: int

    def raise_(self) -> None:
        raise PoisonedPointError(
            f"point {self.key!r} was quarantined after {self.attempts} "
            f"attempt(s): {self.error}")

    def to_dict(self) -> Dict[str, Any]:
        return {"poisoned": True, "key": self.key, "seed": self.seed,
                "error": self.error, "attempts": self.attempts}


@dataclass
class DegradationReport:
    """Structured outcome of a supervised sweep.

    Mutated in place by the engine while the sweep runs (so a ``--live``
    progress hook can read it mid-flight) and returned as part of the
    sweep's artifacts.  ``register_metrics`` publishes every counter
    under ``supervise.*`` names in a :class:`repro.metrics.MetricsRegistry`
    so the serve daemon / Prometheus exporter see the same numbers.
    """

    completed: int = 0      #: points executed to success this run
    resumed: int = 0        #: points restored from the journal
    retried: int = 0        #: extra attempts after a crash/timeout
    crashed: int = 0        #: workers that died without reporting
    hung: int = 0           #: deadline expiries with silent heartbeats
    slow: int = 0           #: deadline expiries with live heartbeats
    poisoned: List[PoisonedPoint] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True when any point had to be quarantined."""
        return bool(self.poisoned)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "completed": self.completed,
            "resumed": self.resumed,
            "retried": self.retried,
            "crashed": self.crashed,
            "hung": self.hung,
            "slow": self.slow,
            "poisoned": [p.to_dict() for p in self.poisoned],
        }

    def summary(self) -> str:
        """One line for logs / the ``--live`` progress display."""
        parts = [f"completed={self.completed}"]
        if self.resumed:
            parts.append(f"resumed={self.resumed}")
        if self.retried:
            parts.append(f"retried={self.retried}")
        for name in ("crashed", "hung", "slow"):
            value = getattr(self, name)
            if value:
                parts.append(f"{name}={value}")
        if self.poisoned:
            parts.append(f"poisoned={len(self.poisoned)}")
        return " ".join(parts)

    def format_table(self) -> str:
        """Multi-line degradation report for the CLI's structured outcome."""
        lines = [f"supervise: {self.summary()}"]
        for p in self.poisoned:
            lines.append(f"  poisoned {p.key}: {p.error} "
                         f"({p.attempts} attempt(s))")
        return "\n".join(lines)

    def register_metrics(self, registry, prefix: str = "supervise.") -> None:
        """Publish the report's counters under ``supervise.*`` names."""
        helps = {
            "completed": "points executed to success this run",
            "resumed": "points restored from the sweep journal",
            "retried": "extra attempts after worker crash/timeout",
            "crashed": "workers that died without reporting",
            "hung": "point timeouts with silent heartbeats",
            "slow": "point timeouts with live heartbeats",
        }
        for name, help_text in helps.items():
            registry.counter(f"{prefix}points.{name}"
                             if name in ("completed", "resumed", "retried")
                             else f"{prefix}workers.{name}",
                             (lambda n=name: getattr(self, n)),
                             help=help_text)
        registry.gauge(f"{prefix}points.poisoned",
                       lambda: len(self.poisoned),
                       help="points quarantined after exhausting attempts")


__all__ = [
    "DegradationReport",
    "PoisonedPoint",
    "SupervisePolicy",
    "backoff_delay_s",
]
