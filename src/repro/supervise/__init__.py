"""Supervised, crash-safe experiment execution (``repro.supervise``).

The resilience layer between the parallel engine and a long unattended
campaign (the substrate the ``serve`` daemon will sit on):

* :class:`SweepJournal` — append-only, fsync'd JSONL journal of
  completed points; ``run_parallel(journal=...)`` skips journaled points
  on restart with *bit-identical* resume (docs/RESILIENCE.md).
* :class:`SupervisePolicy` — worker heartbeats (hung vs crashed vs slow
  classification), deterministic seeded exponential backoff between
  retries, and poison-point quarantine.
* :class:`DegradationReport` / :class:`PoisonedPoint` — the structured
  outcome of a supervised sweep; ``register_metrics`` publishes it as
  ``supervise.*`` metrics.
* :class:`Watchdog` — opt-in :class:`~repro.nicsim.eventloop.EventLoop`
  guards: wall-clock deadline and zero-advance livelock detection,
  aborting with :class:`~repro.errors.SimAborted` plus diagnostics.

Errors: :class:`~repro.errors.JournalCorruptError`,
:class:`~repro.errors.PoisonedPointError`,
:class:`~repro.errors.SweepCancelledError`,
:class:`~repro.errors.SimAborted`.
"""

from repro.errors import (
    JournalCorruptError,
    PoisonedPointError,
    SimAborted,
    SweepCancelledError,
)
from repro.nicsim.eventloop import Watchdog
from repro.supervise.journal import (
    JOURNAL_SCHEMA,
    SweepJournal,
    payload_fingerprint,
)
from repro.supervise.policy import (
    DegradationReport,
    PoisonedPoint,
    SupervisePolicy,
    backoff_delay_s,
)

__all__ = [
    "JOURNAL_SCHEMA",
    "DegradationReport",
    "JournalCorruptError",
    "PoisonedPoint",
    "PoisonedPointError",
    "SimAborted",
    "SupervisePolicy",
    "SweepCancelledError",
    "SweepJournal",
    "Watchdog",
    "backoff_delay_s",
    "payload_fingerprint",
]
