"""Append-only sweep journals: crash-safe persistence with exact resume.

A :class:`SweepJournal` is a JSONL file recording every completed sweep
point as ``(point key, seed, result fingerprint, payload)``.  Records are
appended one line at a time, flushed and fsync'd per record, so the
journal on disk is always a valid prefix of the sweep — whatever instant
the coordinator is killed at.  On restart ``run_parallel(journal=...)``
skips journaled points (after re-verifying each record's fingerprint
against its payload) and executes only the remainder; the determinism
machinery (``seed_for``/``point_key``) guarantees the resumed points are
*bit-identical* to what an uninterrupted run would have produced.

Journal format v1 (docs/RESILIENCE.md):

* line 1 — header: ``{"kind": "header", "schema": 1, "root_seed": N}``;
* point record — ``{"kind": "point", "key": <point_key>, "seed": N,
  "fingerprint": <stable_hash(payload)>, "payload": <JSON result>}``;
* poison record — ``{"kind": "poisoned", "key": ..., "seed": N,
  "error": "<Type: message>", "attempts": N}``.

Reading tolerates exactly one kind of damage: a truncated or unparseable
*final* line (the crash-mid-append case), which is dropped.  Damage
anywhere else — interior garbage, a fingerprint that does not match its
payload, a header for a different root seed — raises
:class:`~repro.errors.JournalCorruptError`: a journal that lies about
completed work must never be silently trusted.

On successful completion the engine *seals* the journal: the file is
rewritten atomically (tmp + ``os.replace``) with records in canonical
point order.  Appends during the run land in completion order (which is
worker-timing dependent); sealing is what makes the final journal of a
killed-and-resumed campaign byte-identical to an uninterrupted one for
any ``--jobs``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import ConfigurationError, JournalCorruptError
from repro.metrics.manifest import stable_hash

#: Journal format version; bumped on any incompatible record change.
JOURNAL_SCHEMA = 1

_RECORD_KINDS = ("point", "poisoned")


def _encode(record: Dict[str, Any]) -> str:
    """One canonical JSONL line: sorted keys, compact separators."""
    return json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"


def _canonical_payload(payload: Any) -> Any:
    """The JSON round-trip of a result payload.

    Journaled results are whatever JSON gives back (lists, not tuples),
    so a resumed point and a freshly-executed point agree exactly; the
    engine therefore canonicalizes *every* result when a journal is
    armed, not just the resumed ones.
    """
    try:
        return json.loads(json.dumps(payload))
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"journaled sweep results must be JSON-serializable: {exc}"
        ) from None


def payload_fingerprint(payload: Any) -> str:
    """Stable BLAKE2b fingerprint of a canonicalized result payload."""
    return stable_hash(_canonical_payload(payload))


class SweepJournal:
    """One sweep's crash-safe completion log (see module docstring)."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        #: Loaded records by journal key (last write wins on duplicates,
        #: which only arise from a pre-seal crash during re-execution).
        self.records: Dict[str, Dict[str, Any]] = {}
        #: True when :meth:`open` dropped a truncated final line.
        self.dropped_partial = False
        self._fh = None
        self._root_seed: Optional[int] = None

    # -- loading ---------------------------------------------------------------

    def _parse(self, text: str) -> List[Dict[str, Any]]:
        lines = text.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        parsed: List[Dict[str, Any]] = []
        for lineno, line in enumerate(lines):
            last = lineno == len(lines) - 1
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("record is not an object")
            except ValueError:
                if last:
                    # Crash mid-append: the unfinished record never
                    # happened.  Everything before it is intact.
                    self.dropped_partial = True
                    break
                raise JournalCorruptError(
                    f"{self.path}:{lineno + 1}: unparseable interior "
                    "record (only the final line may be truncated)"
                ) from None
            parsed.append(record)
        return parsed

    def _check_record(self, lineno: int, record: Dict[str, Any]) -> None:
        kind = record.get("kind")
        if kind not in _RECORD_KINDS:
            raise JournalCorruptError(
                f"{self.path}:{lineno}: unknown record kind {kind!r}")
        for field in ("key", "seed"):
            if field not in record:
                raise JournalCorruptError(
                    f"{self.path}:{lineno}: record missing {field!r}")
        if kind == "point":
            if "payload" not in record or "fingerprint" not in record:
                raise JournalCorruptError(
                    f"{self.path}:{lineno}: point record missing payload/"
                    "fingerprint")
            expected = stable_hash(record["payload"])
            if record["fingerprint"] != expected:
                raise JournalCorruptError(
                    f"{self.path}:{lineno}: fingerprint mismatch for key "
                    f"{record['key']!r}: recorded {record['fingerprint']}, "
                    f"payload hashes to {expected}")
        else:
            for field in ("error", "attempts"):
                if field not in record:
                    raise JournalCorruptError(
                        f"{self.path}:{lineno}: poison record missing "
                        f"{field!r}")

    def open(self, root_seed: int) -> None:
        """Load any existing journal, verify it, and open for appends.

        A fresh file gets the header record immediately; an existing one
        must carry a matching schema and ``root_seed`` (resuming a sweep
        under a different seed would splice two unrelated RNG universes
        into one result set).
        """
        root_seed = int(root_seed)
        if self._fh is not None:  # reopen: reload state from disk
            self._fh.close()
            self._fh = None
        existing = None
        try:
            with open(self.path, encoding="utf-8") as fh:
                existing = fh.read()
        except FileNotFoundError:
            pass
        self.records = {}
        self.dropped_partial = False
        if existing:
            parsed = self._parse(existing)
            if not parsed:
                # Only a torn header survived: truncate and start over
                # (appending after garbage would corrupt line 1).
                with open(self.path, "w", encoding="utf-8"):
                    pass
                existing = None
            else:
                header = parsed[0]
                if header.get("kind") != "header":
                    raise JournalCorruptError(
                        f"{self.path}:1: first record must be the header")
                if header.get("schema") != JOURNAL_SCHEMA:
                    raise JournalCorruptError(
                        f"{self.path}: unsupported journal schema "
                        f"{header.get('schema')!r} (expected "
                        f"{JOURNAL_SCHEMA})")
                if header.get("root_seed") != root_seed:
                    raise ConfigurationError(
                        f"{self.path}: journal was written with root seed "
                        f"{header.get('root_seed')!r}; cannot resume with "
                        f"{root_seed} (results would mix seed universes)")
                for lineno, record in enumerate(parsed[1:], start=2):
                    self._check_record(lineno, record)
                    self.records[record["key"]] = record
                if self.dropped_partial:
                    # Rewrite the valid prefix before appending: leaving
                    # the torn line in place would turn it into interior
                    # garbage once new records land after it.
                    with open(self.path, "w", encoding="utf-8",
                              newline="\n") as fh:
                        for record in parsed:
                            fh.write(_encode(record))
                        fh.flush()
                        os.fsync(fh.fileno())
        self._root_seed = root_seed
        self._fh = open(self.path, "a", encoding="utf-8", newline="\n")
        if not existing:
            self._append({"kind": "header", "schema": JOURNAL_SCHEMA,
                          "root_seed": root_seed})

    def lookup(self, key: str) -> Optional[Dict[str, Any]]:
        """The journaled record for ``key``, or ``None`` if never finished."""
        return self.records.get(key)

    def __len__(self) -> int:
        return len(self.records)

    # -- appending -------------------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        if self._fh is None:
            raise ConfigurationError(
                f"journal {self.path} is not open (call open() first)")
        self._fh.write(_encode(record))
        # One flush+fsync per record: the journal's whole value is that a
        # record, once acknowledged, survives any later crash.
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def record_point(self, key: str, seed: int, payload: Any) -> Any:
        """Journal one completed point; returns the canonical payload.

        The returned value is the JSON round-trip of ``payload`` — what a
        resumed run will see — and is what the engine stores in the
        results list, so fresh and resumed executions agree exactly.
        """
        payload = _canonical_payload(payload)
        record = {"kind": "point", "key": key, "seed": int(seed),
                  "fingerprint": stable_hash(payload), "payload": payload}
        self._append(record)
        self.records[key] = record
        return payload

    def record_poisoned(self, key: str, seed: int, error: str,
                        attempts: int) -> Dict[str, Any]:
        """Journal one quarantined point (attempt budget exhausted)."""
        record = {"kind": "poisoned", "key": key, "seed": int(seed),
                  "error": str(error), "attempts": int(attempts)}
        self._append(record)
        self.records[key] = record
        return record

    # -- sealing ---------------------------------------------------------------

    def seal(self, keys: Iterable[str]) -> None:
        """Atomically rewrite the journal in canonical point order.

        Called by the engine once every point is accounted for.  The
        sealed file is a pure function of ``(points, root_seed, fn)`` —
        independent of worker count, completion order, and how many
        kill/resume cycles it took — which is exactly what the
        harness-chaos CI gate byte-compares.
        """
        keys = list(keys)
        missing = [key for key in keys if key not in self.records]
        if missing:
            raise ConfigurationError(
                f"cannot seal {self.path}: {len(missing)} point(s) have no "
                f"record (first: {missing[0]!r})")
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8", newline="\n") as fh:
            fh.write(_encode({"kind": "header", "schema": JOURNAL_SCHEMA,
                              "root_seed": self._root_seed}))
            for key in keys:
                fh.write(_encode(self.records[key]))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["JOURNAL_SCHEMA", "SweepJournal", "payload_fingerprint"]
