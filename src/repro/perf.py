"""Continuous perf-regression harness (``repro.perf``).

The paper's headline claim is throughput: one core saturating 10 GbE at
14.88 Mpps.  In this reproduction the figure/table benches replay millions
of simulated packets through ``EventLoop``, ``SimFrame``, and the MAC/wire
models, so *simulator events per wall-clock second* is our effective line
rate.  This module pins a small suite of hot-path scenarios, measures them
reproducibly, and records the trajectory in ``BENCH_core.json`` so every
future PR is held to the current numbers.

Four pinned scenarios:

* ``eventloop`` — the raw scheduler: timer wheels, same-instant bursts,
  cancellations.  Measures the event loop alone.
* ``timer_churn`` — the many-timer cancel-heavy shape (hundreds of
  thousands of concurrently armed timeouts, ~90 % cancelled before
  firing): the workload the calendar-queue scheduler exists for.
* ``bench_table1`` — the Table 1 transmit loop (one core, one 10 GbE
  port, 64 B frames): the canonical single-core hot path.
* ``bench_fig2`` — the Figure 2 heavy multicore script (4 cores, 2 ports,
  8 random fields + IP offload per packet): the scaling hot path.

Every scenario also takes a ``scheduler`` (``"heap"``/``"calendar"``,
see ``repro.nicsim.calqueue``); per-scheduler baselines live in
``-calendar``-suffixed modes and ``delta_vs_heap`` records the calendar
backend's ratio against the heap baseline of the same mode — the
scheduler seam's speedup claim, analogous to ``delta_vs_event`` for the
batch tier.

Metrics per scenario:

* ``events`` / ``wall_s`` / ``events_per_sec`` — scheduler throughput;
* ``sim_packets`` / ``wall_pps`` — simulated packets per *wall* second,
  the simulator's effective generator rate;
* ``sim_pps`` — packets per *simulated* second (a correctness fingerprint:
  it must not move when only the implementation gets faster);
* ``wall_s_median`` / ``wall_s_stdev`` — spread of ``wall_s`` across the
  repeat rounds, so regression checks can judge deltas against noise.

``run_suite(jobs=N)`` shards the (scenario, round) grid across worker
processes via ``repro.parallel``; fingerprints are identical to serial,
stamps record ``host.cpu_count``/``host.jobs`` and the suite's
``sweep_wall_s`` so cross-machine and serial-vs-parallel wall-clock
deltas stay interpretable.

``BENCH_core.json`` layout::

    {
      "schema": 2,
      "baseline": {
        "full":        {"recorded": ..., "host": ..., "scenarios": {...}},
        "smoke":       {"recorded": ..., "host": ..., "scenarios": {...}},
        "full-batch":  {...},   # batch-tier runs (``--batch``)
        "smoke-batch": {...}
      },
      "current": {"mode": "full", "recorded": ..., "scenarios": {...}},
      "delta":   {"bench_table1": {"events_per_sec": 2.43, ...}, ...},
      "delta_vs_event": {"bench_table1": {"events_per_sec": 3.1, ...}},
      "delta_vs_heap":  {"timer_churn": {"events_per_sec": 1.5, ...}}
    }

Calendar-scheduler runs (``--scheduler calendar``) land in
``full-calendar``/``smoke-calendar`` (and ``-batch-calendar``) modes.

``delta`` values are ratios current/baseline (>1 is faster), always
computed against the baseline of the *same mode* — smoke workloads are
startup-dominated and must never be compared against full-length runs,
and batch-tier runs are compared against batch-tier baselines.  The one
deliberate cross-mode number is ``delta_vs_event``: a ``--batch`` run's
ratio against the *event-by-event* baseline of the same length, i.e. the
batch tier's speedup claim.  Baselines are written once per mode
(``--rebaseline``) and kept across runs; ``current`` is replaced on
every run.  See ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import time
from typing import Callable, Dict, Iterable, List, Optional, Tuple

SCHEMA_VERSION = 2

#: Default location of the trajectory file, relative to the repo root.
BENCH_FILE = "BENCH_core.json"

#: Metrics compared between baseline and current (ratios in ``delta``).
DELTA_METRICS = ("events_per_sec", "wall_pps")

#: Fingerprint metrics that must be identical between runs of the same
#: code (they depend only on simulation arithmetic, not wall time).
FINGERPRINT_METRICS = ("events", "sim_packets", "sim_pps")


# ---------------------------------------------------------------------------
# scenarios


def _scenario_eventloop(smoke: bool, batch: bool = False,
                        scheduler: str = "heap") -> Dict[str, float]:
    """Raw scheduler throughput: timers, same-instant bursts, cancels.

    ``batch`` is accepted for signature uniformity but is a no-op: the
    scenario exercises the scheduler alone, with no NIC ports to batch.
    """
    from repro.nicsim.eventloop import EventLoop

    n_timers = 20_000 if smoke else 80_000
    loop = EventLoop(scheduler=scheduler)
    state = {"chains": 0}

    # Interleaved timer chains: each fired event reschedules itself a few
    # times at a new instant, plus schedules a burst of two same-instant
    # followers (the fast-lane shape), plus one cancelled event.
    def chain(step: int, hops: int) -> None:
        if hops <= 0:
            state["chains"] += 1
            return
        loop.schedule(step, lambda: chain(step, hops - 1))
        loop.schedule(0, _noop)
        loop.schedule(0, _noop)
        dead = loop.schedule(step * 2 + 1, _noop)
        dead.cancel()

    def _noop() -> None:
        pass

    n_chains = n_timers // 40
    for i in range(n_chains):
        loop.schedule(i % 97, lambda i=i: chain(11 + i % 13, 10))

    t0 = time.perf_counter()
    loop.run()
    wall = time.perf_counter() - t0
    events = loop.events_processed
    return {
        "events": events,
        "wall_s": wall,
        "events_per_sec": events / wall,
        "sim_packets": 0,
        "wall_pps": 0.0,
        "sim_pps": 0.0,
    }


def _effective_events(env) -> int:
    """Events the run *accounts for*: processed plus batch-tier savings.

    With the batch tier on, trains execute arithmetically and their
    per-frame events never reach the scheduler; counting only
    ``events_processed`` would make a faster run look slower.  The tier
    tracks exactly how many events each train replaced, so
    ``processed + saved`` is the event-path-equivalent workload and
    ``events_per_sec`` stays an apples-to-apples throughput number
    (docs/PERFORMANCE.md, "Measuring the batch tier").
    """
    events = env.loop.events_processed
    if env.batch is not None:
        events += env.batch.events_saved
    return events


class _ChurnFlow:
    """One periodic timer with a guard timeout, rearmed on every fire.

    The distilled ``wait_any``-timeout pattern: a flow arms a long guard
    timeout, the expected event arrives first, the timeout is cancelled
    and a new one armed.  Kept as a ``__slots__`` class (not closures) so
    the measured cost is the scheduler's, not the workload's.
    """

    __slots__ = ("loop", "stride_ps", "timeout_ps", "hops", "pending")

    def __init__(self, loop, stride_ps: int, timeout_ps: int, hops: int) -> None:
        self.loop = loop
        self.stride_ps = stride_ps
        self.timeout_ps = timeout_ps
        self.hops = hops
        self.pending = None

    def _expire(self) -> None:
        self.pending = None

    def fire(self) -> None:
        pending = self.pending
        if pending is not None:
            pending.cancel()
        self.hops -= 1
        if self.hops <= 0:
            return
        loop = self.loop
        now = loop.now_ps
        self.pending = loop.schedule_at(now + self.timeout_ps, self._expire)
        loop.schedule_at(now + self.stride_ps, self.fire)


def _scenario_timer_churn(smoke: bool, batch: bool = False,
                          scheduler: str = "heap") -> Dict[str, float]:
    """Cancel-heavy many-timer churn: the calendar queue's home turf.

    Hundreds of thousands of flows each keep one periodic event plus one
    far-future guard timeout armed; ~90 % of the timeouts are cancelled
    before firing (the ``wait_any``-timeout shape).  The pending set
    stays huge, so the heap pays O(log n) per pop across random cache
    lines while the calendar queue stays O(1) — this is the scenario
    behind the ``delta_vs_heap`` claim.

    The cyclic garbage collector is disabled around the measured region
    (as ``timeit`` does): with ~1M live events a generational pass is
    O(pending set) and lands on whichever allocation triggers it,
    swamping the scheduler delta under test.  ``batch`` is a no-op here
    (pure timers, nothing to batch).
    """
    import gc

    from repro.nicsim.eventloop import EventLoop

    n_flows = 8_000 if smoke else 480_000
    hops = 10 if smoke else 4
    loop = EventLoop(scheduler=scheduler)
    flows = [_ChurnFlow(loop, 211 + (i * 37) % 797, 50_000_000, hops)
             for i in range(n_flows)]
    for i, flow in enumerate(flows):
        loop.schedule_at(1 + (i * 7919) % 100_000, flow.fire)

    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        loop.run()
        wall = time.perf_counter() - t0
    finally:
        if gc_was_enabled:
            gc.enable()
    events = loop.events_processed
    return {
        "events": events,
        "wall_s": wall,
        "events_per_sec": events / wall,
        "sim_packets": 0,
        "wall_pps": 0.0,
        "sim_pps": 0.0,
    }


def _scenario_bench_table1(smoke: bool, batch: bool = False,
                           scheduler: str = "heap") -> Dict[str, float]:
    """The Table 1 transmit loop: one core saturating one 10 GbE port."""
    from repro import MoonGenEnv

    duration_ns = 1_500_000 if smoke else 6_000_000
    env = MoonGenEnv(seed=1, core_freq_hz=2.4e9, batch=batch,
                     scheduler=scheduler)
    tx = env.config_device(0, tx_queues=1)
    rx = env.config_device(1, rx_queues=1)
    env.connect(tx, rx)

    def slave(env, queue):
        mem = env.create_mempool(
            fill=lambda b: b.udp_packet.fill(pkt_length=60))
        bufs = mem.buf_array()
        while env.running():
            bufs.alloc(60)
            yield queue.send(bufs)

    env.launch(slave, env, tx.get_tx_queue(0))
    t0 = time.perf_counter()
    env.wait_for_slaves(duration_ns=duration_ns)
    wall = time.perf_counter() - t0
    events = _effective_events(env)
    packets = tx.tx_packets
    out: Dict[str, float] = {
        "events": events,
        "wall_s": wall,
        "events_per_sec": events / wall,
        "sim_packets": packets,
        "wall_pps": packets / wall,
        "sim_pps": packets / (env.now_ns / 1e9),
    }
    if env.batch is not None:
        out["batch_stats"] = _batch_stats(env)
    return out


def _scenario_bench_fig2(smoke: bool, batch: bool = False,
                         scheduler: str = "heap") -> Dict[str, float]:
    """The Figure 2 heavy script on 4 cores and two shared ports."""
    from repro import MoonGenEnv

    duration_ns = 100_000 if smoke else 300_000
    n_cores = 4

    def heavy_slave(env, queues):
        mem = env.create_mempool(
            fill=lambda b: b.udp_packet.fill(pkt_length=60))
        arrays = [mem.buf_array() for _ in queues]
        while env.running():
            for queue, bufs in zip(queues, arrays):
                bufs.alloc(60)
                bufs.charge_random_fields(8)
                bufs.offload_ip_checksums()
                yield queue.send(bufs)

    env = MoonGenEnv(seed=3, core_freq_hz=1.2e9, batch=batch,
                     scheduler=scheduler)
    ports = [env.config_device(i, tx_queues=n_cores) for i in (0, 1)]
    sinks = [env.config_device(i + 2, rx_queues=1) for i in (0, 1)]
    for port, sink in zip(ports, sinks):
        env.connect(port, sink)
    for core in range(n_cores):
        env.launch(heavy_slave, env, [p.get_tx_queue(core) for p in ports])
    t0 = time.perf_counter()
    env.wait_for_slaves(duration_ns=duration_ns)
    wall = time.perf_counter() - t0
    events = _effective_events(env)
    packets = sum(p.tx_packets for p in ports)
    out: Dict[str, float] = {
        "events": events,
        "wall_s": wall,
        "events_per_sec": events / wall,
        "sim_packets": packets,
        "wall_pps": packets / wall,
        "sim_pps": packets / (env.now_ns / 1e9),
    }
    if env.batch is not None:
        out["batch_stats"] = _batch_stats(env)
    return out


SCENARIOS: Dict[str, Callable[..., Dict[str, float]]] = {
    "eventloop": _scenario_eventloop,
    "timer_churn": _scenario_timer_churn,
    "bench_table1": _scenario_bench_table1,
    "bench_fig2": _scenario_bench_fig2,
}

#: Valid values for the ``scheduler`` scenario/suite parameter.
SCHEDULERS = ("heap", "calendar")


# ---------------------------------------------------------------------------
# measurement


def _batch_stats(env) -> Dict[str, object]:
    """Batch-tier sidecar for a scenario result (``--verbose`` table).

    Attached under ``batch_stats`` when the tier is on; stripped from the
    rounds recorded in BENCH_core.json (self-accounting, not a metric).
    """
    tier = env.batch
    return {
        "trains": tier.trains,
        "frames": tier.frames,
        "events_saved": tier.events_saved,
        "fallbacks": dict(sorted(tier.fallbacks.items())),
    }


def _collapse_rounds(name: str,
                     rounds: List[Dict[str, float]]) -> Dict[str, float]:
    """Best-of-N plus noise statistics over a scenario's repeat rounds.

    The simulation outputs (events, packets) are identical across rounds —
    only wall time varies — so best-of-N is the standard way to suppress
    scheduler/GC noise, and ``wall_s_median``/``wall_s_stdev`` record how
    noisy the rounds were so the CI regression check can judge a delta
    against the measurement spread.  A mismatch in the fingerprint
    metrics across rounds indicates nondeterminism and raises.
    """
    best: Optional[Dict[str, float]] = None
    walls: List[float] = []
    for result in rounds:
        walls.append(result["wall_s"])
        if best is not None:
            for key in FINGERPRINT_METRICS:
                if result[key] != best[key]:
                    raise RuntimeError(
                        f"scenario {name!r} is nondeterministic: {key} was "
                        f"{best[key]} then {result[key]}"
                    )
        if best is None or result["wall_s"] < best["wall_s"]:
            best = result
    assert best is not None
    best = dict(best)
    best["wall_s_median"] = statistics.median(walls)
    best["wall_s_stdev"] = (statistics.stdev(walls)
                            if len(walls) > 1 else 0.0)
    return best


def measure(name: str, smoke: bool = False, repeats: int = 3,
            batch: bool = False, scheduler: str = "heap") -> Dict[str, float]:
    """Run one scenario ``repeats`` times; fastest round plus noise stats."""
    runner = SCENARIOS[name]
    return _collapse_rounds(
        name,
        [runner(smoke, batch, scheduler) for _ in range(max(1, repeats))])


def _scenario_round(point: Tuple[str, bool, bool, str, int],
                    _seed: int) -> Dict[str, float]:
    """One (scenario, round) sweep point for the parallel engine.

    Scenario workloads carry their own pinned seeds (part of what the
    fingerprints pin down), so the engine-derived seed is unused — the
    round index in the point only differentiates sweep points.
    """
    name, smoke, batch, scheduler, _round = point
    return SCENARIOS[name](smoke, batch, scheduler)


def run_suite(
    names: Optional[Iterable[str]] = None,
    smoke: bool = False,
    repeats: int = 3,
    jobs: int = 1,
    batch: bool = False,
    scheduler: str = "heap",
    journal=None,
    supervise=None,
    report=None,
) -> Dict[str, Dict[str, float]]:
    """Run the pinned suite; returns ``{scenario: metrics}``.

    With ``jobs > 1`` every (scenario, round) pair becomes a sweep point
    fanned across worker processes via ``repro.parallel`` — fingerprints
    are identical to a serial run, but wall-clock metrics contend for
    cores, so parallel runs are for fingerprint checks and wall-clock
    sweeps, not for precision baselines (docs/PERFORMANCE.md).

    With ``batch`` the scenarios run under the batch execution tier
    (``repro.batch``) and ``events`` counts processed plus tier-saved
    events; results land in the ``-batch`` modes of BENCH_core.json.

    ``scheduler`` selects the event-loop backend for every scenario;
    results of a ``"calendar"`` run land in the ``-calendar`` modes.

    ``journal``/``supervise``/``report`` are forwarded to
    :func:`repro.parallel.run_parallel` — a journaled bench skips
    already-recorded (scenario, round) points on ``--resume`` and its
    fingerprints are unchanged, though *wall-clock* metrics of resumed
    rounds are whatever the original run measured (docs/RESILIENCE.md).
    """
    from repro.parallel import run_parallel

    selected = list(names) if names else list(SCENARIOS)
    unknown = [n for n in selected if n not in SCENARIOS]
    if unknown:
        raise KeyError(f"unknown perf scenarios: {unknown}; "
                       f"valid: {sorted(SCENARIOS)}")
    if scheduler not in SCHEDULERS:
        raise KeyError(f"unknown scheduler {scheduler!r}; "
                       f"valid: {list(SCHEDULERS)}")
    repeats = max(1, repeats)
    points = [(name, bool(smoke), bool(batch), scheduler, rnd)
              for name in selected for rnd in range(repeats)]
    rounds = run_parallel(points, _scenario_round, jobs=jobs,
                          journal=journal, supervise=supervise,
                          report=report)
    grouped: Dict[str, List[Dict[str, float]]] = {n: [] for n in selected}
    for point, result in zip(points, rounds):
        grouped[point[0]].append(result)
    return {name: _collapse_rounds(name, grouped[name])
            for name in selected}


# ---------------------------------------------------------------------------
# trajectory file


def _host_info(jobs: int = 1) -> Dict[str, object]:
    # cpu_count and jobs make cross-machine deltas interpretable: a
    # sweep_wall_s from a 2-job run on a 16-core box is not comparable
    # to one from a 1-core CI runner.
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
        "cpu_count": os.cpu_count() or 1,
        "jobs": jobs,
    }


def _stamp(
    scenarios: Dict[str, Dict[str, float]],
    mode: str,
    jobs: int = 1,
    sweep_wall_s: Optional[float] = None,
) -> Dict[str, object]:
    stamp: Dict[str, object] = {
        "mode": mode,
        "recorded": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "host": _host_info(jobs),
        "scenarios": scenarios,
    }
    if sweep_wall_s is not None:
        # Wall time of the whole suite sweep under `jobs` workers: the
        # number that proves (or disproves) parallel speedup on this host.
        stamp["sweep_wall_s"] = round(sweep_wall_s, 4)
    return stamp


def compute_delta(
    baseline: Dict[str, Dict[str, float]],
    current: Dict[str, Dict[str, float]],
) -> Dict[str, Dict[str, float]]:
    """Speedup ratios current/baseline per scenario and metric (>1: faster)."""
    delta: Dict[str, Dict[str, float]] = {}
    for name, metrics in current.items():
        base = baseline.get(name)
        if not base:
            continue
        ratios = {}
        for key in DELTA_METRICS:
            old = base.get(key) or 0.0
            new = metrics.get(key) or 0.0
            if old > 0 and new > 0:
                ratios[key] = round(new / old, 4)
        if ratios:
            delta[name] = ratios
    return delta


def load_bench(path: str) -> Dict[str, object]:
    """Load an existing trajectory file; empty dict if absent/invalid."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return {}
    return data if isinstance(data, dict) else {}


def write_bench(
    path: str,
    current: Dict[str, Dict[str, float]],
    rebaseline: bool = False,
    smoke: bool = False,
    jobs: int = 1,
    sweep_wall_s: Optional[float] = None,
    batch: bool = False,
    scheduler: str = "heap",
) -> Dict[str, object]:
    """Merge a run into ``BENCH_core.json``; returns the written document.

    Baselines are per mode (``full``/``smoke``/``full-batch``/
    ``smoke-batch``, each with a ``-calendar`` variant) and kept verbatim
    unless absent or ``rebaseline`` is set; ``current`` and ``delta`` are
    replaced every run, with ``delta`` always computed same-mode.  A
    batch-mode run additionally writes ``delta_vs_event``: the cross-mode
    ratio against the event-by-event baseline of the same length — the
    number that backs the batch tier's speedup claim (events there count
    processed plus tier-saved, see :func:`_effective_events`).  A
    calendar-scheduler run likewise writes ``delta_vs_heap``: its ratio
    against the heap baseline of the same mode, the scheduler seam's
    speedup claim (``timer_churn`` is the scenario it exists for).

    Alongside the trajectory file, a provenance manifest
    (``<path minus .json>.manifest.json``, see ``repro.metrics.manifest``)
    records the invocation, config hash, and a fingerprint of the run's
    deterministic metrics — the receipt that makes any number in
    BENCH_core.json reproducible.
    """
    event_mode = "smoke" if smoke else "full"
    heap_mode = f"{event_mode}-batch" if batch else event_mode
    calendar = scheduler == "calendar"
    mode = f"{heap_mode}-calendar" if calendar else heap_mode
    # Batch-tier self-accounting rides on results for the CLI's --verbose
    # table but is not a perf metric; keep it out of the trajectory file.
    current = {name: {k: v for k, v in metrics.items() if k != "batch_stats"}
               for name, metrics in current.items()}
    doc = load_bench(path)
    baselines = doc.get("baseline")
    if not isinstance(baselines, dict):
        baselines = {}
    elif "scenarios" in baselines:
        # Schema 1 stored a single (full-mode) baseline stamp directly.
        baselines = {"full": baselines}
    if rebaseline or not isinstance(baselines.get(mode), dict):
        baselines = dict(baselines)
        baselines[mode] = _stamp(current, mode, jobs, sweep_wall_s)
    out = {
        "schema": SCHEMA_VERSION,
        "baseline": baselines,
        "current": _stamp(current, mode, jobs, sweep_wall_s),
        "delta": compute_delta(
            baselines[mode].get("scenarios", {}), current
        ),
    }
    event_base_mode = f"{event_mode}-calendar" if calendar else event_mode
    if batch and isinstance(baselines.get(event_base_mode), dict):
        out["delta_vs_event"] = compute_delta(
            baselines[event_base_mode].get("scenarios", {}), current
        )
    elif isinstance(doc.get("delta_vs_event"), dict) and not batch:
        # Keep the last recorded cross-mode ratios visible on event runs.
        out["delta_vs_event"] = doc["delta_vs_event"]
    if calendar and isinstance(baselines.get(heap_mode), dict):
        out["delta_vs_heap"] = compute_delta(
            baselines[heap_mode].get("scenarios", {}), current
        )
    elif isinstance(doc.get("delta_vs_heap"), dict) and not calendar:
        # Keep the last recorded cross-scheduler ratios visible on heap runs.
        out["delta_vs_heap"] = doc["delta_vs_heap"]
    tmp = f"{path}.tmp"
    with open(tmp, "w") as fh:
        json.dump(out, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    from repro.metrics.manifest import RunManifest, stable_hash

    fingerprints = {
        name: {key: metrics.get(key) for key in FINGERPRINT_METRICS}
        for name, metrics in current.items()
    }
    RunManifest(
        command=("moongen-repro bench"
                 f"{' --smoke' if smoke else ''}{' --batch' if batch else ''}"
                 f"{' --scheduler calendar' if calendar else ''}"),
        jobs=jobs,
        config={"mode": mode, "scenarios": sorted(current),
                "schema": SCHEMA_VERSION},
        result_fingerprint=stable_hash(fingerprints),
    ).write(path)
    return out


# ---------------------------------------------------------------------------
# reporting


def format_report(doc: Dict[str, object]) -> str:
    """Human-readable summary of a trajectory document."""
    lines: List[str] = []
    current = doc.get("current", {})
    baseline = doc.get("baseline", {})
    delta = doc.get("delta", {})
    cur = current.get("scenarios", {}) if isinstance(current, dict) else {}
    mode = current.get("mode", "full") if isinstance(current, dict) else "full"
    if isinstance(baseline, dict) and "scenarios" not in baseline:
        baseline = baseline.get(mode, {})
    base = baseline.get("scenarios", {}) if isinstance(baseline, dict) else {}
    header = (f"{'scenario':<14} {'events/s':>12} {'wall Mpps':>10} "
              f"{'sim Mpps':>9} {'vs baseline':>12}")
    lines.append(header)
    lines.append("-" * len(header))
    for name, metrics in cur.items():
        ratio = ""
        d = delta.get(name, {}) if isinstance(delta, dict) else {}
        if "events_per_sec" in d:
            ratio = f"{d['events_per_sec']:.2f}x"
        wall_mpps = (metrics.get("wall_pps") or 0.0) / 1e6
        sim_mpps = (metrics.get("sim_pps") or 0.0) / 1e6
        lines.append(
            f"{name:<14} {metrics['events_per_sec']:>12,.0f} "
            f"{wall_mpps:>10.3f} {sim_mpps:>9.2f} {ratio:>12}"
        )
        b = base.get(name)
        if b:
            lines.append(
                f"{'  baseline':<14} {b['events_per_sec']:>12,.0f} "
                f"{(b.get('wall_pps') or 0.0) / 1e6:>10.3f} "
                f"{(b.get('sim_pps') or 0.0) / 1e6:>9.2f}"
            )
    vs_event = doc.get("delta_vs_event")
    if isinstance(vs_event, dict) and vs_event:
        pairs = ", ".join(
            f"{name} {ratios['events_per_sec']:.2f}x"
            for name, ratios in sorted(vs_event.items())
            if "events_per_sec" in ratios
        )
        if pairs:
            lines.append(f"batch tier vs event baseline: {pairs}")
    vs_heap = doc.get("delta_vs_heap")
    if isinstance(vs_heap, dict) and vs_heap:
        pairs = ", ".join(
            f"{name} {ratios['events_per_sec']:.2f}x"
            for name, ratios in sorted(vs_heap.items())
            if "events_per_sec" in ratios
        )
        if pairs:
            lines.append(f"calendar scheduler vs heap baseline: {pairs}")
    return "\n".join(lines)


def check_regression(
    doc: Dict[str, object],
    threshold: float = 0.85,
) -> List[str]:
    """Warnings for scenarios whose events/sec fell below ``threshold``×
    baseline (the CI bench-smoke gate: warn, don't fail)."""
    warnings = []
    delta = doc.get("delta", {})
    if isinstance(delta, dict):
        for name, ratios in delta.items():
            ratio = ratios.get("events_per_sec")
            if ratio is not None and ratio < threshold:
                warnings.append(
                    f"perf regression: {name} events/sec at {ratio:.2f}x "
                    f"baseline (threshold {threshold:.2f}x)"
                )
    current = doc.get("current", {})
    mode = current.get("mode", "") if isinstance(current, dict) else ""
    if mode.endswith("-batch"):
        # A batch run slower than the event-by-event baseline means the
        # tier is pure overhead on this workload: scenarios where it
        # cannot batch should at worst break even.
        vs_event = doc.get("delta_vs_event")
        if isinstance(vs_event, dict):
            for name, ratios in sorted(vs_event.items()):
                ratio = ratios.get("events_per_sec")
                if ratio is not None and ratio < 1.0:
                    warnings.append(
                        f"batch tier slower than event baseline: {name} "
                        f"at {ratio:.2f}x (expected >= 1.0x)"
                    )
    if mode.endswith("-calendar"):
        # The calendar queue's reason to exist is the many-timer shape:
        # losing to the heap on timer_churn means its geometry adaptation
        # broke (general scenarios are allowed to be a wash).
        vs_heap = doc.get("delta_vs_heap")
        if isinstance(vs_heap, dict):
            ratio = vs_heap.get("timer_churn", {}).get("events_per_sec")
            if ratio is not None and ratio < 1.0:
                warnings.append(
                    f"calendar scheduler slower than heap on timer_churn: "
                    f"{ratio:.2f}x (expected >= 1.0x)"
                )
    return warnings
