"""Optional-dependency shims.

numpy is an *optional* accelerator/analysis dependency: the simulator
core, the batch tier (via its scalar plan path), the fault subsystem,
and the CLI smoke scenarios all run without it.  Modules that genuinely
need arrays (generator models, the DuT fastpath, analysis statistics,
traffic patterns) import ``np`` from here and call :func:`require_numpy`
at their public entry points so a missing install fails with a clear
message instead of an ``AttributeError`` on ``None``.

The batch kernels' numpy selection lives separately in
``repro.batch._vec`` (it also honours the ``REPRO_NO_NUMPY``
kill-switch); this module is only about *hard* array users.
"""

from __future__ import annotations

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None


def require_numpy(feature: str):
    """Return numpy, or raise ``ImportError`` naming the feature."""
    if np is None:
        raise ImportError(
            f"numpy is required for {feature} "
            "(pip install numpy, or the repo's [test] extra)")
    return np
