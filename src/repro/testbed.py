"""Testbed topology builders.

The measurements in the paper use a handful of standard wirings: a
generator pair on a cable (Section 6's loop-back tests), a generator
around a device under test (Sections 7/8), and a fleet of ports driven by
one core each (Section 5.5).  These builders assemble those topologies so
examples and experiments don't repeat the plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.device import Device
from repro.core.env import MoonGenEnv
from repro.dut.forwarder import DutConfig, OvsForwarder
from repro.errors import ConfigurationError
from repro.nicsim.link import Cable, IDEAL_CABLE
from repro.nicsim.nic import CHIP_X540, ChipModel


@dataclass
class LoadgenPair:
    """Two directly connected ports: generator and sink/reflector."""

    env: MoonGenEnv
    tx_dev: Device
    rx_dev: Device


def loadgen_pair(
    seed: int = 0,
    chip: ChipModel = CHIP_X540,
    cable: Cable = IDEAL_CABLE,
    tx_queues: int = 2,
    rx_queues: int = 1,
    core_freq_hz: float = 2.4e9,
    faults=None,
) -> LoadgenPair:
    """A generator port wired straight to a receiver port.

    ``faults`` is forwarded to :class:`MoonGenEnv`: anything
    :func:`repro.faults.load_plan` accepts, targeting ``port:0``,
    ``port:1``, or ``wire:0->1`` / ``wire:1->0``.
    """
    env = MoonGenEnv(seed=seed, core_freq_hz=core_freq_hz, faults=faults)
    tx_dev = env.config_device(0, tx_queues=tx_queues, rx_queues=1, chip=chip)
    rx_dev = env.config_device(1, tx_queues=1, rx_queues=rx_queues, chip=chip)
    env.connect(tx_dev, rx_dev, cable=cable)
    return LoadgenPair(env, tx_dev, rx_dev)


@dataclass
class DutTopology:
    """Loadgen → DuT → loadgen: the Sections 7/8 measurement setup."""

    env: MoonGenEnv
    tx_dev: Device
    rx_dev: Device
    dut: OvsForwarder


def dut_topology(
    seed: int = 0,
    dut_config: Optional[DutConfig] = None,
    tx_queues: int = 2,
    core_freq_hz: float = 2.4e9,
    faults=None,
) -> DutTopology:
    """The l2-load-latency wiring: one port in, one port out of the DuT.

    ``faults`` is forwarded to :class:`MoonGenEnv`; fault targets here
    are ``port:0``/``port:1``, ``wire:0->sink`` (into the DuT),
    ``wire:env->1`` (out of it), and ``dut``.
    """
    env = MoonGenEnv(seed=seed, core_freq_hz=core_freq_hz, faults=faults)
    tx_dev = env.config_device(0, tx_queues=tx_queues, rx_queues=1)
    rx_dev = env.config_device(1, tx_queues=1, rx_queues=1)
    dut = OvsForwarder(env.loop, dut_config)
    env.connect_to_sink(tx_dev, dut.ingress)
    dut.connect_output(env.wire_to_device(rx_dev))
    env.register_dut(dut)
    return DutTopology(env, tx_dev, rx_dev, dut)


@dataclass
class PortFleet:
    """N generator ports, each wired to its own sink (Section 5.5)."""

    env: MoonGenEnv
    tx_devs: List[Device] = field(default_factory=list)
    rx_devs: List[Device] = field(default_factory=list)

    @property
    def total_tx_packets(self) -> int:
        return sum(dev.tx_packets for dev in self.tx_devs)

    def launch_on_each(self, slave_factory: Callable, **launch_kwargs) -> None:
        """Start ``slave_factory(env, tx_dev, rx_dev)`` per port pair."""
        for tx_dev, rx_dev in zip(self.tx_devs, self.rx_devs):
            self.env.launch(
                slave_factory, self.env, tx_dev, rx_dev, **launch_kwargs
            )


def port_fleet(
    n_ports: int,
    seed: int = 0,
    chip: ChipModel = CHIP_X540,
    core_freq_hz: float = 2.0e9,
    tx_queues: int = 1,
) -> PortFleet:
    """Build the Figure 4 fleet: one generator port per future core."""
    if n_ports <= 0:
        raise ConfigurationError(f"need at least one port: {n_ports}")
    env = MoonGenEnv(seed=seed, core_freq_hz=core_freq_hz)
    fleet = PortFleet(env)
    for i in range(n_ports):
        tx_dev = env.config_device(2 * i, tx_queues=tx_queues, chip=chip)
        rx_dev = env.config_device(2 * i + 1, rx_queues=1, chip=chip)
        env.connect(tx_dev, rx_dev)
        fleet.tx_devs.append(tx_dev)
        fleet.rx_devs.append(rx_dev)
    return fleet
