"""Units and wire-time arithmetic.

All simulation time is integer **picoseconds** internally where exactness
matters (a 64 B frame at 10 GbE is 67.2 ns — not representable in integer
nanoseconds), but the public API speaks nanoseconds as floats, like the
paper does.  This module centralises the Ethernet framing math the paper
relies on:

* a frame of ``n`` payload bytes occupies ``n + 20`` bytes on the wire
  (7 B preamble + 1 B start-of-frame delimiter + 12 B inter-frame gap);
  the 4 B FCS is part of ``n`` for a full frame, see :func:`wire_length`;
* 10 GbE line rate with minimum-sized (64 B) frames is 14.88 Mpps, i.e. one
  frame per 67.2 ns.
"""

from __future__ import annotations

# --- byte-level Ethernet constants -----------------------------------------

PREAMBLE_SIZE = 7
SFD_SIZE = 1
INTER_FRAME_GAP = 12
FCS_SIZE = 4

#: Per-frame wire overhead in bytes beyond the Ethernet frame itself
#: (preamble + start-of-frame delimiter + inter-frame gap).
WIRE_OVERHEAD = PREAMBLE_SIZE + SFD_SIZE + INTER_FRAME_GAP  # 20 bytes

#: Minimum Ethernet frame size including FCS.
MIN_FRAME_SIZE = 64
#: Maximum standard Ethernet frame size including FCS.
MAX_FRAME_SIZE = 1518

#: Minimum wire length (frame + overhead) the paper's NICs will emit at all
#: (Section 8.1: frames shorter than 33 B wire length are refused).
MIN_WIRE_LENGTH = 33

# --- common link speeds -----------------------------------------------------

GIGABIT = 10 ** 9
SPEED_1G = 1 * GIGABIT
SPEED_10G = 10 * GIGABIT
SPEED_40G = 40 * GIGABIT
SPEED_100G = 100 * GIGABIT

#: 10 GbE line rate with 64 B frames (Mpps * 1e6), the paper's headline rate.
LINE_RATE_10G_64B_PPS = 14_880_952  # 10e9 / (84 * 8) packets per second

PS_PER_NS = 1000
NS_PER_US = 1000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000
PS_PER_S = NS_PER_S * PS_PER_NS


def wire_length(frame_size: int) -> int:
    """Bytes a frame occupies on the wire, including preamble/SFD/IFG.

    ``frame_size`` counts the full Ethernet frame including the FCS, as the
    paper does ("wire-length (including Ethernet preamble, start-of-frame
    delimiter, and inter-frame gap)").
    """
    return frame_size + WIRE_OVERHEAD


def byte_time_ps(speed_bps: int) -> float:
    """Duration of one byte on a link of the given speed, in picoseconds."""
    return 8 * PS_PER_S / speed_bps


def frame_time_ps(frame_size: int, speed_bps: int) -> int:
    """Wire occupancy of a frame in integer picoseconds.

    At the speeds used in the paper (1/10/40 GbE) a byte is an integral
    number of picoseconds (800/80/20 ps), so this is exact.
    """
    return round(wire_length(frame_size) * byte_time_ps(speed_bps))


def frame_time_ns(frame_size: int, speed_bps: int) -> float:
    """Wire occupancy of a frame in (float) nanoseconds."""
    return frame_time_ps(frame_size, speed_bps) / PS_PER_NS


def line_rate_pps(frame_size: int, speed_bps: int) -> float:
    """Maximum packets per second for back-to-back frames of a given size."""
    return speed_bps / (8 * wire_length(frame_size))


def pps_to_gap_ns(pps: float) -> float:
    """Inter-departure time (start-to-start) in ns for a packet rate."""
    if pps <= 0:
        raise ValueError(f"packet rate must be positive, got {pps}")
    return NS_PER_S / pps


def mpps(value: float) -> float:
    """Convert a packet rate in Mpps to packets per second."""
    return value * 1e6


def to_mpps(pps: float) -> float:
    """Convert packets per second to Mpps."""
    return pps / 1e6


def gbit(value: float) -> int:
    """Convert Gbit/s to bit/s."""
    return round(value * GIGABIT)


def to_gbit(bps: float) -> float:
    """Convert bit/s to Gbit/s."""
    return bps / GIGABIT


def throughput_gbps(pps: float, frame_size: int) -> float:
    """Wire-level throughput in Gbit/s for a packet rate and frame size.

    Uses the frame size *without* wire overhead, i.e. the conventional
    "rate" a packet generator reports (bits of Ethernet frames per second).
    """
    return pps * frame_size * 8 / GIGABIT


def wire_rate_gbps(pps: float, frame_size: int) -> float:
    """Wire occupancy in Gbit/s including preamble/SFD/IFG overhead."""
    return pps * wire_length(frame_size) * 8 / GIGABIT
