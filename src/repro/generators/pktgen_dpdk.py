"""Pktgen-DPDK software rate control model.

Pktgen-DPDK paces packets in software: it pushes descriptors and waits out
the inter-departure time on the CPU.  Because the NIC fetches packets via
DMA on its own schedule (Section 7.1), the realised spacing carries timer
and DMA-timing jitter, and at higher rates consecutive packets increasingly
coalesce into micro-bursts (Table 4: 0.01 % bursts at 500 kpps but 14.2 %
at 1000 kpps).
"""

from __future__ import annotations

from repro._optional import np, require_numpy

from repro import units
from repro.generators.base import (
    DepartureModel,
    MixtureComponent,
    RateProfile,
)

_PROFILE_500K = RateProfile(
    pps=500_000,
    components=(
        # Main timer/DMA jitter lobe.
        MixtureComponent(0.0, 0.925, sigma_ns=115.0),
        # Occasional scheduler slips around ±400 ns.
        MixtureComponent(400.0, 0.010, sigma_ns=50.0, symmetric=True),
        # Rare long housekeeping stalls, balanced by early catch-ups that
        # stay above the wire floor (no spurious bursts).
        MixtureComponent(1500.0, 0.0275, sigma_ns=400.0),
        MixtureComponent(-1100.0, 0.0375, sigma_ns=80.0),
    ),
    burst_fraction=0.0001,
    burst_run=1,
)

_PROFILE_1000K = RateProfile(
    pps=1_000_000,
    components=(
        MixtureComponent(0.0, 1.0, sigma_ns=90.0),
    ),
    # At 1000 kpps the push model can no longer keep packets apart: a burst
    # steals one slot and the following gap doubles (Section 7.1's queueing
    # effect); both show up as the heavy 14.2 % burst fraction.
    burst_fraction=0.142,
    burst_run=1,
)


class PktgenDpdkModel(DepartureModel):
    """Inter-departure model of Pktgen-DPDK 2.5.1's software pacing."""

    name = "Pktgen-DPDK"

    def __init__(self, frame_size: int = units.MIN_FRAME_SIZE,
                 speed_bps: int = units.SPEED_1G) -> None:
        self.frame_size = frame_size
        self.speed_bps = speed_bps

    def gaps_ns(self, pps: float, n: int, seed: int = 0) -> np.ndarray:
        require_numpy("generator departure models")
        rng = np.random.default_rng(seed + 1)
        return self._apply_profile(_PROFILE_500K, _PROFILE_1000K, pps, n, rng)
