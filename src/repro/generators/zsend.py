"""zsend (PF_RING ZC) software rate control model.

The paper configured zsend 6.0.2 explicitly to avoid bursts and still
measured heavy micro-bursting (28.6 % of inter-arrival times at 500 kpps,
52 % at 1000 kpps) with the remaining gaps spread far from the target —
behaviour the PF_RING authors confirmed as a framework bug (Section 7.3).

The model reproduces that signature directly: runs of back-to-back packets
followed by long, positively skewed pauses whose mean restores the average
rate, plus a thin lobe of gaps that happen to land near the target.  Unlike
the MoonGen/Pktgen models, deviations here are not zero-mean around the
target — the distribution is built from the burst/pause structure itself,
which is what Figure 8's bottom histograms show.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro._optional import np, require_numpy

from repro import units
from repro.generators.base import DepartureModel, wire_gap_ns


@dataclass(frozen=True)
class _ZsendProfile:
    pps: float
    burst_fraction: float
    burst_run: int
    #: Probability that a burst run extends to the next interval.
    run_extension: float
    #: Weight of gaps that land near the target (sharp lobe).
    sharp_weight: float
    sharp_sigma_ns: float
    #: Weight of the medium lobe and its centre offset above the target.
    medium_weight: float
    medium_offset_ns: float
    medium_sigma_ns: float
    #: Remaining weight goes to the far positive-skewed pause component.
    far_shape: float


_PROFILE_500K = _ZsendProfile(
    pps=500_000, burst_fraction=0.286, burst_run=2, run_extension=0.6,
    sharp_weight=0.035, sharp_sigma_ns=50.0,
    medium_weight=0.02, medium_offset_ns=800.0, medium_sigma_ns=200.0,
    far_shape=0.8,
)

_PROFILE_1000K = _ZsendProfile(
    pps=1_000_000, burst_fraction=0.62, burst_run=3, run_extension=0.8,
    sharp_weight=0.025, sharp_sigma_ns=60.0,
    medium_weight=0.20, medium_offset_ns=300.0, medium_sigma_ns=110.0,
    far_shape=1.3,
)


def _blend(pps: float) -> _ZsendProfile:
    lo, hi = _PROFILE_500K, _PROFILE_1000K
    if pps <= lo.pps:
        return lo
    if pps >= hi.pps:
        return hi
    f = (pps - lo.pps) / (hi.pps - lo.pps)

    def mix(a: float, b: float) -> float:
        return a * (1 - f) + b * f

    return _ZsendProfile(
        pps=pps,
        burst_fraction=mix(lo.burst_fraction, hi.burst_fraction),
        burst_run=round(mix(lo.burst_run, hi.burst_run)),
        run_extension=mix(lo.run_extension, hi.run_extension),
        sharp_weight=mix(lo.sharp_weight, hi.sharp_weight),
        sharp_sigma_ns=mix(lo.sharp_sigma_ns, hi.sharp_sigma_ns),
        medium_weight=mix(lo.medium_weight, hi.medium_weight),
        medium_offset_ns=mix(lo.medium_offset_ns, hi.medium_offset_ns),
        medium_sigma_ns=mix(lo.medium_sigma_ns, hi.medium_sigma_ns),
        far_shape=mix(lo.far_shape, hi.far_shape),
    )


class ZsendModel(DepartureModel):
    """Inter-departure model of zsend 6.0.2's (buggy) software pacing."""

    name = "zsend"

    def __init__(self, frame_size: int = units.MIN_FRAME_SIZE,
                 speed_bps: int = units.SPEED_1G) -> None:
        self.frame_size = frame_size
        self.speed_bps = speed_bps

    def gaps_ns(self, pps: float, n: int, seed: int = 0) -> np.ndarray:
        require_numpy("generator departure models")
        rng = np.random.default_rng(seed + 2)
        profile = _blend(pps)
        base = units.NS_PER_S / pps
        floor = wire_gap_ns(self.frame_size, self.speed_bps)

        # Bursts come in short runs: pick run starts so that after the run
        # extension below the *total* burst fraction matches the profile.
        run = profile.burst_run
        ext_p = profile.run_extension
        start_fraction = profile.burst_fraction / (1 + ext_p * (run - 1))
        burst = rng.random(n) < start_fraction
        if run > 1:
            idx = np.flatnonzero(burst)
            for offset in range(1, run):
                ext = idx + offset
                ext = ext[(ext < n) & (rng.random(ext.size) < ext_p)]
                burst[ext] = True

        gaps = np.full(n, floor)
        free = ~burst
        n_free = int(free.sum())
        if n_free:
            # Mean of non-burst gaps must restore the average rate.
            p_eff = 1 - n_free / n
            mean_free = (base - p_eff * floor) / (n_free / n)
            draws = np.empty(n_free)
            roll = rng.random(n_free)
            sharp = roll < profile.sharp_weight
            medium = (~sharp) & (roll < profile.sharp_weight + profile.medium_weight)
            far = ~(sharp | medium)
            draws[sharp] = base + rng.normal(0, profile.sharp_sigma_ns, int(sharp.sum()))
            draws[medium] = (
                base + profile.medium_offset_ns
                + rng.normal(0, profile.medium_sigma_ns, int(medium.sum()))
            )
            # Far component: positive-skewed pauses with the mean that makes
            # the overall average come out right.
            w_far = max(float(far.mean()), 1e-9)
            far_mean = (
                mean_free
                - float(sharp.mean()) * base
                - float(medium.mean()) * (base + profile.medium_offset_ns)
            ) / w_far
            far_mean = max(far_mean, floor + 100.0)
            shape = profile.far_shape
            draws[far] = floor + rng.gamma(
                shape, (far_mean - floor) / shape, int(far.sum())
            )
            gaps[free] = np.maximum(draws, floor)
        return gaps
