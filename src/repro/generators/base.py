"""Common machinery for generator departure-time models.

A model produces inter-departure gaps for a requested packet rate.  Gaps are
"as measured" by the receive side of the paper's testbed (an Intel 82580
timestamping every packet at 64 ns precision), so model calibration targets
the measured Table 4 fractions directly.

All models guarantee two physical invariants:

* no gap is shorter than the frame's wire time (packets cannot overlap),
* the *average* gap equals the requested one (the generators are rate-
  accurate; they differ in precision).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro._optional import np, require_numpy

from repro import units


def wire_gap_ns(frame_size: int = units.MIN_FRAME_SIZE,
                speed_bps: int = units.SPEED_1G) -> float:
    """Back-to-back start-to-start spacing (672 ns for 64 B at GbE)."""
    return units.frame_time_ns(frame_size, speed_bps)


def enforce_wire_spacing(gaps_ns: np.ndarray, frame_size: int = 64,
                         speed_bps: int = units.SPEED_1G) -> np.ndarray:
    """Clamp gaps to at least the wire time, preserving the total duration.

    Clamping adds time; the surplus is subtracted from the largest gaps so
    the average rate stays intact.
    """
    floor = wire_gap_ns(frame_size, speed_bps)
    require_numpy("generator departure models")
    gaps = np.asarray(gaps_ns, dtype=float).copy()
    deficit = float(np.sum(np.maximum(floor - gaps, 0.0)))
    np.maximum(gaps, floor, out=gaps)
    if deficit > 0:
        # Absorb the surplus in the gaps with the most headroom so the bulk
        # of the distribution is untouched (a real pacer catches up during
        # its longest idle periods, not by nudging every gap).
        headroom = gaps - floor
        order = np.argsort(headroom)[::-1]
        capacity = headroom[order] * 0.9
        cum = np.cumsum(capacity)
        k = int(np.searchsorted(cum, deficit)) + 1
        k = min(k, gaps.size)
        take = capacity[:k].copy()
        if k > 0 and cum[k - 1] > deficit:
            take[-1] -= cum[k - 1] - deficit
        gaps[order[:k]] -= np.maximum(take, 0.0)
    return gaps


@dataclass(frozen=True)
class MixtureComponent:
    """One deviation component: discrete offset or gaussian blob."""

    offset_ns: float
    weight: float
    sigma_ns: float = 0.0
    #: Mirror the component at -offset as well (keeps the mixture zero-mean).
    symmetric: bool = False


@dataclass(frozen=True)
class RateProfile:
    """Calibrated deviation mixture for one packet rate.

    ``burst_fraction`` is the probability that an interval collapses to
    back-to-back spacing (a micro-burst); the missing time is added to the
    following interval so the average rate stays exact.  ``burst_run`` is
    the mean number of consecutive back-to-back intervals per burst.
    """

    pps: float
    components: Tuple[MixtureComponent, ...]
    burst_fraction: float = 0.0
    burst_run: int = 1


def _expand(components: Sequence[MixtureComponent]) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    offsets: List[float] = []
    weights: List[float] = []
    sigmas: List[float] = []
    for comp in components:
        if comp.symmetric and comp.offset_ns != 0:
            for sign in (1.0, -1.0):
                offsets.append(sign * comp.offset_ns)
                weights.append(comp.weight)
                sigmas.append(comp.sigma_ns)
        else:
            offsets.append(comp.offset_ns)
            weights.append(comp.weight)
            sigmas.append(comp.sigma_ns)
    w = np.asarray(weights)
    return np.asarray(offsets), w / w.sum(), np.asarray(sigmas)


def sample_deviations(profile: RateProfile, n: int,
                      rng: np.random.Generator) -> np.ndarray:
    """Draw ``n`` zero-mean deviations from a profile's mixture."""
    offsets, weights, sigmas = _expand(profile.components)
    idx = rng.choice(len(offsets), size=n, p=weights)
    out = offsets[idx].astype(float)
    jitter_mask = sigmas[idx] > 0
    if np.any(jitter_mask):
        out[jitter_mask] += rng.normal(0.0, sigmas[idx][jitter_mask])
    return out


def blend_profiles(a: RateProfile, b: RateProfile, pps: float) -> Tuple[RateProfile, RateProfile, float]:
    """Interpolation weights between two calibrated profiles."""
    if pps <= a.pps:
        return a, b, 1.0
    if pps >= b.pps:
        return a, b, 0.0
    frac_a = (b.pps - pps) / (b.pps - a.pps)
    return a, b, frac_a


class DepartureModel:
    """Base class: inter-departure gaps and cumulative departure times."""

    name = "base"
    frame_size = units.MIN_FRAME_SIZE
    speed_bps = units.SPEED_1G

    def gaps_ns(self, pps: float, n: int, seed: int = 0) -> np.ndarray:
        raise NotImplementedError

    def departures_ns(self, pps: float, n: int, seed: int = 0,
                      start_ns: float = 0.0) -> np.ndarray:
        """Departure (start) times of ``n`` packets."""
        require_numpy("generator departure models")
        gaps = self.gaps_ns(pps, n - 1, seed) if n > 1 else np.empty(0)
        times = np.empty(n)
        times[0] = start_ns
        if n > 1:
            times[1:] = start_ns + np.cumsum(gaps)
        return times

    # -- shared burst machinery ----------------------------------------------

    def _apply_profile(self, profile_lo: RateProfile, profile_hi: RateProfile,
                       pps: float, n: int, rng: np.random.Generator) -> np.ndarray:
        """Gaps from two calibrated profiles blended for the rate."""
        lo, hi, frac_lo = blend_profiles(profile_lo, profile_hi, pps)
        base_gap = units.NS_PER_S / pps
        floor = wire_gap_ns(self.frame_size, self.speed_bps)
        # Per-gap profile choice implements the blend.
        use_lo = rng.random(n) < frac_lo
        gaps = np.full(n, base_gap)
        dev_lo = sample_deviations(lo, n, rng)
        dev_hi = sample_deviations(hi, n, rng)
        gaps += np.where(use_lo, dev_lo, dev_hi)
        burst_fraction = frac_lo * lo.burst_fraction + (1 - frac_lo) * hi.burst_fraction
        burst_run = round(frac_lo * lo.burst_run + (1 - frac_lo) * hi.burst_run)
        gaps = self._insert_bursts(gaps, base_gap, floor, burst_fraction,
                                   max(1, burst_run), rng)
        return enforce_wire_spacing(gaps, self.frame_size, self.speed_bps)

    @staticmethod
    def _insert_bursts(gaps: np.ndarray, base_gap: float, floor: float,
                       fraction: float, run: int,
                       rng: np.random.Generator) -> np.ndarray:
        """Collapse a fraction of intervals to back-to-back spacing.

        Bursts come in runs of ``run`` consecutive intervals; the time the
        burst stole is credited to the interval right after the run, so the
        long-term rate is unchanged.
        """
        n = gaps.size
        if fraction <= 0 or n < run + 1:
            return gaps
        n_runs = int(round(fraction * n / run))
        if n_runs == 0:
            return gaps
        starts = rng.choice(n - run - 1, size=n_runs, replace=False)
        for s in np.sort(starts):
            stolen = float(np.sum(gaps[s: s + run] - floor))
            if stolen <= 0:
                continue
            gaps[s: s + run] = floor
            gaps[s + run] += stolen
        return gaps
