"""Departure-time models of the compared packet generators.

Section 7.3 of the paper measures the inter-arrival time distributions that
MoonGen (hardware rate control), Pktgen-DPDK, and zsend produce at 500 and
1000 kpps on a GbE link.  These modules model the *mechanisms* the paper
identifies — quantized hardware pacing for MoonGen, software push-model
pacing with timer jitter for Pktgen-DPDK, and the burst bug in zsend /
PF_RING ZC — calibrated against the measured Table 4 bucket fractions.

Each model produces packet departure times; feed them to
:func:`repro.dut.fastpath.simulate_forwarder` (Figure 7) or to
:mod:`repro.analysis.interarrival` (Figure 8 / Table 4).
"""

from repro.generators.base import DepartureModel, enforce_wire_spacing
from repro.generators.moongen import MoonGenCrcGapModel, MoonGenHwRateModel
from repro.generators.pktgen_dpdk import PktgenDpdkModel
from repro.generators.zsend import ZsendModel

__all__ = [
    "DepartureModel",
    "MoonGenCrcGapModel",
    "MoonGenHwRateModel",
    "PktgenDpdkModel",
    "ZsendModel",
    "enforce_wire_spacing",
]
