"""MoonGen reproduction: a scriptable packet generator on simulated hardware.

Reproduces *MoonGen: A Scriptable High-Speed Packet Generator* (Emmerich et
al., IMC 2015) as a Python library.  Real NICs and wires are replaced by a
calibrated discrete-event simulation (see DESIGN.md); the scripting API,
timestamping engine, rate-control mechanisms, statistics and all evaluation
experiments are implemented on top of it.

Quick start::

    from repro import MoonGenEnv

    env = MoonGenEnv()
    tx = env.config_device(0, tx_queues=1)
    rx = env.config_device(1, rx_queues=1)
    env.connect(tx, rx)

    def load_slave(env, queue):
        mem = env.create_mempool(fill=lambda buf: buf.udp_packet.fill(
            pkt_length=60, eth_src=tx.mac, eth_dst=rx.mac,
            ip_dst="192.168.1.1", udp_dst=1234))
        bufs = mem.buf_array()
        while env.running():
            bufs.alloc(60)
            yield queue.send(bufs)

    env.launch(load_slave, env, tx.get_tx_queue(0))
    env.wait_for_slaves(duration_ns=1e6)
"""

from repro.core import (
    BufArray,
    CbrPattern,
    CustomGapPattern,
    Device,
    GapFiller,
    Histogram,
    ManualRxCounter,
    ManualTxCounter,
    MemPool,
    MoonGenEnv,
    PacketBuffer,
    PktRxCounter,
    PoissonPattern,
    RxQueue,
    Timestamper,
    TxQueue,
    UniformBurstPattern,
    sync_clocks,
)
from repro.packet import parse_ip_address
from repro.trace import JsonlSink, RingSink, Tracer

__version__ = "1.0.0"

__all__ = [
    "BufArray",
    "CbrPattern",
    "CustomGapPattern",
    "Device",
    "GapFiller",
    "Histogram",
    "JsonlSink",
    "ManualRxCounter",
    "ManualTxCounter",
    "MemPool",
    "MoonGenEnv",
    "PacketBuffer",
    "PktRxCounter",
    "PoissonPattern",
    "RingSink",
    "RxQueue",
    "Timestamper",
    "Tracer",
    "TxQueue",
    "UniformBurstPattern",
    "parse_ip_address",
    "sync_clocks",
    "__version__",
]
