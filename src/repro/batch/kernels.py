"""Batch kernels: execute a detected train arithmetically.

Each kernel replays, in plain arithmetic, exactly the per-frame work the
event loop would have performed — the same descriptor fetches (with their
recycle hooks and space-signal bookkeeping), the same rate-limiter
advances (including the tick-quantization error carry), the same wire
serialization/arrival stamps via :meth:`Wire.fast_transmit`, and the same
synchronous deliveries through the sink port's real ``receive``.  Only the
*events* are skipped; every counter, register, and queue ends up at the
value the discrete loop would have produced at the next observable
instant.

Two kernels:

* :func:`_fifo_train` — the MAC drains staged FIFO frames back to back.
  Per kick it first emulates the descriptor prefetch (single unpaced
  source queue only, bounded by the train's space-signal fetch budget),
  then transmits the FIFO head.  Once no further fetch can occur, the
  remaining drain is *planned* in closed form for uniform frame sizes or
  with a numpy cumulative-sum scan for mixed sizes, and delivered in a
  tight loop without per-frame bound checks.
* :func:`_paced_ring_train` — hardware rate control: frames leave at
  ``max(next_allowed, mac_free)`` and the limiter advances per frame
  through the exact event-path arithmetic (``_advance_rate_limiter``),
  so the ±tick dithering the paper measures in Section 7.3 is preserved
  bit for bit.

A train stops at the first of: the bound (next live event / run horizon /
tier train cap), a timestamp-marked frame, the space-signal fetch budget,
or ring + FIFO exhaustion.  Unbounded trains (``bound_ps is None`` —
nothing else live in the heap) drain to exhaustion and additionally
schedule the wire's final delivery instant, so the loop clock ends where
the event path's last arrival would have left it.  The caller schedules
the port's ``_mac_done`` at the returned MAC-free time, so whatever
stopped the train replays event-wise at its exact instant.
"""

from __future__ import annotations

from itertools import islice as _islice
from types import MethodType as _MethodType
from typing import Tuple

from repro import units
from repro.core.memory import PacketBuffer as _PacketBuffer
from repro.errors import QueueError

_PB_RECYCLE = _PacketBuffer.recycle

from repro.batch import _vec

#: Below this many frames, scalar arithmetic beats array set-up costs.
_VECTOR_MIN = 64
#: Minimum drain length worth a planning pass at all.
_PLAN_MIN = 16
#: Minimum planned span worth the bulk drop path's prefix scan.
_BULK_MIN = 8


def run_train(train, start_ps: int) -> Tuple[int, int]:
    """Execute ``train``; returns ``(mac_free_ps, frames_sent)``.

    Delivers the train's detached in-flight entries first (their original
    arrival stamps, in arrival order — exactly the calls the cancelled
    drain events would have made), then dispatches to the paced or FIFO
    kernel.
    """
    entries = train.entries
    if entries:
        sink = train.wire.sink
        for frame, arrival in entries:
            sink(frame, arrival)
    if train.paced:
        end_ps, sent = _paced_ring_train(train, start_ps)
    else:
        end_ps, sent = _fifo_train(train, start_ps)
    if train.bound_ps is None and (sent or entries):
        # Unbounded (pure-drain) train: a bounded plan only sends frames
        # arriving strictly before the bound event, but here the last
        # arrivals land *after* the ``_mac_done`` the caller schedules —
        # with cable latency, after every remaining event.  The event path
        # would have ended the lull on the wire's own drain event at the
        # final delivery stamp; schedule that exact (now no-op) event so
        # the loop clock advances identically.
        wire = train.wire
        last = wire._last_delivery_ps
        if last > end_ps:
            wire.loop.schedule_at(last, wire._deliver_due)
    return end_ps, sent


def _plan_drain(fifo, card, speed, end_ps, bound, latency) -> int:
    """How many leading FIFO frames fit before ``bound``, given that no
    descriptor fetch can occur for the rest of the train.

    Closed form for a uniform-size prefix (the steady-state CBR shape:
    zero per-frame arithmetic beyond the membership scan); numpy
    cumulative-sum + searchsorted for mixed sizes.  Frames carrying a
    ``timestamp`` request end the plan — the scalar caller names the stop.
    """
    first = fifo[0][0]
    if first.meta.get("timestamp"):
        return 0
    size0 = first.size
    mac0 = card.effective_frame_time_ps(first, speed)
    if bound is None:
        headroom = None
        limit = len(fifo)
    else:
        # Frame k (1-based) is sendable iff end + k*mac + latency < bound,
        # i.e. its cumulative MAC time stays <= headroom.
        headroom = bound - latency - end_ps - 1
        if headroom < mac0:
            return 0
        limit = min(len(fifo), headroom // mac0)
    n = 0
    while n < limit:
        frame = fifo[n][0]
        if frame.size != size0 or frame.meta.get("timestamp"):
            break
        n += 1
    if n == limit or fifo[n][0].meta.get("timestamp") or headroom is None:
        return n
    # Mixed sizes: vectorized cumulative plan over the unmarked prefix.
    macs = [mac0] * n
    total = n * mac0
    for i in range(n, len(fifo)):
        frame = fifo[i][0]
        if frame.meta.get("timestamp"):
            break
        mac = card.effective_frame_time_ps(frame, speed)
        macs.append(mac)
        total += mac
        if total > headroom:
            break
    if len(macs) >= _VECTOR_MIN:
        return _vec.plan_limit(macs, headroom)
    count = 0
    running = 0
    for mac in macs:
        running += mac
        if running > headroom:
            break
        count += 1
    return count


def _fifo_train(train, start_ps: int) -> Tuple[int, int]:
    port = train.port
    wire = train.wire
    fifo = port._fifo
    card = train.port.card
    eff_time = card.effective_frame_time_ps
    speed = port.speed_bps
    bound = train.bound_ps
    latency = train.latency_ps
    source = train.queue
    budget = train.fetch_budget
    fifo_cap = port.chip.tx_fifo_bytes
    # Declared producer send: modeled as a closed-form sawtooth.  Each
    # descriptor fetch that crosses the wake line (ring drained, or
    # ``space_wake_threshold`` slots free) tops the ring up by exactly
    # the freed slots — the ``min(free, remaining)`` chunk the woken
    # ``Task._send`` would push synchronously from inside the fetch's
    # signal trigger, with no cycle charge — and the producer re-parks.
    # The wake that would *complete* the send stops the train before its
    # fetch: the scheduled ``_mac_done`` replays it event-wise, and the
    # producer's continuation (arbitrary user code) runs at its exact
    # event-path instant.
    pend = train.pend
    if pend is not None:
        pframes = pend.frames
        psent = pend.sent
        ptotal = pend.total
        ring_size = source.ring_size
        wake_thresh = source.space_wake_threshold
    # The prefetcher only pulls from an unpaced single-queue ring; a rate
    # set after frames were staged still advances the limiter per frame.
    can_fetch = source is not None and not source.rate_bps
    ring = source.ring if source is not None else None
    fifo_bytes = port._fifo_bytes

    # Wire state, mirrored locally for the duration of the train (written
    # back at the end).  ``fast_transmit`` is inlined below: frame k's MAC
    # slot starts at the previous frame's MAC end, which is at or after the
    # previous wire end (MAC occupancy >= serialization time), so only the
    # first frame can hit the busy/arrival clamps.
    ser_cache = wire._ser_cache
    wire_busy = wire.busy_until_ps
    wire_last = wire._last_delivery_ps

    # Rx-side state for the inlined plain ``NicPort.receive``.  The sink
    # is a bound NicPort.receive (detector-guaranteed); the inline path
    # additionally needs no per-frame timestamping and no rx filter, and
    # handles ring overflow exactly like ``receive`` (counters + pool
    # release).  Waiters cannot appear and ``frozen`` cannot change
    # mid-train: both would need an event, and the train ends before the
    # next one.
    sink_port = wire.sink.__self__
    sink_chip = sink_port.chip
    hw_ts = sink_chip.hw_timestamping
    # In-dataplane observation (``repro.metrics.dataplane``): the kernel
    # performs the exact per-frame observations the event path would, in
    # the same order, so histogram *sums* (order-dependent float
    # accumulation) come out bit-identical.  Tx-queue residence latches in
    # the fetch block at the kick instant; wire hop / e2e latch in the
    # inlined fast_transmit below.  Observation disables the inline rx
    # shortcut (and with it the fused and bulk sub-paths, which skip the
    # per-frame wire stamps and ``receive``): deliveries go through the
    # sink port's real ``receive``, which latches rx inter-arrival itself.
    dp = port.dataplane
    dp_txq = (dp.txq[source.index]
              if dp is not None and source is not None else None)
    dp_hop = wire.dp_hop
    dp_e2e = wire.dp_e2e
    observing = (dp is not None or dp_hop is not None
                 or sink_port.dataplane is not None)
    inline_rx = (sink_port.rx_filter is None
                 and not (hw_ts and sink_chip.timestamp_all_rx)
                 and not observing)
    rxq = sink_port.rx_queues[0] if inline_rx else None
    rx_ring = rxq.ring if inline_rx else None
    rx_cap = -1 if (inline_rx and rxq.frozen) else (
        rxq.ring_size if inline_rx else 0)
    rx_ok = 0
    rx_ok_bytes = 0
    rx_seen = 0
    rx_seen_bytes = 0
    rx_missed = 0

    # Per-size memo for MAC time and wire serialization: card caps can
    # depend on *other* ports' activity, which cannot change mid-train, so
    # (size -> mac_time, ser) is stable for the train's duration.
    mt_size = -1
    mt_val = 0
    mt_ser = 0
    wire_speed = wire.speed_bps
    # Drop-path pool memo (one pool feeds a transmit loop in practice).
    lp_pool = None
    lp_free = None
    lp_max = 0

    # Single unpaced source queue: every FIFO entry belongs to it, its
    # limiter reset writes ``next_allowed_ps = <MAC start>`` per frame
    # (final value: the last frame's), and its tx counters add up — all
    # hoistable to one write-back after the loop.  ``rate_bps`` cannot
    # change mid-train (software runs in events).
    hoist_q = (source is not None and not source.rate_bps
               and len(port.tx_queues) == 1)

    fetches = 0
    end_ps = start_ps
    sent = 0
    sent_bytes = 0
    while True:
        if can_fetch and (bound is None or end_ps < bound):
            # Descriptor DMA the event path would run at this kick — the
            # kick at ``end_ps``.  When that kick lies at/past the bound
            # (possible only on the first iteration: ``start_ps`` is the
            # in-flight frame's MAC end, which the bound does not clamp),
            # the event path runs its prefetch *after* the bound, so
            # modeling it here would leak future fetches into state an
            # observer at the bound can see.  Skip it: the scheduled
            # ``_mac_done`` performs it for real.
            # A
            # fetch past the budget would fire the space signal, and the
            # woken producer must run at this exact instant: stop the
            # train *before* the kick — the scheduled ``_mac_done``
            # replays it event-wise (the fetches already emulated stay;
            # the event-path kick continues from the same ring head).
            # ``_fetch_from_ring`` is inlined minus tracer (disabled) and
            # the space-signal check (the budget proves it cannot fire;
            # without waiters there is no budget and nothing to wake).
            hit_budget = False
            while ring and fifo_bytes < fifo_cap:
                if budget is not None and fetches >= budget:
                    hit_budget = True
                    break
                wake = 0
                if pend is not None:
                    # Post-pop ring occupancy decides the wake, exactly
                    # the check ``_fetch_from_ring`` performs after
                    # popping.
                    ring_len = len(ring) - 1
                    free_after = ring_size - ring_len
                    if ring_len == 0 or free_after >= wake_thresh:
                        if ptotal - psent <= free_after:
                            # Completing wake: stop before this fetch.
                            hit_budget = True
                            break
                        wake = free_after
                frame = ring.popleft()
                if dp_txq is not None:
                    # The event path fetches at this kick's instant
                    # (``end_ps``), so tx-queue residence closes there.
                    enq = frame.meta.get("dp_enq_ps")
                    if enq is not None:
                        dp_txq.observe((end_ps - enq) / 1000.0)
                recycle = frame.recycle
                if recycle is not None:
                    frame.recycle = None
                    if (type(recycle) is _MethodType
                            and recycle.__func__ is _PB_RECYCLE):
                        # PacketBuffer.recycle -> MemPool.give_back, inlined.
                        buf = recycle.__self__
                        if buf.in_pool:
                            raise QueueError(
                                "double free of a packet buffer")
                        buf.in_pool = True
                        bpool = buf.pool
                        bpool._free.append(buf)
                        fsig = bpool.free_signal
                        if fsig._waiters:
                            fsig.trigger()
                    else:
                        recycle()
                else:
                    recycle = frame.meta.pop("recycle", None)
                    if recycle is not None:
                        recycle()
                fifo.append((frame, source))
                fifo_bytes += frame.size
                fetches += 1
                if wake:
                    if dp is not None:
                        # The woken producer's ``enqueue`` would stamp
                        # these at the kick instant (``end_ps``), not the
                        # detection instant the loop clock still shows.
                        for f in pframes[psent:psent + wake]:
                            f.meta["dp_enq_ps"] = end_ps
                    ring.extend(pframes[psent:psent + wake])
                    psent += wake
            if hit_budget:
                break
        if not fifo:
            break
        if (can_fetch and ring and hoist_q and inline_rx
                and len(rx_ring) >= rx_cap):
            # Fused steady-state cycles.  With the FIFO topped up and the
            # ring still holding descriptors, the event path strictly
            # alternates one head drain with one same-size fetch (each
            # drained byte re-opens exactly one fetched byte of FIFO
            # room), the rx ring is full (every drain overflows back into
            # its frame pool), and — as in the bulk drop path — an
            # unclamped first frame makes the wire stamps a pure
            # arithmetic progression.  Process ``n`` whole cycles at
            # once, where ``n`` stops short of the first wake line,
            # budget exhaustion, bound crossing, pool-capacity edge, or
            # non-uniform frame; the outer loop replays whichever of
            # those comes next through the exact scalar arithmetic.
            frame0 = fifo[0][0]
            size0 = frame0.size
            if size0 != mt_size:
                mt_val = eff_time(frame0, speed)
                mt_ser = ser_cache.get(size0)
                if mt_ser is None:
                    mt_ser = units.frame_time_ps(size0, wire_speed)
                    ser_cache[size0] = mt_ser
                mt_size = size0
            mac_time = mt_val
            pool0 = frame0.pool
            # Rx-side PTP latch precheck, per segment: frames under 80
            # bytes can only be PTP-over-Ethernet (EtherType 0x88F7), so
            # a per-frame byte-12 test below suffices; larger frames
            # would need the full ``is_ptp`` parse — leave those to the
            # scalar path, which performs it.
            hw12 = hw_ts and size0 > 16
            n = 0 if (hw_ts and size0 >= 80) else len(ring)
            if pend is not None:
                # First wake fires at the fetch whose post-pop occupancy
                # drains the ring or frees ``wake_thresh`` slots; stay
                # strictly before it.
                p_wake = n - (ring_size - wake_thresh)
                n = (p_wake if p_wake < n else n) - 1
            if budget is not None:
                rem = budget - fetches
                if rem < n:
                    n = rem
            if bound is not None:
                n_b = (bound - latency - end_ps - 1) // mac_time
                if n_b < n:
                    n = n_b
            room = lp_max - len(lp_free) if pool0 is lp_pool else 0
            if pool0 is not None and pool0 is not lp_pool:
                lp_pool = pool0
                lp_free = pool0._free
                lp_max = pool0.max_free
                room = lp_max - len(lp_free)
            if room < n:
                n = room
            if (n >= _BULK_MIN and pool0 is not None
                    and wire_busy <= end_ps
                    and wire_last < end_ps + mt_ser + latency):
                m = 0
                for rf in _islice(ring, n):
                    if rf.size != size0:
                        break
                    m += 1
                if m < n:
                    n = m
                k = 0
                if n >= _BULK_MIN:
                    # Drain-and-release in one pass: a frame that fails a
                    # check simply ends the segment at ``k`` whole cycles
                    # (any smaller ``n`` is an equally valid segment).
                    pop_fifo = fifo.popleft
                    lp_append = lp_free.append
                    while k < n:
                        f = fifo[0][0]
                        if (f.size != size0 or not f.fcs_ok
                                or f.pool is not pool0
                                or f.meta.get("timestamp")
                                or (hw12 and f.data[12] == 0x88)):
                            break
                        pop_fifo()
                        f.pool = None
                        f.data = b""
                        if f.meta:
                            f.meta = {}
                        lp_append(f)
                        k += 1
                if k:
                    rpop = ring.popleft
                    fappend = fifo.append
                    seg_pool = None
                    for _ in range(k):
                        frame = rpop()
                        rec = frame.recycle
                        if rec is not None:
                            frame.recycle = None
                            if (type(rec) is _MethodType
                                    and rec.__func__ is _PB_RECYCLE):
                                buf = rec.__self__
                                if buf.in_pool:
                                    raise QueueError(
                                        "double free of a packet buffer")
                                buf.in_pool = True
                                bpool = buf.pool
                                if bpool is not seg_pool:
                                    seg_pool = bpool
                                    seg_append = bpool._free.append
                                    seg_sig = bpool.free_signal
                                seg_append(buf)
                                if seg_sig._waiters:
                                    seg_sig.trigger()
                            else:
                                rec()
                        else:
                            rec = frame.meta.pop("recycle", None)
                            if rec is not None:
                                rec()
                        fappend((frame, source))
                    fetches += k
                    kb = k * size0
                    rx_seen += k
                    rx_seen_bytes += kb
                    rx_missed += k
                    sent += k
                    sent_bytes += kb
                    end_ps += k * mac_time
                    wire_busy = end_ps - mac_time + mt_ser
                    wire_last = wire_busy + latency
                    last_mac = mac_time
                    continue
        plan = 0
        if (not can_fetch or not ring) and len(fifo) >= _PLAN_MIN:
            # Pure drain from here on: no fetch can interleave, so the
            # whole remaining span is plannable in one pass and the
            # per-frame timestamp/bound checks are skipped for it.
            plan = _plan_drain(fifo, card, speed, end_ps, bound, latency)
            if (plan >= _BULK_MIN and hoist_q and inline_rx
                    and len(rx_ring) >= rx_cap):
                # Bulk drop path: the rx ring is full (it cannot drain
                # mid-train — that would take an event), so every planned
                # frame overflows straight back into its buffer pool.
                # For a uniform-size, clean-FCS, single-pool prefix the
                # per-frame work collapses to the shell release, and the
                # wire stamps close over the span: MAC occupancy >= wire
                # serialization means no frame after an unclamped one can
                # hit the busy/arrival clamps, so requiring frame 0
                # unclamped (the two preconditions below) makes every
                # start/arrival a pure arithmetic progression.
                frame0 = fifo[0][0]
                size0 = frame0.size
                if size0 != mt_size:
                    mt_val = eff_time(frame0, speed)
                    mt_ser = ser_cache.get(size0)
                    if mt_ser is None:
                        mt_ser = units.frame_time_ps(size0, wire_speed)
                        ser_cache[size0] = mt_ser
                    mt_size = size0
                pool0 = frame0.pool
                # Same per-segment PTP precheck as the fused path.
                hw12 = hw_ts and size0 > 16
                if (pool0 is not None and not (hw_ts and size0 >= 80)
                        and wire_busy <= end_ps
                        and wire_last < end_ps + mt_ser + latency):
                    if pool0 is not lp_pool:
                        lp_pool = pool0
                        lp_free = pool0._free
                        lp_max = pool0.max_free
                    room = lp_max - len(lp_free)
                    cap = plan if plan < room else room
                    bulk = []
                    bappend = bulk.append
                    for entry in _islice(fifo, cap):
                        f = entry[0]
                        if (f.size != size0 or not f.fcs_ok
                                or f.pool is not pool0
                                or (hw12 and f.data[12] == 0x88)):
                            break
                        bappend(f)
                    k = len(bulk)
                    if k:
                        if k == len(fifo):
                            fifo.clear()
                        else:
                            pop = fifo.popleft
                            for _ in range(k):
                                pop()
                        # Released-and-cleared, as in the scalar drop
                        # path: ``receive`` replaces meta wholesale, so
                        # the tx stamp is unobservable — skip it.
                        for f in bulk:
                            f.pool = None
                            f.data = b""
                            if f.meta:
                                f.meta = {}
                        lp_free.extend(bulk)
                        kb = k * size0
                        mac_time = mt_val
                        fifo_bytes -= kb
                        rx_seen += k
                        rx_seen_bytes += kb
                        rx_missed += k
                        sent += k
                        sent_bytes += kb
                        end_ps += k * mac_time
                        wire_busy = end_ps - mac_time + mt_ser
                        wire_last = wire_busy + latency
                        last_mac = mac_time
                        plan -= k
                        if not fifo:
                            break
        while True:
            frame = fifo[0][0]
            meta = frame.meta
            if plan <= 0:
                if meta.get("timestamp"):
                    fifo_stop = True
                    break
                size = frame.size
                if size != mt_size:
                    mt_val = eff_time(frame, speed)
                    mt_ser = ser_cache.get(size)
                    if mt_ser is None:
                        mt_ser = units.frame_time_ps(size, wire_speed)
                        ser_cache[size] = mt_ser
                    mt_size = size
                mac_time = mt_val
                if bound is not None and end_ps + mac_time + latency >= bound:
                    fifo_stop = True
                    break
            else:
                size = frame.size
                if size != mt_size:
                    mt_val = eff_time(frame, speed)
                    mt_ser = ser_cache.get(size)
                    if mt_ser is None:
                        mt_ser = units.frame_time_ps(size, wire_speed)
                        ser_cache[size] = mt_ser
                    mt_size = size
                mac_time = mt_val
            if hoist_q:
                fifo.popleft()
            else:
                fq = fifo.popleft()[1]
            fifo_bytes -= size
            # -- wire (fast_transmit, inlined) --
            start_w = end_ps if end_ps > wire_busy else wire_busy
            wire_busy = start_w + mt_ser
            arrival = wire_busy + latency
            if arrival <= wire_last:
                arrival = wire_last + 1
            wire_last = arrival
            if dp_hop is not None and frame.fcs_ok:
                # Mirrors ``Wire.fast_transmit``: hop residence and
                # end-to-end, FCS-valid frames only.
                dp_hop.observe((arrival - start_w) / 1000.0)
                enq = meta.get("dp_enq_ps")
                if enq is not None:
                    dp_e2e.observe((arrival - enq) / 1000.0)
            # -- delivery (plain receive, inlined where possible) --
            # The PTP precheck mirrors ``is_ptp``: PTP-over-UDP needs
            # size >= 80, PTP-over-Ethernet needs EtherType 0x88F7, so a
            # small frame whose 13th byte isn't 0x88 can't latch.
            if inline_rx and frame.fcs_ok and not (
                hw_ts and (size >= 80
                           or (size > 16 and frame.data[12] == 0x88))
                and frame.is_ptp()
            ):
                rx_seen += 1
                rx_seen_bytes += size
                if len(rx_ring) < rx_cap:
                    meta["tx_start_ps"] = end_ps
                    rx_ring.append(frame)
                    rx_ok += 1
                    rx_ok_bytes += size
                else:
                    rx_missed += 1
                    pool = frame.pool
                    if pool is not lp_pool:
                        lp_pool = pool
                        if pool is not None:
                            lp_free = pool._free
                            lp_max = pool.max_free
                    if pool is not None and len(lp_free) < lp_max:
                        # Released-and-cleared: ``receive`` replaces the
                        # meta dict wholesale, so the tx stamp the event
                        # path wrote first is unobservable — skip it.
                        frame.pool = None
                        frame.data = b""
                        if frame.meta:
                            frame.meta = {}
                        lp_free.append(frame)
                    else:
                        meta["tx_start_ps"] = end_ps
                        if pool is not None:
                            frame.pool = None
            else:
                meta["tx_start_ps"] = end_ps
                sink_port.receive(frame, arrival)
            if hoist_q:
                last_mac = mac_time
            else:
                fq.tx_packets += 1
                fq.tx_bytes += size
                if fq.rate_bps <= 0:
                    fq.next_allowed_ps = end_ps
                else:
                    fq._advance_rate_limiter(end_ps, frame)
            end_ps += mac_time
            sent += 1
            sent_bytes += size
            plan -= 1
            if plan == 0 and not fifo:
                fifo_stop = True
                break
            if can_fetch and ring and fifo_bytes < fifo_cap:
                # Back to the fetch block: a freed FIFO byte re-enables
                # the descriptor DMA the event path would run next kick.
                fifo_stop = False
                break
            if not fifo:
                fifo_stop = True
                break
        if fifo_stop:
            break
    if pend is not None:
        # The woken producer (or its deferred in-flight enqueue) resumes
        # from exactly this offset.
        pend.sent = psent
    port._fifo_bytes = fifo_bytes
    wire.busy_until_ps = wire_busy
    wire._last_delivery_ps = wire_last
    if sent:
        wire.frames_sent += sent
        wire.bytes_sent += sent_bytes
        port.tx_packets += sent
        port.tx_bytes += sent_bytes
        port.fast_forwarded += sent
        if hoist_q:
            source.tx_packets += sent
            source.tx_bytes += sent_bytes
            source.next_allowed_ps = end_ps - last_mac
    if rx_seen:
        sink_port.rx_packets += rx_seen
        sink_port.rx_bytes += rx_seen_bytes
    if rx_ok:
        rxq.rx_packets += rx_ok
        rxq.rx_bytes += rx_ok_bytes
    if rx_missed:
        sink_port.rx_missed += rx_missed
    return end_ps, sent


def _paced_ring_train(train, start_ps: int) -> Tuple[int, int]:
    port = train.port
    wire = train.wire
    queue = train.queue
    ring = queue.ring
    card = port.card
    speed = port.speed_bps
    bound = train.bound_ps
    latency = train.latency_ps
    budget = train.fetch_budget
    pend = train.pend
    if pend is not None:
        pframes = pend.frames
        psent = pend.sent
        ptotal = pend.total
        ring_size = queue.ring_size
        wake_thresh = queue.space_wake_threshold
    # In-dataplane observation: the paced kernel delivers through the real
    # ``Wire.fast_transmit`` (which latches hop/e2e) into the real
    # ``receive`` (which latches inter-arrival); only the tx-queue
    # residence at the fetch instant and the wake-chunk ingress stamps
    # are performed here, exactly as the event path would at ``start``.
    dp = port.dataplane
    dp_txq = dp.txq[queue.index] if dp is not None else None
    mac_free = start_ps
    sent = 0
    sent_bytes = 0
    while ring:
        if budget is not None and sent >= budget:
            # The next fetch would wake a parked producer no PendingSend
            # models; its wakeup replays event-wise at the next transmit
            # instant.
            break
        frame = ring[0]
        if frame.meta.get("timestamp"):
            break
        start = queue.next_allowed_ps
        if start < mac_free:
            start = mac_free
        mac_time = card.effective_frame_time_ps(frame, speed)
        if bound is not None and start + mac_time + latency >= bound:
            break
        wake = 0
        if pend is not None:
            # Same closed-form sawtooth as the FIFO kernel: the fetch's
            # post-pop occupancy decides the wake; a completing wake
            # replays event-wise (stop before the fetch).
            ring_len = len(ring) - 1
            free_after = ring_size - ring_len
            if ring_len == 0 or free_after >= wake_thresh:
                if ptotal - psent <= free_after:
                    break
                wake = free_after
        # ``_fetch_from_ring`` inlined minus tracer (disabled) and the
        # space-signal trigger (modeled above for a declared pend; the
        # fetch budget proves it cannot fire otherwise).
        ring.popleft()
        if dp_txq is not None:
            enq = frame.meta.get("dp_enq_ps")
            if enq is not None:
                dp_txq.observe((start - enq) / 1000.0)
        recycle = frame.recycle
        if recycle is not None:
            frame.recycle = None
            recycle()
        else:
            recycle = frame.meta.pop("recycle", None)
            if recycle is not None:
                recycle()
        if wake:
            if dp is not None:
                for f in pframes[psent:psent + wake]:
                    f.meta["dp_enq_ps"] = start
            ring.extend(pframes[psent:psent + wake])
            psent += wake
        size = frame.size
        frame.meta["tx_start_ps"] = start
        wire.fast_transmit(frame, size, start)
        queue.tx_packets += 1
        queue.tx_bytes += size
        queue._advance_rate_limiter(start, frame)
        mac_free = start + mac_time
        sent += 1
        sent_bytes += size
    if pend is not None:
        pend.sent = psent
    if sent:
        port.tx_packets += sent
        port.tx_bytes += sent_bytes
        port.fast_forwarded += sent
        # The event path round-robins past the winning queue on every
        # pick; with a single eligible queue the pointer's final value is
        # the same after every frame.
        port._rr_next = (queue.index + 1) % len(port.tx_queues)
    return mac_free, sent
