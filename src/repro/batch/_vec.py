"""Optional numpy fast path for the batch kernels.

The kernels never *require* numpy: every vectorized plan has a scalar
fallback producing bit-identical results (enforced by the differential
harness in ``tests/test_batch_equivalence.py``, which runs the whole
suite in both modes).  The selection happens once, at import:

* numpy importable and not disabled -> :data:`_np` is the module, and
  :func:`plan_limit` uses ``cumsum`` + ``searchsorted``;
* numpy missing, or ``REPRO_NO_NUMPY`` set in the environment -> pure
  python, same answers, linear scan.

Tests monkeypatch :data:`_np` to ``None`` to exercise the fallback
without uninstalling anything; CI additionally runs the equivalence gate
with numpy genuinely absent.
"""

from __future__ import annotations

import os

if os.environ.get("REPRO_NO_NUMPY"):  # explicit kill-switch
    _np = None
else:
    try:
        import numpy as _np
    except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
        _np = None


def has_numpy() -> bool:
    """True when the vectorized plan path is active."""
    return _np is not None


def plan_limit(macs, headroom: int) -> int:
    """How many leading ``macs`` fit with cumulative sum <= ``headroom``.

    ``macs`` is a list of per-frame MAC occupancy times (integer ps).
    Vectorized via cumulative-sum + binary search when numpy is present;
    the scalar scan is the semantics either way.
    """
    np = _np
    if np is not None:
        cum = np.cumsum(np.asarray(macs, dtype=np.int64))
        return int(np.searchsorted(cum, headroom, side="right"))
    count = 0
    running = 0
    for mac in macs:
        running += mac
        if running > headroom:
            break
        count += 1
    return count
