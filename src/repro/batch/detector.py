"""Run detection: when is a port's pending work a batchable event train?

A *train* is a maximal sequence of per-queue TX → DMA → serialize →
wire-delivery events whose timing and side effects are a pure function of
state already visible at the head of the train: frames staged in the MAC
FIFO (plus, for a single source queue, descriptors the prefetcher would
pull from its ring), a jitter-free wire, and a plain ``NicPort.receive``
sink.  Such a train can be executed arithmetically (``repro.batch.kernels``)
without scheduling its events, and the world at the next *observable*
instant — the next live event, the active ``run(until_ps=...)`` horizon, or
the tier's own train-length cap — is bit-identical to what the discrete
loop would have produced.

Since PR 7 a train spans the *whole pipeline*: TX queue → descriptor fetch
→ wire propagation → sink-port RX ring, including frames whose arrival
falls at or past the bound (they stay in flight: the kernel schedules
their real delivery events instead of delivering early), and including the
producer's park/wake backpressure sawtooth.  The latter rides on
:class:`repro.nicsim.nic.PendingSend`: a producer that declares its
blocking send lets the kernel compute, in closed form, the exact instants
its ring-space waits resolve — each descriptor fetch that crosses the
``space_wake_threshold`` refill line tops the ring up by the freed slots,
exactly the chunk the woken producer would have pushed synchronously from
inside ``_fetch_from_ring`` — without materializing the intermediate
events.  The wake that would *complete* the send still replays event-wise
(the producer's continuation is arbitrary user code).

``detect_train`` returns either a :class:`Train` or a stable reason string
(one of :data:`FALLBACK_REASONS`), in which case the caller must execute
event-by-event.  The rules mirror, check for check, the conditions the
event path consults per frame:

* per-frame observers force fidelity: an enabled tracer, tx observers, a
  wire that draws RNG per frame (jitter/corruption/loss), a fault injector
  targeting the wire, a DMA slowdown, or a sink that is not a plain
  ``NicPort.receive`` (e.g. :meth:`repro.dut.OvsForwarder.ingress`, which
  schedules interrupts relative to the *current* loop time and therefore
  must see every arrival as its own event);
* software parked on signals must wake at exact per-frame instants: rx
  ``packet_signal`` waiters fall back entirely, and tx ``space_signal``
  waiters either resolve to the declared :class:`PendingSend` (modeled in
  closed form) or bound the train with a *fetch budget* — the number of
  descriptor fetches that can run before the space signal would fire, so
  an unmodelable wakeup always replays event-wise at its precise instant;
* interleavings that depend on prefetch order fall back: descriptor
  fetches are only emulated for a single-queue port, and a FIFO train on a
  multi-queue port requires every unpaced ring to be empty;
* frames carrying a ``timestamp`` request end the train (the latch
  registers are order- and instant-sensitive);
* a kick running synchronously inside an *undeclared* producer's partial
  ``enqueue`` falls back (``producer-mid-call``): the caller still holds
  unsent frames and reacts to the post-kick ring state at this instant,
  which a train would have drained further than the event path;
* with an empty heap (no bound), only a kick *outside* any producer's
  enqueue — a pure drain — or one whose producer declared a
  :class:`PendingSend` is intrinsically bounded by the staged work; an
  undeclared mid-enqueue kick stays ``unbounded`` and refuses.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.nicsim.link import Wire
from repro.nicsim.nic import NicPort

#: Heaps larger than this are not scanned for independent foreign chains
#: (the scan is O(heap) per detection; past this size the plain bound is
#: almost certainly dominated by near-term events anyway).
_SCAN_MAX = 2048

#: Stable fallback-reason vocabulary (docs/PERFORMANCE.md documents each).
#: ``Wire.batch_blockers`` contributes the ``wire-*`` and ``tracer``
#: reasons; everything else is attributed here or by the tier itself.
FALLBACK_REASONS: Tuple[str, ...] = (
    "tracer",               # enabled tracer records per-frame events
    "tx-observers",         # per-frame departure observers installed
    "dma-slowdown",         # fault: MAC occupancy is stretched per frame
    "no-wire",              # transmitting into the void
    "wire-unconnected",     # wire has no sink
    "wire-jitter",          # medium draws per-frame jitter (RNG)
    "wire-corruption",      # per-frame corruption draws (RNG)
    "wire-phy-framing",     # 10GBASE-T PHY-frame arrival quantization
    "wire-faulted",         # a fault injector targets this wire
    "wire-carrier-down",    # link flap in progress
    "wire-loss-model",      # Gilbert-Elliott style loss decider installed
    "sink-unbatchable",     # sink is not a plain NicPort.receive (e.g. DuT)
    "rx-waiters",           # software parked on the sink's rx signals
    "multi-queue-ring",     # prefetch/round-robin order depends on >1 ring
    "queue-stalled",        # fault: the only active queue is stalled
    "space-signal",         # the very next descriptor fetch would wake a
                            # parked producer that no PendingSend models
    "producer-mid-call",    # kick inside an undeclared producer's partial
                            # enqueue: its continuation reads the ring now
    "unbounded",            # empty heap and the kick runs inside an
                            # undeclared producer's enqueue — nothing
                            # bounds the train, intrinsically or otherwise
    "horizon",              # train detected, but no frame fits before the
                            # bound (accounted by the tier, not here)
)


class Train:
    """A detected batchable train, ready for ``kernels.run_train``.

    ``entries`` are the wire's detached in-flight ``(frame, arrival_ps)``
    pairs that land strictly before ``bound_ps``; the kernel delivers them
    at their original stamps (in-flight frames at or past the bound keep
    their real delivery events — the detector never detaches those).
    ``fetch_budget`` is ``None`` for unlimited descriptor fetches, or the
    exact number of fetches that may run before an *unmodeled* tx space
    signal would fire.  ``pend`` is the declared producer send the kernel
    models as a closed-form sawtooth (``None`` when there is none); budget
    and pend are mutually exclusive.  ``queue`` is the single source queue
    for fetch emulation and rate-limiter bookkeeping (``None`` for a
    multi-queue FIFO-only drain).  ``bound_ps`` is ``None`` for a pure
    drain bounded only by the staged work.
    """

    __slots__ = ("port", "wire", "queue", "paced", "bound_ps", "latency_ps",
                 "entries", "fetch_budget", "pend")

    def __init__(self, port, wire, queue, paced, bound_ps, latency_ps,
                 entries, fetch_budget, pend=None) -> None:
        self.port = port
        self.wire = wire
        self.queue = queue
        self.paced = paced
        self.bound_ps = bound_ps
        self.latency_ps = latency_ps
        self.entries = entries
        self.fetch_budget = fetch_budget
        self.pend = pend


def _space_signal_budget(queue) -> Optional[int]:
    """Fetches allowed before the queue's space signal would fire.

    With producers parked on ``space_signal``, the ring only shrinks for
    the duration of a train, so the trigger condition inside
    ``NicPort._fetch_from_ring`` (ring drained, or ``space_wake_threshold``
    slots free) is a pure function of the fetch count: after ``m`` fetches
    the ring holds ``len(ring) - m`` and ``free + m`` slots are free.  The
    first fetch that would trigger must instead happen event-wise — the
    woken producer runs at that exact instant — so the budget is one less.
    """
    if not queue.space_signal.has_waiters:
        return None
    ring_len = len(queue.ring)
    free = queue.ring_size - ring_len
    first_trigger = min(ring_len, max(1, queue.space_wake_threshold - free))
    return first_trigger - 1


def _resolve_pending(port, queue):
    """The queue's declared producer send, iff the kernel can model it.

    Two modelable shapes:

    * the producer is parked on ``space_signal`` and is its *sole* waiter
      — every trigger during the train resumes exactly that producer,
      whose behavior is pinned by the ``Task._send`` protocol: push
      ``min(free, remaining)`` descriptors, park again unless done;
    * this kick runs synchronously inside the producer's own ``enqueue``
      (it is about to observe the ring and either top it up or park) and
      nothing else is parked on the signal — the kernel replays the
      producer's deterministic top-up/park sequence at the kick instant.

    Anything else (a second waiter, an already-completed send) returns
    ``None`` and the caller falls back to the fetch-budget rule.
    """
    pend = queue.pending_send
    if pend is None or pend.sent >= pend.total:
        return None
    waiters = queue.space_signal._waiters
    if pend.parked:
        return pend if len(waiters) == 1 else None
    if port._in_enqueue == 1 and not waiters:
        # Exactly one enqueue on the stack: it must be the pend owner's
        # (an unparked declared producer is always inside its enqueue).
        # With two nested enqueues the inner one could belong to another
        # producer resumed mid-call — unattributable, so unmodelable.
        return pend
    return None


def _model_enqueue_spin(port, queue, pend) -> None:
    """Replay, at the detection instant, the declared producer's post-kick
    top-up spin — the deterministic tail of its in-flight ``enqueue``.

    The event path after this kick returns: the producer's ``Task._send``
    loop pushes ``min(free, remaining)`` descriptors, whose kick (MAC
    busy) only prefetches ring → FIFO, freeing ring slots, and repeats
    until the ring is full with the FIFO at capacity — or the send
    completes.  Every iteration is a pure state mutation at *this*
    instant, so performing it up front is exactly the event path; the
    caller then latches :attr:`PendingSend.defer` so the unwinding
    producer observes "no progress" and parks, and refuses the train
    outright if the spin *completed* (the continuation would be
    arbitrary user code at this instant).

    ``_prefetch`` is safe to call for real: the tracer is disabled and
    the space signal has no waiters (both preconditions of resolving
    this pend shape), so no side channel fires.
    """
    ring = queue.ring
    ring_size = queue.ring_size
    frames = pend.frames
    dp = port.dataplane
    now_ps = port.loop.now_ps
    while pend.sent < pend.total:
        free = ring_size - len(ring)
        if free <= 0:
            break
        rem = pend.total - pend.sent
        take = rem if rem < free else free
        if dp is not None:
            # The spin replays the producer's ``enqueue`` at this instant,
            # which would stamp each accepted frame's ring-entry time.
            for f in frames[pend.sent:pend.sent + take]:
                f.meta["dp_enq_ps"] = now_ps
        ring.extend(frames[pend.sent:pend.sent + take])
        pend.sent += take
        port._prefetch()


def _delivery_independent(w, port, sink_port) -> bool:
    """A foreign wire's pending deliveries cannot touch our train's state.

    True iff ``w`` delivers into a plain, filter-free ``NicPort.receive``
    on a port that is neither our TX port nor our sink, with no software
    parked on its rx signals — then each ``_deliver_due`` is a pure
    mutation of that foreign port's rx ring and counters.
    """
    if w is port.wire:
        return False
    sink = w.sink
    target = getattr(sink, "__self__", None)
    if (target is None
            or getattr(sink, "__func__", None) is not NicPort.receive
            or not isinstance(target, NicPort)):
        return False
    if target is port or target is sink_port:
        return False
    if target.rx_filter is not None:
        return False
    return target.batch_ready_rx()


def _tx_chain_independent(p, port, sink_port) -> bool:
    """A foreign port's MAC events cannot interact with our train.

    True iff ``p``'s ``_mac_done``/``_mac_kick`` chain only mutates its
    own pipeline: ``p`` is neither endpoint of our train, no enqueue of
    its is on the stack (a mid-call producer reacts to post-kick state),
    it has no per-frame observers, it shares no *capped* card with our
    port (a capped card's per-frame MAC time reads the card's live
    active-port set, coupling the two chains' arithmetic), none of its
    queues has a producer parked on ``space_signal`` (a wake would run
    arbitrary user code mid-span), and its wire delivers independently.
    """
    if p is port or p is sink_port:
        return False
    if p._in_enqueue or p.tx_observers:
        return False
    if p.card is port.card and port.card._card_capped:
        return False
    for q in p.tx_queues:
        if q.space_signal._waiters:
            return False
    w = p.wire
    if w is not None and not _delivery_independent(w, port, sink_port):
        return False
    return True


def _chain_bound(loop, port, sink_port, plain_bound: int) -> Optional[int]:
    """Extend ``plain_bound`` past provably independent foreign chains.

    The plain bound is the very next live event — but on a multi-pipeline
    topology that event is usually another port's per-frame ``_mac_done``,
    strangling every train to a frame or two even though the two chains
    never touch.  This scans the scheduler's pending entries once for the earliest event that is
    *not* a skippable foreign-chain event (``_mac_done``/``_mac_kick`` of
    an independent port, ``_deliver_due`` of an independent wire) and
    bounds there instead, folded with the active run horizon.

    Skipped events are skipped from *bounding only* — they still execute
    at their real instants, in time order, after the kernel returns; the
    independence predicates guarantee their mutations are disjoint from
    everything the kernel reads or writes, so the world at the extended
    bound is the same either way.  Task resumes, ``wait_any`` timeouts,
    and any unclassified callback are never skipped, which also pins the
    no-new-waiters invariant: a waiter can only appear when a task runs,
    and tasks only run at non-skipped events.

    Returns the extended bound, ``None`` for "no intrinsic event bound at
    all" (every live event skippable, no horizon), or ``plain_bound``
    unchanged when the scan bails (live same-instant lane work, or an
    oversized pending set).
    """
    if loop._lane_live:
        return plain_bound
    scheduler = loop.scheduler
    if scheduler.entry_count() > _SCAN_MAX:
        return plain_bound
    best: Optional[int] = None
    verdicts = {}
    for time_ps, event in scheduler.iter_entries():
        if event.cancelled:
            continue
        if best is not None and time_ps >= best:
            continue
        cb = event.callback
        func = getattr(cb, "__func__", None)
        if func is NicPort._mac_done or func is NicPort._mac_kick:
            owner = cb.__self__
            verdict = verdicts.get(id(owner))
            if verdict is None:
                verdict = _tx_chain_independent(owner, port, sink_port)
                verdicts[id(owner)] = verdict
        elif func is Wire._deliver_due:
            owner = cb.__self__
            verdict = verdicts.get(id(owner))
            if verdict is None:
                verdict = _delivery_independent(owner, port, sink_port)
                verdicts[id(owner)] = verdict
        else:
            verdict = False
        if not verdict:
            best = time_ps
    until = loop._until_ps
    if until is not None and (best is None or until < best):
        best = until
    return best


def detect_train(port: NicPort, start_ps: int,
                 horizon_ps: Optional[int] = None) -> Union[Train, str]:
    """Inspect ``port`` mid-kick; return a :class:`Train` or a reason string.

    Called by :meth:`repro.batch.BatchTier.execute` from inside
    ``NicPort._mac_kick`` right after a frame entered the MAC (its
    occupancy ends at ``start_ps``).  On success the wire's pre-bound
    in-flight entries are already detached and owned by the returned
    train (later arrivals keep their delivery events); on fallback the
    wire is left exactly as found.
    """
    loop = port.loop
    if loop.tracer is not None:
        return "tracer"
    if port.tx_observers:
        return "tx-observers"
    if port.dma_slowdown != 1.0:
        return "dma-slowdown"
    wire = port.wire
    if wire is None:
        return "no-wire"
    if not wire.can_fast_forward():
        blockers = wire.batch_blockers()
        return blockers[0] if blockers else "wire-unconnected"
    sink = wire.sink
    memo = port._batch_sink
    if memo is not None and memo[0] is wire and memo[1] is sink:
        sink_port = memo[2]
    else:
        sink_port = getattr(sink, "__self__", None)
        if (sink_port is None
                or getattr(sink, "__func__", None) is not NicPort.receive
                or not isinstance(sink_port, NicPort)):
            return "sink-unbatchable"
        port._batch_sink = (wire, sink, sink_port)
    if not sink_port.batch_ready_rx():
        return "rx-waiters"

    queues = port.tx_queues
    if port._fifo:
        # FIFO train: the MAC drains staged frames; descriptor fetches are
        # emulated only for a single-queue port (multi-queue prefetch
        # interleaving is order-dependent), and only off an unpaced queue
        # (the prefetcher skips paced rings).
        if len(queues) == 1:
            queue = queues[0]
        else:
            if any(q.ring for q in queues if not q.rate_bps):
                return "multi-queue-ring"
            queue = None
        paced = False
    else:
        # Paced ring train: the MAC is idle between pacing ticks and frames
        # come straight off exactly one eligible ring on the limiter's
        # schedule.  (An unpaced non-empty ring with an empty FIFO cannot
        # reach here: this kick's prefetch would have staged it.)
        active = [q for q in queues if q.ring and not q.stalled]
        if not active:
            return "queue-stalled"
        if len(active) > 1:
            return "multi-queue-ring"
        queue = active[0]
        if not queue.rate_bps:
            return "multi-queue-ring"
        paced = True

    # Backpressure modeling.  Fetches happen off an unpaced single ring
    # (FIFO prefetch) or the paced ring itself; a declared producer send
    # is modeled as a sawtooth, an undeclared parked producer bounds the
    # train with a fetch budget, and an undeclared producer caught
    # mid-``enqueue`` with frames still in hand refuses outright.
    pend = None
    budget = None
    fetches_possible = queue is not None and (paced or not queue.rate_bps)
    if fetches_possible:
        pend = _resolve_pending(port, queue)
    if port._in_enqueue and port._enqueue_short and (
            pend is None or pend.parked):
        # The producer whose partial ``enqueue`` this kick runs inside is
        # not the one ``pend`` models (a parked pend owner cannot be
        # mid-call): its continuation reads the ring at this instant.
        return "producer-mid-call"
    if pend is not None and not pend.parked:
        # Shape (b): this kick runs inside the declared producer's own
        # ``enqueue``.  Its continuation is the deterministic top-up spin
        # of ``Task._send`` — perform it now (pure mutations at this
        # instant), then latch ``defer`` so the unwinding producer parks
        # instead of re-reading a ring the kernel has advanced past this
        # instant.  A spin that *completes* the send hands control to
        # arbitrary user code right here: refuse.
        _model_enqueue_spin(port, queue, pend)
        if pend.sent >= pend.total:
            return "producer-mid-call"
        pend.defer = True
    if pend is None:
        if fetches_possible:
            budget = _space_signal_budget(queue)
            if paced and budget == 0:
                # The very next fetch — which a paced train needs for its
                # very next frame — would wake a parked producer: nothing
                # to batch.
                return "space-signal"

    # Detach the wire's in-flight entries *before* computing the bound —
    # their drain events would otherwise clamp it to the very next
    # arrival.  Entries landing at/after the bound are put straight back
    # (their delivery events stay real); the kernel owns only the prefix.
    entries = wire.detach_pending()
    bound = loop.fast_forward_bound_ps()
    if bound is None and port._in_enqueue and (pend is None or pend.parked):
        # Empty heap, and this kick is running synchronously inside an
        # undeclared producer's ``enqueue`` — the producer is mid-call,
        # its continuation event not yet scheduled — so an "unbounded"
        # train would drain the ring before the producer ever feels
        # queue-full backpressure, changing its park/resume instants.  A
        # declared send (``pend``) or a kick outside any enqueue (a pure
        # drain: link-up, fault-clear, ``_mac_done``) is intrinsically
        # bounded by the staged work.  The tier's horizon cap below
        # deliberately cannot rescue this case: it caps a train, it does
        # not create a legitimate bound.
        wire.reattach_pending(entries)
        return "unbounded"
    if bound is not None:
        # Cross-chain extension: push the bound past provably independent
        # foreign TX chains' per-frame events (the multi-pipeline case
        # where two disjoint port->sink flows otherwise strangle each
        # other's trains to single frames).  The unbounded refusal above
        # was applied against the *plain* bound on purpose: an extension
        # to "no bound at all" must not resurrect a refused kick, so an
        # undeclared mid-enqueue producer keeps the plain bound instead.
        extended = _chain_bound(loop, port, sink_port, bound)
        if extended is not None or not (
                port._in_enqueue and (pend is None or pend.parked)):
            bound = extended
    if horizon_ps is not None:
        limit = start_ps + horizon_ps
        if bound is None or limit < bound:
            bound = limit
    if bound is not None and bound <= start_ps:
        # The next live event lands before the in-flight frame's MAC even
        # ends: no frame can serialize before the bound, so skip the
        # kernel dispatch outright (the common shape right after a train
        # ran up against a producer timer).  In-flight deliveries keep
        # their real events.
        wire.reattach_pending(entries)
        return "horizon"
    if bound is not None and entries and entries[-1][1] >= bound:
        # Split at the bound: the suffix stays in flight with real
        # delivery events; the kernel delivers the prefix synchronously.
        split = len(entries) - 1
        while split > 0 and entries[split - 1][1] >= bound:
            split -= 1
        wire.reattach_pending(entries[split:])
        entries = entries[:split]
    return Train(port, wire, queue, paced, bound, wire._latency_ps,
                 entries, budget, pend)
