"""Run detection: when is a port's pending work a batchable event train?

A *train* is a maximal sequence of per-queue TX → DMA → serialize →
wire-delivery events whose timing and side effects are a pure function of
state already visible at the head of the train: frames staged in the MAC
FIFO (plus, for a single source queue, descriptors the prefetcher would
pull from its ring), a jitter-free wire, and a plain ``NicPort.receive``
sink.  Such a train can be executed arithmetically (``repro.batch.kernels``)
without scheduling its events, and the world at the next *observable*
instant — the next live event, the active ``run(until_ps=...)`` horizon, or
the tier's own train-length cap — is bit-identical to what the discrete
loop would have produced.

``detect_train`` returns either a :class:`Train` or a stable reason string
(one of :data:`FALLBACK_REASONS`), in which case the caller must execute
event-by-event.  The rules mirror, check for check, the conditions the
event path consults per frame:

* per-frame observers force fidelity: an enabled tracer, tx observers, a
  wire that draws RNG per frame (jitter/corruption/loss), a fault injector
  targeting the wire, a DMA slowdown, or a sink that is not a plain
  ``NicPort.receive`` (e.g. :meth:`repro.dut.OvsForwarder.ingress`, which
  schedules interrupts relative to the *current* loop time and therefore
  must see every arrival as its own event);
* software parked on signals must wake at exact per-frame instants: rx
  ``packet_signal`` waiters fall back entirely, and tx ``space_signal``
  waiters bound the train with a *fetch budget* — the number of descriptor
  fetches that can run before the space signal would fire, so the wakeup
  itself always replays event-wise at its precise instant;
* interleavings that depend on prefetch order fall back: descriptor
  fetches are only emulated for a single-queue port, and a FIFO train on a
  multi-queue port requires every unpaced ring to be empty;
* frames carrying a ``timestamp`` request end the train (the latch
  registers are order- and instant-sensitive), as does an in-flight wire
  entry arriving at or after the bound.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.nicsim.nic import NicPort

#: Stable fallback-reason vocabulary (docs/PERFORMANCE.md documents each).
#: ``Wire.batch_blockers`` contributes the ``wire-*`` and ``tracer``
#: reasons; everything else is attributed here or by the tier itself.
FALLBACK_REASONS: Tuple[str, ...] = (
    "tracer",               # enabled tracer records per-frame events
    "tx-observers",         # per-frame departure observers installed
    "dma-slowdown",         # fault: MAC occupancy is stretched per frame
    "no-wire",              # transmitting into the void
    "wire-unconnected",     # wire has no sink
    "wire-jitter",          # medium draws per-frame jitter (RNG)
    "wire-corruption",      # per-frame corruption draws (RNG)
    "wire-phy-framing",     # 10GBASE-T PHY-frame arrival quantization
    "wire-faulted",         # a fault injector targets this wire
    "wire-carrier-down",    # link flap in progress
    "wire-loss-model",      # Gilbert-Elliott style loss decider installed
    "sink-unbatchable",     # sink is not a plain NicPort.receive (e.g. DuT)
    "rx-waiters",           # software parked on the sink's rx signals
    "multi-queue-ring",     # prefetch/round-robin order depends on >1 ring
    "queue-stalled",        # fault: the only active queue is stalled
    "space-signal",         # the very next descriptor fetch would wake a
                            # parked producer — no frame fits before it
    "inflight-past-bound",  # an in-flight frame lands at/after the bound
    "unbounded",            # no live event bounds the train and no producer
                            # is parked to bound it intrinsically
    "horizon",              # train detected, but no frame fits before the
                            # bound (accounted by the tier, not here)
)


class Train:
    """A detected batchable train, ready for ``kernels.run_train``.

    ``entries`` are the wire's detached in-flight ``(frame, arrival_ps)``
    pairs; the kernel delivers them synchronously before transmitting (the
    detector has already checked they all land strictly before ``bound_ps``).
    ``fetch_budget`` is ``None`` for unlimited descriptor fetches, or the
    exact number of fetches that may run before a tx space signal would
    fire.  ``queue`` is the single source queue for fetch emulation and
    rate-limiter bookkeeping (``None`` for a multi-queue FIFO-only drain).
    """

    __slots__ = ("port", "wire", "queue", "paced", "bound_ps", "latency_ps",
                 "entries", "fetch_budget")

    def __init__(self, port, wire, queue, paced, bound_ps, latency_ps,
                 entries, fetch_budget) -> None:
        self.port = port
        self.wire = wire
        self.queue = queue
        self.paced = paced
        self.bound_ps = bound_ps
        self.latency_ps = latency_ps
        self.entries = entries
        self.fetch_budget = fetch_budget


def _space_signal_budget(queue) -> Optional[int]:
    """Fetches allowed before the queue's space signal would fire.

    With producers parked on ``space_signal``, the ring only shrinks for
    the duration of a train, so the trigger condition inside
    ``NicPort._fetch_from_ring`` (ring drained, or ``space_wake_threshold``
    slots free) is a pure function of the fetch count: after ``m`` fetches
    the ring holds ``len(ring) - m`` and ``free + m`` slots are free.  The
    first fetch that would trigger must instead happen event-wise — the
    woken producer runs at that exact instant — so the budget is one less.
    """
    if not queue.space_signal.has_waiters:
        return None
    ring_len = len(queue.ring)
    free = queue.ring_size - ring_len
    first_trigger = min(ring_len, max(1, queue.space_wake_threshold - free))
    return first_trigger - 1


def detect_train(port: NicPort, start_ps: int,
                 horizon_ps: Optional[int] = None) -> Union[Train, str]:
    """Inspect ``port`` mid-kick; return a :class:`Train` or a reason string.

    Called by :meth:`repro.batch.BatchTier.execute` from inside
    ``NicPort._mac_kick`` right after a frame entered the MAC (its
    occupancy ends at ``start_ps``).  On success the wire's in-flight
    entries are already detached and owned by the returned train; on
    fallback the wire is left exactly as found.
    """
    loop = port.loop
    if loop.tracer is not None:
        return "tracer"
    if port.tx_observers:
        return "tx-observers"
    if port.dma_slowdown != 1.0:
        return "dma-slowdown"
    wire = port.wire
    if wire is None:
        return "no-wire"
    if not wire.can_fast_forward():
        blockers = wire.batch_blockers()
        return blockers[0] if blockers else "wire-unconnected"
    sink = wire.sink
    sink_port = getattr(sink, "__self__", None)
    if (sink_port is None
            or getattr(sink, "__func__", None) is not NicPort.receive
            or not isinstance(sink_port, NicPort)):
        return "sink-unbatchable"
    if not sink_port.batch_ready_rx():
        return "rx-waiters"

    queues = port.tx_queues
    if port._fifo:
        # FIFO train: the MAC drains staged frames; descriptor fetches are
        # emulated only for a single-queue port (multi-queue prefetch
        # interleaving is order-dependent), and only off an unpaced queue
        # (the prefetcher skips paced rings).
        if len(queues) == 1:
            queue = queues[0]
        else:
            if any(q.ring for q in queues if not q.rate_bps):
                return "multi-queue-ring"
            queue = None
        paced = False
        budget = _space_signal_budget(queue) if queue is not None else None
    else:
        # Paced ring train: the MAC is idle between pacing ticks and frames
        # come straight off exactly one eligible ring on the limiter's
        # schedule.  (An unpaced non-empty ring with an empty FIFO cannot
        # reach here: this kick's prefetch would have staged it.)
        active = [q for q in queues if q.ring and not q.stalled]
        if not active:
            return "queue-stalled"
        if len(active) > 1:
            return "multi-queue-ring"
        queue = active[0]
        if not queue.rate_bps:
            return "multi-queue-ring"
        paced = True
        budget = _space_signal_budget(queue)
        if budget == 0:
            # The very next fetch — which a paced train needs for its very
            # next frame — would wake a parked producer: nothing to batch.
            return "space-signal"

    # In-flight frames must land strictly before the bound, or an
    # observer scheduled at the bound could see them early.  Detach their
    # drain events *before* computing the bound — otherwise those events
    # clamp it to the very next arrival and no train could ever form.
    entries = wire.detach_pending()
    bound = loop.fast_forward_bound_ps()
    if bound is None and budget is None:
        # Empty heap and nobody parked on the space signal.  This kick may
        # be running synchronously inside a producer's own ``enqueue`` —
        # the producer is mid-call, its continuation event not yet
        # scheduled — so an "unbounded" train would drain the ring before
        # the producer ever feels queue-full backpressure, changing its
        # park/resume instants.  A parked producer (``budget`` set) bounds
        # the train intrinsically: the budget stops it one fetch short of
        # the wakeup, which then replays event-wise at its exact instant.
        # The tier's horizon cap below deliberately cannot rescue this
        # case: it caps a train, it does not create a legitimate bound.
        wire.reattach_pending(entries)
        return "unbounded"
    if horizon_ps is not None:
        limit = start_ps + horizon_ps
        if bound is None or limit < bound:
            bound = limit
    if bound is not None and entries and entries[-1][1] >= bound:
        wire.reattach_pending(entries)
        return "inflight-past-bound"
    return Train(port, wire, queue, paced, bound, wire._latency_ps,
                 entries, budget)
