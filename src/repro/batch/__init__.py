"""Vectorized batch execution tier for the event loop.

``repro.batch`` generalizes the steady-state CBR fast-forward (PR 2) into
a real execution tier: a run-detector (:mod:`repro.batch.detector`)
inspects a port's pending work for homogeneous event trains — per-queue
TX/DMA/serialize/wire-delivery sequences with no cross-component
interaction before a horizon — and executes each train as a closed-form or
numpy-vectorized batch (:mod:`repro.batch.kernels`), updating NIC, link,
and rx-side state to exactly the values the discrete loop would have
produced.  At any interaction point (a fault firing, queue-full
backpressure via the tx space signal, a parked receiver, a monitor that
must sample, an enabled tracer, an in-flight frame straddling the bound)
it falls back to event-by-event execution and accounts the reason.

Enable it with ``MoonGenEnv(batch=True)`` (or the legacy alias
``fast_forward=True``), or ``--batch`` on the CLI.  Bit-identical output
is the house invariant: ``tests/test_batch_equivalence.py`` runs every
wired scenario twice (batch on/off) and diffs result dicts, device
counters, metrics fingerprints, and golden traces.

The tier's own statistics are scheduler self-accounting — they describe
the batching machinery's work, not the simulated world.  With a metrics
registry enabled they are published under the ``batch.`` prefix
(``batch.trains``, ``batch.frames``, ``batch.events_saved``, and one
``batch.fallback.<reason>`` counter per fallback reason); every
fingerprint comparison between batch and event runs excludes ``batch.*``
alongside ``loop.*`` for exactly that reason.  Read them directly with
:meth:`BatchTier.stats` or :meth:`BatchTier.summary`.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.batch.detector import FALLBACK_REASONS, Train, detect_train
from repro.batch.kernels import run_train

__all__ = ["BatchTier", "Train", "detect_train", "run_train",
           "FALLBACK_REASONS"]


class BatchTier:
    """The batch dispatch hook installed on an :class:`EventLoop`.

    One tier is shared by every port on a loop (``loop.batch``); ports
    opted in via ``NicPort.fast_forward`` route their post-transmit MAC
    state through :meth:`execute`.

    ``horizon_ns`` optionally caps the train length in simulated time:
    each train then ends no later than ``start + horizon``, forcing a
    return to the discrete loop at least that often.  The default
    (``None``) lets trains run to the next live event / run horizon /
    intrinsic stop, which is always exact; the cap exists for tests that
    probe bound handling and for callers that want bounded latency
    between fallback points.
    """

    def __init__(self, horizon_ns: Optional[float] = None) -> None:
        self.horizon_ps: Optional[int] = (
            None if horizon_ns is None else max(1, round(horizon_ns * 1000)))
        #: Trains executed (at least one frame batched).
        self.trains = 0
        #: Frames sent through batch kernels.
        self.frames = 0
        #: Estimated events the discrete loop would have scheduled for the
        #: batched frames (MAC-done + wire delivery per frame, plus the
        #: pacing wakeup for paced trains).
        self.events_saved = 0
        #: Fallback reason -> count (reasons from ``FALLBACK_REASONS``).
        self.fallbacks: Dict[str, int] = {}

    def execute(self, port, start_ps: int) -> int:
        """Try to batch from ``port``'s current MAC kick.

        Returns the MAC-free time to schedule ``_mac_done`` at: advanced
        past every batched frame, or ``start_ps`` unchanged on fallback.
        """
        train = detect_train(port, start_ps, self.horizon_ps)
        if type(train) is str:
            counts = self.fallbacks
            counts[train] = counts.get(train, 0) + 1
            return start_ps
        end_ps, sent = run_train(train, start_ps)
        if sent:
            self.trains += 1
            self.frames += sent
            self.events_saved += (3 if train.paced else 2) * sent
        else:
            counts = self.fallbacks
            counts["horizon"] = counts.get("horizon", 0) + 1
        return end_ps

    def stats(self) -> Dict[str, object]:
        """A stable snapshot dict (CLI/manifest friendly)."""
        return {
            "trains": self.trains,
            "frames": self.frames,
            "events_saved": self.events_saved,
            "fallbacks": dict(sorted(self.fallbacks.items())),
        }

    def summary(self) -> str:
        """One human-readable line for CLI output."""
        if not self.trains:
            reasons = sorted(self.fallbacks.items(), key=lambda kv: -kv[1])
            top = ", ".join(f"{k}={v}" for k, v in reasons[:3])
            return f"batch tier: no trains batched ({top or 'no attempts'})"
        avg = self.frames / self.trains
        return (f"batch tier: {self.frames} frames in {self.trains} trains "
                f"(avg {avg:.1f}/train), ~{self.events_saved} events saved")
