"""Deterministic metrics registry: named counters, gauges, and histograms.

The registry is the simulator's analog of MoonGen reading "the NIC's
statistics registers" (Section 4.2) once per second — except every layer
registers, not just the NICs.  Components publish metrics under stable
dotted names (``nic0.tx.pps``, ``wire.0->1.in_flight``, ``dut.ring.depth``,
``faults.active``) and a :class:`~repro.metrics.snapshot.Snapshotter`
samples the whole registry on a fixed *simulated-time* interval.

Design rules (they are what make metrics snapshots bit-identical between
serial and ``--jobs N`` runs, the CI hard gate):

* **Pull, not push.**  A metric is a *reader* over simulation state that
  already exists (``port.tx_packets``, ``len(ring)``, ``injector.active``)
  — registering one adds zero work to the hot path.  Nothing in the
  transmit/receive/event loops checks "is metrics enabled"; sampling cost
  is paid only at snapshot instants.
* **Sim-time only.**  Every sampled value is a pure function of simulation
  state at a simulated instant; wall-clock never leaks into a series.
* **Deterministic order.**  Metrics iterate in registration order, which
  is topology-construction order — identical for identical scripts.

``Log2Histogram`` is the fixed-bucket histogram used for latency-style
metrics: power-of-two bucket edges in nanoseconds (the shape P4TG uses for
data-plane RTT histograms).  It interoperates with the sample-exact
:class:`repro.core.histogram.Histogram` via :meth:`Log2Histogram.observe_histogram`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError

#: Valid metric name characters; enforced so every exporter (JSONL, CSV,
#: Prometheus text) can rely on a common grammar.  Dots separate
#: components, ``->`` names wire directions.
_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._->:"
)


def check_name(name: str) -> str:
    """Validate a metric name; returns it unchanged."""
    if not name or not set(name) <= _NAME_OK:
        raise ConfigurationError(
            f"invalid metric name {name!r}: use dotted lowercase segments "
            "(letters, digits, '.', '_', '->', ':')"
        )
    return name


class Metric:
    """Base class: a named, typed reader over simulation state."""

    kind = "gauge"

    __slots__ = ("name", "help")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = check_name(name)
        self.help = help

    def read(self) -> Any:
        raise NotImplementedError

    def sample(self, now_ns: float) -> Any:
        """The value recorded at a snapshot instant (default: :meth:`read`)."""
        return self.read()


class Counter(Metric):
    """A monotonically increasing total.

    Either *source-backed* (``fn`` reads an existing register, e.g.
    ``lambda: port.tx_packets``) or *manual* (:meth:`inc`).  Mirroring a
    device register through ``fn`` guarantees the counter can never drift
    from the hardware view — the property the hypothesis mirror test pins.
    """

    kind = "counter"

    __slots__ = ("_fn", "_value")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None,
                 help: str = "") -> None:
        super().__init__(name, help)
        self._fn = fn
        self._value = 0

    def inc(self, n: float = 1) -> None:
        if self._fn is not None:
            raise ConfigurationError(
                f"counter {self.name!r} is source-backed; it cannot be "
                "incremented manually"
            )
        if n < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc({n}))"
            )
        self._value += n

    def read(self) -> float:
        return self._fn() if self._fn is not None else self._value


class Gauge(Metric):
    """An instantaneous value: queue depth, in-flight frames, active faults."""

    kind = "gauge"

    __slots__ = ("_fn", "_value")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None,
                 help: str = "") -> None:
        super().__init__(name, help)
        self._fn = fn
        self._value = 0

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ConfigurationError(
                f"gauge {self.name!r} is source-backed; it cannot be set"
            )
        self._value = value

    def read(self) -> float:
        return self._fn() if self._fn is not None else self._value


class Rate(Metric):
    """A per-second rate derived from a counter between two snapshots.

    ``nic0.tx.pps`` is a :class:`Rate` over the ``nic0.tx.packets``
    counter: at each snapshot it reports ``(total - previous total) /
    interval_seconds`` of *simulated* time — exactly the per-interval
    console rates of ``stats.lua``, as a time series.  The first sample
    (no previous snapshot) reports 0.0.
    """

    kind = "rate"

    __slots__ = ("source", "_last_value", "_last_t_ns")

    def __init__(self, name: str, source: Counter, help: str = "") -> None:
        super().__init__(name, help)
        self.source = source
        self._last_value: Optional[float] = None
        self._last_t_ns = 0.0

    def read(self) -> float:
        return 0.0

    def sample(self, now_ns: float) -> float:
        value = self.source.read()
        if self._last_value is None or now_ns <= self._last_t_ns:
            rate = 0.0
        else:
            dt_s = (now_ns - self._last_t_ns) / 1e9
            rate = (value - self._last_value) / dt_s
        self._last_value = value
        self._last_t_ns = now_ns
        return rate


class Log2Histogram(Metric):
    """A fixed-bucket histogram with power-of-two bucket edges.

    Bucket ``i`` counts samples in ``[2**(i-1), 2**i)`` (bucket 0 counts
    ``[0, 1)``); ``n_buckets`` buckets cover everything below
    ``2**(n_buckets-1)`` with a final overflow bucket above that.  With
    nanosecond samples and the default 48 buckets the range spans sub-ns
    to ~39 hours — one latch per observation, no allocation, and the
    bucket layout is identical on every run (the snapshot-determinism
    requirement sample-exact histograms cannot give across merges).
    """

    kind = "histogram"

    __slots__ = ("counts", "total", "sum")

    N_BUCKETS = 48

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self.counts = [0] * self.N_BUCKETS
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Latch one sample (>= 0; latencies/inter-arrivals in ns)."""
        if value < 0:
            raise ConfigurationError(
                f"histogram {self.name!r} observed negative value {value}"
            )
        bucket = int(value).bit_length()
        if bucket >= self.N_BUCKETS:
            bucket = self.N_BUCKETS - 1
        self.counts[bucket] += 1
        self.total += 1
        self.sum += value

    def observe_histogram(self, histogram) -> None:
        """Latch every sample of a :class:`repro.core.histogram.Histogram`."""
        for sample in histogram.samples:
            self.observe(sample)

    def bucket_edges(self) -> List[float]:
        """Upper (exclusive) edge of each bucket; the last is +inf."""
        edges = [float(1 << i) for i in range(self.N_BUCKETS - 1)]
        edges.append(float("inf"))
        return edges

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper edge of the bucket
        containing the q-th sample); 0.0 on an empty histogram."""
        if not 0 <= q <= 1:
            raise ConfigurationError(f"quantile out of range: {q}")
        if self.total == 0:
            return 0.0
        rank = q * (self.total - 1)
        seen = 0
        for i, count in enumerate(self.counts):
            seen += count
            if seen > rank:
                return float(1 << i)
        return float(1 << (self.N_BUCKETS - 1))

    def _position_value(self, k: int) -> float:
        """Interpolated value of the ``k``-th sample (0-based, sorted order).

        Samples inside a bucket are assumed uniformly spread over
        ``[lo, hi)``; the ``m``-th of ``c`` sits at the midpoint of its
        1/c-th slice, so the estimate never leaves the bucket.  The
        overflow bucket has no upper edge and reports its lower edge.
        """
        seen = 0
        for i, count in enumerate(self.counts):
            if k < seen + count:
                if i == self.N_BUCKETS - 1:
                    return float(1 << (i - 1))
                lo = 0.0 if i == 0 else float(1 << (i - 1))
                hi = float(1 << i)
                return lo + (hi - lo) * ((k - seen) + 0.5) / count
            seen += count
        return float(1 << (self.N_BUCKETS - 2))

    def percentile(self, p: float) -> float:
        """Interpolated percentile, ``p`` in [0, 100].

        The bucket-resolution analog of
        :meth:`repro.core.histogram.Histogram.percentile`: the same
        ``p/100 * (n-1)`` rank with linear interpolation between adjacent
        positions, each position resolved to an in-bucket estimate.  The
        result is within one bucket width of the sample-exact percentile
        (the hypothesis property test pins this), and the error contract
        matches the sample-exact API: ``ValueError`` on an empty
        histogram or an out-of-range ``p``.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        if self.total == 0:
            raise ValueError("empty histogram")
        rank = p / 100 * (self.total - 1)
        low = int(rank)
        frac = rank - low
        vlow = self._position_value(low)
        if frac == 0.0:
            return vlow
        vhigh = self._position_value(low + 1)
        return vlow + frac * (vhigh - vlow)

    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def read(self) -> Dict[str, Any]:
        """Snapshot value: compact dict of non-empty buckets plus totals.

        Keys are stringified bucket indices so the JSONL row stays small
        for mostly-empty histograms and round-trips through JSON exactly.
        """
        return {
            "total": self.total,
            "sum": self.sum,
            "buckets": {str(i): c for i, c in enumerate(self.counts) if c},
        }


class MetricsRegistry:
    """Named metrics in deterministic (registration) order."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # -- registration ------------------------------------------------------

    def register(self, metric: Metric) -> Metric:
        """Add a metric; duplicate names raise (stable names are the API)."""
        if metric.name in self._metrics:
            raise ConfigurationError(
                f"metric {metric.name!r} already registered"
            )
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, fn: Optional[Callable[[], float]] = None,
                help: str = "") -> Counter:
        return self.register(Counter(name, fn, help))

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None,
              help: str = "") -> Gauge:
        return self.register(Gauge(name, fn, help))

    def rate(self, name: str, source: Counter, help: str = "") -> Rate:
        return self.register(Rate(name, source, help))

    def log2_histogram(self, name: str, help: str = "") -> Log2Histogram:
        return self.register(Log2Histogram(name, help))

    def counter_with_rate(self, base_name: str, fn: Callable[[], float],
                          rate_suffix: str = "pps",
                          help: str = "") -> Tuple[Counter, Rate]:
        """The common pair: a source-backed total plus its per-second rate.

        ``nic0.tx`` becomes ``nic0.tx.packets`` (counter) and
        ``nic0.tx.pps`` (rate).
        """
        counter = self.counter(f"{base_name}.packets", fn, help)
        rate = self.rate(f"{base_name}.{rate_suffix}", counter, help)
        return counter, rate

    # -- access ------------------------------------------------------------

    def get(self, name: str) -> Metric:
        try:
            return self._metrics[name]
        except KeyError:
            raise ConfigurationError(
                f"no metric named {name!r}; registered: {self.names()}"
            ) from None

    def names(self) -> List[str]:
        return list(self._metrics)

    def metrics(self) -> List[Metric]:
        return list(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # -- sampling ----------------------------------------------------------

    def sample(self, now_ns: float) -> Dict[str, Any]:
        """Read every metric at a snapshot instant, in registration order."""
        return {name: metric.sample(now_ns)
                for name, metric in self._metrics.items()}

    def read_all(self) -> Dict[str, Any]:
        """Current values without advancing rate state (debug/inspection)."""
        return {name: metric.read()
                for name, metric in self._metrics.items()}


__all__ = [
    "Counter",
    "Gauge",
    "Log2Histogram",
    "Metric",
    "MetricsRegistry",
    "Rate",
    "check_name",
]
