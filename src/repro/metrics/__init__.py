"""``repro.metrics`` — run-wide telemetry for the simulator.

Four pieces (see ``docs/METRICS.md``):

* :class:`MetricsRegistry` + Counter/Gauge/Rate/:class:`Log2Histogram` —
  components publish metrics under stable dotted names;
* :class:`Snapshotter`/:class:`TimeSeries` — a slave task samples the
  registry on a fixed sim-time interval; series are deterministic and
  fingerprintable;
* exporters — JSONL (canonical), CSV, Prometheus text (one-shot scrape
  file);
* :class:`RunManifest` — provenance written next to every result file;
  :class:`LoopProfiler` — host wall-time attribution per event category.

Enable per-run via ``MoonGenEnv(metrics=True)``; ``None`` (default) keeps
every hook inert, same zero-cost contract as the tracer.
"""

from repro.metrics.dataplane import DataplaneObserver, PortDataplane
from repro.metrics.export import (
    prometheus_name,
    to_prometheus,
    validate_jsonl,
    write_csv,
    write_jsonl,
)
from repro.metrics.manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    load_manifest,
    manifest_path_for,
    stable_hash,
)
from repro.metrics.profiler import (
    LoopProfiler,
    ProfileReport,
    categorize,
    profile_env,
)
from repro.metrics.registry import (
    Counter,
    Gauge,
    Log2Histogram,
    Metric,
    MetricsRegistry,
    Rate,
    check_name,
)
from repro.metrics.snapshot import Snapshotter, TimeSeries, canonical_json

__all__ = [
    "Counter",
    "DataplaneObserver",
    "Gauge",
    "Log2Histogram",
    "LoopProfiler",
    "MANIFEST_SCHEMA",
    "Metric",
    "MetricsRegistry",
    "PortDataplane",
    "ProfileReport",
    "Rate",
    "RunManifest",
    "Snapshotter",
    "TimeSeries",
    "canonical_json",
    "categorize",
    "check_name",
    "load_manifest",
    "manifest_path_for",
    "profile_env",
    "prometheus_name",
    "stable_hash",
    "to_prometheus",
    "validate_jsonl",
    "write_csv",
    "write_jsonl",
]
