"""In-dataplane latency observation: per-hop sim-time histograms.

The paper measures latency with hardware timestamps taken *in the data
path* (Section 6.4), and the P4TG follow-up work accumulates RTT
histograms directly in the data plane.  This module is the simulator's
analog: instead of deriving latency post-hoc from traces or probe
packets, the models themselves latch residence times into registry
:class:`~repro.metrics.registry.Log2Histogram`\\ s as frames move
through the pipeline:

========================================  ===================================
metric name                               residence measured
========================================  ===================================
``latency.hop.nic<N>.txq<Q>``             descriptor enqueue → NIC DMA fetch
``latency.hop.wire.<A>-><B>``             serialization start → delivery
``latency.e2e.<A>-><B>``                  descriptor enqueue → delivery
``latency.hop.dut.ring``                  DuT ring entry → NAPI poll
``interarrival.port<N>.rx``               gap between FCS-valid rx arrivals
========================================  ===================================

All values are float nanoseconds computed as ``delta_ps / 1000.0`` from
integer picosecond stamps, so the arithmetic — including the
order-dependent float accumulation inside ``Log2Histogram.sum`` — is
reproducible exactly.  The batch execution tier (``repro.batch``)
performs the *same* per-frame observations in the same order, so
histogram fingerprints are bit-identical event vs batch, serial vs
``--jobs N``, heap vs calendar scheduler (``tests/test_batch_equivalence.py``
enforces this).

House rules kept:

* **Opt-in, zero-cost when off.**  Every hook is a single
  ``is not None`` test on a dedicated slot (``NicPort.dataplane``,
  ``Wire.dp_hop``/``dp_e2e``, ``OvsForwarder.dp_ring``); nothing changes
  on the hot path until :class:`DataplaneObserver` attaches state.
* **Sim-time only.**  Every observation is a pure function of integer
  picosecond stamps already computed by the models.
* **FCS-valid frames only.**  Corrupted frames and the CRC-gap filler
  frames of Section 8 are pacing artifacts, not observed traffic.

Enable with ``MoonGenEnv(metrics=True, dataplane=True)``; the
environment attaches the observer to every device, wire, and DuT it
configures.  The histograms live in the ordinary metrics registry, so
snapshots, fingerprints, and all exporters pick them up automatically.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional

from repro.metrics.registry import Log2Histogram, MetricsRegistry
from repro.metrics.snapshot import canonical_json


class PortDataplane:
    """Per-port observation state, hung on ``NicPort.dataplane``.

    ``txq`` is indexed by tx-queue index (the fetch path observes into
    ``txq[queue.index]``); ``rx_last_ps`` is the arrival stamp of the
    previous FCS-valid frame, ``-1`` until the first arrival.
    """

    __slots__ = ("txq", "rx_interarrival", "rx_last_ps")

    def __init__(self, txq: List[Log2Histogram],
                 rx_interarrival: Log2Histogram) -> None:
        self.txq = txq
        self.rx_interarrival = rx_interarrival
        self.rx_last_ps = -1


class DataplaneObserver:
    """Creates and owns the per-hop histograms for one environment.

    Attachment is explicit and topology-shaped: the environment calls
    :meth:`attach_port` / :meth:`attach_wire` / :meth:`attach_dut` as it
    configures devices, so histogram registration order equals topology
    construction order — the registry's determinism contract.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        #: Every histogram this observer created, in attachment order.
        self.histograms: Dict[str, Log2Histogram] = {}

    def _hist(self, name: str, help: str) -> Log2Histogram:
        hist = self.registry.log2_histogram(name, help)
        self.histograms[name] = hist
        return hist

    # -- attachment --------------------------------------------------------

    def attach_port(self, port) -> PortDataplane:
        """Instrument a NIC port: tx-queue residence + rx inter-arrival."""
        if port.dataplane is not None:
            return port.dataplane
        base = f"nic{port.port_id}"
        txq = [
            self._hist(f"latency.hop.{base}.txq{q.index}",
                       "tx descriptor residence: enqueue to DMA fetch (ns)")
            for q in port.tx_queues
        ]
        inter = self._hist(f"interarrival.port{port.port_id}.rx",
                           "gap between FCS-valid rx arrivals (ns)")
        state = PortDataplane(txq, inter)
        port.dataplane = state
        return state

    def attach_wire(self, wire, name: str) -> None:
        """Instrument a wire: hop residence + end-to-end latency."""
        if wire.dp_hop is not None:
            return
        wire.dp_hop = self._hist(
            f"latency.hop.wire.{name}",
            "wire residence: serialization start to delivery (ns)")
        wire.dp_e2e = self._hist(
            f"latency.e2e.{name}",
            "end-to-end: descriptor enqueue to wire delivery (ns)")

    def attach_dut(self, dut, name: str = "dut.ring") -> None:
        """Instrument a DuT forwarder's rx-ring residence."""
        if getattr(dut, "dp_ring", None) is not None:
            return
        dut.dp_ring = self._hist(
            f"latency.hop.{name}",
            "DuT ring residence: ingress to NAPI poll (ns)")

    # -- results -----------------------------------------------------------

    def read_all(self) -> Dict[str, Dict[str, Any]]:
        """Compact snapshot of every dataplane histogram, in attachment
        order (the deep-diffable form the equivalence harness compares)."""
        return {name: hist.read() for name, hist in self.histograms.items()}

    def fingerprint(self) -> str:
        """Short BLAKE2b hash over the canonical JSON of every dataplane
        histogram — the latency analog of ``TimeSeries.fingerprint``."""
        return hashlib.blake2b(
            canonical_json(self.read_all()).encode("utf-8"),
            digest_size=8).hexdigest()

    def percentiles(self, name: str,
                    ps: tuple = (50.0, 99.0)) -> Dict[str, float]:
        """Interpolated percentiles of one histogram, keyed ``"p<P>"``.

        Empty histograms yield an empty dict rather than raising — a run
        that never exercised a hop still produces a result row.
        """
        hist = self.histograms[name]
        if hist.total == 0:
            return {}
        out: Dict[str, float] = {}
        for p in ps:
            key = f"p{p:g}"
            out[key] = hist.percentile(p)
        return out


__all__ = ["DataplaneObserver", "PortDataplane"]
