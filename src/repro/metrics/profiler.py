"""Event-loop self-profiler: where does host wall-time actually go?

BENCH_core.json says *that* events/sec moved; this module says *where*.
:class:`LoopProfiler` drives the event loop event-by-event with a
``perf_counter`` latch around every callback and attributes host time to
a category derived from the callback's qualname (``NicPort.*`` → nic,
``Wire.*`` → wire, ``Process.*`` → process, ...).  Scheduler overhead
(heap pops, lane rotation) and the profiler's own latching are measured
explicitly, so the per-category times sum to the measured loop time — no
mystery residue.

Profiling necessarily bypasses the inlined ``EventLoop.run`` hot path
(that is the point: per-event latches), so absolute event rates under
the profiler are lower than bench numbers; the *distribution* is what it
reports.  Simulation results are unaffected — events fire in exactly the
deterministic order ``run()`` would use, via ``EventLoop._next_event``.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ConfigurationError

#: Callback qualname prefix (text before the first ``.``) → category.
#: Closures keep their defining class's prefix (``FaultInjector._arm_
#: wire_fault.<locals>.start`` → faults), so the map stays short.
CATEGORY_BY_PREFIX = {
    "NicPort": "nic",
    "TxQueueSim": "nic",
    "RxQueueSim": "nic",
    "Wire": "wire",
    "OvsForwarder": "dut",
    "HardwareSwitch": "dut",
    "LearningSwitch": "dut",
    "Process": "process",
    "FaultInjector": "faults",
    "wait_any": "signal",
    "Timestamper": "timestamp",
}


def categorize(callback_name: str) -> str:
    """Map a callback qualname to its profiling category."""
    prefix, _, _ = callback_name.partition(".")
    return CATEGORY_BY_PREFIX.get(prefix, "other")


class CategoryStats:
    """Accumulated events and host seconds for one category or callback."""

    __slots__ = ("events", "wall_s")

    def __init__(self) -> None:
        self.events = 0
        self.wall_s = 0.0


class ProfileReport:
    """The profiler's result: per-category and per-callback attribution."""

    def __init__(self, categories: Dict[str, CategoryStats],
                 callbacks: Dict[str, CategoryStats],
                 total_wall_s: float, events: int,
                 sim_time_ns: float) -> None:
        self.categories = categories
        self.callbacks = callbacks
        self.total_wall_s = total_wall_s
        self.events = events
        self.sim_time_ns = sim_time_ns

    def attributed_wall_s(self) -> float:
        return sum(s.wall_s for s in self.categories.values())

    def to_dict(self) -> Dict[str, Any]:
        def rows(stats: Dict[str, CategoryStats]) -> List[Dict[str, Any]]:
            out = []
            for name, s in sorted(stats.items(),
                                  key=lambda kv: -kv[1].wall_s):
                out.append({
                    "name": name,
                    "events": s.events,
                    "wall_s": round(s.wall_s, 6),
                    "pct": round(100.0 * s.wall_s / self.total_wall_s, 2)
                    if self.total_wall_s else 0.0,
                })
            return out

        return {
            "schema": 1,
            "total_wall_s": round(self.total_wall_s, 6),
            "attributed_wall_s": round(self.attributed_wall_s(), 6),
            "events": self.events,
            "sim_time_ns": self.sim_time_ns,
            "events_per_s": round(self.events / self.total_wall_s, 1)
            if self.total_wall_s else 0.0,
            "categories": rows(self.categories),
            "top_callbacks": rows(self.callbacks)[:15],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    def format_table(self) -> str:
        """The sorted per-category table the CLI prints."""
        doc = self.to_dict()
        lines = [
            f"profiled {doc['events']} events in {doc['total_wall_s']:.3f}s "
            f"host time ({doc['events_per_s']:,.0f} ev/s under profiling), "
            f"{self.sim_time_ns / 1e6:.2f} ms simulated",
            "",
            f"{'category':<12} {'events':>10} {'wall_s':>10} {'%':>7}",
        ]
        for row in doc["categories"]:
            lines.append(f"{row['name']:<12} {row['events']:>10} "
                         f"{row['wall_s']:>10.4f} {row['pct']:>6.1f}%")
        lines.append("")
        lines.append(f"{'top callbacks':<40} {'events':>10} {'wall_s':>10}")
        for row in doc["top_callbacks"]:
            lines.append(f"{row['name'][:40]:<40} {row['events']:>10} "
                         f"{row['wall_s']:>10.4f}")
        return "\n".join(lines)


class LoopProfiler:
    """Drives an :class:`~repro.nicsim.eventloop.EventLoop` with per-event
    wall-time attribution."""

    def __init__(self, loop) -> None:
        self.loop = loop

    def run(self, max_events: int = 50_000_000) -> ProfileReport:
        """Run the loop to drain (or ``max_events``) under the profiler.

        The stop condition is the caller's: set a stop horizon first (e.g.
        ``env.stop_after(duration_ns)``) so slave loops exit and the queue
        drains, exactly like an unprofiled ``wait_for_slaves``.
        """
        from repro.nicsim.eventloop import _callback_name

        loop = self.loop
        next_event = loop._next_event
        clock = time.perf_counter
        categories: Dict[str, CategoryStats] = {}
        callbacks: Dict[str, CategoryStats] = {}
        scheduler = categories.setdefault("scheduler", CategoryStats())
        count = 0
        start = clock()
        t0 = start
        while True:
            event = next_event()
            t1 = clock()  # pop done; t1-t0 is scheduler time
            scheduler.wall_s += t1 - t0
            if event is None:
                break
            loop.now_ps = event.time_ps
            name = _callback_name(event.callback)
            event.callback()
            t2 = clock()
            count += 1
            category = categorize(name)
            cat = categories.get(category)
            if cat is None:
                cat = categories[category] = CategoryStats()
            cat.events += 1
            cat.wall_s += t2 - t1
            cb = callbacks.get(name)
            if cb is None:
                cb = callbacks[name] = CategoryStats()
            cb.events += 1
            cb.wall_s += t2 - t1
            if count > max_events:
                raise ConfigurationError(
                    f"profiler event budget exhausted after {max_events}"
                )
            t0 = t2
        total = clock() - start
        loop.events_processed += count
        scheduler.events = count
        # Whatever the latches themselves cost (dict lookups, categorize)
        # is the only unattributed time; book it explicitly so the
        # category column sums to the measured total.
        residual = total - sum(s.wall_s for s in categories.values())
        profiler = categories.setdefault("profiler", CategoryStats())
        profiler.wall_s += max(0.0, residual)
        return ProfileReport(categories, callbacks, total, count,
                             loop.now_ps / 1000.0)


def profile_env(env, duration_ns: float,
                max_events: int = 50_000_000) -> ProfileReport:
    """Profile a fully built environment for a simulated duration.

    The profiled equivalent of ``env.wait_for_slaves(duration_ns)``:
    sets the stop horizon, drives the loop under the profiler, then
    kills stragglers and re-raises any task error.
    """
    env.stop_after(duration_ns)
    report = LoopProfiler(env.loop).run(max_events=max_events)
    for task in env.tasks:
        if not task.finished:
            task.kill()
    for task in env.tasks:
        task.check()
    return report


__all__ = [
    "CATEGORY_BY_PREFIX",
    "LoopProfiler",
    "ProfileReport",
    "categorize",
    "profile_env",
]
