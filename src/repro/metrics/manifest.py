"""Run provenance manifests: enough context to reproduce any result file.

A :class:`RunManifest` is written next to every bench / sweep / faults /
metrics artifact (``BENCH_core.json`` → ``BENCH_core.manifest.json``).
It records what produced the numbers — command, seed, jobs, a stable
hash of the configuration, the fault-plan hash if one was armed, the
result fingerprint, and the package/python versions — so any number in a
result file can be traced to an exact reproducible invocation.

Hashes reuse :func:`repro.parallel.seeding.point_key` (the typed,
order-insensitive canonical encoding behind per-point seeds), so two
manifests agree on ``config_hash`` exactly when the configs are
value-identical.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from typing import Any, Dict, Optional

from repro.parallel.seeding import point_key

MANIFEST_SCHEMA = 1


def stable_hash(obj: Any) -> str:
    """Short BLAKE2b hash of any point_key-encodable value."""
    return hashlib.blake2b(point_key(obj).encode("utf-8"),
                           digest_size=8).hexdigest()


def manifest_path_for(result_path: str) -> str:
    """``BENCH_core.json`` → ``BENCH_core.manifest.json`` (any extension)."""
    base, _ = os.path.splitext(result_path)
    return base + ".manifest.json"


class RunManifest:
    """Provenance for one result artifact."""

    def __init__(
        self,
        command: str,
        seed: Optional[int] = None,
        jobs: Optional[int] = None,
        config: Optional[Dict[str, Any]] = None,
        fault_plan: Any = None,
        result_fingerprint: Optional[str] = None,
        fingerprints: Optional[Dict[str, str]] = None,
    ) -> None:
        self.command = command
        self.seed = seed
        self.jobs = jobs
        self.config = dict(config) if config else {}
        self.fault_plan = fault_plan
        self.result_fingerprint = result_fingerprint
        #: Named auxiliary fingerprints (e.g. ``{"latency": ...}`` from
        #: ``DataplaneObserver.fingerprint``); emitted only when non-empty
        #: so older manifests stay byte-identical.
        self.fingerprints = dict(fingerprints) if fingerprints else {}

    def to_dict(self) -> Dict[str, Any]:
        import repro

        doc: Dict[str, Any] = {
            "schema": MANIFEST_SCHEMA,
            "command": self.command,
            "seed": self.seed,
            "jobs": self.jobs,
            "config": self.config,
            "config_hash": stable_hash(self.config),
            "fault_plan_hash": (stable_hash(self.fault_plan)
                                if self.fault_plan is not None else None),
            "result_fingerprint": self.result_fingerprint,
            "package_version": repro.__version__,
            "python_version": "%d.%d.%d" % sys.version_info[:3],
        }
        if self.fingerprints:
            doc["fingerprints"] = dict(self.fingerprints)
        return doc

    def write(self, result_path: str) -> str:
        """Write the manifest next to ``result_path``; returns its path."""
        path = manifest_path_for(result_path)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        return path


def load_manifest(path: str) -> Dict[str, Any]:
    """Read and schema-check a manifest file."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != MANIFEST_SCHEMA:
        raise ValueError(
            f"{path}: unsupported manifest schema {doc.get('schema')!r}"
        )
    for key in ("command", "config_hash", "package_version",
                "python_version"):
        if key not in doc:
            raise ValueError(f"{path}: manifest missing {key!r}")
    return doc


__all__ = [
    "MANIFEST_SCHEMA",
    "RunManifest",
    "load_manifest",
    "manifest_path_for",
    "stable_hash",
]
