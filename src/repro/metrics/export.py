"""Exporters for metrics snapshots: JSONL, CSV, Prometheus text format.

JSONL is the primary interchange format (one canonical-JSON row per
snapshot; byte-stable, fingerprintable).  CSV flattens the same rows for
spreadsheets — histogram-valued columns are reduced to their totals.
The Prometheus exporter is a *one-shot scrape file*: the current value of
every metric in text exposition format, so a run's final state can be
dropped where any Prometheus-compatible tool picks it up.  There is no
HTTP endpoint — the simulator is batch, not a server.
"""

from __future__ import annotations

import io
from typing import Any, Dict, List, Optional, TextIO

from repro.metrics.registry import Log2Histogram, MetricsRegistry
from repro.metrics.snapshot import TimeSeries, canonical_json

#: Characters legal in a Prometheus metric name; everything else maps to
#: ``_`` (dots and the wire ``->`` arrow included).
_PROM_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


def prometheus_name(name: str) -> str:
    """Sanitize a registry name for Prometheus (``nic0.tx.pps`` →
    ``nic0_tx_pps``, ``wire.0->1.in_flight`` → ``wire_0__1_in_flight``)."""
    sanitized = "".join(c if c in _PROM_OK else "_" for c in name)
    if sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_value(value: Any) -> str:
    """Format a sample value the way Prometheus expects."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def write_jsonl(series: TimeSeries, stream: TextIO) -> None:
    """The canonical time-series format: one JSON object per snapshot."""
    stream.write(series.to_jsonl())


def write_csv(series: TimeSeries, stream: TextIO) -> None:
    """Flatten the series to CSV; histogram cells become their totals.

    The header is the union of columns across rows (first-seen order) so a
    series whose registry grew mid-run still exports every column.
    """
    columns: List[str] = []
    seen = set()
    for row in series:
        for key in row:
            if key not in seen:
                seen.add(key)
                columns.append(key)
    if not columns:
        return
    stream.write(",".join(columns) + "\n")
    for row in series:
        cells = []
        for col in columns:
            value = row.get(col, "")
            if isinstance(value, dict):  # histogram snapshot → total count
                value = value.get("total", "")
            cells.append(str(value))
        stream.write(",".join(cells) + "\n")


def to_prometheus(registry: MetricsRegistry,
                  now_ns: Optional[float] = None) -> str:
    """One-shot scrape file: the current value of every metric.

    ``now_ns`` is passed to :meth:`Metric.sample` (rates advance their
    window); omit it to read without touching rate state.
    """
    out = io.StringIO()
    for metric in registry.metrics():
        name = prometheus_name(metric.name)
        value = (metric.sample(now_ns) if now_ns is not None
                 else metric.read())
        if metric.help:
            out.write(f"# HELP {name} {metric.help}\n")
        if isinstance(metric, Log2Histogram):
            out.write(f"# TYPE {name} histogram\n")
            cumulative = 0
            for i, count in enumerate(metric.counts):
                # The overflow bucket has no finite edge; its count is
                # carried only by the single +Inf line below (emitting it
                # in the loop too would duplicate the +Inf sample).
                if not count or i == metric.N_BUCKETS - 1:
                    continue
                cumulative += count
                out.write(f'{name}_bucket{{le="{1 << i}"}} {cumulative}\n')
            out.write(f'{name}_bucket{{le="+Inf"}} {metric.total}\n')
            out.write(f"{name}_sum {_prom_value(metric.sum)}\n")
            out.write(f"{name}_count {metric.total}\n")
        else:
            # Prometheus has no "rate" type; export rates as gauges.
            prom_type = "counter" if metric.kind == "counter" else "gauge"
            out.write(f"# TYPE {name} {prom_type}\n")
            out.write(f"{name} {_prom_value(value)}\n")
    return out.getvalue()


def validate_jsonl(text: str) -> List[Dict[str, Any]]:
    """Parse and schema-check a metrics JSONL export; returns the rows.

    Every row must be a JSON object with a numeric ``t_ns``, rows must be
    time-ordered, and all rows must share the same column set (the CI
    metrics-smoke job runs this over the CLI's output).
    """
    import json

    rows: List[Dict[str, Any]] = []
    columns: Optional[frozenset] = None
    last_t = float("-inf")
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        row = json.loads(line)
        if not isinstance(row, dict):
            raise ValueError(f"line {lineno}: not a JSON object")
        if not isinstance(row.get("t_ns"), (int, float)):
            raise ValueError(f"line {lineno}: missing numeric t_ns")
        if row["t_ns"] < last_t:
            raise ValueError(
                f"line {lineno}: t_ns {row['t_ns']} < previous {last_t}"
            )
        last_t = row["t_ns"]
        cols = frozenset(row)
        if columns is None:
            columns = cols
        elif cols != columns:
            raise ValueError(
                f"line {lineno}: columns differ from first row: "
                f"{sorted(cols ^ columns)}"
            )
        rows.append(row)
    if not rows:
        raise ValueError("empty metrics series")
    return rows


__all__ = [
    "canonical_json",
    "prometheus_name",
    "to_prometheus",
    "validate_jsonl",
    "write_csv",
    "write_jsonl",
]
