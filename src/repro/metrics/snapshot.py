"""Sim-time sampling of a metrics registry into an in-memory time series.

The :class:`Snapshotter` is a slave task like any userscript loop: it
sleeps a fixed *simulated* interval, samples every registered metric, and
appends one row to a :class:`TimeSeries`.  Because sampling happens at
deterministic simulated instants and reads deterministic simulation
state, the resulting series — and its BLAKE2b fingerprint — is
bit-identical between serial and ``--jobs N`` runs (the CI hard gate).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.metrics.registry import MetricsRegistry


def canonical_json(obj: Any) -> str:
    """Compact separators, keys in insertion order — the byte-stable form
    every fingerprint and JSONL exporter uses (same as the trace layer)."""
    return json.dumps(obj, separators=(",", ":"))


class TimeSeries:
    """Ordered snapshot rows: ``{"t_ns": ..., "<metric>": value, ...}``."""

    def __init__(self) -> None:
        self.rows: List[Dict[str, Any]] = []

    def append(self, row: Dict[str, Any]) -> None:
        self.rows.append(row)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    @property
    def last(self) -> Optional[Dict[str, Any]]:
        return self.rows[-1] if self.rows else None

    def final_values(self) -> Dict[str, Any]:
        """The last sampled value of every metric (empty if no rows)."""
        if not self.rows:
            return {}
        row = dict(self.rows[-1])
        row.pop("t_ns", None)
        return row

    def column(self, name: str) -> List[Any]:
        """All values of one metric, in time order."""
        return [row[name] for row in self.rows if name in row]

    def to_jsonl(self, exclude_prefixes: Tuple[str, ...] = ()) -> str:
        """One canonical-JSON object per line (trailing newline included).

        ``exclude_prefixes`` drops columns whose name starts with any of
        the given prefixes.  The one established use is ``("loop.",)``:
        the loop's self-accounting describes *scheduler* work, which the
        batch execution tier legitimately changes while leaving the
        simulated world bit-identical — equivalence comparisons must
        exclude it (docs/ARCHITECTURE.md, "testing the equivalence
        claim").
        """
        rows = self.rows
        if not rows:
            return ""
        if exclude_prefixes:
            rows = [
                {key: value for key, value in row.items()
                 if not key.startswith(exclude_prefixes)}
                for row in rows
            ]
        return "\n".join(canonical_json(row) for row in rows) + "\n"

    def fingerprint(self, exclude_prefixes: Tuple[str, ...] = ()) -> str:
        """Short BLAKE2b hash of the canonical JSONL serialization."""
        return hashlib.blake2b(
            self.to_jsonl(exclude_prefixes).encode("utf-8"),
            digest_size=8).hexdigest()


class Snapshotter:
    """A slave task that samples a registry every ``interval_ns`` of sim time.

    Launch it like a monitor (``env.launch(snapshotter.task)``); it samples
    once per interval while the experiment runs, and :meth:`finalize` (also
    called when the task loop exits) takes a closing sample so the last row
    reflects final state.  Finalize is same-instant idempotent: a second
    sample at an instant already recorded is skipped, but a *later* call —
    e.g. after ``wait_for_slaves`` drains in-flight frames past the stop
    horizon — records one more row, which is what makes the series' final
    counter values exactly match the device counters.
    """

    def __init__(self, env, registry: MetricsRegistry,
                 interval_ns: float = 1_000_000.0) -> None:
        if interval_ns <= 0:
            raise ConfigurationError(
                f"snapshot interval must be positive, got {interval_ns}"
            )
        self.env = env
        self.registry = registry
        self.interval_ns = float(interval_ns)
        self.series = TimeSeries()
        self.samples = 0

    def _sample(self) -> None:
        now_ns = self.env.now_ns
        row: Dict[str, Any] = {"t_ns": now_ns}
        row.update(self.registry.sample(now_ns))
        self.series.append(row)
        self.samples += 1

    def task(self):
        """Generator slave task: sample on the interval, then finalize."""
        env = self.env
        interval = self.interval_ns
        try:
            while env.running():
                yield env.sleep_ns(interval)
                self._sample()
        finally:
            self.finalize()

    def finalize(self) -> None:
        """Take a closing sample unless one exists at this exact instant."""
        last = self.series.last
        if last is not None and last["t_ns"] == self.env.now_ns:
            return
        self._sample()
