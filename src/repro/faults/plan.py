"""Fault plans: declarative, schedulable, serializable fault sets.

A :class:`FaultPlan` is an ordered tuple of fault dataclasses, each naming
a *target* and a window (or instant) in simulation time.  Plans are plain
frozen dataclasses so the canonical-key machinery of
:mod:`repro.parallel.seeding` applies directly: the per-fault RNG seed is
``seed_for(plan.seed, (index, fault))``, a pure function of the plan —
never of worker identity or scheduling — which is what makes a chaos run
replay bit-identically under any ``--jobs`` count.

Target grammar (resolved by :class:`repro.faults.FaultInjector` against
the names :class:`repro.core.env.MoonGenEnv` registers):

* ``"wire:A->B"`` — the directed wire from port A to port B
  (``"wire:0->sink"`` for a wire into a DuT, ``"wire:env->1"`` for a wire
  out of one),
* ``"port:N"`` — NIC port N,
* ``"dut"`` — the registered device under test.

See ``docs/FAULTS.md`` for the JSON schema and the fault catalog.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple, Type, Union

from repro.errors import ConfigurationError


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ConfigurationError(message)


def _check_window(fault: "Fault") -> None:
    _require(fault.start_ns >= 0, f"{type(fault).__name__}: negative start_ns")
    _require(fault.end_ns >= fault.start_ns,
             f"{type(fault).__name__}: end_ns before start_ns")


def _check_prob(fault: "Fault", name: str) -> None:
    value = getattr(fault, name)
    _require(0.0 <= value <= 1.0,
             f"{type(fault).__name__}.{name} must be in [0, 1]: {value}")


@dataclass(frozen=True)
class BurstLoss:
    """Bursty wire loss: a Gilbert–Elliott two-state model on one wire.

    While active, each frame first moves the good/bad state with the
    transition probabilities, then is lost with the current state's loss
    probability.  The model draws from its own seeded RNG stream, so the
    wire's jitter/corruption draws are unshifted.
    """

    target: str
    start_ns: float
    end_ns: float
    #: P(good → bad) per frame; bursts start rarely ...
    p_good_bad: float = 0.01
    #: ... and P(bad → good) per frame; but end quickly.
    p_bad_good: float = 0.25
    loss_good: float = 0.0
    loss_bad: float = 0.9

    def validate(self) -> None:
        _check_window(self)
        for name in ("p_good_bad", "p_bad_good", "loss_good", "loss_bad"):
            _check_prob(self, name)


@dataclass(frozen=True)
class CorruptionBurst:
    """A window of wire bit errors: frames arrive with a broken FCS at
    ``rate`` and are dropped (and counted) by the receiving NIC."""

    target: str
    start_ns: float
    end_ns: float
    rate: float = 0.2

    def validate(self) -> None:
        _check_window(self)
        _check_prob(self, "rate")


@dataclass(frozen=True)
class LinkFlap:
    """Carrier loss on a port: link down at ``start_ns``, up at ``end_ns``.

    Software sees the LSC transition (``NicPort.link_up`` /
    ``link_signal``); frames on every wire touching the port are lost
    while the carrier is down.
    """

    target: str
    start_ns: float
    end_ns: float

    def validate(self) -> None:
        _check_window(self)
        _require(self.target.startswith("port:"),
                 f"LinkFlap targets ports, got {self.target!r}")


@dataclass(frozen=True)
class QueueStall:
    """A tx queue stops being serviced: descriptors accumulate in the ring
    and producers back-pressure until the window ends."""

    target: str
    start_ns: float
    end_ns: float
    queue: int = 0

    def validate(self) -> None:
        _check_window(self)
        _require(self.queue >= 0, f"QueueStall: negative queue {self.queue}")


@dataclass(frozen=True)
class DmaSlowdown:
    """PCIe/DMA contention: per-frame MAC occupancy stretched by ``factor``."""

    target: str
    start_ns: float
    end_ns: float
    factor: float = 4.0

    def validate(self) -> None:
        _check_window(self)
        _require(self.factor >= 1.0,
                 f"DmaSlowdown.factor must be >= 1: {self.factor}")


@dataclass(frozen=True)
class RingFreeze:
    """An rx descriptor ring stops accepting refills: arrivals overflow
    into the existing ``rx_missed`` path until the window ends."""

    target: str
    start_ns: float
    end_ns: float
    queue: int = 0

    def validate(self) -> None:
        _check_window(self)
        _require(self.queue >= 0, f"RingFreeze: negative queue {self.queue}")


@dataclass(frozen=True)
class ClockStep:
    """A one-shot step jump of a port's PTP clock at ``at_ns``."""

    target: str
    at_ns: float
    step_ns: float

    def validate(self) -> None:
        _require(self.at_ns >= 0, "ClockStep: negative at_ns")


@dataclass(frozen=True)
class ClockDrift:
    """A one-shot drift-rate change of a port's PTP clock at ``at_ns``."""

    target: str
    at_ns: float
    drift_ppm: float

    def validate(self) -> None:
        _require(self.at_ns >= 0, "ClockDrift: negative at_ns")


@dataclass(frozen=True)
class DutOverload:
    """DuT saturation: per-packet service time scaled by ``factor``."""

    target: str
    start_ns: float
    end_ns: float
    factor: float = 8.0

    def validate(self) -> None:
        _check_window(self)
        _require(self.factor >= 1.0,
                 f"DutOverload.factor must be >= 1: {self.factor}")
        _require(self.target == "dut",
                 f"DutOverload targets 'dut', got {self.target!r}")


Fault = Union[
    BurstLoss, CorruptionBurst, LinkFlap, QueueStall, DmaSlowdown,
    RingFreeze, ClockStep, ClockDrift, DutOverload,
]

#: JSON ``fault`` field name → dataclass; the catalog.
FAULT_KINDS: Dict[str, Type] = {
    "burst_loss": BurstLoss,
    "corruption": CorruptionBurst,
    "link_flap": LinkFlap,
    "queue_stall": QueueStall,
    "dma_slowdown": DmaSlowdown,
    "ring_freeze": RingFreeze,
    "clock_step": ClockStep,
    "clock_drift": ClockDrift,
    "dut_overload": DutOverload,
}

_CLASS_TO_KIND = {cls: kind for kind, cls in FAULT_KINDS.items()}

#: Schema version of the JSON form.
PLAN_VERSION = 1


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of scheduled faults plus the plan's root seed.

    The order is part of the plan's identity: fault index ``i`` seeds its
    RNG with ``seed_for(seed, (i, fault))``, so reordering a plan changes
    its random streams (deliberately — the index keeps two identical
    faults on the same target from sharing a stream).
    """

    faults: Tuple[Fault, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if type(fault) not in _CLASS_TO_KIND:
                raise ConfigurationError(
                    f"not a fault: {fault!r} (valid: {sorted(FAULT_KINDS)})"
                )
            fault.validate()

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        faults: List[Dict[str, Any]] = []
        for fault in self.faults:
            obj: Dict[str, Any] = {"fault": _CLASS_TO_KIND[type(fault)]}
            obj.update(dataclasses.asdict(fault))
            faults.append(obj)
        return {"version": PLAN_VERSION, "seed": self.seed, "faults": faults}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, obj: Dict[str, Any]) -> "FaultPlan":
        version = obj.get("version", PLAN_VERSION)
        if version != PLAN_VERSION:
            raise ConfigurationError(
                f"unsupported fault-plan version {version} "
                f"(this build reads {PLAN_VERSION})"
            )
        faults: List[Fault] = []
        for entry in obj.get("faults", []):
            entry = dict(entry)
            kind = entry.pop("fault", None)
            fault_cls = FAULT_KINDS.get(kind)
            if fault_cls is None:
                raise ConfigurationError(
                    f"unknown fault kind {kind!r} (valid: {sorted(FAULT_KINDS)})"
                )
            names = {f.name for f in dataclasses.fields(fault_cls)}
            unknown = set(entry) - names
            if unknown:
                raise ConfigurationError(
                    f"fault {kind!r}: unknown fields {sorted(unknown)}"
                )
            try:
                faults.append(fault_cls(**entry))
            except TypeError as exc:
                raise ConfigurationError(f"fault {kind!r}: {exc}") from None
        return cls(faults=tuple(faults), seed=int(obj.get("seed", 0)))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"fault plan is not JSON: {exc}") from None
        if not isinstance(obj, dict):
            raise ConfigurationError("fault plan JSON must be an object")
        return cls.from_dict(obj)

    # -- introspection -----------------------------------------------------

    def targets(self) -> Tuple[str, ...]:
        """Distinct targets in first-seen order."""
        seen: List[str] = []
        for fault in self.faults:
            if fault.target not in seen:
                seen.append(fault.target)
        return tuple(seen)

    def __len__(self) -> int:
        return len(self.faults)


def load_plan(source: Any) -> FaultPlan:
    """Coerce a plan from whatever the caller has.

    Accepts a :class:`FaultPlan` (returned as-is), a dict (the JSON
    object form), a JSON string, or a filesystem path to a ``.json``
    plan file.
    """
    if isinstance(source, FaultPlan):
        return source
    if isinstance(source, dict):
        return FaultPlan.from_dict(source)
    if isinstance(source, str):
        text = source.lstrip()
        if text.startswith("{"):
            return FaultPlan.from_json(source)
        try:
            with open(source, "r", encoding="utf-8") as fh:
                return FaultPlan.from_json(fh.read())
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read fault plan {source!r}: {exc}"
            ) from None
    raise ConfigurationError(
        f"cannot build a FaultPlan from {type(source).__name__}"
    )


def builtin_plans(seed: int = 0) -> Dict[str, FaultPlan]:
    """The small plan registry the CLI and the CI fault-matrix job run.

    All plans are phrased against the canonical chaos topology
    (:func:`repro.faults.runner.run_plan`): port 0 transmits to port 1
    over ``wire:0->1``.
    """
    return {
        "flap": FaultPlan(faults=(
            LinkFlap("port:1", start_ns=2e6, end_ns=3e6),
            LinkFlap("port:1", start_ns=5e6, end_ns=5.5e6),
        ), seed=seed),
        "burst-loss": FaultPlan(faults=(
            BurstLoss("wire:0->1", start_ns=1e6, end_ns=6e6,
                      p_good_bad=0.02, p_bad_good=0.2,
                      loss_good=0.0, loss_bad=0.8),
        ), seed=seed),
        "clock-step": FaultPlan(faults=(
            ClockStep("port:1", at_ns=2e6, step_ns=500.0),
            ClockDrift("port:1", at_ns=4e6, drift_ppm=35.0),
        ), seed=seed),
        "nic-chaos": FaultPlan(faults=(
            QueueStall("port:0", start_ns=1e6, end_ns=2e6, queue=0),
            DmaSlowdown("port:0", start_ns=3e6, end_ns=4e6, factor=4.0),
            RingFreeze("port:1", start_ns=5e6, end_ns=5.5e6, queue=0),
        ), seed=seed),
        "corruption": FaultPlan(faults=(
            CorruptionBurst("wire:0->1", start_ns=2e6, end_ns=4e6, rate=0.3),
        ), seed=seed),
    }
