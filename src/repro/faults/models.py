"""Stochastic fault models.

Each model owns its own seeded ``random.Random`` stream (derived from the
plan seed via :func:`repro.parallel.seeding.seed_for`), so installing a
model on a wire never shifts the wire's own jitter/corruption draws, and a
plan replays bit-identically however the surrounding sweep is sharded.
"""

from __future__ import annotations

import random


class GilbertElliott:
    """The Gilbert–Elliott two-state burst-loss channel.

    The classic model for correlated packet loss: a hidden good/bad state
    moves per frame with transition probabilities ``p_good_bad`` /
    ``p_bad_good``; a frame is then lost with the current state's loss
    probability.  The expected bad-state dwell time is ``1/p_bad_good``
    frames — losses arrive in bursts, not as independent coin flips.

    Draw discipline: exactly **two** RNG draws per frame (one transition,
    one loss), regardless of state or outcome, so the stream position is a
    pure function of the number of frames offered — replays stay aligned
    even if an unrelated change moves a burst boundary.

    Instances are callables matching ``Wire.loss_model``:
    ``model(frame_size) -> bool`` (True = lose the frame).
    """

    __slots__ = ("rng", "p_good_bad", "p_bad_good", "loss_good", "loss_bad",
                 "bad", "offered", "lost", "bursts")

    def __init__(
        self,
        seed: int,
        p_good_bad: float = 0.01,
        p_bad_good: float = 0.25,
        loss_good: float = 0.0,
        loss_bad: float = 0.9,
    ) -> None:
        self.rng = random.Random(seed)
        self.p_good_bad = p_good_bad
        self.p_bad_good = p_bad_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.bad = False
        #: Frames offered / lost while installed (observability).
        self.offered = 0
        self.lost = 0
        #: Good→bad transitions (number of bursts entered).
        self.bursts = 0

    def __call__(self, frame_size: int) -> bool:
        rng = self.rng
        transition = rng.random()
        if self.bad:
            if transition < self.p_bad_good:
                self.bad = False
        elif transition < self.p_good_bad:
            self.bad = True
            self.bursts += 1
        lost = rng.random() < (self.loss_bad if self.bad else self.loss_good)
        self.offered += 1
        if lost:
            self.lost += 1
        return lost

    def loss_fraction(self) -> float:
        return self.lost / self.offered if self.offered else 0.0
