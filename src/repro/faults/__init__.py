"""Deterministic, composable fault injection (``repro.faults``).

The chaos layer of the simulator: a :class:`FaultPlan` declares scheduled
faults — bursty loss (Gilbert–Elliott), CRC corruption windows, link
flaps, NIC faults (queue stall, DMA slowdown, rx-ring freeze), clock
faults (step, drift), DuT overload — and a :class:`FaultInjector` arms
them against a running simulation as ordinary event-loop events.  Every
stochastic fault draws from its own BLAKE2b-derived stream
(``seed_for(plan.seed, (index, fault))``), so a plan replays
bit-identically under any ``--jobs`` count; with no plan installed every
hook is inert and runs are unchanged.

Entry points::

    env = MoonGenEnv(seed=1, faults=plan)     # or a path to plan.json
    moongen-repro faults --plan burst-loss    # CLI chaos runs

See ``docs/FAULTS.md`` for the fault catalog, plan schema, and the
determinism guarantees; graceful-degradation behavior of the measurement
stack lives with each component (``seqcheck``, ``timestamping``,
``monitor``, ``rfc2544``).
"""

from repro.faults.injector import FaultInjector
from repro.faults.models import GilbertElliott
from repro.faults.plan import (
    FAULT_KINDS,
    BurstLoss,
    ClockDrift,
    ClockStep,
    CorruptionBurst,
    DmaSlowdown,
    DutOverload,
    FaultPlan,
    LinkFlap,
    QueueStall,
    RingFreeze,
    builtin_plans,
    load_plan,
)

__all__ = [
    "FAULT_KINDS",
    "BurstLoss",
    "ClockDrift",
    "ClockStep",
    "CorruptionBurst",
    "DmaSlowdown",
    "DutOverload",
    "FaultInjector",
    "FaultPlan",
    "GilbertElliott",
    "LinkFlap",
    "QueueStall",
    "RingFreeze",
    "builtin_plans",
    "load_plan",
]
