"""The fault injector: schedules a :class:`FaultPlan` onto a simulation.

The injector is target-driven: the environment registers wires, ports,
and the DuT under the names of the target grammar (``"wire:A->B"``,
``"port:N"``, ``"dut"``) as it builds the topology, and each registration
arms the plan's faults against that target — scheduled as ordinary event-
loop events, so fault boundaries participate in the deterministic total
order of the simulation (and bound the fast-forward accelerator, which
additionally refuses wires marked :attr:`Wire.faulted`).

Every fault emits ``fault``-category trace records at its boundaries;
stochastic faults draw from their own per-fault RNG stream seeded with
``seed_for(plan.seed, (index, fault))``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.faults.models import GilbertElliott
from repro.faults.plan import (
    BurstLoss,
    ClockDrift,
    ClockStep,
    CorruptionBurst,
    DmaSlowdown,
    DutOverload,
    FaultPlan,
    LinkFlap,
    QueueStall,
    RingFreeze,
    load_plan,
)
from repro.nicsim.eventloop import EventLoop
from repro.nicsim.link import Wire
from repro.nicsim.nic import NicPort
from repro.parallel.seeding import seed_for

#: Fault classes that resolve against a port registration.
_PORT_FAULTS = (LinkFlap, QueueStall, DmaSlowdown, RingFreeze,
                ClockStep, ClockDrift)


def _wire_endpoints(name: str) -> Tuple[str, str]:
    """``"wire:A->B"`` → ``("A", "B")``; raises on malformed names."""
    body = name[len("wire:"):]
    if "->" not in body:
        raise ConfigurationError(f"malformed wire target {name!r}")
    a, _, b = body.partition("->")
    return a, b


class FaultInjector:
    """Arms a :class:`FaultPlan` against registered simulation objects."""

    def __init__(self, loop: EventLoop, plan) -> None:
        self.loop = loop
        self.plan: FaultPlan = load_plan(plan)
        self._wires: Dict[str, Wire] = {}
        self._ports: Dict[str, NicPort] = {}
        self._dut = None
        #: Fault indices whose events are scheduled.
        self._armed: Set[int] = set()
        #: Saved pre-fault state, per fault index (e.g. corrupt_rate).
        self._saved: Dict[int, object] = {}
        #: Fault boundaries fired so far (observability / tests).
        self.injected = 0
        #: Currently open fault windows.
        self.active = 0

    # -- registration ------------------------------------------------------

    def register_wire(self, name: str, wire: Wire) -> None:
        """Register a directed wire under ``"wire:A->B"``."""
        self._wires[name] = wire
        if self._touched_by_plan(name):
            # Pin the wire to the event-driven path for the whole run: a
            # fast-forward batch must never straddle a fault boundary, and
            # carrier/loss state on this wire can change at any of them.
            wire.faulted = True
        for index, fault in enumerate(self.plan.faults):
            if index in self._armed:
                continue
            if isinstance(fault, (BurstLoss, CorruptionBurst)) \
                    and fault.target == name:
                self._arm_wire_fault(index, fault, wire)

    def register_port(self, name: str, port: NicPort) -> None:
        """Register a NIC port under ``"port:N"``."""
        self._ports[name] = port
        for index, fault in enumerate(self.plan.faults):
            if index in self._armed:
                continue
            if isinstance(fault, _PORT_FAULTS) and fault.target == name:
                self._arm_port_fault(index, fault, port)

    def register_dut(self, dut) -> None:
        """Register the device under test (anything with ``set_overload``)."""
        self._dut = dut
        for index, fault in enumerate(self.plan.faults):
            if index in self._armed:
                continue
            if isinstance(fault, DutOverload):
                self._arm_dut_fault(index, fault, dut)

    def register_metrics(self, registry) -> None:
        """Publish injector state under ``faults.*`` (pull-based)."""
        registry.counter("faults.injected", lambda: self.injected,
                         help="fault boundaries fired so far")
        registry.gauge("faults.active", lambda: self.active,
                       help="fault windows currently open")
        registry.gauge("faults.planned", lambda: len(self.plan),
                       help="faults in the armed plan")

    def unmatched(self) -> List[Tuple[int, str]]:
        """``(index, target)`` of faults whose target never registered."""
        return [(i, f.target) for i, f in enumerate(self.plan.faults)
                if i not in self._armed]

    def _touched_by_plan(self, wire_name: str) -> bool:
        """Does any fault affect this wire, directly or via its endpoints?"""
        a, b = _wire_endpoints(wire_name)
        endpoint_ports = {f"port:{a}", f"port:{b}"}
        for fault in self.plan.faults:
            if fault.target == wire_name:
                return True
            if isinstance(fault, _PORT_FAULTS) and fault.target in endpoint_ports:
                return True
        return False

    def _wires_touching(self, port_name: str) -> List[Wire]:
        """Registered wires with the named port as either endpoint."""
        port_id = port_name[len("port:"):]
        out = []
        for name, wire in self._wires.items():
            a, b = _wire_endpoints(name)
            if port_id in (a, b):
                out.append(wire)
        return out

    # -- scheduling --------------------------------------------------------

    def _at(self, t_ns: float, callback) -> None:
        self.loop.schedule_at(
            max(self.loop.now_ps, round(t_ns * 1000)), callback
        )

    def _emit(self, kind: str, **fields) -> None:
        tracer = self.loop.tracer
        if tracer is not None:
            tracer.emit("fault", kind, **fields)

    def _fault_seed(self, index: int, fault) -> int:
        return seed_for(self.plan.seed, (index, fault))

    # -- wire faults -------------------------------------------------------

    def _arm_wire_fault(self, index: int, fault, wire: Wire) -> None:
        self._armed.add(index)
        if isinstance(fault, BurstLoss):
            model = GilbertElliott(
                self._fault_seed(index, fault),
                p_good_bad=fault.p_good_bad, p_bad_good=fault.p_bad_good,
                loss_good=fault.loss_good, loss_bad=fault.loss_bad,
            )

            def start() -> None:
                wire.loss_model = model
                self.injected += 1
                self.active += 1
                self._emit("burst_loss_start", index=index,
                           target=fault.target)

            def end() -> None:
                wire.loss_model = None
                self.injected += 1
                self.active -= 1
                self._emit("burst_loss_end", index=index, target=fault.target,
                           offered=model.offered, lost=model.lost,
                           bursts=model.bursts)
        else:  # CorruptionBurst
            def start() -> None:
                self._saved[index] = wire.corrupt_rate
                wire.corrupt_rate = fault.rate
                self.injected += 1
                self.active += 1
                self._emit("corruption_start", index=index,
                           target=fault.target, rate=fault.rate)

            def end() -> None:
                wire.corrupt_rate = self._saved.pop(index, 0.0)
                self.injected += 1
                self.active -= 1
                self._emit("corruption_end", index=index, target=fault.target,
                           corrupted=wire.corrupted)
        self._at(fault.start_ns, start)
        self._at(fault.end_ns, end)

    # -- port faults -------------------------------------------------------

    def _arm_port_fault(self, index: int, fault, port: NicPort) -> None:
        self._armed.add(index)
        if isinstance(fault, LinkFlap):
            def start() -> None:
                # Wires are resolved at fire time: registration order
                # between ports and wires must not matter.
                for wire in self._wires_touching(fault.target):
                    wire.carrier_up = False
                port.set_link_state(False)  # emits the link_down record
                self.injected += 1
                self.active += 1

            def end() -> None:
                for wire in self._wires_touching(fault.target):
                    wire.carrier_up = True
                port.set_link_state(True)  # emits link_up + kicks the MAC
                self.injected += 1
                self.active -= 1
        elif isinstance(fault, QueueStall):
            queue = self._tx_queue(port, fault.queue)

            def start() -> None:
                queue.stalled = True
                self.injected += 1
                self.active += 1
                self._emit("queue_stall_start", index=index,
                           port=port.port_id, queue=fault.queue)

            def end() -> None:
                queue.stalled = False
                self.injected += 1
                self.active -= 1
                self._emit("queue_stall_end", index=index,
                           port=port.port_id, queue=fault.queue,
                           backlog=len(queue.ring))
                port._mac_kick()
        elif isinstance(fault, DmaSlowdown):
            def start() -> None:
                port.dma_slowdown = fault.factor
                self.injected += 1
                self.active += 1
                self._emit("dma_slowdown_start", index=index,
                           port=port.port_id, factor=fault.factor)

            def end() -> None:
                port.dma_slowdown = 1.0
                self.injected += 1
                self.active -= 1
                self._emit("dma_slowdown_end", index=index,
                           port=port.port_id)
        elif isinstance(fault, RingFreeze):
            rxq = self._rx_queue(port, fault.queue)

            def start() -> None:
                rxq.frozen = True
                self.injected += 1
                self.active += 1
                self._emit("ring_freeze_start", index=index,
                           port=port.port_id, queue=fault.queue)

            def end() -> None:
                rxq.frozen = False
                self.injected += 1
                self.active -= 1
                self._emit("ring_freeze_end", index=index,
                           port=port.port_id, queue=fault.queue,
                           missed=port.rx_missed)
        elif isinstance(fault, ClockStep):
            def fire() -> None:
                port.clock.adjust(fault.step_ns)
                self.injected += 1
                self._emit("clock_step", index=index, port=port.port_id,
                           step_ns=fault.step_ns)

            self._at(fault.at_ns, fire)
            return
        else:  # ClockDrift
            def fire() -> None:
                port.clock.set_drift_ppm(fault.drift_ppm)
                self.injected += 1
                self._emit("clock_drift", index=index, port=port.port_id,
                           drift_ppm=fault.drift_ppm)

            self._at(fault.at_ns, fire)
            return
        self._at(fault.start_ns, start)
        self._at(fault.end_ns, end)

    @staticmethod
    def _tx_queue(port: NicPort, index: int):
        if index >= len(port.tx_queues):
            raise ConfigurationError(
                f"port {port.port_id} has no tx queue {index} to stall"
            )
        return port.tx_queues[index]

    @staticmethod
    def _rx_queue(port: NicPort, index: int):
        if index >= len(port.rx_queues):
            raise ConfigurationError(
                f"port {port.port_id} has no rx queue {index} to freeze"
            )
        return port.rx_queues[index]

    # -- DuT faults --------------------------------------------------------

    def _arm_dut_fault(self, index: int, fault: DutOverload, dut) -> None:
        self._armed.add(index)

        def start() -> None:
            dut.set_overload(fault.factor)
            self.injected += 1
            self.active += 1
            self._emit("dut_overload_start", index=index,
                       factor=fault.factor)

        def end() -> None:
            dut.set_overload(1.0)
            self.injected += 1
            self.active -= 1
            self._emit("dut_overload_end", index=index)

        self._at(fault.start_ns, start)
        self._at(fault.end_ns, end)
