"""The canonical chaos scenario: one measured run under a fault plan.

``run_plan`` drives a fixed, fully seeded topology — port 0 sends CBR
traffic with sequence numbers to port 1 (via the simulated DuT when the
plan targets one), with a sequence tracker, a stats monitor, and the
fault injector armed — and returns a flat dict of every counter that
matters plus a BLAKE2b fingerprint of the whole dict.  Two runs of the
same ``(plan, seed)`` must produce byte-identical fingerprints whatever
the surrounding sharding; the CI fault-matrix job and the serial-vs-
parallel property tests are built on exactly that comparison.
"""

from __future__ import annotations

import hashlib
import io
from typing import Any, Dict, Optional

from repro.parallel.seeding import point_key


def fingerprint_of(result: Dict[str, Any]) -> str:
    """Short stable hash of a result dict (order-insensitive, typed)."""
    material = point_key({k: v for k, v in result.items()
                          if k != "fingerprint"})
    return hashlib.blake2b(material.encode("utf-8"),
                           digest_size=8).hexdigest()


def run_plan(
    plan,
    seed: int = 0,
    duration_ns: float = 8_000_000.0,
    rate_pps: float = 1.5e6,
    frame_size: int = 64,
    trace=None,
    metrics: bool = False,
    batch: bool = False,
    dataplane: bool = False,
) -> Dict[str, Any]:
    """Run the chaos scenario under ``plan``; returns the stats dict.

    ``plan`` is anything :func:`repro.faults.load_plan` accepts.  Plans
    target the scenario's names: ``port:0`` / ``port:1``, ``wire:0->1``
    (direct wiring), or — when any fault targets ``dut`` — ``wire:0->sink``
    / ``wire:env->1`` around the OvS forwarder.  ``trace`` is forwarded to
    :class:`~repro.core.env.MoonGenEnv`; pass a bound-free
    :class:`~repro.trace.Tracer` to keep the records.

    With ``metrics=True`` the run also carries a metrics registry and a
    1 ms snapshotter; the result gains a ``metrics_fingerprint`` key (the
    BLAKE2b hash of the snapshot series) — the value the CI fault-matrix
    job compares between serial and sharded runs.  ``dataplane=True``
    (requires ``metrics=True``) additionally arms the in-dataplane
    latency histograms (:mod:`repro.metrics.dataplane`); the result
    gains a ``latency_fingerprint`` key and the histograms ride into
    ``metrics_fingerprint``.

    With ``batch=True`` the run executes under the vectorized batch tier
    (``repro.batch``); the result dict is bit-identical either way — a
    fault firing mid-train is impossible by construction (faulted wires
    and stalled queues are fallback reasons in the run detector), so the
    property tests diff ``run_plan(..., batch=True)`` against the default
    wholesale.
    """
    from repro.core.env import MoonGenEnv
    from repro.core.monitor import DeviceStatsMonitor
    from repro.core.seqcheck import SequenceStamper, SequenceTracker
    from repro.faults import DutOverload, load_plan

    plan = load_plan(plan)
    needs_dut = any(isinstance(f, DutOverload) for f in plan.faults)

    env = MoonGenEnv(seed=seed, cost_noise=False, trace=trace, faults=plan,
                     metrics=metrics, batch=batch, dataplane=dataplane)
    tx_dev = env.config_device(0, tx_queues=2, rx_queues=1)
    rx_dev = env.config_device(1, tx_queues=1, rx_queues=1)
    dut = None
    wire = None
    if needs_dut:
        from repro.dut.forwarder import OvsForwarder

        dut = OvsForwarder(env.loop)
        wire = env.connect_to_sink(tx_dev, dut.ingress)
        dut.connect_output(env.wire_to_device(rx_dev))
        env.register_dut(dut)
    else:
        wire, _ = env.connect(tx_dev, rx_dev)

    stamper = SequenceStamper()
    tracker = SequenceTracker()
    load_queue = tx_dev.get_tx_queue(0)
    load_queue.set_rate_pps(rate_pps, frame_size)

    def tx_task():
        mem = env.create_mempool()
        bufs = mem.buf_array(32)
        dst = str(rx_dev.mac)
        src = str(tx_dev.mac)
        while env.running():
            bufs.alloc(frame_size - 4)  # buffers exclude the FCS
            for buf in bufs:
                buf.eth_packet.fill(eth_src=src, eth_dst=dst,
                                    eth_type=0x0800)
            stamper.stamp(bufs)
            yield load_queue.send(bufs)

    def rx_task():
        rx_queue = rx_dev.get_rx_queue(0)
        while env.running():
            for pkt in rx_queue.try_fetch(64):
                tracker.observe(pkt)
            yield env.sleep_us(10.0)

    monitor = DeviceStatsMonitor(env, rx_dev, interval_ns=1_000_000.0,
                                 stream=io.StringIO())
    snapshotter = None
    if metrics:
        snapshotter = env.start_snapshotter(interval_ns=1_000_000.0)
    env.launch(tx_task)
    env.launch(rx_task)
    env.launch(monitor.task)
    env.wait_for_slaves(duration_ns=duration_ns)

    report = tracker.report
    injector = env.injector
    result: Dict[str, Any] = {
        "plan_seed": plan.seed,
        "seed": seed,
        "n_faults": len(plan),
        "tx_packets": tx_dev.tx_packets,
        "rx_packets": rx_dev.rx_packets,
        "rx_crc_errors": rx_dev.rx_crc_errors,
        "rx_missed": rx_dev.rx_missed,
        "wire_sent": wire.frames_sent,
        "wire_dropped": wire.dropped,
        "wire_corrupted": wire.corrupted,
        "wire_in_flight": wire.in_flight,
        "seq_received": report.received,
        "seq_lost": report.lost,
        "seq_reordered": report.reordered,
        "seq_duplicates": report.duplicates,
        "seq_gap_events": report.gap_events,
        "seq_longest_gap": report.longest_gap,
        "loss_fraction": round(report.loss_fraction, 9),
        "rx_link_changes": rx_dev.port.link_changes,
        "monitor_samples": monitor.samples,
        "monitor_gaps": len(monitor.gaps),
        "faults_injected": injector.injected if injector else 0,
        # Clock faults (step/drift) land here: the rx clock's final
        # reading diverges from simulation time by the injected error.
        "rx_clock_ns": round(rx_dev.port.clock.read_ns(), 3),
    }
    if dut is not None:
        result["dut_forwarded"] = dut.forwarded
        result["dut_rx_dropped"] = dut.rx_dropped
    if snapshotter is not None:
        snapshotter.finalize()
        # ``loop.*`` and ``batch.*`` are scheduler self-accounting: the
        # batch tier changes them while leaving the simulated world
        # bit-identical, and the fingerprint must hold across
        # serial/sharded *and* batch/event.
        result["metrics_fingerprint"] = snapshotter.series.fingerprint(
            exclude_prefixes=("loop.", "batch."))
    if env.dataplane is not None:
        result["latency_fingerprint"] = env.dataplane.fingerprint()
    result["fingerprint"] = fingerprint_of(result)
    return result


def run_named_plan(point, seed: int) -> Dict[str, Any]:
    """``run_parallel``-compatible wrapper: ``point`` is a plan name.

    The name is a builtin plan (rebuilt with the point's plan seed) or a
    path to a plan.json (whose stored seed wins).  The engine-derived
    per-point seed is deliberately ignored — the scenario seed and the
    plan seed travel inside the point so the matrix reproduces single-run
    invocations exactly.
    """
    from repro.faults import builtin_plans, load_plan

    name, scenario_seed, plan_seed = point
    plans = builtin_plans(seed=plan_seed)
    if name in plans:
        plan = plans[name]
    else:
        import os

        if not (name.lstrip().startswith("{") or os.path.exists(name)):
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"unknown fault plan {name!r}: not a builtin "
                f"({sorted(plans)}) and not a readable plan file"
            )
        plan = load_plan(name)
    result = run_plan(plan, seed=scenario_seed, metrics=True)
    result["plan"] = name
    return result


def run_matrix(
    plan_names,
    seed: int = 0,
    plan_seed: Optional[int] = None,
    jobs: int = 1,
    progress=None,
    journal=None,
    supervise=None,
    report=None,
) -> Dict[str, Dict[str, Any]]:
    """Run several builtin plans, optionally sharded over workers.

    Returns ``{plan_name: result_dict}``; bit-identical for any ``jobs``
    value (the determinism the CI fault-matrix job asserts).  Every
    result carries ``metrics_fingerprint`` (see :func:`run_plan`), which
    the CI gate compares alongside the result fingerprint.  ``progress``,
    ``journal``, ``supervise``, and ``report`` are forwarded to
    :func:`repro.parallel.run_parallel` (docs/RESILIENCE.md); a plan
    quarantined under ``supervise.quarantine`` comes back as
    ``{"plan": name, "poisoned": True, ...}`` instead of a result dict.

    Note these are *harness* faults (worker crashes, hangs, kills) —
    orthogonal to the *modeled* faults the plans themselves inject into
    the simulated NICs and links (docs/FAULTS.md).
    """
    from repro.parallel import run_parallel

    plan_seed = seed if plan_seed is None else plan_seed
    points = [(str(name), int(seed), int(plan_seed)) for name in plan_names]
    results = run_parallel(points, run_named_plan, jobs=jobs, root_seed=seed,
                           progress=progress, journal=journal,
                           supervise=supervise, report=report)
    matrix: Dict[str, Dict[str, Any]] = {}
    for point, result in zip(points, results):
        if isinstance(result, dict):
            matrix[result["plan"]] = result
        else:  # PoisonedPoint placeholder under quarantine
            matrix[point[0]] = {"plan": point[0], **result.to_dict()}
    return matrix
