"""Declarative header fields.

Header classes are views over a shared ``bytearray`` at an offset; fields are
descriptors that read/write big-endian values in place, mirroring how the
original MoonGen operates on DPDK packet buffers through LuaJIT FFI structs
(no copies, no per-field allocation).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Type

from repro.packet.address import Ip4Address, Ip6Address, MacAddress


class UIntField:
    """A big-endian unsigned integer field of 1, 2, 4, or 8 bytes."""

    def __init__(self, offset: int, size: int, doc: str = "") -> None:
        self.offset = offset
        self.size = size
        self.__doc__ = doc

    def __set_name__(self, owner: type, name: str) -> None:
        self.name = name

    def __get__(self, obj: Any, objtype: Optional[type] = None) -> Any:
        if obj is None:
            return self
        start = obj._offset + self.offset
        return int.from_bytes(obj._data[start:start + self.size], "big")

    def __set__(self, obj: Any, value: int) -> None:
        value = int(value)
        mask = (1 << (8 * self.size)) - 1
        start = obj._offset + self.offset
        obj._data[start:start + self.size] = (value & mask).to_bytes(self.size, "big")


class BitsField:
    """A bit field within a single byte (e.g. IPv4 version / IHL)."""

    def __init__(self, offset: int, shift: int, width: int, doc: str = "") -> None:
        self.offset = offset
        self.shift = shift
        self.mask = (1 << width) - 1
        self.__doc__ = doc

    def __get__(self, obj: Any, objtype: Optional[type] = None) -> Any:
        if obj is None:
            return self
        byte = obj._data[obj._offset + self.offset]
        return (byte >> self.shift) & self.mask

    def __set__(self, obj: Any, value: int) -> None:
        pos = obj._offset + self.offset
        byte = obj._data[pos]
        byte &= ~(self.mask << self.shift) & 0xFF
        byte |= (int(value) & self.mask) << self.shift
        obj._data[pos] = byte


class AddressField:
    """A fixed-size address field returning a typed address object."""

    def __init__(self, offset: int, size: int, addr_type: Type, doc: str = "") -> None:
        self.offset = offset
        self.size = size
        self.addr_type = addr_type
        self.__doc__ = doc

    def __get__(self, obj: Any, objtype: Optional[type] = None) -> Any:
        if obj is None:
            return self
        start = obj._offset + self.offset
        return self.addr_type(bytes(obj._data[start:start + self.size]))

    def __set__(self, obj: Any, value: Any) -> None:
        addr = self.addr_type(value)
        start = obj._offset + self.offset
        obj._data[start:start + self.size] = addr.to_bytes()


def mac_field(offset: int, doc: str = "") -> AddressField:
    return AddressField(offset, 6, MacAddress, doc)


def ip4_field(offset: int, doc: str = "") -> AddressField:
    return AddressField(offset, 4, Ip4Address, doc)


def ip6_field(offset: int, doc: str = "") -> AddressField:
    return AddressField(offset, 16, Ip6Address, doc)


class Header:
    """Base class for header views.

    Subclasses define ``SIZE`` (fixed header length in bytes) and a set of
    field descriptors.  A header never owns memory; it points into the
    packet's buffer at ``offset``.
    """

    SIZE = 0

    __slots__ = ("_data", "_offset")

    def __init__(self, data: bytearray, offset: int = 0) -> None:
        if offset + self.SIZE > len(data):
            raise ValueError(
                f"{type(self).__name__} needs {self.SIZE} bytes at offset "
                f"{offset}, buffer has {len(data)}"
            )
        self._data = data
        self._offset = offset

    @property
    def offset(self) -> int:
        """Byte offset of this header within the packet buffer."""
        return self._offset

    def raw(self) -> bytes:
        """The header's bytes."""
        return bytes(self._data[self._offset:self._offset + self.SIZE])

    def __repr__(self) -> str:
        fields = []
        for name in dir(type(self)):
            attr = getattr(type(self), name, None)
            if isinstance(attr, (UIntField, BitsField, AddressField)):
                fields.append(f"{name}={getattr(self, name)}")
        return f"{type(self).__name__}({', '.join(sorted(fields))})"


def apply_fill(obj: Any, values: dict, setters: dict) -> None:
    """Apply MoonGen-style ``fill`` keyword arguments.

    ``setters`` maps keyword name -> callable(value).  Unknown keywords raise
    ``TypeError`` so typos in scripts fail loudly instead of generating wrong
    packets silently.
    """
    for key, value in values.items():
        setter: Optional[Callable[[Any], None]] = setters.get(key)
        if setter is None:
            raise TypeError(f"unknown fill field: {key!r}")
        setter(value)
