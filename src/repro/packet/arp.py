"""ARP header (Ethernet/IPv4)."""

from __future__ import annotations

from repro.packet.fields import Header, UIntField, ip4_field, mac_field


class ArpOp:
    """ARP operation codes."""

    REQUEST = 1
    REPLY = 2


class ArpHeader(Header):
    """The 28-byte ARP header for Ethernet + IPv4."""

    SIZE = 28

    hardware_type = UIntField(0, 2, "1 for Ethernet")
    protocol_type = UIntField(2, 2, "0x0800 for IPv4")
    hardware_length = UIntField(4, 1, "6 for MAC addresses")
    protocol_length = UIntField(5, 1, "4 for IPv4 addresses")
    operation = UIntField(6, 2, "1 request / 2 reply")
    sha = mac_field(8, "Sender hardware address")
    spa = ip4_field(14, "Sender protocol address")
    tha = mac_field(18, "Target hardware address")
    tpa = ip4_field(24, "Target protocol address")

    def set_defaults(self) -> None:
        self.hardware_type = 1
        self.protocol_type = 0x0800
        self.hardware_length = 6
        self.protocol_length = 4
        self.operation = ArpOp.REQUEST
