"""TCP header."""

from __future__ import annotations

from repro.packet.checksum import internet_checksum
from repro.packet.fields import BitsField, Header, UIntField


class TcpFlags:
    """TCP flag bit masks."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20
    ECE = 0x40
    CWR = 0x80


class TcpHeader(Header):
    """The 20-byte TCP header (no options)."""

    SIZE = 20

    src_port = UIntField(0, 2, "Source port")
    dst_port = UIntField(2, 2, "Destination port")
    seq_number = UIntField(4, 4, "Sequence number")
    ack_number = UIntField(8, 4, "Acknowledgement number")
    data_offset = BitsField(12, 4, 4, "Header length in 32-bit words")
    flags = UIntField(13, 1, "Flag byte, see TcpFlags")
    window = UIntField(14, 2, "Receive window")
    checksum = UIntField(16, 2, "Checksum over pseudo header + segment")
    urgent_pointer = UIntField(18, 2)

    def set_defaults(self) -> None:
        self.data_offset = 5
        self.window = 0xFFFF

    def has_flag(self, mask: int) -> bool:
        return bool(self.flags & mask)

    def set_flag(self, mask: int, value: bool = True) -> None:
        if value:
            self.flags = self.flags | mask
        else:
            self.flags = self.flags & ~mask & 0xFF

    def header_length(self) -> int:
        """Header length in bytes, from the data-offset field."""
        return self.data_offset * 4

    def calculate_checksum(self, pseudo_header_sum: int, segment: bytes) -> int:
        """Compute and store the TCP checksum (see UdpHeader for arguments)."""
        self.checksum = 0
        value = internet_checksum(segment, pseudo_header_sum)
        self.checksum = value
        return value
