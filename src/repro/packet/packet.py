"""Packet stacks with MoonGen-style ``fill()`` semantics.

A :class:`PacketData` is a raw buffer (the payload part of a DPDK mbuf in
the original).  Stack views such as :class:`Udp4Packet` interpret the buffer
as a protocol stack and expose headers as attributes::

    pkt = PacketData(60)
    p = pkt.udp_packet
    p.fill(eth_dst="10:11:12:13:14:15", ip_dst="192.168.1.1", udp_dst=42)
    p.ip.src = parse_ip_address("10.0.0.1") + 3

Sizes follow DPDK conventions: ``PacketData.size`` excludes the 4-byte FCS,
which the (simulated) NIC appends on transmission.  The paper's 64 B
minimum-sized frame therefore corresponds to a 60 B buffer.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.errors import PacketError
from repro.packet.address import Ip4Address
from repro.packet.arp import ArpHeader, ArpOp
from repro.packet.checksum import (
    internet_checksum,
    pseudo_header_sum_v4,
    pseudo_header_sum_v6,
)
from repro.packet.esp import EspHeader
from repro.packet.ethernet import EtherType, EthernetHeader
from repro.packet.icmp import IcmpHeader, IcmpType
from repro.packet.ip4 import Ip4Header, IpProtocol
from repro.packet.ip6 import Ip6Header
from repro.packet.ptp import PTP_UDP_PORT, PtpHeader
from repro.packet.tcp import TcpHeader
from repro.packet.udp import UdpHeader

#: Size of an Ethernet frame buffer for a minimum-sized (64 B) frame:
#: the FCS is appended by the NIC and not part of the buffer.
MIN_BUFFER_SIZE = 60


class PacketData:
    """A raw packet buffer: the data area of a packet buffer.

    ``size`` is the current frame length excluding FCS.  The underlying
    ``bytearray`` may be larger; resizing within capacity does not copy.
    """

    __slots__ = ("data", "_size")

    def __init__(self, size: int = MIN_BUFFER_SIZE, capacity: Optional[int] = None):
        if size < 0:
            raise PacketError(f"negative packet size: {size}")
        capacity = max(size, capacity if capacity is not None else 2048)
        self.data = bytearray(capacity)
        self._size = size

    @classmethod
    def wrap(cls, data: bytearray, size: Optional[int] = None) -> "PacketData":
        """View an existing bytearray as a packet without copying."""
        pkt = cls.__new__(cls)
        pkt.data = data
        pkt._size = len(data) if size is None else size
        if pkt._size > len(data):
            raise PacketError(f"size {size} exceeds buffer of {len(data)} bytes")
        return pkt

    @property
    def size(self) -> int:
        """Current frame length in bytes (excluding FCS)."""
        return self._size

    @size.setter
    def size(self, value: int) -> None:
        if value < 0 or value > len(self.data):
            raise PacketError(
                f"size {value} out of range for capacity {len(self.data)}"
            )
        self._size = value

    def bytes(self) -> bytes:
        """The frame contents (excluding FCS)."""
        return bytes(self.data[: self._size])

    def fill_payload(self, pattern: bytes, offset: int) -> None:
        """Repeat ``pattern`` from ``offset`` to the end of the frame."""
        if not pattern:
            raise PacketError("empty payload pattern")
        n = self._size - offset
        if n <= 0:
            return
        reps = -(-n // len(pattern))
        self.data[offset: self._size] = (pattern * reps)[:n]

    # -- stack accessors, mirroring MoonGen's buf:getXPacket() ---------------

    @property
    def eth_packet(self) -> "EthPacket":
        return EthPacket(self)

    @property
    def arp_packet(self) -> "ArpPacket":
        return ArpPacket(self)

    @property
    def ip_packet(self) -> "Ip4Packet":
        return Ip4Packet(self)

    @property
    def ip6_packet(self) -> "Ip6Packet":
        return Ip6Packet(self)

    @property
    def udp_packet(self) -> "Udp4Packet":
        return Udp4Packet(self)

    @property
    def udp6_packet(self) -> "Udp6Packet":
        return Udp6Packet(self)

    @property
    def tcp_packet(self) -> "Tcp4Packet":
        return Tcp4Packet(self)

    @property
    def icmp_packet(self) -> "Icmp4Packet":
        return Icmp4Packet(self)

    @property
    def ptp_packet(self) -> "PtpPacket":
        return PtpPacket(self)

    @property
    def udp_ptp_packet(self) -> "UdpPtpPacket":
        return UdpPtpPacket(self)

    @property
    def esp_packet(self) -> "EspPacket":
        return EspPacket(self)

    def classify(self) -> str:
        """Best-effort classification of the buffer's protocol stack.

        Returns one of ``"arp"``, ``"ptp"``, ``"udp4"``, ``"udp6"``,
        ``"tcp4"``, ``"icmp4"``, ``"ip4"``, ``"ip6"``, or ``"eth"``.
        """
        if self._size < EthernetHeader.SIZE:
            return "raw"
        eth = EthernetHeader(self.data)
        if eth.ether_type == EtherType.ARP:
            return "arp"
        if eth.ether_type == EtherType.PTP:
            return "ptp"
        if eth.ether_type == EtherType.IP4:
            if self._size < EthernetHeader.SIZE + Ip4Header.SIZE:
                return "eth"
            proto = Ip4Header(self.data, EthernetHeader.SIZE).protocol
            return {
                IpProtocol.UDP: "udp4",
                IpProtocol.TCP: "tcp4",
                IpProtocol.ICMP: "icmp4",
            }.get(proto, "ip4")
        if eth.ether_type == EtherType.IP6:
            if self._size < EthernetHeader.SIZE + Ip6Header.SIZE:
                return "eth"
            proto = Ip6Header(self.data, EthernetHeader.SIZE).next_header
            return {IpProtocol.UDP: "udp6"}.get(proto, "ip6")
        return "eth"


#: Cache of override-free fill write-sets, keyed by ``(stack class, frame
#: length)``.  Value is ``(runs, max_end)`` where ``runs`` is a list of
#: ``(offset, bytes)`` slices, or ``None`` when the class's defaults are
#: not replayable (read-modify-write fields).
_FILL_RUNS: Dict[tuple, Optional[tuple]] = {}
_RUNS_UNSET = object()


def _default_fill_runs(cls, size: int) -> Optional[tuple]:
    """The exact byte runs ``cls(...).fill(pkt_length=size)`` writes.

    Runs the default fill twice on scratch buffers with opposite sentinel
    backgrounds (0x00 and 0xFF) and diffs the results: a byte equal in
    both runs was written (to that constant), a byte still matching both
    sentinels was untouched, and anything else means the defaults read
    existing buffer state — not replayable, return ``None``.  Replaying
    the runs on a live buffer therefore writes exactly the bytes a real
    fill writes and leaves untouched bytes untouched.
    """
    cap = max(size, cls.MIN_SIZE, 64)
    images = []
    for sentinel in (0x00, 0xFF):
        data = bytearray(bytes((sentinel,)) * cap)
        try:
            view = cls(PacketData.wrap(data, size))
            view._set_defaults()
            view._finalize_lengths()
        except Exception:
            return None
        images.append(data)
    b0, b1 = images
    runs = []
    run_start = -1
    for i in range(cap):
        x0 = b0[i]
        if x0 == b1[i]:
            if run_start < 0:
                run_start = i
            continue
        if x0 != 0x00 or b1[i] != 0xFF:
            return None
        if run_start >= 0:
            runs.append((run_start, bytes(b0[run_start:i])))
            run_start = -1
    if run_start >= 0:
        runs.append((run_start, bytes(b0[run_start:cap])))
    max_end = max((off + len(chunk) for off, chunk in runs), default=0)
    return runs, max_end


class _StackView:
    """Base class for protocol stack views over a :class:`PacketData`."""

    __slots__ = ("pkt",)

    #: Minimum buffer size the stack needs; subclasses override.
    MIN_SIZE = EthernetHeader.SIZE

    def __init__(self, pkt: PacketData) -> None:
        if len(pkt.data) < self.MIN_SIZE:
            raise PacketError(
                f"{type(self).__name__} needs at least {self.MIN_SIZE} bytes, "
                f"buffer capacity is {len(pkt.data)}"
            )
        self.pkt = pkt

    @property
    def eth(self) -> EthernetHeader:
        return EthernetHeader(self.pkt.data, 0)

    def _set_length(self, pkt_length: int) -> None:
        """Adjust the buffer and all length fields for a new frame length."""
        self.pkt.size = pkt_length

    def fill(self, **kwargs: Union[int, str, bytes]) -> None:
        """Set defaults for all headers in the stack, then apply overrides.

        The keyword names mirror MoonGen's Lua fill API in snake_case:
        ``pkt_length``, ``eth_src``, ``eth_dst``, ``ip_src``, ``ip_dst``,
        ``udp_src``, ``udp_dst``, and so on.

        An override-free fill (the mempool-init shape: thousands of
        identical calls per pool) replays a cached write-set instead of
        running the per-field setters — see :func:`_default_fill_runs`.
        """
        pkt_length = kwargs.pop("pkt_length", None)
        if pkt_length is not None:
            self._set_length(int(pkt_length))
        if not kwargs:
            key = (type(self), self.pkt._size)
            cached = _FILL_RUNS.get(key, _RUNS_UNSET)
            if cached is _RUNS_UNSET:
                cached = _default_fill_runs(type(self), self.pkt._size)
                _FILL_RUNS[key] = cached
            if cached is not None:
                runs, max_end = cached
                data = self.pkt.data
                if max_end <= len(data):
                    for off, chunk in runs:
                        data[off:off + len(chunk)] = chunk
                    return
            self._set_defaults()
            self._finalize_lengths()
            return
        self._set_defaults()
        setters = self._fill_setters()
        for key, value in kwargs.items():
            setter = setters.get(key)
            if setter is None:
                raise TypeError(
                    f"unknown fill field {key!r} for {type(self).__name__}"
                )
            setter(value)
        self._finalize_lengths()

    def _set_defaults(self) -> None:
        raise NotImplementedError

    def _fill_setters(self) -> Dict[str, object]:
        raise NotImplementedError

    def _finalize_lengths(self) -> None:
        """Update length fields derived from the buffer size."""


class EthPacket(_StackView):
    """A raw Ethernet frame."""

    MIN_SIZE = EthernetHeader.SIZE

    def _set_defaults(self) -> None:
        pass

    def _fill_setters(self):
        eth = self.eth
        return {
            "eth_src": lambda v: setattr(eth, "src", v),
            "eth_dst": lambda v: setattr(eth, "dst", v),
            "eth_type": lambda v: setattr(eth, "ether_type", v),
        }

    @property
    def payload_offset(self) -> int:
        return EthernetHeader.SIZE


class ArpPacket(_StackView):
    """Ethernet + ARP."""

    MIN_SIZE = EthernetHeader.SIZE + ArpHeader.SIZE

    @property
    def arp(self) -> ArpHeader:
        return ArpHeader(self.pkt.data, EthernetHeader.SIZE)

    def _set_defaults(self) -> None:
        self.eth.ether_type = EtherType.ARP
        self.arp.set_defaults()

    def _fill_setters(self):
        eth, arp = self.eth, self.arp
        return {
            "eth_src": lambda v: setattr(eth, "src", v),
            "eth_dst": lambda v: setattr(eth, "dst", v),
            "arp_operation": lambda v: setattr(arp, "operation", v),
            "arp_hw_src": lambda v: setattr(arp, "sha", v),
            "arp_hw_dst": lambda v: setattr(arp, "tha", v),
            "arp_proto_src": lambda v: setattr(arp, "spa", v),
            "arp_proto_dst": lambda v: setattr(arp, "tpa", v),
        }


class Ip4Packet(_StackView):
    """Ethernet + IPv4."""

    MIN_SIZE = EthernetHeader.SIZE + Ip4Header.SIZE
    _IP_PROTOCOL: Optional[int] = None

    @property
    def ip(self) -> Ip4Header:
        return Ip4Header(self.pkt.data, EthernetHeader.SIZE)

    def _set_defaults(self) -> None:
        self.eth.ether_type = EtherType.IP4
        ip = self.ip
        ip.set_defaults()
        if self._IP_PROTOCOL is not None:
            ip.protocol = self._IP_PROTOCOL

    def _fill_setters(self):
        eth, ip = self.eth, self.ip
        return {
            "eth_src": lambda v: setattr(eth, "src", v),
            "eth_dst": lambda v: setattr(eth, "dst", v),
            "ip_src": lambda v: setattr(ip, "src", v),
            "ip_dst": lambda v: setattr(ip, "dst", v),
            "ip_tos": lambda v: setattr(ip, "tos", v),
            "ip_ttl": lambda v: setattr(ip, "ttl", v),
            "ip_id": lambda v: setattr(ip, "identification", v),
            "ip_protocol": lambda v: setattr(ip, "protocol", v),
        }

    def _finalize_lengths(self) -> None:
        self.ip.length = self.pkt.size - EthernetHeader.SIZE

    @property
    def l4_offset(self) -> int:
        return EthernetHeader.SIZE + self.ip.header_length()

    def calculate_ip_checksum(self) -> int:
        """Software IP header checksum (the offload does this on the NIC)."""
        return self.ip.calculate_checksum()

    def _l4_segment(self) -> bytes:
        return bytes(self.pkt.data[self.l4_offset: self.pkt.size])

    def _pseudo_sum(self) -> int:
        ip = self.ip
        return pseudo_header_sum_v4(
            int(ip.src), int(ip.dst), ip.protocol, self.pkt.size - self.l4_offset
        )


class Udp4Packet(Ip4Packet):
    """Ethernet + IPv4 + UDP, the workhorse of the example scripts."""

    MIN_SIZE = Ip4Packet.MIN_SIZE + UdpHeader.SIZE
    _IP_PROTOCOL = IpProtocol.UDP

    @property
    def udp(self) -> UdpHeader:
        return UdpHeader(self.pkt.data, self.l4_offset)

    @property
    def payload_offset(self) -> int:
        return self.l4_offset + UdpHeader.SIZE

    def _fill_setters(self):
        setters = super()._fill_setters()
        udp = self.udp
        setters.update(
            udp_src=lambda v: setattr(udp, "src_port", v),
            udp_dst=lambda v: setattr(udp, "dst_port", v),
        )
        return setters

    def _finalize_lengths(self) -> None:
        super()._finalize_lengths()
        self.udp.length = self.pkt.size - self.l4_offset

    def calculate_udp_checksum(self) -> int:
        """Software UDP checksum over pseudo header + segment."""
        self.udp.checksum = 0
        return self.udp.calculate_checksum(self._pseudo_sum(), self._l4_segment())

    def verify_udp_checksum(self) -> bool:
        """True if the stored UDP checksum is valid (0 means "not used")."""
        if self.udp.checksum == 0:
            return True
        return internet_checksum(self._l4_segment(), self._pseudo_sum()) in (0, 0xFFFF)


class Tcp4Packet(Ip4Packet):
    """Ethernet + IPv4 + TCP."""

    MIN_SIZE = Ip4Packet.MIN_SIZE + TcpHeader.SIZE
    _IP_PROTOCOL = IpProtocol.TCP

    @property
    def tcp(self) -> TcpHeader:
        return TcpHeader(self.pkt.data, self.l4_offset)

    @property
    def payload_offset(self) -> int:
        return self.l4_offset + self.tcp.header_length()

    def _set_defaults(self) -> None:
        super()._set_defaults()
        self.tcp.set_defaults()

    def _fill_setters(self):
        setters = super()._fill_setters()
        tcp = self.tcp
        setters.update(
            tcp_src=lambda v: setattr(tcp, "src_port", v),
            tcp_dst=lambda v: setattr(tcp, "dst_port", v),
            tcp_seq=lambda v: setattr(tcp, "seq_number", v),
            tcp_ack=lambda v: setattr(tcp, "ack_number", v),
            tcp_flags=lambda v: setattr(tcp, "flags", v),
            tcp_window=lambda v: setattr(tcp, "window", v),
        )
        return setters

    def calculate_tcp_checksum(self) -> int:
        """Software TCP checksum over pseudo header + segment."""
        self.tcp.checksum = 0
        return self.tcp.calculate_checksum(self._pseudo_sum(), self._l4_segment())


class Icmp4Packet(Ip4Packet):
    """Ethernet + IPv4 + ICMP."""

    MIN_SIZE = Ip4Packet.MIN_SIZE + IcmpHeader.SIZE
    _IP_PROTOCOL = IpProtocol.ICMP

    @property
    def icmp(self) -> IcmpHeader:
        return IcmpHeader(self.pkt.data, self.l4_offset)

    def _set_defaults(self) -> None:
        super()._set_defaults()
        self.icmp.type = IcmpType.ECHO_REQUEST

    def _fill_setters(self):
        setters = super()._fill_setters()
        icmp = self.icmp
        setters.update(
            icmp_type=lambda v: setattr(icmp, "type", v),
            icmp_code=lambda v: setattr(icmp, "code", v),
            icmp_id=lambda v: setattr(icmp, "identifier", v),
            icmp_seq=lambda v: setattr(icmp, "sequence", v),
        )
        return setters

    def calculate_icmp_checksum(self) -> int:
        """Software ICMP checksum over the full message."""
        self.icmp.checksum = 0
        return self.icmp.calculate_checksum(self._l4_segment())


class EspPacket(Ip4Packet):
    """Ethernet + IPv4 + ESP (IPsec)."""

    MIN_SIZE = Ip4Packet.MIN_SIZE + EspHeader.SIZE
    _IP_PROTOCOL = IpProtocol.ESP

    @property
    def esp(self) -> EspHeader:
        return EspHeader(self.pkt.data, self.l4_offset)

    def _set_defaults(self) -> None:
        super()._set_defaults()
        self.esp.set_defaults()

    def _fill_setters(self):
        setters = super()._fill_setters()
        esp = self.esp
        setters.update(
            esp_spi=lambda v: setattr(esp, "spi", v),
            esp_seq=lambda v: setattr(esp, "sequence", v),
        )
        return setters


class Ip6Packet(_StackView):
    """Ethernet + IPv6."""

    MIN_SIZE = EthernetHeader.SIZE + Ip6Header.SIZE
    _NEXT_HEADER: Optional[int] = None

    @property
    def ip(self) -> Ip6Header:
        return Ip6Header(self.pkt.data, EthernetHeader.SIZE)

    def _set_defaults(self) -> None:
        self.eth.ether_type = EtherType.IP6
        ip = self.ip
        ip.set_defaults()
        if self._NEXT_HEADER is not None:
            ip.next_header = self._NEXT_HEADER

    def _fill_setters(self):
        eth, ip = self.eth, self.ip
        return {
            "eth_src": lambda v: setattr(eth, "src", v),
            "eth_dst": lambda v: setattr(eth, "dst", v),
            "ip_src": lambda v: setattr(ip, "src", v),
            "ip_dst": lambda v: setattr(ip, "dst", v),
            "ip_hop_limit": lambda v: setattr(ip, "hop_limit", v),
            "ip_traffic_class": lambda v: setattr(ip, "traffic_class", v),
            "ip_flow_label": lambda v: setattr(ip, "flow_label", v),
        }

    def _finalize_lengths(self) -> None:
        self.ip.payload_length = (
            self.pkt.size - EthernetHeader.SIZE - Ip6Header.SIZE
        )

    @property
    def l4_offset(self) -> int:
        return EthernetHeader.SIZE + Ip6Header.SIZE


class Udp6Packet(Ip6Packet):
    """Ethernet + IPv6 + UDP."""

    MIN_SIZE = Ip6Packet.MIN_SIZE + UdpHeader.SIZE
    _NEXT_HEADER = IpProtocol.UDP

    @property
    def udp(self) -> UdpHeader:
        return UdpHeader(self.pkt.data, self.l4_offset)

    def _fill_setters(self):
        setters = super()._fill_setters()
        udp = self.udp
        setters.update(
            udp_src=lambda v: setattr(udp, "src_port", v),
            udp_dst=lambda v: setattr(udp, "dst_port", v),
        )
        return setters

    def _finalize_lengths(self) -> None:
        super()._finalize_lengths()
        self.udp.length = self.pkt.size - self.l4_offset

    def calculate_udp_checksum(self) -> int:
        """Software UDP checksum (IPv6 pseudo header)."""
        ip = self.ip
        self.udp.checksum = 0
        segment = bytes(self.pkt.data[self.l4_offset: self.pkt.size])
        pseudo = pseudo_header_sum_v6(
            int(ip.src), int(ip.dst), IpProtocol.UDP, len(segment)
        )
        return self.udp.calculate_checksum(pseudo, segment)


class PtpPacket(_StackView):
    """Ethernet + PTP (EtherType 0x88F7), used for hardware timestamping.

    The minimum PTP-over-Ethernet packet fits in a minimum-sized frame, which
    is why latency probes default to this stack (Section 6.4: UDP PTP packets
    below 80 B are refused by the NICs, Ethernet PTP packets are not).
    """

    MIN_SIZE = EthernetHeader.SIZE + PtpHeader.SIZE

    @property
    def ptp(self) -> PtpHeader:
        return PtpHeader(self.pkt.data, EthernetHeader.SIZE)

    def _set_defaults(self) -> None:
        self.eth.ether_type = EtherType.PTP
        self.ptp.set_defaults()

    def _fill_setters(self):
        eth, ptp = self.eth, self.ptp
        return {
            "eth_src": lambda v: setattr(eth, "src", v),
            "eth_dst": lambda v: setattr(eth, "dst", v),
            "ptp_type": lambda v: setattr(ptp, "message_type", v),
            "ptp_version": lambda v: setattr(ptp, "version", v),
            "ptp_sequence": lambda v: setattr(ptp, "sequence_id", v),
        }


class UdpPtpPacket(Udp4Packet):
    """Ethernet + IPv4 + UDP + PTP (PTP as UDP payload on port 319)."""

    MIN_SIZE = Udp4Packet.MIN_SIZE + PtpHeader.SIZE

    @property
    def ptp(self) -> PtpHeader:
        return PtpHeader(self.pkt.data, self.payload_offset)

    def _set_defaults(self) -> None:
        super()._set_defaults()
        self.udp.dst_port = PTP_UDP_PORT
        self.ptp.set_defaults()

    def _fill_setters(self):
        setters = super()._fill_setters()
        ptp = self.ptp
        setters.update(
            ptp_type=lambda v: setattr(ptp, "message_type", v),
            ptp_version=lambda v: setattr(ptp, "version", v),
            ptp_sequence=lambda v: setattr(ptp, "sequence_id", v),
        )
        return setters


__all__ = [
    "ArpOp",
    "ArpPacket",
    "EspPacket",
    "EthPacket",
    "Icmp4Packet",
    "Ip4Packet",
    "Ip6Packet",
    "MIN_BUFFER_SIZE",
    "PacketData",
    "PtpPacket",
    "Tcp4Packet",
    "Udp4Packet",
    "Udp6Packet",
    "UdpPtpPacket",
]
