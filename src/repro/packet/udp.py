"""UDP header."""

from __future__ import annotations

from repro.packet.checksum import internet_checksum
from repro.packet.fields import Header, UIntField


class UdpHeader(Header):
    """The 8-byte UDP header."""

    SIZE = 8

    src_port = UIntField(0, 2, "Source port")
    dst_port = UIntField(2, 2, "Destination port")
    length = UIntField(4, 2, "Length of header + payload")
    checksum = UIntField(6, 2, "Checksum over pseudo header + segment")

    # MoonGen-style accessors (``udp:getDstPort()`` in the Lua API).
    def get_src_port(self) -> int:
        return self.src_port

    def get_dst_port(self) -> int:
        return self.dst_port

    def set_src_port(self, port: int) -> None:
        self.src_port = port

    def set_dst_port(self, port: int) -> None:
        self.dst_port = port

    def calculate_checksum(self, pseudo_header_sum: int, segment: bytes) -> int:
        """Compute and store the UDP checksum.

        ``segment`` is the full UDP segment (header + payload) with the
        checksum field zeroed; ``pseudo_header_sum`` is the unfolded sum from
        :func:`repro.packet.checksum.pseudo_header_sum_v4` / ``_v6``.
        An all-zero result is transmitted as 0xFFFF per RFC 768.
        """
        self.checksum = 0
        value = internet_checksum(segment, pseudo_header_sum)
        if value == 0:
            value = 0xFFFF
        self.checksum = value
        return value
