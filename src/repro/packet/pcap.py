"""pcap trace reading and writing.

High-speed packet generators commonly replay pre-crafted traces ("barebone
high-speed packet generators often only send out pre-crafted Ethernet
frames (e.g., pcap files)", Section 2).  This module implements the classic
libpcap format — nanosecond-precision variant by default — so the
reproduction can both capture simulated traffic and replay real traces
through the CRC-gap rate control with their original timing.

Only plain Ethernet link-layer captures are supported (network type 1),
which is all a packet generator needs.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import BinaryIO, Iterable, Iterator, List

from repro.errors import PacketError

#: Magic for microsecond-precision captures.
MAGIC_US = 0xA1B2C3D4
#: Magic for nanosecond-precision captures (our default).
MAGIC_NS = 0xA1B23C4D
#: Link type: Ethernet.
LINKTYPE_ETHERNET = 1

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


@dataclass(frozen=True)
class PcapRecord:
    """One captured packet: a timestamp plus the frame bytes (no FCS)."""

    timestamp_ns: int
    data: bytes

    @property
    def length(self) -> int:
        return len(self.data)


class PcapWriter:
    """Writes packets into a pcap stream."""

    def __init__(self, stream: BinaryIO, nanosecond: bool = True,
                 snaplen: int = 65535) -> None:
        self.stream = stream
        self.nanosecond = nanosecond
        self._div = 1 if nanosecond else 1000
        stream.write(_GLOBAL_HEADER.pack(
            MAGIC_NS if nanosecond else MAGIC_US,
            2, 4, 0, 0, snaplen, LINKTYPE_ETHERNET,
        ))

    def write(self, timestamp_ns: int, data: bytes) -> None:
        """Append one packet."""
        seconds, rem_ns = divmod(int(timestamp_ns), 1_000_000_000)
        self.stream.write(_RECORD_HEADER.pack(
            seconds, rem_ns // self._div, len(data), len(data),
        ))
        self.stream.write(data)

    def write_all(self, records: Iterable[PcapRecord]) -> int:
        count = 0
        for record in records:
            self.write(record.timestamp_ns, record.data)
            count += 1
        return count


class PcapReader:
    """Reads packets from a pcap stream."""

    def __init__(self, stream: BinaryIO) -> None:
        self.stream = stream
        header = stream.read(_GLOBAL_HEADER.size)
        if len(header) < _GLOBAL_HEADER.size:
            raise PacketError("truncated pcap global header")
        (magic, major, minor, _zone, _sigfigs, self.snaplen,
         network) = _GLOBAL_HEADER.unpack(header)
        if magic == MAGIC_NS:
            self._mult = 1
        elif magic == MAGIC_US:
            self._mult = 1000
        else:
            raise PacketError(f"not a pcap file (magic {magic:#x})")
        if network != LINKTYPE_ETHERNET:
            raise PacketError(f"unsupported link type {network}")
        self.version = (major, minor)

    def __iter__(self) -> Iterator[PcapRecord]:
        while True:
            header = self.stream.read(_RECORD_HEADER.size)
            if not header:
                return
            if len(header) < _RECORD_HEADER.size:
                raise PacketError("truncated pcap record header")
            seconds, subsec, incl_len, _orig_len = _RECORD_HEADER.unpack(header)
            data = self.stream.read(incl_len)
            if len(data) < incl_len:
                raise PacketError("truncated pcap record body")
            yield PcapRecord(
                timestamp_ns=seconds * 1_000_000_000 + subsec * self._mult,
                data=data,
            )

    def read_all(self) -> List[PcapRecord]:
        return list(self)


def trace_gaps_ns(records: List[PcapRecord]) -> List[float]:
    """Inter-departure gaps of a trace, for replay through a gap filler."""
    if len(records) < 2:
        raise PacketError("trace needs at least two packets for gaps")
    gaps = []
    for a, b in zip(records, records[1:]):
        if b.timestamp_ns < a.timestamp_ns:
            raise PacketError("trace timestamps are not monotonic")
        gaps.append(float(b.timestamp_ns - a.timestamp_ns))
    return gaps


def capture_rx_queue(queue, max_packets: int, start_ns: float = 0.0) -> List[PcapRecord]:
    """Drain a simulated rx queue into pcap records (tests/examples).

    Uses the frame's wire arrival metadata when present, else a running
    counter — good enough for replay experiments.
    """
    records = []
    for i, pkt in enumerate(queue.try_fetch(max_packets)):
        stamp = pkt.frame.meta.get("tx_start_ps")
        ts = round(start_ns + (stamp / 1000 if stamp is not None else i * 1000))
        records.append(PcapRecord(timestamp_ns=ts, data=bytes(pkt.frame.data)))
    return records
