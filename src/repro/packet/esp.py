"""IPsec ESP header (RFC 4303).

MoonGen's example scripts include IPsec load generation; the reproduction
provides the ESP header so the same traffic types can be crafted.  Only the
cleartext parts (SPI, sequence number) are modelled — payload encryption is
out of scope for a packet generator, which transmits pre-crafted ciphertext.
"""

from __future__ import annotations

from repro.packet.fields import Header, UIntField


class EspHeader(Header):
    """The 8-byte ESP header preceding the encrypted payload."""

    SIZE = 8

    spi = UIntField(0, 4, "Security parameters index")
    sequence = UIntField(4, 4, "Anti-replay sequence number")

    def set_defaults(self) -> None:
        self.spi = 0
        self.sequence = 1
