"""Checksum and CRC helpers.

Implements the RFC 1071 internet checksum (used by IPv4/UDP/TCP/ICMP), the
UDP/TCP pseudo-header checksum the paper mentions MoonGen must compute in
software before offloading ("MoonGen also needs to calculate the IP pseudo
header checksum as this is not supported by the X540"), and the Ethernet
CRC32 frame check sequence used by the CRC-gap rate-control mechanism.
"""

from __future__ import annotations

import zlib
from typing import Union

Buffer = Union[bytes, bytearray, memoryview]


def _sum16(data: Buffer) -> int:
    """Sum a buffer as big-endian 16-bit words (without folding)."""
    buf = bytes(data)
    if len(buf) % 2:
        buf += b"\x00"
    total = 0
    for i in range(0, len(buf), 2):
        total += (buf[i] << 8) | buf[i + 1]
    return total


def _fold(total: int) -> int:
    """Fold carries into 16 bits and take the one's complement."""
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def internet_checksum(data: Buffer, initial: int = 0) -> int:
    """RFC 1071 internet checksum of a buffer.

    ``initial`` is an unfolded partial sum (e.g. a pseudo-header sum) added
    before folding.  The checksum field itself must be zeroed by the caller.
    """
    return _fold(_sum16(data) + initial)


def pseudo_header_sum_v4(
    src: int, dst: int, protocol: int, length: int
) -> int:
    """Unfolded 16-bit sum of the IPv4 pseudo header.

    ``src``/``dst`` are 32-bit addresses as ints, ``length`` is the L4
    segment length in bytes.
    """
    total = (src >> 16) + (src & 0xFFFF)
    total += (dst >> 16) + (dst & 0xFFFF)
    total += protocol
    total += length
    return total


def pseudo_header_sum_v6(src: int, dst: int, next_header: int, length: int) -> int:
    """Unfolded 16-bit sum of the IPv6 pseudo header."""
    total = 0
    for addr in (src, dst):
        for shift in range(112, -1, -16):
            total += (addr >> shift) & 0xFFFF
    total += next_header
    total += (length >> 16) + (length & 0xFFFF)
    return total


def pseudo_header_checksum(
    src: int, dst: int, protocol: int, payload: Buffer, ipv6: bool = False
) -> int:
    """Full L4 checksum over pseudo header + payload (checksum field zeroed)."""
    if ipv6:
        initial = pseudo_header_sum_v6(src, dst, protocol, len(bytes(payload)))
    else:
        initial = pseudo_header_sum_v4(src, dst, protocol, len(bytes(payload)))
    return internet_checksum(payload, initial)


def ethernet_fcs(frame_without_fcs: Buffer) -> int:
    """Ethernet CRC32 frame check sequence of a frame body.

    Returns the 32-bit FCS as transmitted (IEEE 802.3 CRC32, i.e. the
    little-endian complemented CRC as produced by :func:`zlib.crc32`).
    """
    return zlib.crc32(bytes(frame_without_fcs)) & 0xFFFFFFFF


def fcs_bytes(frame_without_fcs: Buffer) -> bytes:
    """The 4 FCS bytes appended to a frame on the wire."""
    return ethernet_fcs(frame_without_fcs).to_bytes(4, "little")


def check_fcs(frame_with_fcs: Buffer) -> bool:
    """Validate the trailing 4-byte FCS of a full frame."""
    raw = bytes(frame_with_fcs)
    if len(raw) < 5:
        return False
    return fcs_bytes(raw[:-4]) == raw[-4:]


def corrupt_fcs(frame_with_fcs: bytearray) -> None:
    """Flip bits in a frame's FCS so the frame becomes invalid on the wire.

    Used by the CRC-gap rate-control mechanism (Section 8 of the paper): the
    filler frames carry an intentionally wrong checksum so the device under
    test drops them in hardware.
    """
    if len(frame_with_fcs) < 4:
        raise ValueError("frame too short to carry an FCS")
    frame_with_fcs[-1] ^= 0xFF
