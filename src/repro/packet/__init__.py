"""Packet crafting and parsing.

This package implements the packet layer of the MoonGen reproduction: typed
header views over shared byte buffers, protocol stacks with MoonGen-style
``fill()`` semantics, checksum and CRC helpers, and address types.

The central entry points are :class:`repro.packet.packet.PacketData` (a raw
buffer) and the stack views obtained from it, e.g.::

    pkt = PacketData(60)
    udp = pkt.udp_packet
    udp.fill(eth_src="aa:bb:cc:dd:ee:ff", ip_dst="10.0.0.1", udp_dst=319)
"""

from repro.packet.address import (
    Ip4Address,
    Ip6Address,
    MacAddress,
    parse_ip_address,
)
from repro.packet.checksum import (
    ethernet_fcs,
    internet_checksum,
    pseudo_header_checksum,
)
from repro.packet.ethernet import EtherType, EthernetHeader
from repro.packet.vlan import (
    VlanTag,
    insert_vlan_tag,
    is_vlan_tagged,
    read_vlan_tag,
    strip_vlan_tag,
)
from repro.packet.packet import (
    ArpPacket,
    EthPacket,
    Icmp4Packet,
    Ip4Packet,
    Ip6Packet,
    PacketData,
    PtpPacket,
    Tcp4Packet,
    Udp4Packet,
    Udp6Packet,
    EspPacket,
)

__all__ = [
    "ArpPacket",
    "EspPacket",
    "EthPacket",
    "EtherType",
    "EthernetHeader",
    "Icmp4Packet",
    "Ip4Address",
    "Ip4Packet",
    "Ip6Address",
    "Ip6Packet",
    "MacAddress",
    "PacketData",
    "PtpPacket",
    "Tcp4Packet",
    "Udp4Packet",
    "Udp6Packet",
    "VlanTag",
    "ethernet_fcs",
    "insert_vlan_tag",
    "internet_checksum",
    "is_vlan_tagged",
    "parse_ip_address",
    "pseudo_header_checksum",
    "read_vlan_tag",
    "strip_vlan_tag",
]
