"""IPv4 header."""

from __future__ import annotations

from repro.packet.checksum import internet_checksum
from repro.packet.fields import BitsField, Header, UIntField, ip4_field


class IpProtocol:
    """IPv4 protocol numbers used by the library."""

    ICMP = 1
    TCP = 6
    UDP = 17
    ESP = 50
    AH = 51


class Ip4Header(Header):
    """The 20-byte IPv4 header (no options)."""

    SIZE = 20

    version = BitsField(0, 4, 4, "IP version, 4")
    ihl = BitsField(0, 0, 4, "Header length in 32-bit words")
    tos = UIntField(1, 1, "Type of service / DSCP+ECN")
    length = UIntField(2, 2, "Total length: header + payload")
    identification = UIntField(4, 2)
    flags = BitsField(6, 5, 3, "Flags: reserved / DF / MF")
    # Fragment offset spans the low 5 bits of byte 6 and byte 7; expose it
    # through explicit accessors rather than a simple field.
    ttl = UIntField(8, 1, "Time to live")
    protocol = UIntField(9, 1, "Payload protocol number")
    checksum = UIntField(10, 2, "Header checksum")
    src = ip4_field(12, "Source address")
    dst = ip4_field(16, "Destination address")

    @property
    def fragment_offset(self) -> int:
        high = self._data[self._offset + 6] & 0x1F
        low = self._data[self._offset + 7]
        return (high << 8) | low

    @fragment_offset.setter
    def fragment_offset(self, value: int) -> None:
        value = int(value) & 0x1FFF
        pos = self._offset + 6
        self._data[pos] = (self._data[pos] & 0xE0) | (value >> 8)
        self._data[pos + 1] = value & 0xFF

    def set_defaults(self) -> None:
        """Fill the fields every IPv4 packet needs."""
        self.version = 4
        self.ihl = 5
        self.ttl = 64

    def header_length(self) -> int:
        """Header length in bytes, from the IHL field."""
        return self.ihl * 4

    def calculate_checksum(self) -> int:
        """Compute and store the header checksum; returns the new value."""
        self.checksum = 0
        start = self._offset
        value = internet_checksum(self._data[start:start + self.header_length()])
        self.checksum = value
        return value

    def verify_checksum(self) -> bool:
        """True if the stored header checksum is correct."""
        start = self._offset
        return internet_checksum(self._data[start:start + self.header_length()]) == 0
