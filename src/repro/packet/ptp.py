"""IEEE 1588 (PTP) header.

The paper's timestamping engine (Section 6) relies on NICs that timestamp
PTP packets — either directly over Ethernet (EtherType 0x88F7) or as UDP
payload (port 319).  Only the first payload byte (message type) and the
second byte (PTP version) matter to the timestamping hardware; all other
fields may hold arbitrary values.
"""

from __future__ import annotations

from repro.packet.fields import BitsField, Header, UIntField

#: UDP destination port for PTP event messages.
PTP_UDP_PORT = 319


class PtpMessageType:
    """PTP message types relevant for hardware timestamp filters."""

    SYNC = 0x0
    DELAY_REQ = 0x1
    PDELAY_REQ = 0x2
    PDELAY_RESP = 0x3
    FOLLOW_UP = 0x8
    DELAY_RESP = 0x9
    ANNOUNCE = 0xB


class PtpHeader(Header):
    """The 34-byte PTPv2 common message header."""

    SIZE = 34

    transport_specific = BitsField(0, 4, 4)
    message_type = BitsField(0, 0, 4, "Message type, checked by NIC filters")
    version = BitsField(1, 0, 4, "PTP version, must be 2 for timestamping")
    message_length = UIntField(2, 2)
    domain_number = UIntField(4, 1)
    flags = UIntField(6, 2)
    correction_field = UIntField(8, 8)
    sequence_id = UIntField(30, 2, "Sequence number, used to match samples")
    control_field = UIntField(32, 1)
    log_message_interval = UIntField(33, 1)

    def set_defaults(self) -> None:
        self.message_type = PtpMessageType.SYNC
        self.version = 2
        self.message_length = self.SIZE
