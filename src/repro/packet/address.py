"""MAC and IP address types.

MoonGen scripts manipulate addresses numerically (``parseIPAddress("10.0.0.1")
+ math.random(255)``); the types here support the same style: they are thin
``int`` subclasses with range checking, parsing, formatting, and wrapping
arithmetic, so ``Ip4Address("10.0.0.1") + 5`` is again an :class:`Ip4Address`.
"""

from __future__ import annotations

import re
from typing import Union

from repro.errors import AddressError

_MAC_RE = re.compile(r"^([0-9a-fA-F]{2})(:[0-9a-fA-F]{2}){5}$")


class MacAddress(int):
    """A 48-bit Ethernet MAC address.

    Accepts ``"aa:bb:cc:dd:ee:ff"`` strings, integers, 6-byte sequences, or
    another :class:`MacAddress`.
    """

    MAX = (1 << 48) - 1

    def __new__(cls, value: Union[int, str, bytes, "MacAddress"] = 0) -> "MacAddress":
        if isinstance(value, str):
            if not _MAC_RE.match(value):
                raise AddressError(f"invalid MAC address: {value!r}")
            value = int(value.replace(":", ""), 16)
        elif isinstance(value, (bytes, bytearray, memoryview)):
            raw = bytes(value)
            if len(raw) != 6:
                raise AddressError(f"MAC address needs 6 bytes, got {len(raw)}")
            value = int.from_bytes(raw, "big")
        elif isinstance(value, int):
            if not 0 <= value <= cls.MAX:
                raise AddressError(f"MAC address out of range: {value:#x}")
        else:
            raise AddressError(f"cannot build MAC address from {type(value).__name__}")
        return super().__new__(cls, value)

    def __str__(self) -> str:
        raw = int(self).to_bytes(6, "big")
        return ":".join(f"{b:02x}" for b in raw)

    def __repr__(self) -> str:
        return f"MacAddress('{self}')"

    def __add__(self, other: int) -> "MacAddress":
        return MacAddress((int(self) + int(other)) & self.MAX)

    def __sub__(self, other: int) -> "MacAddress":
        return MacAddress((int(self) - int(other)) & self.MAX)

    def to_bytes(self) -> bytes:  # type: ignore[override]
        """The address as 6 big-endian bytes."""
        return int(self).to_bytes(6, "big")

    @property
    def is_broadcast(self) -> bool:
        return int(self) == self.MAX

    @property
    def is_multicast(self) -> bool:
        """True if the group bit (LSB of the first octet) is set."""
        return bool((int(self) >> 40) & 0x01)


class Ip4Address(int):
    """A 32-bit IPv4 address with wrapping arithmetic."""

    MAX = (1 << 32) - 1

    def __new__(cls, value: Union[int, str, bytes, "Ip4Address"] = 0) -> "Ip4Address":
        if isinstance(value, str):
            parts = value.split(".")
            if len(parts) != 4:
                raise AddressError(f"invalid IPv4 address: {value!r}")
            try:
                octets = [int(p, 10) for p in parts]
            except ValueError as exc:
                raise AddressError(f"invalid IPv4 address: {value!r}") from exc
            if any(not 0 <= o <= 255 for o in octets):
                raise AddressError(f"invalid IPv4 address: {value!r}")
            value = (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]
        elif isinstance(value, (bytes, bytearray, memoryview)):
            raw = bytes(value)
            if len(raw) != 4:
                raise AddressError(f"IPv4 address needs 4 bytes, got {len(raw)}")
            value = int.from_bytes(raw, "big")
        elif isinstance(value, int):
            if not 0 <= value <= cls.MAX:
                raise AddressError(f"IPv4 address out of range: {value:#x}")
        else:
            raise AddressError(f"cannot build IPv4 address from {type(value).__name__}")
        return super().__new__(cls, value)

    def __str__(self) -> str:
        v = int(self)
        return f"{(v >> 24) & 0xFF}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"

    def __repr__(self) -> str:
        return f"Ip4Address('{self}')"

    def __add__(self, other: int) -> "Ip4Address":
        return Ip4Address((int(self) + int(other)) & self.MAX)

    def __sub__(self, other: int) -> "Ip4Address":
        return Ip4Address((int(self) - int(other)) & self.MAX)

    def to_bytes(self) -> bytes:  # type: ignore[override]
        return int(self).to_bytes(4, "big")


class Ip6Address(int):
    """A 128-bit IPv6 address with wrapping arithmetic.

    Parsing supports the canonical colon-hex form including a single ``::``
    elision, which covers all addresses used by the example scripts.
    """

    MAX = (1 << 128) - 1

    def __new__(cls, value: Union[int, str, bytes, "Ip6Address"] = 0) -> "Ip6Address":
        if isinstance(value, str):
            value = cls._parse(value)
        elif isinstance(value, (bytes, bytearray, memoryview)):
            raw = bytes(value)
            if len(raw) != 16:
                raise AddressError(f"IPv6 address needs 16 bytes, got {len(raw)}")
            value = int.from_bytes(raw, "big")
        elif isinstance(value, int):
            if not 0 <= value <= cls.MAX:
                raise AddressError(f"IPv6 address out of range: {value:#x}")
        else:
            raise AddressError(f"cannot build IPv6 address from {type(value).__name__}")
        return super().__new__(cls, value)

    @staticmethod
    def _parse(text: str) -> int:
        if text.count("::") > 1:
            raise AddressError(f"invalid IPv6 address: {text!r}")
        if "::" in text:
            head, _, tail = text.partition("::")
            head_groups = head.split(":") if head else []
            tail_groups = tail.split(":") if tail else []
            missing = 8 - len(head_groups) - len(tail_groups)
            if missing < 1:
                raise AddressError(f"invalid IPv6 address: {text!r}")
            groups = head_groups + ["0"] * missing + tail_groups
        else:
            groups = text.split(":")
        if len(groups) != 8:
            raise AddressError(f"invalid IPv6 address: {text!r}")
        value = 0
        for group in groups:
            if not group or len(group) > 4:
                raise AddressError(f"invalid IPv6 address: {text!r}")
            try:
                value = (value << 16) | int(group, 16)
            except ValueError as exc:
                raise AddressError(f"invalid IPv6 address: {text!r}") from exc
        return value

    def __str__(self) -> str:
        groups = [(int(self) >> (16 * (7 - i))) & 0xFFFF for i in range(8)]
        # Find the longest run of zero groups (length >= 2) to elide.
        best_start, best_len = -1, 0
        run_start, run_len = -1, 0
        for i, g in enumerate(groups):
            if g == 0:
                if run_start < 0:
                    run_start, run_len = i, 0
                run_len += 1
                if run_len > best_len:
                    best_start, best_len = run_start, run_len
            else:
                run_start, run_len = -1, 0
        if best_len >= 2:
            head = ":".join(f"{g:x}" for g in groups[:best_start])
            tail = ":".join(f"{g:x}" for g in groups[best_start + best_len:])
            return f"{head}::{tail}"
        return ":".join(f"{g:x}" for g in groups)

    def __repr__(self) -> str:
        return f"Ip6Address('{self}')"

    def __add__(self, other: int) -> "Ip6Address":
        return Ip6Address((int(self) + int(other)) & self.MAX)

    def __sub__(self, other: int) -> "Ip6Address":
        return Ip6Address((int(self) - int(other)) & self.MAX)

    def to_bytes(self) -> bytes:  # type: ignore[override]
        return int(self).to_bytes(16, "big")


def parse_ip_address(text: str) -> Union[Ip4Address, Ip6Address]:
    """Parse an IPv4 or IPv6 address, the analog of ``parseIPAddress``.

    Returns an :class:`Ip4Address` or :class:`Ip6Address` depending on the
    input's syntax, so scripts can do ``parse_ip_address("10.0.0.1") + n``.
    """
    if ":" in text:
        return Ip6Address(text)
    return Ip4Address(text)
