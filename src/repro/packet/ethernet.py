"""Ethernet II header."""

from __future__ import annotations

from repro.packet.fields import Header, UIntField, mac_field


class EtherType:
    """Well-known EtherType values used by the example scripts."""

    IP4 = 0x0800
    ARP = 0x0806
    IP6 = 0x86DD
    #: PTP directly over Ethernet (IEEE 1588), used for hardware timestamping.
    PTP = 0x88F7


class EthernetHeader(Header):
    """The 14-byte Ethernet II header."""

    SIZE = 14

    dst = mac_field(0, "Destination MAC address")
    src = mac_field(6, "Source MAC address")
    ether_type = UIntField(12, 2, "EtherType of the payload")

    def set_type(self, ether_type: int) -> None:
        self.ether_type = ether_type
