"""IPv6 header."""

from __future__ import annotations

from repro.packet.fields import Header, UIntField, ip6_field


class Ip6Header(Header):
    """The fixed 40-byte IPv6 header."""

    SIZE = 40

    next_header = UIntField(6, 1, "Protocol of the payload")
    hop_limit = UIntField(7, 1, "Hop limit (TTL)")
    src = ip6_field(8, "Source address")
    dst = ip6_field(24, "Destination address")

    @property
    def version(self) -> int:
        return self._data[self._offset] >> 4

    @version.setter
    def version(self, value: int) -> None:
        pos = self._offset
        self._data[pos] = ((int(value) & 0xF) << 4) | (self._data[pos] & 0x0F)

    @property
    def traffic_class(self) -> int:
        pos = self._offset
        return ((self._data[pos] & 0x0F) << 4) | (self._data[pos + 1] >> 4)

    @traffic_class.setter
    def traffic_class(self, value: int) -> None:
        value = int(value) & 0xFF
        pos = self._offset
        self._data[pos] = (self._data[pos] & 0xF0) | (value >> 4)
        self._data[pos + 1] = ((value & 0x0F) << 4) | (self._data[pos + 1] & 0x0F)

    @property
    def flow_label(self) -> int:
        pos = self._offset
        return (
            ((self._data[pos + 1] & 0x0F) << 16)
            | (self._data[pos + 2] << 8)
            | self._data[pos + 3]
        )

    @flow_label.setter
    def flow_label(self, value: int) -> None:
        value = int(value) & 0xFFFFF
        pos = self._offset
        self._data[pos + 1] = (self._data[pos + 1] & 0xF0) | (value >> 16)
        self._data[pos + 2] = (value >> 8) & 0xFF
        self._data[pos + 3] = value & 0xFF

    payload_length = UIntField(4, 2, "Length of the payload after this header")

    def set_defaults(self) -> None:
        """Fill the fields every IPv6 packet needs."""
        self.version = 6
        self.hop_limit = 64
