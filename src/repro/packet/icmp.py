"""ICMP (v4) header."""

from __future__ import annotations

from repro.packet.checksum import internet_checksum
from repro.packet.fields import Header, UIntField


class IcmpType:
    """Common ICMP message types."""

    ECHO_REPLY = 0
    DEST_UNREACHABLE = 3
    ECHO_REQUEST = 8
    TIME_EXCEEDED = 11


class IcmpHeader(Header):
    """The 8-byte ICMP echo-style header."""

    SIZE = 8

    type = UIntField(0, 1, "Message type")
    code = UIntField(1, 1, "Message code")
    checksum = UIntField(2, 2, "Checksum over the ICMP message")
    identifier = UIntField(4, 2, "Echo identifier")
    sequence = UIntField(6, 2, "Echo sequence number")

    def calculate_checksum(self, message: bytes) -> int:
        """Compute and store the checksum over the full ICMP message."""
        self.checksum = 0
        value = internet_checksum(message)
        self.checksum = value
        return value
