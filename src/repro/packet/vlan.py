"""IEEE 802.1Q VLAN tagging.

Benchmark setups routinely tag test traffic (e.g. steering flows through a
switch under test), and MoonGen's packet library handles VLAN headers.
The 4-byte tag sits between the Ethernet source address and the original
EtherType: TPID 0x8100, then PCP/DEI/VID.
"""

from __future__ import annotations

from repro.errors import PacketError
from repro.packet.fields import Header, UIntField

#: Tag protocol identifier for 802.1Q.
TPID_VLAN = 0x8100
#: Outer TPID for QinQ (802.1ad) stacking.
TPID_QINQ = 0x88A8


class VlanTag(Header):
    """The 4-byte 802.1Q tag (TPID + TCI), viewed at its own offset."""

    SIZE = 4

    tpid = UIntField(0, 2, "Tag protocol identifier, 0x8100")
    tci = UIntField(2, 2, "Tag control information: PCP/DEI/VID")

    @property
    def vid(self) -> int:
        """VLAN identifier (12 bits)."""
        return self.tci & 0x0FFF

    @vid.setter
    def vid(self, value: int) -> None:
        self.tci = (self.tci & 0xF000) | (int(value) & 0x0FFF)

    @property
    def pcp(self) -> int:
        """Priority code point (3 bits) — the QoS priority field."""
        return self.tci >> 13

    @pcp.setter
    def pcp(self, value: int) -> None:
        self.tci = ((int(value) & 0x7) << 13) | (self.tci & 0x1FFF)

    @property
    def dei(self) -> int:
        """Drop eligible indicator (1 bit)."""
        return (self.tci >> 12) & 0x1

    @dei.setter
    def dei(self, value: int) -> None:
        self.tci = (self.tci & 0xEFFF) | ((int(value) & 0x1) << 12)


def insert_vlan_tag(pkt, vid: int, pcp: int = 0, dei: int = 0,
                    tpid: int = TPID_VLAN) -> VlanTag:
    """Tag a crafted frame in place, growing it by 4 bytes.

    The payload from byte 12 (the original EtherType) moves back by four
    bytes; length fields of encapsulated headers are unaffected because the
    tag lives purely at layer 2.
    """
    if pkt.size < 14:
        raise PacketError("frame too short to tag")
    if pkt.size + VlanTag.SIZE > len(pkt.data):
        raise PacketError("no capacity for a VLAN tag")
    if not 0 <= vid <= 0x0FFF:
        raise PacketError(f"VLAN id out of range: {vid}")
    pkt.data[16:pkt.size + 4] = pkt.data[12:pkt.size]
    pkt.size = pkt.size + 4
    tag = VlanTag(pkt.data, 12)
    tag.tpid = tpid
    tag.tci = 0
    tag.vid = vid
    tag.pcp = pcp
    tag.dei = dei
    return tag


def strip_vlan_tag(pkt) -> int:
    """Remove the outermost tag in place; returns the VID it carried."""
    tag = read_vlan_tag(pkt)
    vid = tag.vid
    pkt.data[12:pkt.size - 4] = pkt.data[16:pkt.size]
    pkt.size = pkt.size - 4
    return vid


def read_vlan_tag(pkt) -> VlanTag:
    """View the outermost 802.1Q tag of a frame."""
    if not is_vlan_tagged(pkt):
        raise PacketError("frame carries no VLAN tag")
    return VlanTag(pkt.data, 12)


def is_vlan_tagged(pkt) -> bool:
    """True if the frame's EtherType position holds a VLAN TPID."""
    if pkt.size < 18:
        return False
    ether_type = (pkt.data[12] << 8) | pkt.data[13]
    return ether_type in (TPID_VLAN, TPID_QINQ)
