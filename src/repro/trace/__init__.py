"""Structured tracing for the simulator (``repro.trace``).

The discrete-event core is deterministic: given a seed, every event fires
at the same picosecond in the same order on every run.  A :class:`Tracer`
turns that property into an *observable artifact* — a stream of typed
trace records (event fired, process advanced/blocked/finished, descriptor
fetched, frame serialized onto the wire, frame dropped, timestamp latched,
interrupt raised, ...) with integer-picosecond timestamps.  Serialized to
JSONL, a trace is a bit-for-bit reproducible fingerprint of a run: golden-
trace tests diff it, property tests assert invariants over it, and a perf
regression can be localized to the first diverging record instead of a
bare throughput number.

Zero overhead when disabled: instrumentation sites guard every emission
with ``if loop.tracer is not None`` (a single attribute load and identity
check); no record objects, dict packing, or category lookups happen unless
a tracer is attached.

Usage::

    from repro import MoonGenEnv

    env = MoonGenEnv(seed=1, trace=True)          # all categories, ring buffer
    ... run the experiment ...
    print(env.tracer.to_jsonl())                  # JSONL dump
    env.tracer.counts()                           # {"wire_tx": 42, ...}

    # Only some categories, straight to a file:
    from repro.trace import Tracer, JsonlSink
    tracer = Tracer(sink=JsonlSink(open("run.jsonl", "w")),
                    categories={"wire", "drop", "irq"})
    env = MoonGenEnv(seed=1, trace=tracer)

See ``docs/TRACING.md`` for the record schema and the golden-trace
workflow.
"""

from __future__ import annotations

import itertools
import json
from collections import Counter, deque
from typing import Any, Deque, Dict, Iterable, List, Optional, TextIO

from repro.errors import ConfigurationError

#: Every record category the instrumented simulator emits.
#:
#: ``event``  — an event-loop callback fired (the raw scheduler view);
#: ``proc``   — a process advanced, blocked on a signal, or finished;
#: ``desc``   — a descriptor was DMA-fetched from a tx ring;
#: ``wire``   — a frame was serialized onto a wire;
#: ``drop``   — a frame was dropped (bad FCS, ring overflow, corruption);
#: ``tstamp`` — a hardware timestamp register was latched (or missed);
#: ``irq``    — the DuT raised an interrupt;
#: ``cpu``    — a simulated core was charged cycles;
#: ``stats``  — a statistics monitor sampled device counters;
#: ``fault``  — a fault was injected or cleared (``repro.faults``).
CATEGORIES = (
    "event",
    "proc",
    "desc",
    "wire",
    "drop",
    "tstamp",
    "irq",
    "cpu",
    "stats",
    "fault",
)


class TraceRecord:
    """One typed trace record: time, sequence number, kind, payload.

    ``t_ps`` is the event-loop time when the record was emitted; ``seq`` is
    a per-tracer monotonically increasing counter, so the total order of
    records is explicit even among same-instant emissions.
    """

    __slots__ = ("t_ps", "seq", "kind", "fields")

    def __init__(self, t_ps: int, seq: int, kind: str,
                 fields: Dict[str, Any]) -> None:
        self.t_ps = t_ps
        self.seq = seq
        self.kind = kind
        self.fields = fields

    def to_dict(self) -> Dict[str, Any]:
        """The record as a plain dict with stable key order."""
        obj: Dict[str, Any] = {"t": self.t_ps, "seq": self.seq,
                               "kind": self.kind}
        obj.update(self.fields)
        return obj

    def to_json(self) -> str:
        """Canonical single-line JSON; byte-identical across identical runs."""
        return json.dumps(self.to_dict(), separators=(",", ":"))

    def __repr__(self) -> str:
        return f"TraceRecord({self.to_json()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return (self.t_ps, self.seq, self.kind, self.fields) == (
            other.t_ps, other.seq, other.kind, other.fields)


class TraceSink:
    """Destination for trace records; subclasses implement :meth:`record`."""

    def record(self, rec: TraceRecord) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (files); the default is a no-op."""


class RingSink(TraceSink):
    """Bounded in-memory buffer keeping the most recent records."""

    def __init__(self, capacity: Optional[int] = 1 << 16) -> None:
        self._buffer: Deque[TraceRecord] = deque(maxlen=capacity)
        self.capacity = capacity
        #: Records evicted because the ring was full.
        self.dropped = 0

    def record(self, rec: TraceRecord) -> None:
        if self.capacity is not None and len(self._buffer) == self.capacity:
            self.dropped += 1
        self._buffer.append(rec)

    @property
    def records(self) -> List[TraceRecord]:
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)


class JsonlSink(TraceSink):
    """Streams records as JSON lines to a text stream as they are emitted."""

    def __init__(self, stream: TextIO, close_stream: bool = False) -> None:
        self.stream = stream
        self._close_stream = close_stream
        self.lines = 0

    def record(self, rec: TraceRecord) -> None:
        self.stream.write(rec.to_json())
        self.stream.write("\n")
        self.lines += 1

    def close(self) -> None:
        self.stream.flush()
        if self._close_stream:
            self.stream.close()


class TeeSink(TraceSink):
    """Fans one record stream out to several sinks."""

    def __init__(self, *sinks: TraceSink) -> None:
        self.sinks = list(sinks)

    def record(self, rec: TraceRecord) -> None:
        for sink in self.sinks:
            sink.record(rec)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


class Tracer:
    """Collects typed trace records from an :class:`~repro.nicsim.eventloop.EventLoop`.

    Attach with :meth:`bind` (or pass ``trace=`` to ``MoonGenEnv``); the
    instrumented components read ``loop.tracer`` and call :meth:`emit`.
    ``categories`` restricts recording to a subset of :data:`CATEGORIES`.
    """

    def __init__(
        self,
        sink: Optional[TraceSink] = None,
        categories: Optional[Iterable[str]] = None,
    ) -> None:
        if categories is None:
            wanted = frozenset(CATEGORIES)
        else:
            wanted = frozenset(categories)
            unknown = wanted - frozenset(CATEGORIES)
            if unknown:
                raise ConfigurationError(
                    f"unknown trace categories: {sorted(unknown)}; "
                    f"valid: {list(CATEGORIES)}"
                )
        self.categories = wanted
        self.sink = sink if sink is not None else RingSink()
        self._seq = itertools.count()
        self._loop = None
        # Frames are renumbered per tracer so traces are reproducible even
        # though SimFrame sequence numbers come from a process-global
        # counter (two identical runs in one process must produce
        # byte-identical traces).
        self._frame_ids: Dict[Any, int] = {}

    # -- wiring ------------------------------------------------------------

    def bind(self, loop) -> "Tracer":
        """Attach to an event loop: sets ``loop.tracer`` and the time source."""
        self._loop = loop
        loop.tracer = self
        return self

    # -- emission ----------------------------------------------------------

    def wants(self, category: str) -> bool:
        return category in self.categories

    def frame_id(self, frame: Any) -> int:
        """Stable per-run id for a frame (0, 1, ... in order of first sight)."""
        key = getattr(frame, "seq", None)
        if key is None:
            key = id(frame)
        fid = self._frame_ids.get(key)
        if fid is None:
            fid = len(self._frame_ids)
            self._frame_ids[key] = fid
        return fid

    def emit(self, category: str, kind: str, **fields: Any) -> None:
        """Record one event if ``category`` is enabled."""
        if category not in self.categories:
            return
        t_ps = self._loop.now_ps if self._loop is not None else 0
        self.sink.record(TraceRecord(t_ps, next(self._seq), kind, fields))

    # -- results -----------------------------------------------------------

    def records(self) -> List[TraceRecord]:
        """The buffered records (requires an in-memory sink)."""
        if isinstance(self.sink, RingSink):
            return self.sink.records
        raise ConfigurationError(
            f"sink {type(self.sink).__name__} does not buffer records; "
            "use RingSink to read traces back in memory"
        )

    def to_jsonl(self) -> str:
        """The buffered records as JSONL text (trailing newline included)."""
        lines = [rec.to_json() for rec in self.records()]
        return "\n".join(lines) + ("\n" if lines else "")

    def counts(self) -> Dict[str, int]:
        """Record counts by kind — a quick shape check of a run."""
        return dict(Counter(rec.kind for rec in self.records()))

    def close(self) -> None:
        self.sink.close()


def read_jsonl(text: str) -> List[TraceRecord]:
    """Parse JSONL trace text back into :class:`TraceRecord` objects."""
    records = []
    for line in text.splitlines():
        if not line.strip():
            continue
        obj = json.loads(line)
        fields = {k: v for k, v in obj.items()
                  if k not in ("t", "seq", "kind")}
        records.append(TraceRecord(obj["t"], obj["seq"], obj["kind"], fields))
    return records


__all__ = [
    "CATEGORIES",
    "JsonlSink",
    "RingSink",
    "TeeSink",
    "TraceRecord",
    "TraceSink",
    "Tracer",
    "read_jsonl",
]
