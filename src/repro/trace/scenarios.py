"""Canonical traced scenarios: the fixtures behind golden-trace tests.

Each scenario builds a small, fully seeded simulation with tracing enabled
and returns the JSONL trace text.  The same functions back three consumers:

* the ``moongen-repro trace`` CLI subcommand,
* the committed golden traces under ``tests/golden/`` (regenerate with
  ``python -m repro.trace.scenarios --write-golden tests/golden``),
* determinism tests (two identical seeded runs must be byte-identical).

Scenarios run with ``cost_noise=False`` so trace bytes depend only on
integer event arithmetic and the seeded RNG streams, not on platform libm
rounding of Gaussian noise.  The default categories omit the raw ``event``
category — semantic records (desc/wire/drop/irq/...) already pin the
behaviour and keep the committed goldens small; pass ``categories`` to
widen.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, Optional, Tuple

#: Categories used for golden traces (everything except the raw scheduler
#: ``event`` feed, which triples trace size without adding semantics).
GOLDEN_CATEGORIES: Tuple[str, ...] = (
    "proc", "desc", "wire", "drop", "tstamp", "irq", "cpu", "stats", "fault",
)


def run_cbr_load_latency(seed: int = 11,
                         categories: Optional[Iterable[str]] = None) -> str:
    """An ``l2_load_latency``-style run: CBR load + latency probes via a DuT.

    One queue generates 64 B frames paced by hardware CBR rate control
    through the simulated single-core OvS forwarder; a second queue sends
    timestamped PTP probes.  The load slave sends a fixed 24 frames so the
    run (and the committed golden trace) stays small: ~25 µs of simulated
    time, a few hundred records.
    """
    from repro import MoonGenEnv, Timestamper
    from repro.dut import OvsForwarder
    from repro.units import MIN_FRAME_SIZE

    env = MoonGenEnv(seed=seed, cost_noise=False,
                     trace=tuple(categories) if categories else GOLDEN_CATEGORIES)
    tx_dev = env.config_device(0, tx_queues=2)
    rx_dev = env.config_device(1, rx_queues=1)
    dut = OvsForwarder(env.loop)
    env.connect_to_sink(tx_dev, dut.ingress)
    dut.connect_output(env.wire_to_device(rx_dev))

    load_queue = tx_dev.get_tx_queue(0)
    load_queue.set_rate_pps(1e6, MIN_FRAME_SIZE)

    def load_slave(env, queue, dst_mac):
        mem = env.create_mempool(
            fill=lambda buf: buf.eth_packet.fill(
                eth_src="02:00:00:00:00:00", eth_dst=dst_mac, eth_type=0x0800
            ),
        )
        bufs = mem.buf_array(8)
        for _ in range(3):
            bufs.alloc(MIN_FRAME_SIZE - 4)
            yield queue.send(bufs)

    env.launch(load_slave, env, load_queue, rx_dev.mac)
    ts = Timestamper(env, tx_dev.get_tx_queue(1), rx_dev, seed=seed)
    env.launch(ts.probe_task, 2, 10_000.0)
    env.wait_for_slaves()
    return env.tracer.to_jsonl()


def run_poisson(seed: int = 11,
                categories: Optional[Iterable[str]] = None) -> str:
    """A software-paced Poisson stream between two directly cabled ports.

    A coroutine process draws exponential gaps from the seeded
    ``PoissonPattern`` stream and enqueues one 60 B frame per departure;
    covers the process/descriptor/wire record paths without a DuT.
    """
    from repro import MoonGenEnv, PoissonPattern
    from repro.nicsim.nic import SimFrame

    env = MoonGenEnv(seed=seed, cost_noise=False,
                     trace=tuple(categories) if categories else GOLDEN_CATEGORIES)
    tx_dev = env.config_device(0, tx_queues=1)
    rx_dev = env.config_device(1, rx_queues=1)
    env.connect(tx_dev, rx_dev)
    queue = tx_dev.port.get_tx_queue(0)
    pattern = PoissonPattern(pps=2e6, seed=seed)
    payload = bytes(range(60))

    def poisson_source():
        for gap_ns in itertools.islice(pattern.iter_gaps_ns(), 15):
            yield max(1, round(gap_ns * 1000))
            queue.enqueue([SimFrame(payload)])

    env.loop.spawn(poisson_source(), name="poisson-source")
    env.loop.run()
    return env.tracer.to_jsonl()


def run_faults(seed: int = 11,
               categories: Optional[Iterable[str]] = None) -> str:
    """A chaos run: paced frames over a wire under a tiny fault plan.

    A Gilbert–Elliott loss burst, a CRC corruption window, a clock step,
    and a link flap all land inside ~30 µs of simulated time, so the
    golden trace pins every ``fault.*`` record kind plus the degraded
    ``wire``/``drop`` records they cause — while staying a few hundred
    lines like the other goldens.
    """
    from repro import MoonGenEnv
    from repro.faults import (
        BurstLoss,
        ClockStep,
        CorruptionBurst,
        FaultPlan,
        LinkFlap,
    )
    from repro.nicsim.nic import SimFrame

    plan = FaultPlan(faults=(
        BurstLoss(target="wire:0->1", start_ns=2_000.0, end_ns=14_000.0,
                  p_good_bad=0.2, p_bad_good=0.2, loss_bad=0.8),
        CorruptionBurst(target="wire:0->1", start_ns=16_000.0,
                        end_ns=24_000.0, rate=0.5),
        ClockStep(target="port:1", at_ns=20_000.0, step_ns=250.0),
        LinkFlap(target="port:1", start_ns=26_000.0, end_ns=30_000.0),
    ), seed=seed)
    env = MoonGenEnv(seed=seed, cost_noise=False,
                     trace=tuple(categories) if categories else GOLDEN_CATEGORIES,
                     faults=plan)
    tx_dev = env.config_device(0, tx_queues=1)
    rx_dev = env.config_device(1, rx_queues=1)
    env.connect(tx_dev, rx_dev)
    queue = tx_dev.port.get_tx_queue(0)
    payload = bytes(range(60))

    def cbr_source():
        for _ in range(28):
            yield 1_100_000  # 1.1 µs between frames, in ps
            queue.enqueue([SimFrame(payload)])

    env.loop.spawn(cbr_source(), name="cbr-source")
    env.loop.run()
    return env.tracer.to_jsonl()


#: Scenario registry: name -> (runner, golden file name).
SCENARIOS: Dict[str, Tuple[Callable[..., str], str]] = {
    "load-latency": (run_cbr_load_latency, "load_latency_cbr.jsonl"),
    "poisson": (run_poisson, "poisson.jsonl"),
    "faults": (run_faults, "faults_chaos.jsonl"),
}


def run_scenario(name: str, seed: int = 11,
                 categories: Optional[Iterable[str]] = None) -> str:
    """Run a registered scenario by name and return its JSONL trace."""
    from repro.errors import ConfigurationError

    try:
        runner, _ = SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown trace scenario {name!r}; valid: {sorted(SCENARIOS)}"
        ) from None
    return runner(seed=seed, categories=categories)


def write_golden(directory: str, seed: int = 11) -> Dict[str, str]:
    """(Re)generate the committed golden traces; returns {name: path}."""
    import os

    os.makedirs(directory, exist_ok=True)
    written = {}
    for name, (runner, filename) in SCENARIOS.items():
        path = os.path.join(directory, filename)
        with open(path, "w", newline="\n") as fh:
            fh.write(runner(seed=seed))
        written[name] = path
    return written


if __name__ == "__main__":  # pragma: no cover - maintenance entry point
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--write-golden", metavar="DIR",
                        help="regenerate golden traces into DIR")
    parser.add_argument("--seed", type=int, default=11)
    parsed = parser.parse_args()
    if parsed.write_golden:
        for name, path in write_golden(parsed.write_golden, parsed.seed).items():
            print(f"{name}: {path}")
    else:
        parser.error("nothing to do (use --write-golden DIR)")
