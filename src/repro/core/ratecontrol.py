"""Rate control: traffic patterns and the CRC-gap mechanism (Section 8).

The paper's novel software rate control never *waits*: it keeps the wire
completely full and realises inter-packet gaps by inserting **invalid
frames** (bad CRC, possibly illegal length) between valid packets.  The
device under test drops the fillers in hardware — only an error counter
increments — so the valid packets arrive with precisely the intended
spacing, enabling arbitrary traffic patterns (Poisson, bursts, traces) with
hardware-grade precision.

Constraints modelled exactly as measured in the paper:

* NICs refuse frames with a wire length < 33 bytes;
* short frames stress the MAC: at most ~15.6 Mpps leave the X540/82599, so
  MoonGen enforces a 76-byte minimum wire length for fillers by default;
* consequently idle gaps in (0, 76) bytes (0.8–60.8 ns at 10 GbE) cannot be
  represented; they are approximated by *skip-and-stretch* — occasionally
  skipping a filler and lengthening other gaps, keeping the average rate
  exact at the cost of per-gap precision (±½ of the minimum filler,
  ≈ ±30 ns — still better than every alternative, Section 8.4).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None

from repro import units
from repro.errors import ConfigurationError, GapError
from repro.core.memory import MemPool


def _require_numpy() -> None:
    """Traffic patterns draw/shape gap arrays with numpy; the batch tier
    and the plain event-driven paths do not.  Fail loudly, not with an
    ``AttributeError`` on ``None``."""
    if np is None:
        raise ConfigurationError(
            "numpy is required for traffic patterns / gap planning "
            "(pip install numpy, or the repo's [test] extra)")

#: Wire length below which the NICs refuse to send at all (Section 8.1).
HARD_MIN_WIRE = units.MIN_WIRE_LENGTH  # 33 bytes
#: MoonGen's enforced minimum filler wire length (Section 8.1).
DEFAULT_MIN_FILLER_WIRE = 76
#: Largest standard frame (1518 B) on the wire.
MAX_FILLER_WIRE = units.MAX_FRAME_SIZE + units.WIRE_OVERHEAD
#: Maximum packet rate observed with shorter-than-minimum frames.
SHORT_FRAME_MAX_PPS = 15.6e6


# ---------------------------------------------------------------------------
# traffic patterns: generators of desired start-to-start gaps
# ---------------------------------------------------------------------------


class TrafficPattern:
    """Base class: produces desired start-to-start inter-departure gaps."""

    def mean_gap_ns(self) -> float:
        raise NotImplementedError

    def gaps_ns(self, n: int) -> np.ndarray:
        """``n`` inter-departure gaps in nanoseconds."""
        raise NotImplementedError

    def iter_gaps_ns(self) -> Iterator[float]:
        """Endless stream of gaps (event-driven use)."""
        while True:
            for gap in self.gaps_ns(1024):
                yield float(gap)


@dataclass
class CbrPattern(TrafficPattern):
    """Constant bit rate: every gap equals ``1 / pps``."""

    pps: float

    def __post_init__(self) -> None:
        _require_numpy()
        if self.pps <= 0:
            raise ConfigurationError(f"packet rate must be positive: {self.pps}")

    def mean_gap_ns(self) -> float:
        return units.NS_PER_S / self.pps

    def gaps_ns(self, n: int) -> np.ndarray:
        return np.full(n, self.mean_gap_ns())


@dataclass
class PoissonPattern(TrafficPattern):
    """A Poisson arrival process: exponential inter-departure times."""

    pps: float
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        _require_numpy()
        if self.pps <= 0:
            raise ConfigurationError(f"packet rate must be positive: {self.pps}")
        self._rng = np.random.default_rng(self.seed)

    def mean_gap_ns(self) -> float:
        return units.NS_PER_S / self.pps

    def gaps_ns(self, n: int) -> np.ndarray:
        return self._rng.exponential(self.mean_gap_ns(), size=n)


@dataclass
class UniformBurstPattern(TrafficPattern):
    """Bursts of back-to-back packets separated by constant pauses.

    ``burst_size`` packets leave back-to-back (gap = one wire time), then a
    pause keeps the average at ``pps`` (the ``l2-bursts.lua`` pattern).
    """

    pps: float
    burst_size: int
    frame_size: int = units.MIN_FRAME_SIZE
    speed_bps: int = units.SPEED_10G

    def __post_init__(self) -> None:
        _require_numpy()
        if self.burst_size < 1:
            raise ConfigurationError(f"burst size must be >= 1: {self.burst_size}")
        if self.pps <= 0:
            raise ConfigurationError(f"packet rate must be positive: {self.pps}")
        wire_ns = units.frame_time_ns(self.frame_size, self.speed_bps)
        mean = self.mean_gap_ns()
        pause = self.burst_size * (mean - wire_ns) + wire_ns
        if pause < wire_ns:
            raise ConfigurationError(
                "requested rate leaves no room for pauses between bursts"
            )
        self._wire_ns = wire_ns
        self._pause_ns = pause

    def mean_gap_ns(self) -> float:
        return units.NS_PER_S / self.pps

    def gaps_ns(self, n: int) -> np.ndarray:
        out = np.full(n, self._wire_ns)
        out[self.burst_size - 1:: self.burst_size] = self._pause_ns
        return out


@dataclass
class CustomGapPattern(TrafficPattern):
    """Replays an explicit gap sequence (trace-driven generation)."""

    gaps: Sequence[float]

    def __post_init__(self) -> None:
        _require_numpy()
        if len(self.gaps) == 0:
            raise ConfigurationError("empty gap sequence")
        if any(g < 0 for g in self.gaps):
            raise ConfigurationError("gaps must be non-negative")

    def mean_gap_ns(self) -> float:
        return float(np.mean(np.asarray(self.gaps, dtype=float)))

    def gaps_ns(self, n: int) -> np.ndarray:
        reps = -(-n // len(self.gaps))
        return np.tile(np.asarray(self.gaps, dtype=float), reps)[:n]


# ---------------------------------------------------------------------------
# the CRC-gap mechanism
# ---------------------------------------------------------------------------


@dataclass
class FillPlan:
    """The wire schedule the gap filler computed for a batch of packets.

    ``filler_wire_bytes[i]`` lists the wire lengths of the invalid frames
    inserted *after* valid packet ``i``; ``actual_gaps_ns[i]`` is the
    realised start-to-start gap between valid packets ``i`` and ``i+1``.
    """

    frame_size: int
    speed_bps: int
    filler_wire_bytes: List[List[int]]
    actual_gaps_ns: np.ndarray
    desired_gaps_ns: np.ndarray

    @property
    def n_fillers(self) -> int:
        return sum(len(f) for f in self.filler_wire_bytes)

    def departure_times_ns(self, start_ns: float = 0.0) -> np.ndarray:
        """Start times of the valid packets on the wire."""
        times = np.empty(len(self.actual_gaps_ns) + 1)
        times[0] = start_ns
        np.cumsum(self.actual_gaps_ns, out=times[1:])
        times[1:] += start_ns
        return times

    def max_error_ns(self) -> float:
        return float(np.max(np.abs(self.actual_gaps_ns - self.desired_gaps_ns)))

    def mean_error_ns(self) -> float:
        return float(np.mean(self.actual_gaps_ns - self.desired_gaps_ns))

    def render_wire(self, n_packets: int = 6) -> str:
        """The wire schedule as Figure 9 draws it.

        Valid packets appear as ``p0, p1, ...`` and the shaded invalid
        fillers as ``i0, i1, ...`` with their wire length, e.g.::

            | p0 | i0:360B | p1 | p2 | i1:76B | ...

        Note the wire has no gaps — that is the whole point.
        """
        cells = []
        filler_index = 0
        for i in range(min(n_packets, len(self.filler_wire_bytes))):
            cells.append(f"p{i}")
            for wire_len in self.filler_wire_bytes[i]:
                cells.append(f"i{filler_index}:{wire_len}B")
                filler_index += 1
        return "| " + " | ".join(cells) + " |"


class GapFiller:
    """Computes filler-frame schedules for arbitrary gap sequences.

    The filler keeps a running byte-error carry so the *average* rate is
    exact even when individual gaps are unrepresentable (skip-and-stretch,
    Section 8.4).
    """

    def __init__(
        self,
        frame_size: int = units.MIN_FRAME_SIZE,
        speed_bps: int = units.SPEED_10G,
        min_filler_wire: int = DEFAULT_MIN_FILLER_WIRE,
        max_filler_wire: int = MAX_FILLER_WIRE,
    ) -> None:
        if min_filler_wire < HARD_MIN_WIRE:
            raise GapError(
                f"NICs refuse wire lengths below {HARD_MIN_WIRE} bytes "
                f"(Section 8.1); requested minimum {min_filler_wire}"
            )
        if max_filler_wire < min_filler_wire:
            raise GapError("max filler wire length below minimum")
        self.frame_size = frame_size
        self.speed_bps = speed_bps
        self.min_filler_wire = min_filler_wire
        self.max_filler_wire = max_filler_wire
        self.byte_time_ns = units.byte_time_ps(speed_bps) / 1000.0
        self.pkt_wire_bytes = units.wire_length(frame_size)

    # -- representability ------------------------------------------------------------

    def min_rate_pps(self) -> float:
        """Below this rate a single filler per gap would exceed the maximum
        frame size; the planner splits fillers, so any rate works — this is
        informational only."""
        return units.NS_PER_S / (
            (self.pkt_wire_bytes + self.max_filler_wire) * self.byte_time_ns
        )

    def unrepresentable_gap_range_ns(self) -> tuple:
        """The idle-gap range that cannot be generated (0.8–60.8 ns default)."""
        return (
            self.byte_time_ns,
            (self.min_filler_wire - 1) * self.byte_time_ns,
        )

    def _split_filler(self, idle_bytes: int) -> List[int]:
        """Decompose an idle-byte count into legal filler wire lengths."""
        if idle_bytes == 0:
            return []
        fillers = []
        remaining = idle_bytes
        while remaining > self.max_filler_wire:
            # Leave at least a minimum-sized filler for the final piece.
            take = min(self.max_filler_wire, remaining - self.min_filler_wire)
            fillers.append(take)
            remaining -= take
        fillers.append(remaining)
        return fillers

    def plan(self, desired_gaps_ns: Iterable[float]) -> FillPlan:
        """Compute the filler schedule for a sequence of desired gaps.

        ``desired_gaps_ns[i]`` is the desired start-to-start time between
        valid packets ``i`` and ``i+1``.  Gaps smaller than one wire time
        are physically impossible (the packet itself occupies the wire) and
        raise :class:`GapError` unless within rounding distance.
        """
        _require_numpy()
        desired = np.asarray(list(desired_gaps_ns), dtype=float)
        if desired.size == 0:
            raise GapError("no gaps to plan")
        if np.any(desired < 0):
            raise GapError("gaps must be non-negative")
        pkt_wire = self.pkt_wire_bytes
        min_gap_ns = pkt_wire * self.byte_time_ns
        # Individual gaps below the frame's own wire time are legal in a
        # random pattern (the packets simply leave back-to-back and the
        # deficit is carried), but a *mean* below it asks for more than
        # line rate.
        if float(desired.mean()) < min_gap_ns - 1e-9:
            raise GapError(
                f"mean desired gap {float(desired.mean()):.1f} ns is below "
                f"the frame's wire time ({min_gap_ns:.1f} ns); the requested "
                f"rate exceeds line rate"
            )
        fillers: List[List[int]] = []
        actual = np.empty(desired.size)
        carry = 0.0
        min_fill = self.min_filler_wire
        for i, gap_ns in enumerate(desired):
            idle_bytes_f = (gap_ns - min_gap_ns) / self.byte_time_ns + carry
            if idle_bytes_f < min_fill:
                # Unrepresentable small gap: send back-to-back if closer to
                # zero, else emit a minimum filler; carry the error.
                idle_bytes = 0 if idle_bytes_f < min_fill / 2 else min_fill
            else:
                idle_bytes = int(round(idle_bytes_f))
            carry = idle_bytes_f - idle_bytes
            fillers.append(self._split_filler(idle_bytes))
            actual[i] = (pkt_wire + idle_bytes) * self.byte_time_ns
        return FillPlan(
            frame_size=self.frame_size,
            speed_bps=self.speed_bps,
            filler_wire_bytes=fillers,
            actual_gaps_ns=actual,
            desired_gaps_ns=desired,
        )

    def plan_pattern(self, pattern: TrafficPattern, n: int) -> FillPlan:
        """Plan ``n`` gaps drawn from a traffic pattern."""
        return self.plan(pattern.gaps_ns(n))

    # -- event-driven load task ---------------------------------------------------------

    def load_task(
        self,
        env,
        queue,
        pattern: TrafficPattern,
        n_packets: int,
        craft,
        batch: int = 32,
        counter=None,
    ):
        """Slave task: transmit ``n_packets`` valid packets with the pattern.

        ``craft(buf, index)`` fills each valid packet.  Filler frames carry
        an intentionally corrupted FCS, so any receiving NIC drops them
        before queue assignment.  The wire stays saturated: the transmit
        queue needs no hardware rate control (Figure 9).
        """
        pool = MemPool(
            n_buffers=max(4096, 4 * batch * 8),
            buf_capacity=2048,
        )
        gaps = pattern.gaps_ns(n_packets)
        plan = self.plan(gaps)
        sent = 0
        bufs = pool.buf_array(1)  # re-planned per frame for exact sizes
        while sent < n_packets and env.running():
            # One valid packet...
            bufs.alloc(self.frame_size - units.FCS_SIZE)
            craft(bufs[0], sent)
            yield queue.send(bufs)
            if counter is not None:
                counter.update_with_size(1, self.frame_size)
            # ...then its fillers.
            for wire_len in plan.filler_wire_bytes[sent]:
                filler_size = wire_len - units.WIRE_OVERHEAD  # incl. FCS
                bufs.alloc(filler_size - units.FCS_SIZE)
                bufs[0].corrupt_fcs = True
                bufs[0].eth_packet.fill(
                    eth_src="02:00:00:00:00:ff", eth_dst="ff:ff:ff:ff:ff:ff"
                )
                yield queue.send(bufs)
            sent += 1


def effective_pps(plan: FillPlan) -> float:
    """Average valid-packet rate the plan realises."""
    total_ns = float(np.sum(plan.actual_gaps_ns))
    return len(plan.actual_gaps_ns) / (total_ns / 1e9)


def crc_rate_control_frame_rate(plan: FillPlan) -> float:
    """Total frame rate (valid + fillers) the NIC must sustain.

    Useful to check against the short-frame limit (Section 8.1: 15.6 Mpps).
    """
    total_ns = float(np.sum(plan.actual_gaps_ns))
    frames = len(plan.actual_gaps_ns) + plan.n_fillers
    return frames / (total_ns / 1e9)
