"""Inter-arrival time measurement task (``inter-arrival-times.lua``).

Section 9: inter-arrival times were measured with an Intel 82580, the only
chip in the testbed that timestamps *every* received packet in line rate
(Section 6: "some Intel GbE chips like the 82580 support timestamping all
received packets by prepending the timestamp to the packet buffer").
This task reads those per-packet timestamps off the rx path and feeds a
histogram — the event-driven counterpart of the vectorized Figure 8
pipeline.
"""

from __future__ import annotations

from typing import Optional

from repro.core.histogram import Histogram
from repro.core.memory import MemPool
from repro.errors import TimestampingError


class InterArrivalMeasurement:
    """Collects inter-arrival times from a per-packet-timestamping NIC."""

    def __init__(self, env, device, rx_queue_index: int = 0) -> None:
        if not device.chip.timestamp_all_rx:
            raise TimestampingError(
                f"chip {device.chip.name} cannot timestamp every received "
                f"packet; inter-arrival measurements need an 82580-class "
                f"NIC (Section 6.4)"
            )
        self.env = env
        self.device = device
        self.rx_queue = device.get_rx_queue(rx_queue_index)
        self.histogram = Histogram()
        self.packets_seen = 0
        self._last_stamp: Optional[float] = None
        self._pool = MemPool(n_buffers=512, buf_capacity=2048)

    def task(self, max_packets: Optional[int] = None):
        """Slave task: drain the rx queue and difference the timestamps."""
        env = self.env
        bufs = self._pool.buf_array(64)
        while env.running():
            if max_packets is not None and self.packets_seen >= max_packets:
                return
            n = yield self.rx_queue.recv(bufs, timeout_ns=1_000_000)
            for i in range(n):
                stamp = bufs[i].rx_timestamp_ns
                if stamp is None:
                    continue
                self.packets_seen += 1
                if self._last_stamp is not None:
                    self.histogram.update(stamp - self._last_stamp)
                self._last_stamp = stamp
            bufs.free_all()
