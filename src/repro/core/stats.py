"""Traffic statistics counters (the analog of MoonGen's ``stats.lua``).

Counters sample rates over fixed intervals of *simulated* time and report
averages and standard deviations of the per-interval rates, exactly like the
original's per-second console output.  Three formatter styles exist:
``plain`` (human-readable, used by the example scripts), ``csv`` (the
default in the original, for easy post-processing), and ``none``
(publish-only: totals and per-interval rates accumulate for programmatic
readers such as the metrics registry, but nothing is written anywhere);
output can be diverted to any stream.
"""

from __future__ import annotations

import math
import sys
from typing import Callable, List, Optional, TextIO

from repro.errors import ConfigurationError

#: Default sampling interval: one simulated second, like the original.
DEFAULT_INTERVAL_NS = 1_000_000_000.0


def _fmt_rate(pps: float, byte_rate: float) -> str:
    mbit = byte_rate * 8 / 1e6
    return f"{pps / 1e6:.2f} Mpps, {mbit:.0f} MBit/s"


class _BaseCounter:
    """Shared interval-sampling machinery."""

    def __init__(
        self,
        name: str,
        fmt: str = "csv",
        now_ns: Optional[Callable[[], float]] = None,
        stream: Optional[TextIO] = None,
        interval_ns: float = DEFAULT_INTERVAL_NS,
        direction: str = "TX",
    ) -> None:
        if fmt not in ("plain", "csv", "none"):
            raise ConfigurationError(f"unknown stats format: {fmt!r}")
        self.name = str(name)
        self.fmt = fmt
        self.now_ns = now_ns or (lambda: 0.0)
        self.stream = stream if stream is not None else sys.stdout
        self.interval_ns = interval_ns
        self.direction = direction
        self.total_packets = 0
        self.total_bytes = 0
        self._interval_packets = 0
        self._interval_bytes = 0
        self._interval_start_ns = self.now_ns()
        self._start_ns = self._interval_start_ns
        self.interval_pps: List[float] = []
        self.interval_byte_rates: List[float] = []
        self._finalized = False
        if fmt == "csv":
            self.stream.write("name,direction,interval,packets,bytes,pps,byte_rate\n")

    # -- accounting --------------------------------------------------------------

    def _account(self, packets: int, nbytes: int) -> None:
        if self._finalized:
            raise ConfigurationError(f"counter {self.name!r} already finalized")
        self.total_packets += packets
        self.total_bytes += nbytes
        self._interval_packets += packets
        self._interval_bytes += nbytes
        self._maybe_roll()

    def _maybe_roll(self) -> None:
        now = self.now_ns()
        while now - self._interval_start_ns >= self.interval_ns:
            self._close_interval(self._interval_start_ns + self.interval_ns)

    def _close_interval(self, end_ns: float) -> None:
        seconds = self.interval_ns / 1e9
        pps = self._interval_packets / seconds
        byte_rate = self._interval_bytes / seconds
        self.interval_pps.append(pps)
        self.interval_byte_rates.append(byte_rate)
        index = len(self.interval_pps)
        if self.fmt == "none":
            pass
        elif self.fmt == "plain":
            self.stream.write(
                f"[{self.name}] {self.direction}: {_fmt_rate(pps, byte_rate)}\n"
            )
        else:
            self.stream.write(
                f"{self.name},{self.direction},{index},"
                f"{self._interval_packets},{self._interval_bytes},"
                f"{pps:.1f},{byte_rate:.1f}\n"
            )
        self._interval_packets = 0
        self._interval_bytes = 0
        self._interval_start_ns = end_ns

    # -- results ----------------------------------------------------------------------

    def average_pps(self) -> float:
        """Average packet rate over the whole measurement."""
        elapsed_ns = max(self.now_ns() - self._start_ns, 1.0)
        return self.total_packets / (elapsed_ns / 1e9)

    def average_byte_rate(self) -> float:
        elapsed_ns = max(self.now_ns() - self._start_ns, 1.0)
        return self.total_bytes / (elapsed_ns / 1e9)

    def average_mbit(self) -> float:
        return self.average_byte_rate() * 8 / 1e6

    def stddev_pps(self) -> float:
        """Standard deviation of the per-interval packet rates."""
        rates = self.interval_pps
        if len(rates) < 2:
            return 0.0
        mean = sum(rates) / len(rates)
        var = sum((r - mean) ** 2 for r in rates) / (len(rates) - 1)
        return math.sqrt(var)

    def finalize(self) -> None:
        """Flush and print the final summary (``ctr:finalize()``)."""
        if self._finalized:
            return
        self._finalized = True
        if self.fmt == "none":
            return
        pps = self.average_pps()
        byte_rate = self.average_byte_rate()
        if self.fmt == "plain":
            self.stream.write(
                f"[{self.name}] {self.direction} total: {self.total_packets} "
                f"packets, {self.total_bytes} bytes, "
                f"{_fmt_rate(pps, byte_rate)} "
                f"(StdDev {self.stddev_pps() / 1e6:.2f} Mpps)\n"
            )
        else:
            self.stream.write(
                f"{self.name},{self.direction},total,"
                f"{self.total_packets},{self.total_bytes},"
                f"{pps:.1f},{byte_rate:.1f}\n"
            )


class ManualTxCounter(_BaseCounter):
    """Manually updated transmit counter (Listing 2's ``newManualTxCounter``)."""

    def __init__(self, name: str, fmt: str = "csv", **kwargs) -> None:
        super().__init__(name, fmt, direction="TX", **kwargs)

    def update_with_size(self, packets: int, pkt_size: int) -> None:
        """Account ``packets`` transmitted frames of ``pkt_size`` bytes."""
        self._account(packets, packets * pkt_size)

    def update(self, packets: int, nbytes: int) -> None:
        self._account(packets, nbytes)


class ManualRxCounter(_BaseCounter):
    """Manually updated receive counter."""

    def __init__(self, name: str, fmt: str = "csv", **kwargs) -> None:
        super().__init__(name, fmt, direction="RX", **kwargs)

    def update(self, packets: int, nbytes: int) -> None:
        self._account(packets, nbytes)


class PktRxCounter(_BaseCounter):
    """Per-packet receive counter (Listing 3's ``newPktRxCounter``)."""

    def __init__(self, name: str, fmt: str = "csv", **kwargs) -> None:
        super().__init__(name, fmt, direction="RX", **kwargs)

    def count_packet(self, buf) -> None:
        """Account one received packet buffer."""
        self._account(1, buf.pkt.size + 4)  # size on the wire includes FCS


class DeviceTxCounter(_BaseCounter):
    """Counter fed from the device's hardware statistics registers."""

    def __init__(self, device, fmt: str = "csv", **kwargs) -> None:
        super().__init__(f"dev{device.port_id}", fmt, direction="TX", **kwargs)
        self.device = device
        self._last_packets = device.tx_packets
        self._last_bytes = device.tx_bytes

    def sample(self) -> None:
        """Read the statistics registers and account the delta."""
        packets, nbytes = self.device.tx_packets, self.device.tx_bytes
        self._account(packets - self._last_packets, nbytes - self._last_bytes)
        self._last_packets, self._last_bytes = packets, nbytes


class DeviceRxCounter(_BaseCounter):
    """Receive-side device register counter."""

    def __init__(self, device, fmt: str = "csv", **kwargs) -> None:
        super().__init__(f"dev{device.port_id}", fmt, direction="RX", **kwargs)
        self.device = device
        self._last_packets = device.rx_packets
        self._last_bytes = device.rx_bytes

    def sample(self) -> None:
        packets, nbytes = self.device.rx_packets, self.device.rx_bytes
        self._account(packets - self._last_packets, nbytes - self._last_bytes)
        self._last_packets, self._last_bytes = packets, nbytes
