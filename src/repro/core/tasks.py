"""Slave-task scheduler: runs userscripts against the simulated hardware.

A task owns a simulated CPU core (MoonGen pins one LuaJIT VM per core) and
drives the userscript generator: every yielded op is charged to the
cycle-cost model, advances simulated time, and performs its hardware
interaction — enqueueing descriptors, blocking on ring space, polling rx
rings.  Back-pressure and multi-queue interleaving therefore emerge from the
event loop rather than being scripted.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, TYPE_CHECKING

from repro.core.memory import PacketBuffer
from repro.core.ops import BarrierOp, CyclesOp, RecvOp, SendOp, SleepOp
from repro.core.pipes import PipeRecvOp
from repro.core.queues import RxPacket
from repro.errors import TaskError
from repro.nicsim.cpu import CpuCore
from repro.nicsim.eventloop import Signal, wait_any
from repro.nicsim.nic import (
    _FCS_SIZE,
    _WIRE_OVERHEAD,
    _frame_seq,
    SimFrame,
    default_frame_pool,
)
from repro.packet.packet import PacketData

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.env import MoonGenEnv


def materialize_frame(buf: PacketBuffer) -> SimFrame:
    """Snapshot a packet buffer into a wire frame, applying offloads.

    The NIC computes offloaded checksums while fetching the packet; the
    snapshot therefore carries correct checksums if the corresponding
    descriptor bits are set.  The buffer itself is *not* modified — like
    hardware offloading, the checksum exists only on the wire.
    """
    pkt = buf.pkt
    size = pkt._size
    if buf.offload_ip or buf.offload_l4:
        data = bytearray(pkt.data[:size])
        shadow = PacketData.wrap(data, size)
        kind = shadow.classify()
        if kind in ("udp4", "tcp4", "icmp4", "ip4"):
            if buf.offload_l4:
                if kind == "udp4":
                    shadow.udp_packet.calculate_udp_checksum()
                elif kind == "tcp4":
                    shadow.tcp_packet.calculate_tcp_checksum()
                elif kind == "icmp4":
                    shadow.icmp_packet.calculate_icmp_checksum()
            if buf.offload_ip:
                shadow.ip_packet.calculate_ip_checksum()
        elif kind == "udp6" and buf.offload_l4:
            shadow.udp6_packet.calculate_udp_checksum()
        payload = bytes(data)
    else:
        # No offloads: snapshot straight to bytes (one copy, not three).
        payload = bytes(memoryview(pkt.data)[:size])
    frame = default_frame_pool.acquire(payload, fcs_ok=not buf.corrupt_fcs)
    if buf.timestamp_flag:
        frame.meta["timestamp"] = True
    frame.recycle = buf.recycle_hook
    return frame


def materialize_frames(bufs: List[PacketBuffer]) -> List[SimFrame]:
    """Materialize a whole batch; semantics of :func:`materialize_frame`.

    The per-packet call and global-pool lookup are measurable at line
    rate, so the plain no-offload path is unrolled here — including
    ``FramePool.acquire`` itself, whose shell reset is rewritten inline
    (the ``recycle`` slot is reassigned per frame, never left stale);
    offloaded buffers take the full per-frame path.
    """
    pool = default_frame_pool
    free = pool._free
    fpop = free.pop
    seq_next = _frame_seq.__next__
    out: List[SimFrame] = []
    append = out.append
    recycled = 0
    for buf in bufs:
        if buf.offload_ip or buf.offload_l4:
            append(materialize_frame(buf))
            continue
        pkt = buf.pkt
        psize = pkt._size
        data = bytes(memoryview(pkt.data)[:psize])
        if free:
            frame = fpop()
            frame.data = data
            frame.fcs_ok = not buf.corrupt_fcs
            frame.seq = seq_next()
            size = psize + _FCS_SIZE
            frame.size = size
            frame.wire_size = size + _WIRE_OVERHEAD
            frame.pool = pool
            frame.recycle = buf.recycle_hook
            recycled += 1
            if buf.timestamp_flag:
                frame.meta["timestamp"] = True
        else:
            frame = SimFrame(data, not buf.corrupt_fcs)
            frame.pool = pool
            frame.recycle = buf.recycle_hook
            if buf.timestamp_flag:
                frame.meta["timestamp"] = True
        append(frame)
    if recycled:
        pool.recycled += recycled
    return out


class Task:
    """A slave task: a userscript generator pinned to a simulated core."""

    def __init__(
        self,
        env: "MoonGenEnv",
        fn,
        args: tuple,
        core: CpuCore,
        name: Optional[str] = None,
    ) -> None:
        self.env = env
        self.core = core
        self.name = name or getattr(fn, "__name__", "slave")
        generator = fn(*args)
        if not isinstance(generator, Generator):
            raise TaskError(
                f"slave function {self.name!r} must be a generator function "
                f"(use 'yield queue.send(bufs)' for blocking calls)"
            )
        self.process = env.loop.spawn(self._drive(generator), name=self.name)

    # -- status ------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.process.finished

    @property
    def result(self) -> Any:
        return self.process.result

    def check(self) -> None:
        """Re-raise any exception the userscript died with."""
        self.process.check()

    def kill(self) -> None:
        self.process.kill()

    # -- the interpreter -----------------------------------------------------

    def _drive(self, gen: Generator):
        result: Any = None
        while True:
            try:
                op = gen.send(result)
            except StopIteration as stop:
                return getattr(stop, "value", None)
            result = yield from self._execute(op)

    def _execute(self, op):
        if isinstance(op, SendOp):
            return (yield from self._send(op))
        if isinstance(op, RecvOp):
            return (yield from self._recv(op))
        if isinstance(op, SleepOp):
            yield max(0, round(op.duration_ns * 1000))
            return None
        if isinstance(op, CyclesOp):
            delay = self.core.charge(op.cycles)
            if delay:
                yield delay
            return None
        if isinstance(op, PipeRecvOp):
            return (yield from self._pipe_recv(op))
        if isinstance(op, BarrierOp):
            for signal in op.signals:
                yield signal
            return None
        if op is None:
            yield None
            return None
        raise TaskError(f"task {self.name!r} yielded unsupported op {op!r}")

    def _ledger_cycles(self, entries: List[tuple], batch: int) -> float:
        model = self.core.model
        costs = model.costs
        freq = self.core.freq_hz
        total = 0.0
        for kind, arg in entries:
            if kind == "offload_ip":
                total += model.op_cycles(costs.offload_ip, freq, batch)
            elif kind == "offload_udp":
                total += model.op_cycles(costs.offload_udp, freq, batch)
            elif kind == "offload_tcp":
                total += model.op_cycles(costs.offload_tcp, freq, batch)
            elif kind == "modify":
                cost = costs.modify if arg <= 1 else costs.modify_two_cachelines
                total += model.op_cycles(cost, freq, batch)
            elif kind == "random":
                total += model.random_fields_cycles(arg, freq, batch)
            elif kind == "counter":
                total += model.counter_fields_cycles(arg, freq, batch)
            elif kind == "sw_checksum":
                total += costs.software_checksum_cost(arg) * batch
            else:
                raise TaskError(f"unknown ledger entry {kind!r}")
        return total

    def _send(self, op: SendOp):
        bufs = op.bufs
        batch = len(bufs)
        if batch == 0:
            return 0
        model = self.core.model
        cycles = model.op_cycles(model.costs.tx_base, self.core.freq_hz, batch)
        call_cost = model.costs.tx_call_overhead
        if call_cost.cycles or call_cost.stall_ns:
            cycles += model.op_cycles(call_cost, self.core.freq_hz, 1)
        cycles += self._ledger_cycles(bufs.drain_ledger(), batch)
        cycles += op.extra_cycles
        delay = self.core.charge(cycles)
        if delay:
            yield delay
        frames = materialize_frames(bufs.release())
        sim = op.queue.sim
        total = len(frames)
        pend = sim.open_send(frames)
        if pend is None:
            # A second concurrent send on this queue: undeclared busy-wait
            # protocol (the batch tier cannot model its park/wake instants).
            sent = sim.enqueue(frames)
            while sent < total:
                sent += sim.enqueue(frames, start=sent)
                if sent < total and sim.free_slots == 0:
                    yield sim.space_signal
            return total
        try:
            # Drive progress off the declared handle, not a local counter:
            # a batch kernel may have pushed the remainder arithmetically
            # while this task was parked, advancing ``pend.sent`` for us.
            sim.enqueue(frames)
            while pend.sent < total:
                sim.enqueue(frames, start=pend.sent)
                # Park only while the ring is genuinely full: the enqueue's
                # own kick may have drained descriptors into the NIC FIFO
                # already, in which case the next enqueue attempt succeeds
                # immediately (the busy-wait loop of a real DPDK app).
                if pend.sent < total and (sim.free_slots == 0 or pend.defer):
                    pend.parked = True
                    yield sim.space_signal
                    pend.parked = False
        finally:
            sim.close_send(pend)
        return total

    def _pipe_recv(self, op: PipeRecvOp):
        pipe = op.pipe
        deadline_ps: Optional[int] = None
        if op.timeout_ns is not None:
            deadline_ps = self.env.loop.now_ps + round(op.timeout_ns * 1000)
        while True:
            message = pipe.try_recv()
            if message is not None:
                return message
            if not self.env.running():
                return None
            if deadline_ps is not None:
                remaining = deadline_ps - self.env.loop.now_ps
                if remaining <= 0:
                    return None
                yield wait_any(self.env.loop, [pipe.data_signal], remaining)
            else:
                yield wait_any(
                    self.env.loop, [pipe.data_signal], self.env.poll_slice_ps
                )

    def _recv(self, op: RecvOp):
        sim = op.queue.sim
        deadline_ps: Optional[int] = None
        if op.timeout_ns is not None:
            deadline_ps = self.env.loop.now_ps + round(op.timeout_ns * 1000)
        while not sim.ring:
            if not self.env.running():
                op.bufs.adopt([])
                return 0
            if deadline_ps is not None:
                remaining = deadline_ps - self.env.loop.now_ps
                if remaining <= 0:
                    op.bufs.adopt([])
                    return 0
                yield wait_any(self.env.loop, [sim.packet_signal], remaining)
            else:
                # Never park unconditionally: wake at least at the stop
                # horizon so tasks notice env.running() turning false.
                yield wait_any(
                    self.env.loop, [sim.packet_signal], self.env.poll_slice_ps
                )
        frames = sim.fetch(op.bufs.size)
        packets = [RxPacket(f) for f in frames]
        op.bufs.adopt(packets)
        model = self.core.model
        cycles = model.op_cycles(model.costs.rx_base, self.core.freq_hz, len(frames))
        delay = self.core.charge(cycles)
        if delay:
            yield delay
        return len(frames)
