"""Latency / inter-arrival histograms.

MoonGen's timestamping scripts aggregate samples into histograms and report
average latencies, percentiles, and distribution files (Section 6.4: several
thousand timestamped packets per second feed averages and histograms).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, TextIO, Tuple


class Histogram:
    """A sample container with percentile and binning helpers.

    Samples are floats in nanoseconds (latencies, inter-arrival times).
    """

    def __init__(self, samples: Optional[Iterable[float]] = None) -> None:
        self._samples: List[float] = list(samples) if samples is not None else []
        self._sorted: Optional[List[float]] = None

    def update(self, sample: float) -> None:
        self._samples.append(float(sample))
        self._sorted = None

    def extend(self, samples: Iterable[float]) -> None:
        self._samples.extend(float(s) for s in samples)
        self._sorted = None

    def __len__(self) -> int:
        return len(self._samples)

    def merge(self, other: "Histogram") -> "Histogram":
        """Combine with another histogram (multi-queue/core result merging)."""
        merged = Histogram(self._samples)
        merged.extend(other.samples)
        return merged

    @property
    def samples(self) -> Sequence[float]:
        return tuple(self._samples)

    def _ensure_sorted(self) -> List[float]:
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        return self._sorted

    # -- summary statistics ----------------------------------------------------

    def min(self) -> float:
        if not self._samples:
            raise ValueError("empty histogram")
        return self._ensure_sorted()[0]

    def max(self) -> float:
        if not self._samples:
            raise ValueError("empty histogram")
        return self._ensure_sorted()[-1]

    def avg(self) -> float:
        if not self._samples:
            raise ValueError("empty histogram")
        return sum(self._samples) / len(self._samples)

    def stddev(self) -> float:
        if len(self._samples) < 2:
            return 0.0
        mean = self.avg()
        var = sum((s - mean) ** 2 for s in self._samples) / (len(self._samples) - 1)
        return math.sqrt(var)

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, ``p`` in [0, 100]."""
        data = self._ensure_sorted()
        if not data:
            raise ValueError("empty histogram")
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        if len(data) == 1:
            return data[0]
        rank = p / 100 * (len(data) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return data[low]
        frac = rank - low
        return data[low] + frac * (data[high] - data[low])

    def median(self) -> float:
        return self.percentile(50)

    def quartiles(self) -> Tuple[float, float, float]:
        """(25th, 50th, 75th) percentiles — the series of Figures 10/11."""
        return self.percentile(25), self.percentile(50), self.percentile(75)

    # -- distribution helpers -----------------------------------------------------

    def fraction_within(self, target: float, tolerance: float) -> float:
        """Fraction of samples with ``|sample - target| <= tolerance``.

        This is exactly the ±64/±128/±256/±512 ns metric of Table 4.
        """
        if not self._samples:
            raise ValueError("empty histogram")
        hits = sum(1 for s in self._samples if abs(s - target) <= tolerance)
        return hits / len(self._samples)

    def fraction_below(self, threshold: float) -> float:
        """Fraction of samples strictly below a threshold (micro-burst rate)."""
        if not self._samples:
            raise ValueError("empty histogram")
        return sum(1 for s in self._samples if s < threshold) / len(self._samples)

    def bins(self, width: float, start: Optional[float] = None) -> Dict[float, int]:
        """Bin samples into fixed-width buckets keyed by the bin's left edge.

        The Figure 8 histograms use 64 ns bins (the 82580's precision).
        """
        if width <= 0:
            raise ValueError(f"bin width must be positive: {width}")
        base = self.min() if start is None else start
        out: Dict[float, int] = {}
        for s in self._samples:
            edge = base + math.floor((s - base) / width) * width
            out[edge] = out.get(edge, 0) + 1
        return dict(sorted(out.items()))

    # -- output ----------------------------------------------------------------------

    def write_csv(self, stream: TextIO, bin_width: Optional[float] = None) -> None:
        """Write either raw samples or binned counts as CSV."""
        if bin_width is None:
            stream.write("sample_ns\n")
            for s in self._samples:
                stream.write(f"{s}\n")
            return
        stream.write("bin_ns,count\n")
        for edge, count in self.bins(bin_width).items():
            stream.write(f"{edge},{count}\n")

    def summary(self) -> str:
        """One-line human-readable summary."""
        if not self._samples:
            return "histogram: empty"
        q1, q2, q3 = self.quartiles()
        return (
            f"n={len(self)} min={self.min():.1f} q1={q1:.1f} med={q2:.1f} "
            f"q3={q3:.1f} max={self.max():.1f} avg={self.avg():.1f} "
            f"std={self.stddev():.1f} (ns)"
        )
