"""Per-packet field modifiers: the two varying-traffic strategies.

Section 5.6.2 compares two ways to generate varying flows: a random number
per packet, or a wrapping counter.  These helpers apply either strategy to
a whole bufArray — mutating the actual packet bytes *and* charging the
cycle ledger — so scripts express "randomize the source IP over 256
addresses" in one line with correct timing accounting.

Example::

    randomizer = FieldRandomizer([src_ip_field("10.0.0.1", 256)], seed=1)
    ...
    bufs.alloc(60)
    randomizer.apply(bufs)
    yield queue.send(bufs)
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.core.memory import BufArray, PacketBuffer
from repro.errors import ConfigurationError
from repro.packet.address import Ip4Address, MacAddress


@dataclass(frozen=True)
class VaryingField:
    """One varying header field: a setter plus a value range."""

    name: str
    #: Applies value ``i`` (0 <= i < range_size) to a packet buffer.
    setter: Callable[[PacketBuffer, int], None]
    range_size: int

    def __post_init__(self) -> None:
        if self.range_size <= 0:
            raise ConfigurationError(
                f"field {self.name!r} needs a positive range"
            )


def src_ip_field(base: str, range_size: int = 256) -> VaryingField:
    """Vary the IPv4 source address over ``base .. base+range-1``."""
    base_addr = Ip4Address(base)

    def setter(buf: PacketBuffer, i: int) -> None:
        buf.ip_packet.ip.src = base_addr + i

    return VaryingField("ip_src", setter, range_size)


def dst_ip_field(base: str, range_size: int = 256) -> VaryingField:
    """Vary the IPv4 destination address over ``base .. base+range-1``."""
    base_addr = Ip4Address(base)

    def setter(buf: PacketBuffer, i: int) -> None:
        buf.ip_packet.ip.dst = base_addr + i

    return VaryingField("ip_dst", setter, range_size)


def src_port_field(base: int = 1024, range_size: int = 1024) -> VaryingField:
    """Vary the UDP source port over ``base .. base+range-1``."""
    def setter(buf: PacketBuffer, i: int) -> None:
        buf.udp_packet.udp.src_port = base + i

    return VaryingField("udp_src", setter, range_size)


def dst_port_field(base: int = 1024, range_size: int = 1024) -> VaryingField:
    """Vary the UDP destination port over ``base .. base+range-1``."""
    def setter(buf: PacketBuffer, i: int) -> None:
        buf.udp_packet.udp.dst_port = base + i

    return VaryingField("udp_dst", setter, range_size)


def src_mac_field(base: str, range_size: int = 256) -> VaryingField:
    """Vary the Ethernet source MAC over ``base .. base+range-1``."""
    base_mac = MacAddress(base)

    def setter(buf: PacketBuffer, i: int) -> None:
        buf.eth_packet.eth.src = base_mac + i

    return VaryingField("eth_src", setter, range_size)


def payload_field(offset: int, width: int = 4,
                  range_size: int = 1 << 31) -> VaryingField:
    """Vary ``width`` payload bytes at ``offset`` (random payload tests)."""

    def setter(buf: PacketBuffer, i: int) -> None:
        buf.pkt.data[offset:offset + width] = (i % (1 << (8 * width))).to_bytes(
            width, "big"
        )

    return VaryingField(f"payload@{offset}", setter, range_size)


class FieldRandomizer:
    """Applies a fresh random value per packet to each field.

    Marginal cost ≈ 17 cycles per field (Table 2's random column, charged
    through the ledger).
    """

    def __init__(self, fields: Sequence[VaryingField], seed: int = 0) -> None:
        if not fields:
            raise ConfigurationError("need at least one field")
        self.fields: List[VaryingField] = list(fields)
        self.rng = random.Random(seed)

    def apply(self, bufs: BufArray) -> None:
        for buf in bufs:
            for field in self.fields:
                field.setter(buf, self.rng.randrange(field.range_size))
        bufs.charge_random_fields(len(self.fields))


class FieldCounter:
    """Applies a wrapping counter per field — the cheap alternative.

    Marginal cost ≈ 1 cycle per field (Table 2's counter column).
    """

    def __init__(self, fields: Sequence[VaryingField]) -> None:
        if not fields:
            raise ConfigurationError("need at least one field")
        self.fields: List[VaryingField] = list(fields)
        self._counters = [0] * len(fields)

    def apply(self, bufs: BufArray) -> None:
        for buf in bufs:
            for i, field in enumerate(self.fields):
                field.setter(buf, self._counters[i])
                self._counters[i] = (self._counters[i] + 1) % field.range_size
        bufs.charge_counter_fields(len(self.fields))
