"""MoonGen core: the scriptable packet generator API.

The public surface mirrors the Lua API of the original (Section 4 of the
paper) in snake_case Python:

===============================  =======================================
MoonGen (Lua)                    this library (Python)
===============================  =======================================
``device.config(port, 1, 2)``    ``env.config_device(port, rx=1, tx=2)``
``dev:getTxQueue(0)``            ``dev.get_tx_queue(0)``
``queue:setRate(rate)``          ``queue.set_rate(rate)``
``mg.launchLua("slave", q)``     ``env.launch(slave, q)``
``mg.waitForSlaves()``           ``env.wait_for_slaves()``
``memory.createMemPool(f)``      ``env.create_mempool(fill=f)``
``mem:bufArray()``               ``mem.buf_array()``
``bufs:alloc(size)``             ``bufs.alloc(size)``
``bufs:offloadUdpChecksums()``   ``bufs.offload_udp_checksums()``
``queue:send(bufs)``             ``yield queue.send(bufs)``
``queue:recv(bufs)``             ``rx = yield queue.recv(bufs)``
``dpdk.running()``               ``env.running()``
===============================  =======================================

Slave tasks are generator functions; blocking calls are ``yield``-ed —
the Python stand-in for MoonGen's per-core LuaJIT VMs.
"""

from repro.core.env import MoonGenEnv
from repro.core.arp import ArpResponder
from repro.core.device import Device
from repro.core.flows import (
    FieldCounter,
    FieldRandomizer,
    VaryingField,
    dst_ip_field,
    dst_port_field,
    payload_field,
    src_ip_field,
    src_mac_field,
    src_port_field,
)
from repro.core.filters import FlowDirector, RssHash, install_flow_director, install_rss
from repro.core.icmp_ping import IcmpResponder, PingClient
from repro.core.latency import LoadLatencyExperiment, LoadLatencyResult
from repro.core.measure import InterArrivalMeasurement
from repro.core.monitor import DeviceStatsMonitor
from repro.core.softpace import SleepPacedLoadTask
from repro.core.memory import BufArray, MemPool, PacketBuffer
from repro.core.pipes import Pipe
from repro.core.queues import RxQueue, TxQueue
from repro.core.histogram import Histogram
from repro.core.stats import (
    DeviceRxCounter,
    DeviceTxCounter,
    ManualRxCounter,
    ManualTxCounter,
    PktRxCounter,
)
from repro.core.timestamping import Timestamper, sync_clocks
from repro.core.ratecontrol import (
    CbrPattern,
    CustomGapPattern,
    GapFiller,
    PoissonPattern,
    UniformBurstPattern,
)

__all__ = [
    "ArpResponder",
    "BufArray",
    "CbrPattern",
    "CustomGapPattern",
    "Device",
    "FieldCounter",
    "FieldRandomizer",
    "FlowDirector",
    "IcmpResponder",
    "InterArrivalMeasurement",
    "LoadLatencyExperiment",
    "LoadLatencyResult",
    "PingClient",
    "Pipe",
    "RssHash",
    "SleepPacedLoadTask",
    "install_flow_director",
    "install_rss",
    "VaryingField",
    "dst_ip_field",
    "dst_port_field",
    "payload_field",
    "src_ip_field",
    "src_mac_field",
    "src_port_field",
    "DeviceRxCounter",
    "DeviceStatsMonitor",
    "DeviceTxCounter",
    "GapFiller",
    "Histogram",
    "ManualRxCounter",
    "ManualTxCounter",
    "MemPool",
    "MoonGenEnv",
    "PacketBuffer",
    "PktRxCounter",
    "PoissonPattern",
    "RxQueue",
    "Timestamper",
    "TxQueue",
    "UniformBurstPattern",
    "sync_clocks",
]
