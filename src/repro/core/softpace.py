"""Classic software rate control: the push model of Section 7.1.

Existing software generators pace packets by *waiting* between sends: the
software pushes one descriptor, sleeps, pushes the next.  Two mechanisms
ruin the precision (Figure 5):

* the OS/CPU timer has finite resolution and wakeup jitter, so the sleep
  never ends exactly on time;
* the NIC fetches descriptors asynchronously via DMA on its own schedule,
  so even a perfectly timed doorbell does not control the wire timing.

:class:`SleepPacedLoadTask` implements this mechanism over the simulated
NIC, with both imperfections modelled explicitly.  Benches compare it
against hardware rate control and the CRC-gap method on the same 82580
measurement path — the event-driven counterpart of Section 7.3.

Note the queueing constraint the paper highlights: to avoid back-to-back
transmission the sender may keep only ONE packet in flight (Figure 5),
which also kills batching — a second reason software pacing cannot scale.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.core.memory import MemPool
from repro.core.ratecontrol import TrafficPattern
from repro.errors import ConfigurationError

#: A typical high-resolution timer on a busy-polling core.
DEFAULT_TIMER_RESOLUTION_NS = 250.0
#: DMA descriptor fetch latency: the NIC pulls the packet "later" on its
#: own schedule (Section 7.1), with PCIe arbitration jitter.
DEFAULT_DMA_BASE_NS = 300.0
DEFAULT_DMA_JITTER_NS = 150.0


class SleepPacedLoadTask:
    """A software-paced packet generator (the mechanism MoonGen replaces)."""

    def __init__(
        self,
        env,
        queue,
        pattern: TrafficPattern,
        craft: Optional[Callable] = None,
        frame_size: int = 64,
        timer_resolution_ns: float = DEFAULT_TIMER_RESOLUTION_NS,
        dma_base_ns: float = DEFAULT_DMA_BASE_NS,
        dma_jitter_ns: float = DEFAULT_DMA_JITTER_NS,
        seed: int = 0,
    ) -> None:
        if timer_resolution_ns <= 0:
            raise ConfigurationError("timer resolution must be positive")
        self.env = env
        self.queue = queue
        self.pattern = pattern
        self.craft = craft
        self.frame_size = frame_size
        self.timer_resolution_ns = timer_resolution_ns
        self.dma_base_ns = dma_base_ns
        self.dma_jitter_ns = dma_jitter_ns
        self.rng = random.Random(seed)
        self.sent = 0
        self._pool = MemPool(n_buffers=256)

    def _sleep_actual_ns(self, desired_ns: float) -> float:
        """What the timer actually delivers for a requested sleep.

        Wakeups land on the next timer tick at or after the deadline, plus
        scheduler jitter — the classic source of gap imprecision.
        """
        res = self.timer_resolution_ns
        ticks = -(-desired_ns // res)  # ceil: never wake early
        jitter = abs(self.rng.gauss(0.0, res / 3))
        return ticks * res + jitter

    def task(self, n_packets: int):
        """Slave task: send one packet, wait out the gap, repeat.

        One packet in flight at a time (Figure 5's queueing constraint).
        """
        env = self.env
        bufs = self._pool.buf_array(1)
        gaps = self.pattern.iter_gaps_ns()
        next_send_ns = env.now_ns
        while self.sent < n_packets and env.running():
            bufs.alloc(self.frame_size - 4)
            if self.craft is not None:
                self.craft(bufs[0], self.sent)
            else:
                bufs[0].eth_packet.fill(eth_type=0x0800)
            # The NIC fetches the descriptor asynchronously: the software
            # cannot control when the packet actually leaves (Section 7.1).
            dma_delay = self.dma_base_ns + self.rng.uniform(
                0.0, self.dma_jitter_ns)
            yield env.sleep_ns(dma_delay)
            yield self.queue.send(bufs)
            self.sent += 1
            gap = next(gaps)
            next_send_ns += gap
            remaining = next_send_ns - env.now_ns
            if remaining > 0:
                yield env.sleep_ns(self._sleep_actual_ns(remaining))
