"""Sequence tracking: loss, reordering, and duplicate detection.

A packet generator that can also receive (Section 10: "MoonGen also
features packet reception and analysis") needs to relate sent to received
traffic.  :class:`SequenceStamper` writes a 32-bit sequence number into the
payload of outgoing packets; :class:`SequenceTracker` checks the numbers on
the receive side and accounts losses, reorderings, and duplicates — the
accounting behind any loss-rate experiment (e.g. RFC 2544 trials).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.memory import BufArray
from repro.errors import ConfigurationError

#: Payload offset for the sequence number: after the UDP header.
DEFAULT_SEQ_OFFSET = 42


class SequenceStamper:
    """Writes consecutive sequence numbers into outgoing packets."""

    def __init__(self, offset: int = DEFAULT_SEQ_OFFSET) -> None:
        self.offset = offset
        self.next_seq = 0

    def stamp(self, bufs: BufArray) -> None:
        """Number every packet in the batch; charges one counter field."""
        for buf in bufs:
            if buf.pkt.size < self.offset + 4:
                raise ConfigurationError(
                    f"packet of {buf.pkt.size} B has no room for a sequence "
                    f"number at offset {self.offset}"
                )
            buf.pkt.data[self.offset:self.offset + 4] = (
                self.next_seq & 0xFFFFFFFF
            ).to_bytes(4, "big")
            self.next_seq += 1
        bufs.charge_counter_fields(1)


@dataclass
class SequenceReport:
    """Aggregate receive-side accounting.

    ``gap_events``/``longest_gap`` characterize the *shape* of loss:
    under a bursty channel (e.g. a ``repro.faults`` Gilbert–Elliott model
    or a link flap) the same loss fraction arrives as few, long gaps —
    ``gap_events`` approximates the number of bursts and ``longest_gap``
    the worst one, which a uniform loss fraction would hide.
    """

    received: int = 0
    lost: int = 0
    reordered: int = 0
    duplicates: int = 0
    #: Distinct sequence-number gaps observed (bursts, if loss is bursty).
    gap_events: int = 0
    #: Largest single gap, in packets, at the time it was observed.
    longest_gap: int = 0

    @property
    def loss_fraction(self) -> float:
        """Fraction of expected packets lost, clamped to [0, 1].

        Clamped because straggler re-classification makes ``lost``
        transiently non-monotonic; a report read mid-stream must still be
        a valid fraction.
        """
        total = self.received + self.lost
        if total <= 0:
            return 0.0
        return min(1.0, max(0.0, self.lost / total))


class SequenceTracker:
    """Checks sequence numbers on received packets.

    Loss accounting is gap-based: a jump from n to n+k marks k-1 packets
    lost; if one of them shows up later it is re-classified as reordered.
    """

    def __init__(self, offset: int = DEFAULT_SEQ_OFFSET,
                 window: int = 4096) -> None:
        self.offset = offset
        self.window = window
        self.report = SequenceReport()
        self._expected = 0
        self._missing = set()
        self._seen_recent = set()

    def observe(self, buf) -> int:
        """Account one received packet buffer; returns its sequence number."""
        data = buf.pkt.data
        seq = int.from_bytes(data[self.offset:self.offset + 4], "big")
        report = self.report
        if seq in self._seen_recent:
            report.duplicates += 1
            return seq
        self._remember(seq)
        if seq == self._expected:
            report.received += 1
            self._expected += 1
        elif seq > self._expected:
            # A gap: everything skipped is provisionally lost.
            skipped = range(self._expected, seq)
            self._missing.update(skipped)
            report.lost += len(skipped)
            report.gap_events += 1
            if len(skipped) > report.longest_gap:
                report.longest_gap = len(skipped)
            report.received += 1
            self._expected = seq + 1
        else:
            # A straggler from an earlier gap.
            if seq in self._missing:
                self._missing.discard(seq)
                report.lost -= 1
                report.reordered += 1
                report.received += 1
            else:
                report.duplicates += 1
        return seq

    def observe_batch(self, bufs: BufArray) -> None:
        for buf in bufs:
            self.observe(buf)

    def _remember(self, seq: int) -> None:
        self._seen_recent.add(seq)
        if len(self._seen_recent) > self.window:
            # Evict the oldest half; exactness only matters within the
            # reordering window, like real loss counters.
            cutoff = max(self._seen_recent) - self.window // 2
            self._seen_recent = {s for s in self._seen_recent if s >= cutoff}
