"""ICMP echo: a responder task and a software-RTT ping client.

MoonGen ships ICMP example scripts (Section 10).  The responder answers
echo requests addressed to it; the ping task measures round-trip times in
*software* (send time to receive time on the simulated core) — a useful
contrast to the hardware timestamping engine: software RTTs include the
generator's own batching and polling slack, which is exactly why the paper
builds the PTP machinery (Section 6).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.histogram import Histogram
from repro.core.memory import MemPool
from repro.packet.address import Ip4Address
from repro.packet.icmp import IcmpType


class IcmpResponder:
    """Answers ICMP echo requests for one IPv4 address."""

    def __init__(self, env, device, address: str,
                 rx_queue_index: int = 0, tx_queue_index: int = 0) -> None:
        self.env = env
        self.device = device
        self.address = Ip4Address(address)
        self.rx_queue = device.get_rx_queue(rx_queue_index)
        self.tx_queue = device.get_tx_queue(tx_queue_index)
        self.answered = 0
        self._pool = MemPool(n_buffers=256, buf_capacity=256)

    def task(self):
        env = self.env
        rx_bufs = self._pool.buf_array(16)
        tx_bufs = self._pool.buf_array(1)
        while env.running():
            n = yield self.rx_queue.recv(rx_bufs, timeout_ns=1_000_000)
            requests = []
            for i in range(n):
                buf = rx_bufs[i]
                if buf.pkt.classify() != "icmp4":
                    continue
                pkt = buf.pkt.icmp_packet
                if (pkt.icmp.type == IcmpType.ECHO_REQUEST
                        and pkt.ip.dst == self.address):
                    requests.append((
                        pkt.eth.src, pkt.ip.src,
                        pkt.icmp.identifier, pkt.icmp.sequence,
                        buf.pkt.size,
                    ))
            rx_bufs.free_all()
            for eth_src, ip_src, ident, seq, size in requests:
                tx_bufs.alloc(size)
                reply = tx_bufs[0].pkt.icmp_packet
                reply.fill(
                    pkt_length=size,
                    eth_src=self.device.mac,
                    eth_dst=eth_src,
                    ip_src=self.address,
                    ip_dst=ip_src,
                    icmp_type=IcmpType.ECHO_REPLY,
                    icmp_id=ident,
                    icmp_seq=seq,
                )
                tx_bufs.offload_ip_checksums()
                yield self.tx_queue.send(tx_bufs)
                self.answered += 1


class PingClient:
    """Sends echo requests and records software round-trip times."""

    def __init__(self, env, device, source_ip: str, target_ip: str,
                 target_mac, identifier: int = 0x4D47,
                 rx_queue_index: int = 0, tx_queue_index: int = 0) -> None:
        self.env = env
        self.device = device
        self.source_ip = source_ip
        self.target_ip = target_ip
        self.target_mac = target_mac
        self.identifier = identifier
        self.rx_queue = device.get_rx_queue(rx_queue_index)
        self.tx_queue = device.get_tx_queue(tx_queue_index)
        self.rtts = Histogram()
        self.lost = 0
        self._pool = MemPool(n_buffers=64, buf_capacity=256)

    def task(self, count: int = 5, interval_ns: float = 1_000_000.0,
             timeout_ns: float = 10_000_000.0, size: int = 64):
        env = self.env
        tx_bufs = self._pool.buf_array(1)
        rx_bufs = self._pool.buf_array(8)
        for seq in range(1, count + 1):
            if not env.running():
                return
            tx_bufs.alloc(size)
            request = tx_bufs[0].pkt.icmp_packet
            request.fill(
                pkt_length=size,
                eth_src=self.device.mac,
                eth_dst=self.target_mac,
                ip_src=self.source_ip,
                ip_dst=self.target_ip,
                icmp_type=IcmpType.ECHO_REQUEST,
                icmp_id=self.identifier,
                icmp_seq=seq,
            )
            tx_bufs.offload_ip_checksums()
            sent_at = env.now_ns
            yield self.tx_queue.send(tx_bufs)
            rtt = yield from self._await_reply(rx_bufs, seq, sent_at, timeout_ns)
            if rtt is None:
                self.lost += 1
            else:
                self.rtts.update(rtt)
            if interval_ns > 0:
                yield env.sleep_ns(interval_ns)

    def _await_reply(self, rx_bufs, seq: int, sent_at: float,
                     timeout_ns: float):
        env = self.env
        deadline = env.now_ns + timeout_ns
        while env.now_ns < deadline and env.running():
            n = yield self.rx_queue.recv(
                rx_bufs, timeout_ns=deadline - env.now_ns)
            hit: Optional[float] = None
            for i in range(n):
                buf = rx_bufs[i]
                if buf.pkt.classify() != "icmp4":
                    continue
                pkt = buf.pkt.icmp_packet
                if (pkt.icmp.type == IcmpType.ECHO_REPLY
                        and pkt.icmp.identifier == self.identifier
                        and pkt.icmp.sequence == seq):
                    hit = env.now_ns - sent_at
            rx_bufs.free_all()
            if hit is not None:
                return hit
            if n == 0:
                return None
        return None
