"""Operations userscripts yield to the task scheduler.

A slave task is a generator; every interaction with simulated hardware is an
op object produced by the API (``queue.send(bufs)``, ``env.sleep_us(10)``)
and ``yield``-ed.  The task scheduler (:mod:`repro.core.tasks`) interprets
the op: it charges the cycle-cost model on the task's core, advances
simulated time, performs the hardware interaction (possibly blocking on ring
space or packet arrival), and resumes the script with the op's result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.memory import BufArray
    from repro.core.queues import RxQueue, TxQueue


@dataclass
class SendOp:
    """Transmit a batch: charges IO + ledger costs, blocks on ring space."""

    queue: "TxQueue"
    bufs: "BufArray"
    #: Extra cycles to charge per batch (script-specific logic not covered
    #: by the ledger helpers).
    extra_cycles: float = 0.0

    result_name = "sent"


@dataclass
class RecvOp:
    """Receive a batch: blocks until ≥1 packet or the timeout elapses."""

    queue: "RxQueue"
    bufs: "BufArray"
    timeout_ns: Optional[float] = None


@dataclass
class SleepOp:
    """Idle the core for a fixed simulated duration."""

    duration_ns: float


@dataclass
class CyclesOp:
    """Charge raw cycles (models script work outside the standard ops)."""

    cycles: float


@dataclass
class BarrierOp:
    """Wait until a set of signals has triggered (inter-task sync)."""

    signals: List[object] = field(default_factory=list)
