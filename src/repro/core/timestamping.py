"""Hardware timestamping: clock sync, drift handling, latency probes.

Implements Section 6 of the paper:

* :func:`sync_clocks` — the 7-read median synchronisation between two port
  clocks, robust against the ~5 % PCIe read outliers, accurate to ±1 tick;
* :func:`measure_drift` — the ``drift.lua`` measurement of inter-clock
  drift in µs/s;
* :class:`Timestamper` — the latency-probe engine: one timestamped PTP
  packet in flight at a time (one register pair per port), clocks resynced
  before each probe, samples aggregated into a :class:`Histogram`.
"""

from __future__ import annotations

import random
import statistics
from typing import List, Optional

from repro.core.histogram import Histogram
from repro.core.memory import MemPool
from repro.errors import TimestampingError
from repro.nicsim.clock import NicClock

#: Typical PCIe register read latency (ns).
PCIE_READ_NS = 250.0
#: Fraction of clock-pair reads that are outliers (Section 6.2).
OUTLIER_PROBABILITY = 0.05
#: Number of read repetitions: >99.999 % chance of >=3 clean reads.
SYNC_READS = 7


def _read_gap_ns(rng: random.Random) -> float:
    """Delay between the two register reads of one difference measurement.

    The algorithm's correctness rests on the PCIe access time being nearly
    constant (Section 6.2); occasionally a read is delayed by unrelated bus
    traffic — those are the ~5 % outliers the median filters out.
    """
    gap = PCIE_READ_NS + rng.gauss(0.0, 1.5)
    if rng.random() < OUTLIER_PROBABILITY:
        gap += rng.uniform(200.0, 2000.0)
    return max(50.0, gap)


def _difference_once(a: NicClock, b: NicClock, rng: random.Random,
                     at_ps: int) -> float:
    """One forward+reverse difference measurement (clock a minus clock b).

    Reading a then b and then b then a cancels the constant read gap; what
    remains is quantization (±1 tick) — unless an outlier hit one of the
    four reads, in which case the measurement is off by the extra delay.
    """
    gap_fwd = _read_gap_ns(rng)
    gap_rev = _read_gap_ns(rng)
    a_first = a.read_ns(at_ps) - b.read_ns(at_ps + round(gap_fwd * 1000))
    b_first = a.read_ns(at_ps + round(gap_rev * 1000)) - b.read_ns(at_ps)
    return (a_first + b_first) / 2.0


def clock_difference_ns(a: NicClock, b: NicClock, rng: random.Random,
                        at_ps: Optional[int] = None,
                        reads: int = SYNC_READS) -> float:
    """Median of repeated difference measurements (Section 6.2)."""
    now_ps = a.loop.now_ps if at_ps is None else at_ps
    samples = [
        _difference_once(a, b, rng, now_ps + i * 1000)
        for i in range(reads)
    ]
    return statistics.median(samples)


def sync_clocks(a: NicClock, b: NicClock, rng: random.Random,
                reads: int = SYNC_READS) -> float:
    """Synchronise clock ``b`` to clock ``a``; returns the applied offset.

    Uses the atomic read-modify-write adjustment the NICs support for PTP.
    The residual error is ±1 clock tick, i.e. ±6.4 ns on the 10 GbE chips —
    19.2 ns worst-case for a two-port measurement (Section 6.2).
    """
    diff = clock_difference_ns(a, b, rng, reads=reads)
    b.adjust(diff)
    return diff


def measure_drift(a: NicClock, b: NicClock, rng: random.Random,
                  interval_ns: float = 1_000_000_000.0) -> float:
    """Measure clock drift in microseconds per second (``drift.lua``).

    Takes two difference measurements ``interval_ns`` of simulated time
    apart; callers run the event loop between them or rely on the clocks'
    deterministic drift model (the difference is computed analytically at
    two instants, so no loop interaction is required).
    """
    now_ps = a.loop.now_ps
    d0 = clock_difference_ns(a, b, rng, at_ps=now_ps)
    d1 = clock_difference_ns(a, b, rng, at_ps=now_ps + round(interval_ns * 1000))
    return (d1 - d0) / (interval_ns / 1e9) / 1000.0  # ns per s -> µs per s


class Timestamper:
    """Latency measurement via hardware PTP timestamps.

    Sends one timestamped probe at a time from ``tx_queue`` and matches the
    hardware tx/rx timestamp registers; only a single packet can be in
    flight because each port has one register pair (Section 6.4).  Before
    every probe the clocks are resynchronised, which turns even the paper's
    worst-case 35 µs/s drift into a relative error of 0.0035 %.
    """

    def __init__(
        self,
        env,
        tx_queue,
        rx_device,
        udp: bool = False,
        pkt_size: int = 80,
        seed: int = 0,
        resync: bool = True,
    ) -> None:
        tx_chip = tx_queue.device.chip
        rx_chip = rx_device.chip
        if not tx_chip.hw_timestamping or not rx_chip.hw_timestamping:
            raise TimestampingError(
                f"hardware timestamping unsupported on "
                f"{tx_chip.name}/{rx_chip.name} (e.g. the XL710, Section 3.3)"
            )
        if udp and pkt_size < 80:
            raise TimestampingError(
                "the NICs refuse to timestamp UDP PTP packets smaller than "
                "80 bytes (Section 6.4); use PTP-over-Ethernet for smaller "
                "probes"
            )
        self.env = env
        self.tx_queue = tx_queue
        self.tx_device = tx_queue.device
        self.rx_device = rx_device
        self.udp = udp
        self.pkt_size = pkt_size
        self.rng = random.Random(seed)
        self.resync = resync
        self.histogram = Histogram()
        self.lost_probes = 0
        #: Probes actually sent; with :attr:`lost_probes` this yields
        #: :attr:`confidence` — graceful degradation under faults: a lossy
        #: or flapping link costs samples, never an exception.
        self.attempted = 0
        self._pool = MemPool(n_buffers=64, buf_capacity=512, fill=None)
        self._seq = 0

    @property
    def confidence(self) -> float:
        """Fraction of sent probes that produced a latency sample, in [0, 1].

        Vacuously 1.0 before any probe is sent.  A value below ~0.9 means
        the histogram under-represents the probe stream (burst loss, link
        flap, or a DuT dropping probes) and percentiles should be quoted
        with that caveat — this is the "mark confidence" half of the
        fault-tolerance contract.
        """
        if self.attempted <= 0:
            return 1.0
        return max(0.0, min(1.0, 1.0 - self.lost_probes / self.attempted))

    # -- probe crafting ----------------------------------------------------------

    def _craft(self, buf) -> None:
        if self.udp:
            p = buf.pkt.udp_ptp_packet
            p.fill(
                pkt_length=self.pkt_size,
                eth_src=self.tx_device.mac,
                eth_dst=self.rx_device.mac,
                ip_src="10.1.0.1",
                ip_dst="10.1.0.2",
                udp_src=319,
                ptp_sequence=self._seq,
            )
        else:
            p = buf.pkt.ptp_packet
            p.fill(
                pkt_length=self.pkt_size,
                eth_src=self.tx_device.mac,
                eth_dst=self.rx_device.mac,
                ptp_sequence=self._seq,
            )

    # -- the measurement task ------------------------------------------------------

    def probe_task(
        self,
        n_probes: int,
        interval_ns: float = 1_000_000.0,
        rx_queue_index: int = 0,
        timeout_ns: float = 10_000_000.0,
    ):
        """Slave task generator: sends probes and collects latency samples.

        Launch with ``env.launch(ts.probe_task, n, interval)``; results land
        in :attr:`histogram`.  Received probes are drained from the rx queue
        so they do not clutter other receivers.
        """
        env = self.env
        bufs = self._pool.buf_array(1)
        rx_queue = self.rx_device.get_rx_queue(rx_queue_index)
        for _ in range(n_probes):
            if not env.running():
                return
            if self.resync:
                sync_clocks(
                    self.tx_device.clock, self.rx_device.clock, self.rng
                )
                # 7 double reads over PCIe cost wall time.
                yield env.sleep_ns(SYNC_READS * 2 * PCIE_READ_NS)
            self._seq = (self._seq + 1) & 0xFFFF
            bufs.alloc(self.pkt_size - 4)  # buffer excludes FCS
            self._craft(bufs[0])
            self.attempted += 1
            yield self.tx_queue.send_with_timestamp(bufs)
            sample = yield from self._collect(rx_queue, timeout_ns)
            if sample is None:
                self.lost_probes += 1
                # Clear a stale tx timestamp so the next probe can latch.
                self.tx_device.port.read_tx_timestamp()
                tracer = self.env.loop.tracer
                if tracer is not None:
                    tracer.emit("tstamp", "probe_lost", seq=self._seq,
                                lost=self.lost_probes,
                                attempted=self.attempted)
            else:
                self.histogram.update(sample)
            if interval_ns > 0:
                yield env.sleep_ns(interval_ns)

    def _collect(self, rx_queue, timeout_ns: float):
        """Wait for the probe's rx timestamp; returns the latency or None."""
        deadline_ps = self.env.loop.now_ps + round(timeout_ns * 1000)
        port = self.rx_device.port
        while True:
            # Drain any frames (the probe itself plus unrelated traffic).
            rx_queue.try_fetch(64)
            stamp = port.read_rx_timestamp()
            if stamp is not None:
                rx_ns, rx_seq = stamp
                tx = self.tx_device.port.read_tx_timestamp()
                if tx is None:
                    return None
                tx_ns, tx_seq = tx
                if rx_seq is not None and tx_seq is not None and rx_seq != tx_seq:
                    return None
                return rx_ns - tx_ns
            if self.env.loop.now_ps >= deadline_ps:
                return None
            # Poll the register again shortly (busy-wait on real hardware).
            yield self.env.sleep_ns(min(1_000.0, timeout_ns / 10))
