"""The MoonGen environment: devices, tasks, wiring, and the clock.

``MoonGenEnv`` plays the role of the master task's runtime: it configures
devices (Listing 1), launches slave tasks (``mg.launchLua``), connects ports
with simulated cables, and runs the discrete-event loop until the experiment
finishes (``mg.waitForSlaves``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.device import Device
from repro.core.memory import MemPool, PacketBuffer
from repro.core.ops import CyclesOp, SleepOp
from repro.core.tasks import Task
from repro.errors import ConfigurationError, DeviceError
from repro.faults import FaultInjector, load_plan
from repro.trace import Tracer
from repro.nicsim.cpu import CpuCore, CycleCostModel, REFERENCE_FREQ_HZ
from repro.nicsim.eventloop import EventLoop
from repro.nicsim.link import Cable, IDEAL_CABLE, Wire
from repro.nicsim.nic import ChipModel, CHIP_X540, NicCard, NicPort


class MoonGenEnv:
    """One simulation: an event loop, devices, cores, and tasks."""

    def __init__(
        self,
        seed: int = 0,
        core_freq_hz: float = REFERENCE_FREQ_HZ,
        cost_noise: bool = True,
        trace=None,
        fast_forward: bool = False,
        batch=None,
        faults=None,
        metrics=None,
        dataplane=None,
        scheduler=None,
        watchdog=None,
    ) -> None:
        #: Pluggable event-loop scheduler backend: ``None`` (consult the
        #: ``REPRO_SCHEDULER`` environment variable, default ``"heap"``),
        #: ``"heap"``, ``"calendar"``, or a pre-built scheduler instance.
        #: Both backends produce bit-identical simulations — only the
        #: wall-clock cost profile differs (docs/PERFORMANCE.md).
        self.loop = EventLoop(scheduler=scheduler)
        #: Opt-in batch execution tier (``repro.batch``): ports execute
        #: homogeneous event trains — FIFO drains, prefetch steady states,
        #: hardware-paced ring trains — arithmetically whenever no tracer/
        #: observer/fault/timestamp needs per-frame fidelity, falling back
        #: to the event path at every interaction point.  ``batch`` may be
        #: ``True`` (fresh tier), a pre-built :class:`~repro.batch.BatchTier`
        #: (e.g. with a train-length horizon), or ``None``/``False`` —
        #: in which case the legacy ``fast_forward`` flag decides, keeping
        #: old callers on the same accelerator they opted into.  Off by
        #: default; output is bit-identical to the event-driven path
        #: (enforced by ``tests/test_batch_equivalence.py``).
        if batch is None or batch is False:
            batch = fast_forward
        self.batch = None
        if batch:
            from repro.batch import BatchTier

            self.batch = batch if isinstance(batch, BatchTier) else BatchTier()
            self.loop.batch = self.batch
        self.fast_forward = self.batch is not None
        self.seed = seed
        self.cost_model = CycleCostModel(seed=seed, noisy=cost_noise)
        self.core_freq_hz = core_freq_hz
        self.devices: Dict[int, Device] = {}
        self.tasks: List[Task] = []
        self.cores: List[CpuCore] = []
        self._end_ps: Optional[int] = None
        self._wire_seed = seed + 0x5EED
        #: Parked receive tasks re-check ``running()`` at least this often.
        self.poll_slice_ps = 1_000_000_000  # 1 ms
        #: Structured tracing (``repro.trace``).  ``trace`` may be ``True``
        #: (all categories into an in-memory ring buffer), an iterable of
        #: category names, or a pre-built :class:`~repro.trace.Tracer`.
        #: ``None``/``False`` keeps every instrumentation site on its
        #: zero-cost fast path.
        self.tracer: Optional[Tracer] = None
        if trace:
            if isinstance(trace, Tracer):
                self.tracer = trace
            else:
                categories = None if trace is True else trace
                self.tracer = Tracer(categories=categories)
            self.tracer.bind(self.loop)
        #: Deterministic fault injection (``repro.faults``).  ``faults``
        #: may be a :class:`~repro.faults.FaultPlan`, a plan dict, JSON
        #: text, or a path to a plan file.  ``None`` (the default) keeps
        #: every fault hook inert — runs without faults are bit-identical
        #: to builds without the subsystem.
        self.injector: Optional[FaultInjector] = None
        if faults is not None:
            self.injector = FaultInjector(self.loop, load_plan(faults))
        #: Run-wide telemetry (``repro.metrics``).  ``metrics`` may be
        #: ``True`` (fresh registry) or a pre-built
        #: :class:`~repro.metrics.MetricsRegistry`.  ``None``/``False``
        #: (default) keeps every registration hook inert: metrics are
        #: pull-based, so a disabled run pays literally nothing.  With a
        #: registry, devices/wires/DuT/injector auto-register as the
        #: topology is built; sample it with :meth:`start_snapshotter`.
        self.metrics = None
        if metrics:
            if metrics is True:
                from repro.metrics import MetricsRegistry

                self.metrics = MetricsRegistry()
            else:
                self.metrics = metrics
            registry = self.metrics
            loop = self.loop
            # Snapshots land *inside* run(), whose hot loop keeps its
            # event count in a local for speed; the live cell exposes the
            # in-progress counts so mid-run samples are not stale.
            loop.live_counts = [0, 0]

            def _events_total() -> int:
                live = loop.live_counts
                return loop.events_processed + (live[0] if live else 0)

            def _lane_total() -> int:
                live = loop.live_counts
                return loop.lane_events_processed + (live[1] if live else 0)

            events = registry.counter(
                "loop.events", _events_total,
                help="events executed by the scheduler")
            registry.rate("loop.events_per_s", events,
                          help="event rate between snapshots (sim time)")
            registry.gauge("loop.pending", lambda: loop.pending_events,
                           help="live events currently scheduled")
            registry.gauge(
                "loop.lane_hit_ratio",
                lambda: (_lane_total() / _events_total()
                         if _events_total() else 0.0),
                help="fraction of events taken via the same-instant "
                     "fast lane")
            # Scheduler-backend self-accounting (bucket geometry, resize
            # and compaction counts).  Like ``batch.*`` these describe
            # the scheduler's work, not the simulated world, so they ride
            # under the ``loop.`` prefix every fingerprint comparison
            # already excludes — heap and calendar runs fingerprint
            # identically even though their gauges differ.
            sched_help = {
                "entries": "entries stored (incl. lazily-cancelled)",
                "live": "live (non-cancelled) entries enqueued",
                "compactions": "lazy-cancel compaction passes",
                "buckets": "calendar bucket count",
                "day_width_ps": "calendar day width (ps)",
                "resizes": "calendar re-bucketing passes",
                "max_occupancy": "largest bucket seen",
            }
            for key, fn in loop.scheduler.metrics().items():
                registry.gauge(
                    f"loop.sched.{key}", fn,
                    help=sched_help.get(key, "scheduler internal gauge"))
            if self.injector is not None:
                self.injector.register_metrics(registry)
            if self.batch is not None:
                # Batch-tier self-accounting.  These describe the
                # *scheduler's* work, not the simulated world, so every
                # fingerprint comparison between batch and event runs
                # excludes the ``batch.`` prefix (alongside ``loop.``).
                from repro.batch import FALLBACK_REASONS

                tier = self.batch
                registry.counter(
                    "batch.trains", lambda: tier.trains,
                    help="event trains executed arithmetically")
                registry.counter(
                    "batch.frames", lambda: tier.frames,
                    help="frames sent through batch kernels")
                registry.counter(
                    "batch.events_saved", lambda: tier.events_saved,
                    help="events the discrete loop would have scheduled "
                         "for the batched frames")
                reasons = tuple(FALLBACK_REASONS)
                if "horizon" not in reasons:
                    reasons += ("horizon",)
                for reason in reasons:
                    registry.counter(
                        f"batch.fallback.{reason}",
                        lambda r=reason: tier.fallbacks.get(r, 0),
                        help=f"kicks that fell back to event execution "
                             f"({reason})")
        #: In-dataplane latency observation (``repro.metrics.dataplane``):
        #: per-hop residence and inter-arrival ``Log2Histogram``\ s latched
        #: by the models themselves as frames move through the pipeline.
        #: ``dataplane=True`` requires a metrics registry (the histograms
        #: live in it); ``None``/``False`` (default) leaves every model
        #: hook on its ``is not None`` fast path.  Devices, wires, and
        #: DuTs attach automatically as the topology is built.
        self.dataplane = None
        if dataplane:
            if self.metrics is None:
                raise ConfigurationError(
                    "MoonGenEnv(dataplane=True) needs metrics=True: the "
                    "latency histograms live in the metrics registry"
                )
            from repro.metrics.dataplane import DataplaneObserver

            self.dataplane = (dataplane
                              if isinstance(dataplane, DataplaneObserver)
                              else DataplaneObserver(self.metrics))
        #: Simulation watchdogs (``repro.supervise``).  ``watchdog`` may
        #: be a pre-built :class:`~repro.nicsim.eventloop.Watchdog` or
        #: ``None`` (default: the loop stays on its uninstrumented fast
        #: paths).  With a metrics registry active, the watchdog's abort
        #: diagnostics include a snapshot of every live metric.
        self.watchdog = watchdog
        if watchdog is not None:
            self.loop.watchdog = watchdog
            if self.metrics is not None and watchdog.registry is None:
                watchdog.registry = self.metrics

    # -- time -----------------------------------------------------------------

    @property
    def now_ns(self) -> float:
        return self.loop.now_ps / 1000.0

    def running(self) -> bool:
        """The analog of ``dpdk.running()``: true until the stop horizon."""
        return self._end_ps is None or self.loop.now_ps < self._end_ps

    @staticmethod
    def sleep_ns(duration_ns: float) -> SleepOp:
        """Op: idle the calling task for a simulated duration."""
        return SleepOp(duration_ns)

    @staticmethod
    def sleep_us(duration_us: float) -> SleepOp:
        return SleepOp(duration_us * 1_000)

    @staticmethod
    def sleep_ms(duration_ms: float) -> SleepOp:
        return SleepOp(duration_ms * 1_000_000)

    @staticmethod
    def charge_cycles(cycles: float) -> CyclesOp:
        """Op: account script work outside the standard cost table."""
        return CyclesOp(cycles)

    # -- device configuration ----------------------------------------------------

    def config_device(
        self,
        port_id: int,
        rx_queues: int = 1,
        tx_queues: int = 1,
        chip: ChipModel = CHIP_X540,
        speed_bps: Optional[int] = None,
        card: Optional[NicCard] = None,
        clock_drift_ppm: float = 0.0,
        clock_phase_steps: int = 0,
    ) -> Device:
        """Configure a port (``device.config`` in Listing 1)."""
        if port_id in self.devices:
            raise DeviceError(f"port {port_id} already configured")
        port = NicPort(
            self.loop,
            chip=chip,
            port_id=port_id,
            n_tx_queues=tx_queues,
            n_rx_queues=rx_queues,
            speed_bps=speed_bps,
            card=card,
            clock_drift_ppm=clock_drift_ppm,
            clock_phase_steps=clock_phase_steps,
        )
        port.fast_forward = self.batch is not None
        device = Device(self, port)
        self.devices[port_id] = device
        if self.injector is not None:
            self.injector.register_port(f"port:{port_id}", port)
        if self.metrics is not None:
            port.register_metrics(self.metrics)
        if self.dataplane is not None:
            self.dataplane.attach_port(port)
        return device

    def wait_for_links(self) -> None:
        """API parity with ``device.waitForLinks()``; links are always up."""

    # -- wiring --------------------------------------------------------------------

    def connect(
        self,
        a: Device,
        b: Device,
        cable: Cable = IDEAL_CABLE,
    ) -> Tuple[Wire, Wire]:
        """Connect two ports with a full-duplex cable; returns (a→b, b→a)."""
        wire_ab = Wire(self.loop, a.port.speed_bps, cable, seed=self._next_wire_seed())
        wire_ba = Wire(self.loop, b.port.speed_bps, cable, seed=self._next_wire_seed())
        wire_ab.connect(b.port.receive)
        wire_ba.connect(a.port.receive)
        a.port.attach_wire(wire_ab)
        b.port.attach_wire(wire_ba)
        if self.injector is not None:
            self.injector.register_wire(
                f"wire:{a.port.port_id}->{b.port.port_id}", wire_ab)
            self.injector.register_wire(
                f"wire:{b.port.port_id}->{a.port.port_id}", wire_ba)
        if self.metrics is not None:
            wire_ab.register_metrics(
                self.metrics, f"{a.port.port_id}->{b.port.port_id}")
            wire_ba.register_metrics(
                self.metrics, f"{b.port.port_id}->{a.port.port_id}")
        if self.dataplane is not None:
            self.dataplane.attach_wire(
                wire_ab, f"{a.port.port_id}->{b.port.port_id}")
            self.dataplane.attach_wire(
                wire_ba, f"{b.port.port_id}->{a.port.port_id}")
        return wire_ab, wire_ba

    def connect_to_sink(
        self,
        device: Device,
        sink: Callable[[object, int], None],
        cable: Cable = IDEAL_CABLE,
    ) -> Wire:
        """Connect a port's transmit side to an arbitrary sink (e.g. a DuT)."""
        wire = Wire(self.loop, device.port.speed_bps, cable, seed=self._next_wire_seed())
        wire.connect(sink)
        device.port.attach_wire(wire)
        if self.injector is not None:
            self.injector.register_wire(
                f"wire:{device.port.port_id}->sink", wire)
        if self.metrics is not None:
            wire.register_metrics(self.metrics,
                                  f"{device.port.port_id}->sink")
        if self.dataplane is not None:
            self.dataplane.attach_wire(wire, f"{device.port.port_id}->sink")
        return wire

    def wire_to_device(
        self,
        device: Device,
        speed_bps: Optional[int] = None,
        cable: Cable = IDEAL_CABLE,
    ) -> Wire:
        """A wire whose sink is the device's receive path (DuT → loadgen)."""
        wire = Wire(
            self.loop,
            speed_bps or device.port.speed_bps,
            cable,
            seed=self._next_wire_seed(),
        )
        wire.connect(device.port.receive)
        if self.injector is not None:
            self.injector.register_wire(
                f"wire:env->{device.port.port_id}", wire)
        if self.metrics is not None:
            wire.register_metrics(self.metrics,
                                  f"env->{device.port.port_id}")
        if self.dataplane is not None:
            self.dataplane.attach_wire(wire, f"env->{device.port.port_id}")
        return wire

    def register_dut(self, dut) -> None:
        """Register a device under test as a fault target (``"dut"``).

        A no-op without a fault plan; with one, DuT faults (overload) arm
        against ``dut`` — anything exposing ``set_overload(factor)``.
        """
        if self.injector is not None:
            self.injector.register_dut(dut)
        if self.metrics is not None and hasattr(dut, "register_metrics"):
            dut.register_metrics(self.metrics)
        if self.dataplane is not None and hasattr(dut, "dp_ring"):
            self.dataplane.attach_dut(dut)

    def _next_wire_seed(self) -> int:
        self._wire_seed += 1
        return self._wire_seed

    # -- memory ---------------------------------------------------------------------

    @staticmethod
    def create_mempool(
        fill: Optional[Callable[[PacketBuffer], None]] = None,
        n_buffers: int = 4096,
        buf_capacity: int = 2048,
    ) -> MemPool:
        """``memory.createMemPool`` with the per-buffer fill callback."""
        return MemPool(n_buffers=n_buffers, buf_capacity=buf_capacity, fill=fill)

    # -- tasks -------------------------------------------------------------------------

    def launch(
        self,
        fn: Callable,
        *args,
        freq_hz: Optional[float] = None,
        name: Optional[str] = None,
    ) -> Task:
        """Start a slave task on a fresh simulated core (``mg.launchLua``)."""
        core = CpuCore(
            core_id=len(self.cores),
            freq_hz=freq_hz or self.core_freq_hz,
            model=self.cost_model,
            tracer=self.tracer,
        )
        self.cores.append(core)
        task = Task(self, fn, args, core, name=name)
        self.tasks.append(task)
        return task

    def wait_for_slaves(
        self,
        duration_ns: Optional[float] = None,
        max_events: int = 50_000_000,
    ) -> None:
        """Run the simulation until tasks finish (``mg.waitForSlaves``).

        With ``duration_ns``, ``running()`` turns false at the horizon so
        well-formed slave loops exit; stragglers parked on signals are killed
        after the event queue drains.  Without a duration the tasks must
        terminate by themselves.
        """
        if duration_ns is not None:
            self._end_ps = self.loop.now_ps + round(duration_ns * 1000)
        self.loop.run(max_events=max_events)
        for task in self.tasks:
            if not task.finished:
                task.kill()
        for task in self.tasks:
            task.check()

    def run_for(self, duration_ns: float, stop: bool = False) -> None:
        """Advance the simulation by a fixed duration (benches/tests).

        With ``stop=True`` the horizon also becomes the stop signal for
        ``running()``-style loops.
        """
        if stop:
            self._end_ps = self.loop.now_ps + round(duration_ns * 1000)
        self.loop.run(until_ps=self.loop.now_ps + round(duration_ns * 1000))

    def stop(self) -> None:
        """Make ``running()`` false immediately."""
        self._end_ps = self.loop.now_ps

    def stop_after(self, duration_ns: float) -> None:
        """Set the stop horizon without running the loop.

        For callers that drive the loop themselves (e.g. the
        :class:`~repro.metrics.LoopProfiler`): ``running()`` turns false
        once the horizon passes, exactly as in :meth:`wait_for_slaves`.
        """
        self._end_ps = self.loop.now_ps + round(duration_ns * 1000)

    # -- telemetry ------------------------------------------------------------

    def start_snapshotter(self, interval_ns: float = 1_000_000.0):
        """Launch a metrics :class:`~repro.metrics.Snapshotter` task.

        Requires ``MoonGenEnv(metrics=...)``; returns the snapshotter
        (its ``series`` holds the sampled rows after the run).
        """
        if self.metrics is None:
            raise ConfigurationError(
                "start_snapshotter() needs MoonGenEnv(metrics=True)"
            )
        from repro.metrics import Snapshotter

        snapshotter = Snapshotter(self, self.metrics,
                                  interval_ns=interval_ns)
        self.launch(snapshotter.task, name="metrics-snapshotter")
        return snapshotter
