"""Transmit and receive queue API.

Thin wrappers over the simulated hardware queues that produce ops for the
task scheduler and expose MoonGen's configuration calls (``setRate``).
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro import units
from repro.core.memory import PacketBuffer
from repro.core.ops import RecvOp, SendOp
from repro.errors import RateControlError
from repro.nicsim.nic import RxQueueSim, SimFrame, TxQueueSim
from repro.packet.packet import PacketData

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.device import Device
    from repro.core.memory import BufArray


class _RxPool:
    """Stand-in pool for received buffers: frees are no-ops.

    On real hardware, rx buffers belong to the driver's pool; here a received
    frame is an immutable snapshot, so ``freeAll`` just drops references.
    """

    def give_back(self, buf: "RxPacket") -> None:
        buf.in_pool = True


_RX_POOL = _RxPool()


class RxPacket(PacketBuffer):
    """A received packet: buffer view over a frame snapshot plus metadata."""

    __slots__ = ("frame", "rx_timestamp_ns")

    def __init__(self, frame: SimFrame) -> None:
        # Deliberately skip PacketBuffer.__init__: no pool allocation.
        self.pool = _RX_POOL
        self.pkt = PacketData(size=len(frame.data), capacity=max(64, len(frame.data)))
        self.pkt.data[: len(frame.data)] = frame.data
        self.in_pool = False
        self.offload_ip = False
        self.offload_l4 = False
        self.timestamp_flag = False
        self.frame = frame
        #: 82580-style per-packet rx timestamp, if the chip provides one.
        self.rx_timestamp_ns = frame.meta.get("rx_timestamp_ns")


class TxQueue:
    """A transmit queue of a configured device."""

    def __init__(self, device: "Device", index: int, sim: TxQueueSim) -> None:
        self.device = device
        self.index = index
        self.sim = sim

    def __repr__(self) -> str:
        return f"TxQueue(port={self.device.port_id}, queue={self.index})"

    # -- configuration ------------------------------------------------------

    def set_rate(self, mbps: float) -> None:
        """Configure hardware rate control to ``mbps`` of wire bandwidth.

        Section 7.5: above ~9 Mpps the hardware limiter of the 10 GbE chips
        behaves unpredictably; a :class:`RateControlError` flags the regime
        so callers apply the paper's two-queue workaround instead of getting
        silently-wrong traffic.
        """
        implied_pps = mbps * 1e6 / (units.wire_length(units.MIN_FRAME_SIZE) * 8)
        if implied_pps > self.sim.port.chip.hw_rate_max_pps:
            raise RateControlError(
                f"{mbps} Mbit/s may exceed {self.sim.port.chip.name}'s reliable "
                f"rate-control range (~9 Mpps); split the stream over two "
                f"queues (Section 7.5 workaround) or use software rate control"
            )
        self.sim.set_rate(mbps)

    def set_rate_pps(self, pps: float, frame_size: int = units.MIN_FRAME_SIZE) -> None:
        """Configure the limiter for a packet rate at a fixed frame size."""
        if pps > self.sim.port.chip.hw_rate_max_pps:
            raise RateControlError(
                f"{pps / 1e6:.2f} Mpps exceeds the reliable hardware "
                f"rate-control range (Section 7.5)"
            )
        self.sim.set_rate_pps(pps, frame_size)

    @property
    def rate_mbps(self) -> float:
        return self.sim.rate_bps / 1e6

    # -- data path ------------------------------------------------------------

    def send(self, bufs: "BufArray") -> SendOp:
        """Transmit op for the batch (yield it from a slave task)."""
        return SendOp(self, bufs)

    def send_with_timestamp(self, bufs: "BufArray") -> SendOp:
        """Transmit op that requests a hardware tx timestamp for the batch.

        Only one timestamp register exists; scripts send a single probe at a
        time (Section 6.4).
        """
        for buf in bufs:
            buf.timestamp_flag = True
        return SendOp(self, bufs)

    # -- stats -----------------------------------------------------------------

    @property
    def tx_packets(self) -> int:
        return self.sim.tx_packets

    @property
    def tx_bytes(self) -> int:
        return self.sim.tx_bytes


class RxQueue:
    """A receive queue of a configured device."""

    def __init__(self, device: "Device", index: int, sim: RxQueueSim) -> None:
        self.device = device
        self.index = index
        self.sim = sim

    def __repr__(self) -> str:
        return f"RxQueue(port={self.device.port_id}, queue={self.index})"

    def recv(self, bufs: "BufArray", timeout_ns: Optional[float] = None) -> RecvOp:
        """Receive op: blocks until ≥1 packet arrives (or timeout); returns
        the number of packets placed into ``bufs``."""
        return RecvOp(self, bufs, timeout_ns)

    def try_fetch(self, max_frames: int) -> List[RxPacket]:
        """Non-blocking poll used by synchronous code and tests."""
        return [RxPacket(f) for f in self.sim.fetch(max_frames)]

    @property
    def rx_packets(self) -> int:
        return self.sim.rx_packets

    @property
    def rx_bytes(self) -> int:
        return self.sim.rx_bytes
