"""Device statistics monitor task.

MoonGen's counters can read "the NIC's statistics registers" (Section 4.2)
instead of being updated manually.  :class:`DeviceStatsMonitor` is the
task that does so periodically — the equivalent of the original's device
counters printing once per second.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TextIO

from repro.core.stats import DeviceRxCounter, DeviceTxCounter


class DeviceStatsMonitor:
    """Samples a device's hardware counters at a fixed interval."""

    def __init__(
        self,
        env,
        device,
        interval_ns: float = 1_000_000_000.0,
        fmt: str = "csv",
        stream: Optional[TextIO] = None,
    ) -> None:
        self.env = env
        self.device = device
        self.interval_ns = interval_ns
        kwargs = dict(now_ns=lambda: env.now_ns, interval_ns=interval_ns)
        if stream is not None:
            kwargs["stream"] = stream
        self.tx = DeviceTxCounter(device, fmt, **kwargs)
        self.rx = DeviceRxCounter(device, fmt, **kwargs)
        self.samples = 0
        self._finalized = False
        #: Explicit gap annotations: one entry per sampling interval that
        #: overlapped a link flap (``repro.faults``), instead of silently
        #: folding the outage into an ordinary low-rate sample.  Each entry
        #: records the sample time, how many carrier transitions the
        #: interval absorbed, and the link state at sampling time.
        self.gaps: List[Dict[str, object]] = []
        self._last_link_changes = self._link_changes()

    def _link_changes(self) -> int:
        port = getattr(self.device, "port", None)
        return getattr(port, "link_changes", 0)

    def _check_link_gap(self) -> None:
        changes = self._link_changes()
        delta = changes - self._last_link_changes
        port = getattr(self.device, "port", None)
        link_up = getattr(port, "link_up", True)
        if delta == 0 and link_up:
            return
        self._last_link_changes = changes
        gap = {"t_ns": self.env.now_ns, "transitions": delta,
               "link_up": link_up}
        self.gaps.append(gap)
        tracer = getattr(self.env, "tracer", None)
        if tracer is not None:
            tracer.emit("stats", "stats_gap", dev=self.device.port_id,
                        transitions=delta, link_up=link_up)

    def _trace_sample(self) -> None:
        tracer = getattr(self.env, "tracer", None)
        if tracer is not None:
            tracer.emit("stats", "stats_sample", dev=self.device.port_id,
                        tx_packets=self.tx.total_packets,
                        tx_bytes=self.tx.total_bytes,
                        rx_packets=self.rx.total_packets,
                        rx_bytes=self.rx.total_bytes)

    def task(self):
        """Slave task: sample until the experiment stops, then finalize."""
        env = self.env
        while env.running():
            yield env.sleep_ns(self.interval_ns)
            self.tx.sample()
            self.rx.sample()
            self.samples += 1
            self._check_link_gap()
            self._trace_sample()
        self.finalize()

    def finalize(self) -> None:
        """Take a last sample and flush; safe to call more than once.

        Sampling is delta-based (register value minus the last read), so the
        extra sample here never double-counts packets already accounted in
        :meth:`task`; repeated calls are no-ops.
        """
        if self._finalized:
            return
        self._finalized = True
        self.tx.sample()
        self.rx.sample()
        self._check_link_gap()
        self._trace_sample()
        self.tx.finalize()
        self.rx.finalize()
