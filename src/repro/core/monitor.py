"""Device statistics monitor task.

MoonGen's counters can read "the NIC's statistics registers" (Section 4.2)
instead of being updated manually.  :class:`DeviceStatsMonitor` is the
task that does so periodically — the equivalent of the original's device
counters printing once per second.

The monitor has two outputs: the classic stream formats (``fmt="csv"`` /
``"plain"``, or ``"none"`` for publish-only runs with no stream at all)
and, when the environment carries a metrics registry
(``MoonGenEnv(metrics=True)``), a set of ``monitor.dev<N>.*`` metrics
mirroring what the monitor itself accounted — totals, per-snapshot rates,
sample count, and link-gap annotations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TextIO

from repro.core.stats import DeviceRxCounter, DeviceTxCounter


class DeviceStatsMonitor:
    """Samples a device's hardware counters at a fixed interval."""

    def __init__(
        self,
        env,
        device,
        interval_ns: float = 1_000_000_000.0,
        fmt: str = "csv",
        stream: Optional[TextIO] = None,
    ) -> None:
        self.env = env
        self.device = device
        self.interval_ns = interval_ns
        kwargs = dict(now_ns=lambda: env.now_ns, interval_ns=interval_ns)
        if stream is not None:
            kwargs["stream"] = stream
        self.tx = DeviceTxCounter(device, fmt, **kwargs)
        self.rx = DeviceRxCounter(device, fmt, **kwargs)
        self.samples = 0
        self._finalized = False
        #: Explicit gap annotations: one entry per sampling interval that
        #: overlapped a link flap (``repro.faults``), instead of silently
        #: folding the outage into an ordinary low-rate sample.  Each entry
        #: records the sample time, how many carrier transitions the
        #: interval absorbed, and the link state at sampling time.
        self.gaps: List[Dict[str, object]] = []
        self._last_link_changes = self._link_changes()
        registry = getattr(env, "metrics", None)
        if registry is not None:
            self.register_metrics(registry)

    def register_metrics(self, registry) -> None:
        """Publish the monitor's view under ``monitor.dev<N>.*``.

        The tx/rx totals mirror the counters the monitor accounts from the
        device registers — by construction equal to the device totals at
        every snapshot taken after a monitor sample (the hypothesis mirror
        property pins this).
        """
        base = f"monitor.dev{self.device.port_id}"
        tx_total = registry.counter(
            f"{base}.tx.packets", lambda: self.tx.total_packets,
            help="tx packets accounted by the stats monitor")
        rx_total = registry.counter(
            f"{base}.rx.packets", lambda: self.rx.total_packets,
            help="rx packets accounted by the stats monitor")
        registry.rate(f"{base}.tx.pps", tx_total,
                      help="monitor-view tx rate between snapshots")
        registry.rate(f"{base}.rx.pps", rx_total,
                      help="monitor-view rx rate between snapshots")
        registry.counter(f"{base}.samples", lambda: self.samples,
                         help="monitor sampling intervals completed")
        registry.counter(f"{base}.gaps", lambda: len(self.gaps),
                         help="sampling intervals annotated as link-flap gaps")

    def _link_changes(self) -> int:
        port = getattr(self.device, "port", None)
        return getattr(port, "link_changes", 0)

    def _check_link_gap(self) -> None:
        changes = self._link_changes()
        delta = changes - self._last_link_changes
        port = getattr(self.device, "port", None)
        link_up = getattr(port, "link_up", True)
        if delta == 0 and link_up:
            return
        now_ns = self.env.now_ns
        if delta == 0 and self.gaps and self.gaps[-1]["t_ns"] == now_ns:
            # Same-instant re-sample: the task's last interval already
            # annotated this outage, and finalize() (or a second counter
            # sampling the same port) runs at the same simulated instant.
            # A second entry would double-count one gap.
            return
        self._last_link_changes = changes
        gap = {"t_ns": now_ns, "transitions": delta,
               "link_up": link_up}
        self.gaps.append(gap)
        tracer = getattr(self.env, "tracer", None)
        if tracer is not None:
            tracer.emit("stats", "stats_gap", dev=self.device.port_id,
                        transitions=delta, link_up=link_up)

    def _trace_sample(self) -> None:
        tracer = getattr(self.env, "tracer", None)
        if tracer is not None:
            tracer.emit("stats", "stats_sample", dev=self.device.port_id,
                        tx_packets=self.tx.total_packets,
                        tx_bytes=self.tx.total_bytes,
                        rx_packets=self.rx.total_packets,
                        rx_bytes=self.rx.total_bytes)

    def task(self):
        """Slave task: sample until the experiment stops, then finalize."""
        env = self.env
        while env.running():
            yield env.sleep_ns(self.interval_ns)
            self.tx.sample()
            self.rx.sample()
            self.samples += 1
            self._check_link_gap()
            self._trace_sample()
        self.finalize()

    def finalize(self) -> None:
        """Take a last sample and flush; safe to call more than once.

        Sampling is delta-based (register value minus the last read), so the
        extra sample here never double-counts packets already accounted in
        :meth:`task`; repeated calls are no-ops.
        """
        if self._finalized:
            return
        self._finalized = True
        self.tx.sample()
        self.rx.sample()
        self._check_link_gap()
        self._trace_sample()
        self.tx.finalize()
        self.rx.finalize()
