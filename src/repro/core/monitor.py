"""Device statistics monitor task.

MoonGen's counters can read "the NIC's statistics registers" (Section 4.2)
instead of being updated manually.  :class:`DeviceStatsMonitor` is the
task that does so periodically — the equivalent of the original's device
counters printing once per second.
"""

from __future__ import annotations

from typing import Optional, TextIO

from repro.core.stats import DeviceRxCounter, DeviceTxCounter


class DeviceStatsMonitor:
    """Samples a device's hardware counters at a fixed interval."""

    def __init__(
        self,
        env,
        device,
        interval_ns: float = 1_000_000_000.0,
        fmt: str = "csv",
        stream: Optional[TextIO] = None,
    ) -> None:
        self.env = env
        self.device = device
        self.interval_ns = interval_ns
        kwargs = dict(now_ns=lambda: env.now_ns, interval_ns=interval_ns)
        if stream is not None:
            kwargs["stream"] = stream
        self.tx = DeviceTxCounter(device, fmt, **kwargs)
        self.rx = DeviceRxCounter(device, fmt, **kwargs)
        self.samples = 0
        self._finalized = False

    def _trace_sample(self) -> None:
        tracer = getattr(self.env, "tracer", None)
        if tracer is not None:
            tracer.emit("stats", "stats_sample", dev=self.device.port_id,
                        tx_packets=self.tx.total_packets,
                        tx_bytes=self.tx.total_bytes,
                        rx_packets=self.rx.total_packets,
                        rx_bytes=self.rx.total_bytes)

    def task(self):
        """Slave task: sample until the experiment stops, then finalize."""
        env = self.env
        while env.running():
            yield env.sleep_ns(self.interval_ns)
            self.tx.sample()
            self.rx.sample()
            self.samples += 1
            self._trace_sample()
        self.finalize()

    def finalize(self) -> None:
        """Take a last sample and flush; safe to call more than once.

        Sampling is delta-based (register value minus the last read), so the
        extra sample here never double-counts packets already accounted in
        :meth:`task`; repeated calls are no-ops.
        """
        if self._finalized:
            return
        self._finalized = True
        self.tx.sample()
        self.rx.sample()
        self._trace_sample()
        self.tx.finalize()
        self.rx.finalize()
