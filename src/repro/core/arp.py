"""ARP handling task.

MoonGen ships example scripts that handle ARP so a device under test that
is a router can resolve the generator's addresses (Section 10: "MoonGen
currently comes with example scripts to handle ... ARP traffic").  The
:class:`ArpResponder` task answers ARP requests for a configured set of
IPv4 addresses and can itself resolve peers.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.core.memory import MemPool
from repro.packet.address import Ip4Address, MacAddress
from repro.packet.arp import ArpOp


class ArpResponder:
    """Answers ARP requests on a device and keeps a neighbour table."""

    def __init__(self, env, device, addresses: Iterable[str],
                 rx_queue_index: int = 0, tx_queue_index: int = 0) -> None:
        self.env = env
        self.device = device
        self.addresses = {Ip4Address(a) for a in addresses}
        self.rx_queue = device.get_rx_queue(rx_queue_index)
        self.tx_queue = device.get_tx_queue(tx_queue_index)
        self.table: Dict[Ip4Address, MacAddress] = {}
        self.requests_answered = 0
        self.replies_seen = 0
        self._pool = MemPool(n_buffers=128, buf_capacity=128)

    def lookup(self, ip: str) -> Optional[MacAddress]:
        """Resolved MAC for an IP, if a reply has been seen."""
        return self.table.get(Ip4Address(ip))

    def _craft_reply(self, buf, request) -> None:
        reply = buf.pkt.arp_packet
        reply.fill(
            eth_src=self.device.mac,
            eth_dst=request.arp.sha,
            arp_operation=ArpOp.REPLY,
            arp_hw_src=self.device.mac,
            arp_hw_dst=request.arp.sha,
            arp_proto_src=request.arp.tpa,
            arp_proto_dst=request.arp.spa,
        )

    def craft_request(self, buf, target_ip: str, source_ip: str) -> None:
        """Fill a buffer with an ARP request for ``target_ip``."""
        request = buf.pkt.arp_packet
        request.fill(
            eth_src=self.device.mac,
            eth_dst="ff:ff:ff:ff:ff:ff",
            arp_operation=ArpOp.REQUEST,
            arp_hw_src=self.device.mac,
            arp_proto_src=source_ip,
            arp_proto_dst=target_ip,
        )

    def task(self):
        """Slave task: answer requests, learn from replies."""
        env = self.env
        rx_bufs = self._pool.buf_array(16)
        tx_bufs = self._pool.buf_array(1)
        while env.running():
            n = yield self.rx_queue.recv(rx_bufs, timeout_ns=1_000_000)
            replies = []
            for i in range(n):
                buf = rx_bufs[i]
                if buf.pkt.classify() != "arp":
                    continue
                arp = buf.pkt.arp_packet.arp
                if arp.operation == ArpOp.REQUEST and arp.tpa in self.addresses:
                    replies.append((arp.sha, arp.spa, arp.tpa))
                elif arp.operation == ArpOp.REPLY:
                    self.table[arp.spa] = arp.sha
                    self.replies_seen += 1
            rx_bufs.free_all()
            for sha, spa, tpa in replies:
                tx_bufs.alloc(60)
                reply = tx_bufs[0].pkt.arp_packet
                reply.fill(
                    eth_src=self.device.mac,
                    eth_dst=sha,
                    arp_operation=ArpOp.REPLY,
                    arp_hw_src=self.device.mac,
                    arp_hw_dst=sha,
                    arp_proto_src=tpa,
                    arp_proto_dst=spa,
                )
                yield self.tx_queue.send(tx_bufs)
                self.requests_answered += 1

    def resolve_task(self, target_ip: str, source_ip: str,
                     retries: int = 3, interval_ns: float = 1_000_000.0):
        """Slave task: send ARP requests until the target answers."""
        env = self.env
        bufs = self._pool.buf_array(1)
        target = Ip4Address(target_ip)
        for _ in range(retries):
            if target in self.table or not env.running():
                return self.table.get(target)
            bufs.alloc(60)
            self.craft_request(bufs[0], target_ip, source_ip)
            yield self.tx_queue.send(bufs)
            yield env.sleep_ns(interval_ns)
        return self.table.get(target)
