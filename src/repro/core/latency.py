"""High-level load + latency experiment orchestration.

Packages the structure of ``l2-load-latency.lua`` — the script behind most
of the paper's evaluation (Section 9) — as a reusable API: a load task on
one queue (hardware CBR or CRC-gap software rate control), a timestamping
task on a second queue, both running through an arbitrary device under
test, with the latency histogram and throughput counters collected at the
end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro import units
from repro.core.histogram import Histogram
from repro.core.ratecontrol import GapFiller, TrafficPattern
from repro.core.timestamping import Timestamper
from repro.errors import ConfigurationError


@dataclass
class LoadLatencyResult:
    """Everything an l2-load-latency run produces."""

    offered_pps: float
    tx_packets: int
    rx_packets: int
    duration_ns: float
    latency: Histogram
    lost_probes: int
    dut_crc_drops: int = 0
    #: Fraction of sent probes that produced a latency sample (see
    #: :attr:`Timestamper.confidence`); below ~0.9 the histogram
    #: under-represents the probe stream and percentiles carry a caveat.
    probe_confidence: float = 1.0

    @property
    def achieved_pps(self) -> float:
        if self.duration_ns <= 0:
            return 0.0
        return self.tx_packets / (self.duration_ns / 1e9)


class LoadLatencyExperiment:
    """Runs a load+latency measurement through a DuT.

    ``mode`` selects the rate control mechanism:

    * ``"hardware"`` — per-queue CBR on the NIC (Section 7.2),
    * ``"crc"`` — the Section 8 gap-filling software rate control; this
      mode accepts any :class:`TrafficPattern` via ``pattern``.
    """

    def __init__(
        self,
        env,
        tx_device,
        rx_device,
        mode: str = "hardware",
        pattern: Optional[TrafficPattern] = None,
        frame_size: int = units.MIN_FRAME_SIZE,
        craft: Optional[Callable] = None,
        probe_interval_ns: float = 100_000.0,
        n_probes: int = 200,
    ) -> None:
        if mode not in ("hardware", "crc"):
            raise ConfigurationError(f"unknown rate-control mode: {mode!r}")
        if mode == "crc" and pattern is None:
            raise ConfigurationError("crc mode needs a traffic pattern")
        if len(tx_device._tx_queues) < 2:
            raise ConfigurationError(
                "the tx device needs two queues: load + timestamping "
                "(Section 6.4)"
            )
        self.env = env
        self.tx_device = tx_device
        self.rx_device = rx_device
        self.mode = mode
        self.pattern = pattern
        self.frame_size = frame_size
        self.craft = craft or self._default_craft
        self.probe_interval_ns = probe_interval_ns
        self.n_probes = n_probes
        self.timestamper = Timestamper(
            env, tx_device.get_tx_queue(1), rx_device,
        )

    def _default_craft(self, buf, index: int) -> None:
        buf.eth_packet.fill(
            eth_src=str(self.tx_device.mac),
            eth_dst=str(self.rx_device.mac),
            eth_type=0x0800,
        )

    def _hardware_load_task(self, pps: float):
        env = self.env
        queue = self.tx_device.get_tx_queue(0)
        queue.set_rate_pps(pps, self.frame_size)
        mem = env.create_mempool()
        bufs = mem.buf_array()
        index = 0
        while env.running():
            bufs.alloc(self.frame_size - units.FCS_SIZE)
            for buf in bufs:
                self.craft(buf, index)
                index += 1
            bufs.charge_modify(1)
            yield queue.send(bufs)

    def run(self, pps: float, duration_ns: float,
            dut_crc_counter: Optional[Callable[[], int]] = None) -> LoadLatencyResult:
        """Run the experiment for a simulated duration and collect results."""
        env = self.env
        if self.mode == "hardware":
            env.launch(self._hardware_load_task, pps)
        else:
            filler = GapFiller(frame_size=self.frame_size,
                               speed_bps=self.tx_device.port.speed_bps)
            n_packets = int(pps * duration_ns / 1e9) + 1
            env.launch(
                filler.load_task, env, self.tx_device.get_tx_queue(0),
                self.pattern, n_packets, self.craft,
            )
        env.launch(
            self.timestamper.probe_task, self.n_probes, self.probe_interval_ns
        )
        env.wait_for_slaves(duration_ns=duration_ns)
        return LoadLatencyResult(
            offered_pps=pps,
            tx_packets=self.tx_device.tx_packets,
            rx_packets=self.rx_device.rx_packets,
            duration_ns=env.now_ns,
            latency=self.timestamper.histogram,
            lost_probes=self.timestamper.lost_probes,
            dut_crc_drops=dut_crc_counter() if dut_crc_counter else 0,
            probe_confidence=self.timestamper.confidence,
        )
