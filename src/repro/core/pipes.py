"""Inter-task communication pipes.

Section 3.4: "Tasks only share state through the underlying MoonGen library
which offers inter-task communication facilities such as pipes."  A
:class:`Pipe` is a bounded FIFO between tasks; receiving blocks via the op
protocol, sending fails fast when the pipe is full (the original's
lock-free pipes drop on overflow rather than block the fast path).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Optional

from repro.errors import ConfigurationError
from repro.nicsim.eventloop import Signal


@dataclass
class PipeRecvOp:
    """Op: receive one message from a pipe (blocks until available)."""

    pipe: "Pipe"
    timeout_ns: Optional[float] = None


class Pipe:
    """A bounded FIFO channel between tasks.

    ``send`` is non-blocking and returns False when the pipe is full —
    callers on the fast path must not stall on a slow consumer.  Receivers
    yield :meth:`recv` ops.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"pipe capacity must be positive: {capacity}")
        self.capacity = capacity
        self._queue: Deque[Any] = deque()
        self.data_signal = Signal()
        self.sent = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.capacity

    def send(self, message: Any) -> bool:
        """Enqueue a message; returns False (and counts a drop) when full."""
        if self.full:
            self.dropped += 1
            return False
        self._queue.append(message)
        self.sent += 1
        self.data_signal.trigger()
        return True

    def try_recv(self) -> Any:
        """Non-blocking receive; returns None when empty."""
        if not self._queue:
            return None
        return self._queue.popleft()

    def recv(self, timeout_ns: Optional[float] = None) -> PipeRecvOp:
        """Blocking receive op for use inside tasks: ``msg = yield pipe.recv()``."""
        return PipeRecvOp(self, timeout_ns)
