"""Configured network devices (ports)."""

from __future__ import annotations

from typing import List, TYPE_CHECKING

from repro.core.queues import RxQueue, TxQueue
from repro.errors import QueueError
from repro.nicsim.nic import NicPort
from repro.packet.address import MacAddress

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.env import MoonGenEnv


class Device:
    """A configured port, the result of ``env.config_device`` (Listing 1)."""

    def __init__(self, env: "MoonGenEnv", port: NicPort) -> None:
        self.env = env
        self.port = port
        self._tx_queues: List[TxQueue] = [
            TxQueue(self, i, q) for i, q in enumerate(port.tx_queues)
        ]
        self._rx_queues: List[RxQueue] = [
            RxQueue(self, i, q) for i, q in enumerate(port.rx_queues)
        ]
        #: A stable per-port MAC address (locally administered).
        self.mac = MacAddress(0x02_00_00_00_00_00 + port.port_id)

    def __repr__(self) -> str:
        return f"Device(port={self.port.port_id}, chip={self.port.chip.name})"

    @property
    def port_id(self) -> int:
        return self.port.port_id

    @property
    def chip(self):
        return self.port.chip

    def get_tx_queue(self, index: int) -> TxQueue:
        try:
            return self._tx_queues[index]
        except IndexError:
            raise QueueError(
                f"device {self.port_id} configured with "
                f"{len(self._tx_queues)} tx queues, asked for {index}"
            ) from None

    def get_rx_queue(self, index: int) -> RxQueue:
        try:
            return self._rx_queues[index]
        except IndexError:
            raise QueueError(
                f"device {self.port_id} configured with "
                f"{len(self._rx_queues)} rx queues, asked for {index}"
            ) from None

    # -- device statistics registers -------------------------------------------

    @property
    def tx_packets(self) -> int:
        return self.port.tx_packets

    @property
    def tx_bytes(self) -> int:
        return self.port.tx_bytes

    @property
    def rx_packets(self) -> int:
        return self.port.rx_packets

    @property
    def rx_bytes(self) -> int:
        return self.port.rx_bytes

    @property
    def rx_crc_errors(self) -> int:
        """Frames dropped for bad FCS — all a DuT sees of CRC-gap fillers."""
        return self.port.rx_crc_errors

    @property
    def rx_missed(self) -> int:
        return self.port.rx_missed

    @property
    def clock(self):
        """The port's PTP clock (one per port, even on dual-port NICs)."""
        return self.port.clock
