"""Receive-side filters: Flow Director and RSS.

Section 3.3: "Receive queues are also statically assigned to threads and
the incoming traffic is distributed via configurable filters (e.g., Intel
Flow Director) or hashing on protocol headers (e.g., Receive Side
Scaling)."  These helpers compile such policies into the NIC model's
rx-dispatch hook so multi-queue receive scripts (one counter task per
flow class) work like the original.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.nicsim.nic import SimFrame
from repro.packet.ethernet import EtherType
from repro.packet.ip4 import IpProtocol


def _parse_udp_ports(frame: SimFrame) -> Optional[Tuple[int, int]]:
    """(src, dst) UDP ports of a frame, or None if it is not UDP/IPv4."""
    d = frame.data
    if len(d) < 14:
        return None
    if ((d[12] << 8) | d[13]) != EtherType.IP4:
        return None
    ihl = (d[14] & 0x0F) * 4
    if len(d) < 14 + ihl + 8 or d[23] != IpProtocol.UDP:
        return None
    l4 = 14 + ihl
    return ((d[l4] << 8) | d[l4 + 1], (d[l4 + 2] << 8) | d[l4 + 3])


class FlowDirector:
    """Exact-match filters steering flows to queues, with a default queue.

    Matches on the UDP destination port (the common benchmark setup:
    prioritized vs background flows distinguished by port, Section 4).
    """

    def __init__(self, default_queue: int = 0) -> None:
        self.default_queue = default_queue
        self._rules: Dict[int, int] = {}
        self.matched = 0
        self.missed = 0

    def add_rule(self, udp_dst_port: int, queue: int) -> None:
        if not 0 <= udp_dst_port <= 0xFFFF:
            raise ConfigurationError(f"bad port: {udp_dst_port}")
        self._rules[udp_dst_port] = queue

    def remove_rule(self, udp_dst_port: int) -> None:
        self._rules.pop(udp_dst_port, None)

    @property
    def rules(self) -> Dict[int, int]:
        return dict(self._rules)

    def __call__(self, frame: SimFrame) -> int:
        ports = _parse_udp_ports(frame)
        if ports is not None and ports[1] in self._rules:
            self.matched += 1
            return self._rules[ports[1]]
        self.missed += 1
        return self.default_queue


class RssHash:
    """Receive Side Scaling: hash protocol headers onto the queue set.

    A Toeplitz-like mix over (src ip, dst ip, src port, dst port); the
    exact hash does not matter for the simulation, only its properties:
    deterministic, flow-sticky, roughly uniform.
    """

    def __init__(self, n_queues: int) -> None:
        if n_queues <= 0:
            raise ConfigurationError(f"need at least one queue: {n_queues}")
        self.n_queues = n_queues

    @staticmethod
    def _mix(value: int) -> int:
        # splitmix64 finalizer: cheap and well distributed.
        value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & (1 << 64) - 1
        value = (value ^ (value >> 27)) * 0x94D049BB133111EB & (1 << 64) - 1
        return value ^ (value >> 31)

    def __call__(self, frame: SimFrame) -> int:
        d = frame.data
        if len(d) < 34 or ((d[12] << 8) | d[13]) != EtherType.IP4:
            return 0
        src = int.from_bytes(d[26:30], "big")
        dst = int.from_bytes(d[30:34], "big")
        key = (src << 32) | dst
        ports = _parse_udp_ports(frame)
        if ports is not None:
            key = (key << 32) | (ports[0] << 16) | ports[1]
        return self._mix(key) % self.n_queues


def install_flow_director(device, rules: Dict[int, int],
                          default_queue: int = 0) -> FlowDirector:
    """Install port→queue rules on a device; returns the filter object."""
    director = FlowDirector(default_queue)
    for port, queue in rules.items():
        if queue >= len(device.port.rx_queues):
            raise ConfigurationError(
                f"queue {queue} not configured on port {device.port_id}"
            )
        director.add_rule(port, queue)
    device.port.set_rx_filter(director)
    return director


def install_rss(device) -> RssHash:
    """Enable RSS-style hashing over all configured rx queues."""
    rss = RssHash(len(device.port.rx_queues))
    device.port.set_rx_filter(rss)
    return rss
