"""Memory pools and batch buffer arrays.

Reproduces the DPDK memory model the paper explains in Section 4.2:

* a :class:`MemPool` owns a fixed set of packet buffers; a user-supplied
  ``fill`` callback pre-initializes each buffer once so the transmit loop
  only touches fields that change per packet;
* a :class:`BufArray` is a batch of buffers processed together — batching is
  the key high-speed technique (Section 4.2, [6, 23]);
* buffers handed to ``queue.send()`` are owned by the NIC until it fetches
  them; they are recycled back into the pool afterwards without erasing
  their contents.  Scripts must allocate fresh buffers every iteration
  instead of re-using the batch (the asynchronous push-pull model).

Cycle accounting: cost-bearing operations (checksum offloads, declared
per-packet modifications) accumulate in the BufArray's *cycle ledger*, which
``queue.send()`` charges to the simulated core along with the per-packet IO
cost.  Mutating packet contents is ordinary Python — the ledger is how the
timing model learns what the script did, mirroring how the paper decomposes
script cost into operations (Section 5.6).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Iterator, List, Optional

from repro.errors import ConfigurationError, QueueError
from repro.nicsim.eventloop import Signal
from repro.packet.packet import PacketData

DEFAULT_POOL_SIZE = 4096
#: MoonGen's default bufArray batch size.
DEFAULT_BATCH_SIZE = 63


class PacketBuffer:
    """One packet buffer of a memory pool (a DPDK mbuf).

    Wraps a :class:`PacketData` plus pool bookkeeping and per-buffer offload
    flags (the DMA descriptor bits the offload calls set).
    """

    __slots__ = (
        "pool", "pkt", "in_pool", "offload_ip", "offload_l4",
        "timestamp_flag", "corrupt_fcs", "recycle_hook",
    )

    def __init__(self, pool: "MemPool", capacity: int) -> None:
        self.pool = pool
        self.pkt = PacketData(size=capacity, capacity=capacity)
        self.in_pool = True
        self.offload_ip = False
        self.offload_l4 = False
        self.timestamp_flag = False
        self.corrupt_fcs = False
        #: The bound ``recycle`` method, created once: the transmit path
        #: attaches it to every materialized frame, and building a bound
        #: method per packet is measurable at millions of packets.
        self.recycle_hook = self.recycle

    # Convenience accessors mirroring buf:getUdpPacket() etc.

    @property
    def udp_packet(self):
        return self.pkt.udp_packet

    @property
    def tcp_packet(self):
        return self.pkt.tcp_packet

    @property
    def ip_packet(self):
        return self.pkt.ip_packet

    @property
    def eth_packet(self):
        return self.pkt.eth_packet

    @property
    def ptp_packet(self):
        return self.pkt.ptp_packet

    @property
    def udp_ptp_packet(self):
        return self.pkt.udp_ptp_packet

    @property
    def icmp_packet(self):
        return self.pkt.icmp_packet

    @property
    def size(self) -> int:
        """Frame length excluding FCS (DPDK convention)."""
        return self.pkt.size

    def reset_flags(self) -> None:
        self.offload_ip = False
        self.offload_l4 = False
        self.timestamp_flag = False
        self.corrupt_fcs = False

    def recycle(self) -> None:
        """Return this buffer to its pool (the NIC's descriptor-fetch hook)."""
        self.pool.give_back(self)


class MemPool:
    """A pool of pre-initialized packet buffers."""

    def __init__(
        self,
        n_buffers: int = DEFAULT_POOL_SIZE,
        buf_capacity: int = 2048,
        fill: Optional[Callable[[PacketBuffer], None]] = None,
    ) -> None:
        if n_buffers <= 0:
            raise ConfigurationError(f"pool needs at least one buffer: {n_buffers}")
        self.buf_capacity = buf_capacity
        self._free: Deque[PacketBuffer] = deque()
        self.free_signal = Signal()
        self.n_buffers = n_buffers
        for _ in range(n_buffers):
            buf = PacketBuffer(self, buf_capacity)
            if fill is not None:
                fill(buf)
            buf.pkt.size = buf_capacity
            self._free.append(buf)

    @property
    def available(self) -> int:
        return len(self._free)

    def take(self, n: int, size: int) -> List[PacketBuffer]:
        """Pop up to ``n`` buffers, set their frame size; may return fewer."""
        if size < 0 or size > self.buf_capacity:
            raise QueueError(
                f"frame size {size} out of range for buffer capacity "
                f"{self.buf_capacity}"
            )
        out = []
        free = self._free
        pop = free.popleft
        append = out.append
        k = 0
        while free and k < n:
            buf = pop()
            buf.in_pool = False
            # Inlined reset_flags() + the pkt.size setter (bounds already
            # checked once above): this loop runs once per packet sent.
            buf.offload_ip = False
            buf.offload_l4 = False
            buf.timestamp_flag = False
            buf.corrupt_fcs = False
            buf.pkt._size = size
            append(buf)
            k += 1
        return out

    def give_back(self, buf: PacketBuffer) -> None:
        """Return a buffer to the pool (contents are *not* erased)."""
        if buf.in_pool:
            raise QueueError("double free of a packet buffer")
        buf.in_pool = True
        self._free.append(buf)
        signal = self.free_signal
        if signal._waiters:
            signal.trigger()

    def buf_array(self, size: int = DEFAULT_BATCH_SIZE) -> "BufArray":
        """Create a batch array bound to this pool."""
        return BufArray(self, size)


class BufArray:
    """A batch of packet buffers processed together.

    Iterating yields the currently-allocated buffers.  The cycle ledger
    accumulates the cost of declared per-packet work; see the module
    docstring.
    """

    def __init__(self, pool: Optional[MemPool], size: int = DEFAULT_BATCH_SIZE) -> None:
        if size <= 0:
            raise ConfigurationError(f"batch size must be positive: {size}")
        self.pool = pool
        self.size = size
        self.bufs: List[PacketBuffer] = []
        # Ledger entries: (kind, arg) per packet in the batch.
        self._ledger: List[tuple] = []

    def __len__(self) -> int:
        return len(self.bufs)

    def __iter__(self) -> Iterator[PacketBuffer]:
        return iter(self.bufs)

    def __getitem__(self, index: int) -> PacketBuffer:
        return self.bufs[index]

    # -- allocation -----------------------------------------------------------

    def alloc(self, size: int) -> "BufArray":
        """Fill the array with fresh buffers of ``size`` bytes (excl. FCS).

        Raises :class:`QueueError` if the pool cannot supply a full batch.
        With the default sizing (pool 4096, ring 512) this cannot happen in a
        well-formed transmit loop: buffers return to the pool as the NIC
        fetches them, long before 4096 are in flight.
        """
        if self.pool is None:
            raise ConfigurationError("bufArray without a pool cannot alloc")
        if self.bufs:
            raise QueueError(
                "bufArray still owns buffers; they are recycled by send() — "
                "alloc() may only be called on an empty array"
            )
        self._ledger.clear()
        self.bufs = self.pool.take(self.size, size)
        if len(self.bufs) < self.size:
            for buf in self.bufs:
                self.pool.give_back(buf)
            self.bufs = []
            raise QueueError(
                f"mempool exhausted: batch of {self.size} requested, "
                f"{self.pool.available} buffers free — size the pool larger "
                f"than ring + in-flight batches"
            )
        return self

    def adopt(self, bufs: List[PacketBuffer]) -> None:
        """Take ownership of externally supplied buffers (rx path)."""
        self.bufs = list(bufs)
        self._ledger.clear()

    def release(self) -> List[PacketBuffer]:
        """Hand the buffers over (to a send op); the array becomes empty."""
        bufs, self.bufs = self.bufs, []
        return bufs

    def free_all(self) -> None:
        """Return all buffers to their pool (rx path's ``bufs:freeAll()``)."""
        for buf in self.bufs:
            buf.pool.give_back(buf)
        self.bufs = []

    # -- offloads (set DMA descriptor bits; Section 5.6.1 costs) --------------

    def offload_ip_checksums(self) -> None:
        """Enable IP header checksum offloading for the batch."""
        for buf in self.bufs:
            buf.offload_ip = True
        self._ledger.append(("offload_ip", None))

    def offload_udp_checksums(self) -> None:
        """Enable UDP checksum offloading.

        Also computes the IP pseudo-header checksum in software, as the
        paper notes the X540 cannot (the cost table includes this).
        """
        for buf in self.bufs:
            buf.offload_ip = True
            buf.offload_l4 = True
        self._ledger.append(("offload_udp", None))

    def offload_tcp_checksums(self) -> None:
        """Enable TCP checksum offloading (incl. pseudo-header software part)."""
        for buf in self.bufs:
            buf.offload_ip = True
            buf.offload_l4 = True
        self._ledger.append(("offload_tcp", None))

    def calculate_udp_checksums_software(self) -> None:
        """Compute UDP (and IP) checksums on the CPU instead of offloading.

        The expensive alternative to :meth:`offload_udp_checksums`
        (Section 5.6.1 notes offloading is cheaper); checksums are written
        into the buffers and the ledger charges the software cost.
        """
        total_bytes = 0
        for buf in self.bufs:
            view = buf.pkt.udp_packet
            view.calculate_ip_checksum()
            view.calculate_udp_checksum()
            total_bytes += buf.pkt.size - 14
        if self.bufs:
            self._ledger.append(("sw_checksum", total_bytes // len(self.bufs)))

    def calculate_ip_checksums_software(self) -> None:
        """Compute only the IP header checksum on the CPU."""
        for buf in self.bufs:
            buf.pkt.ip_packet.calculate_ip_checksum()
        if self.bufs:
            self._ledger.append(("sw_checksum", 20))

    # -- declared per-packet work ----------------------------------------------

    def charge_modify(self, cachelines: int = 1) -> None:
        """Declare a constant-field write per packet (Table 1 cost)."""
        self._ledger.append(("modify", max(1, int(cachelines))))

    def charge_random_fields(self, n_fields: int) -> None:
        """Declare ``n_fields`` randomized header fields per packet (Table 2)."""
        self._ledger.append(("random", int(n_fields)))

    def charge_counter_fields(self, n_fields: int) -> None:
        """Declare ``n_fields`` wrapping-counter fields per packet (Table 2)."""
        self._ledger.append(("counter", int(n_fields)))

    def drain_ledger(self) -> List[tuple]:
        entries, self._ledger = self._ledger, []
        return entries
