"""Device-under-test models.

The paper's rate-control experiments (Sections 7.4, 8.2, 8.3) measure how a
Linux software forwarder — Open vSwitch with the ixgbe driver — reacts to
different traffic patterns.  This package provides:

* :mod:`repro.dut.interrupts` — the ixgbe-style adaptive interrupt
  moderation (ITR) plus NAPI polling semantics,
* :mod:`repro.dut.forwarder` — an event-driven forwarder that plugs into
  the NIC simulation (integration tests, examples),
* :mod:`repro.dut.fastpath` — a per-packet simulation over arrival-time
  arrays, fast enough for the million-packet benches (Figures 7, 10, 11),
* :mod:`repro.dut.switch` — a store-and-forward switch that drops bad-CRC
  frames (the Section 8.4 workaround for hardware DuTs).
"""

from repro.dut.interrupts import ItrConfig, InterruptModerator
from repro.dut.forwarder import DutConfig, OvsForwarder
from repro.dut.fastpath import FastForwarderResult, simulate_forwarder
from repro.dut.hardware import HardwareAppliance
from repro.dut.switch import StoreAndForwardSwitch

__all__ = [
    "DutConfig",
    "FastForwarderResult",
    "HardwareAppliance",
    "InterruptModerator",
    "ItrConfig",
    "OvsForwarder",
    "StoreAndForwardSwitch",
    "simulate_forwarder",
]
