"""Interrupt moderation: an ixgbe-style adaptive ITR.

The ixgbe driver throttles interrupts to a class-dependent maximum rate and
reclassifies each interrupt period based on the observed traffic
(``ixgbe_update_itr``): sparse low-latency traffic gets high-rate
interrupts, bulky traffic gets heavily moderated ones.  Two signals drive
reclassification here:

* **clumps** — packets arriving back-to-back (within a small window) look
  like bulk transfers to the driver and push the class down.  This is the
  paper's Figure 7 effect: "the bursts trigger the interrupt rate
  moderation feature of the driver earlier than expected", which is why
  zsend's micro-bursts produce a far lower interrupt rate than MoonGen's
  CBR traffic at the same offered load;
* **bytes per period** — large transfers push the class down even without
  clumping (relevant for big frames).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Traffic classes of the ixgbe dynamic ITR.
LOWEST_LATENCY = 0
LOW_LATENCY = 1
BULK_LATENCY = 2


@dataclass
class ItrConfig:
    """Interrupt-moderation parameters (ixgbe-like defaults).

    ``rates`` are the maximum interrupts per second for the three classes;
    clump and byte thresholds drive per-period reclassification.
    """

    lowest_rate_hz: float = 150_000.0
    low_rate_hz: float = 20_000.0
    bulk_rate_hz: float = 8_000.0
    #: Arrival gap below which consecutive packets count as one clump.
    clump_window_ns: float = 200.0
    #: Max clump length at/above which the class degrades one step.
    clump_degrade: int = 3
    #: Max clump length at/below which the class recovers one step.
    clump_recover: int = 1
    #: bytes/period above which the class degrades regardless of clumping.
    bytes_degrade: int = 24_000
    #: bytes/period below which the byte rule allows recovery.
    bytes_recover: int = 12_000
    #: Fixed interrupt servicing cost on the DuT CPU (ns).
    interrupt_overhead_ns: float = 2_000.0

    def interval_ns(self, latency_class: int) -> float:
        rate = {
            LOWEST_LATENCY: self.lowest_rate_hz,
            LOW_LATENCY: self.low_rate_hz,
            BULK_LATENCY: self.bulk_rate_hz,
        }[latency_class]
        return 1e9 / rate


class InterruptModerator:
    """Tracks the adaptive-ITR state machine across interrupts."""

    def __init__(self, config: ItrConfig) -> None:
        self.config = config
        self.latency_class = LOWEST_LATENCY
        self.interrupts = 0
        self.last_interrupt_ns = float("-inf")
        self._period_bytes = 0
        self._period_packets = 0
        self._clump_len = 1
        self._max_clump = 0
        self._last_arrival_ns = float("-inf")
        self.class_history = []

    # -- per-packet accounting ---------------------------------------------------

    def observe_arrival(self, now_ns: float) -> None:
        """Track back-to-back arrival clumps (NIC-side observation)."""
        if now_ns - self._last_arrival_ns <= self.config.clump_window_ns:
            self._clump_len += 1
        else:
            self._clump_len = 1
        self._max_clump = max(self._max_clump, self._clump_len)
        self._last_arrival_ns = now_ns

    def account(self, packets: int, nbytes: int) -> None:
        """Record traffic handled since the last interrupt."""
        self._period_packets += packets
        self._period_bytes += nbytes

    # -- interrupt firing ------------------------------------------------------------

    def next_allowed_ns(self) -> float:
        """Earliest time the next interrupt may fire."""
        return self.last_interrupt_ns + self.config.interval_ns(self.latency_class)

    def fire(self, now_ns: float) -> None:
        """An interrupt fires: count it and reclassify for the next period.

        The class moves at most one step per interrupt, like
        ``ixgbe_update_itr``.
        """
        self.interrupts += 1
        self.last_interrupt_ns = now_ns
        cfg = self.config
        degrade = (
            self._max_clump >= cfg.clump_degrade
            or self._period_bytes > cfg.bytes_degrade
        )
        recover = (
            self._max_clump <= cfg.clump_recover
            and self._period_bytes <= cfg.bytes_recover
        )
        if degrade and self.latency_class < BULK_LATENCY:
            self.latency_class += 1
        elif recover and self.latency_class > LOWEST_LATENCY:
            self.latency_class -= 1
        self.class_history.append(self.latency_class)
        self._period_bytes = 0
        self._period_packets = 0
        self._max_clump = 0

    def rate_hz(self, duration_ns: float) -> float:
        """Average interrupt rate over an experiment."""
        if duration_ns <= 0:
            return 0.0
        return self.interrupts / (duration_ns / 1e9)
