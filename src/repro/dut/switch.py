"""Store-and-forward switch.

Section 8.4 proposes routing CRC-gap test traffic through a store-and-
forward switch when the DuT is a hardware appliance: the switch drops the
invalid frames, effectively replacing them with real gaps on the wire, and
can multiplex several generator streams onto one output.

The model: a frame is fully received (it already is, by the time the wire
delivers it), looked up (fixed latency), and queued for the output port,
which serializes at line rate.  The paper warns that the switch's effect on
inter-arrival times must be evaluated — the queueing here is exactly that
effect, observable in the output timestamps.
"""

from __future__ import annotations

from typing import Optional

from repro.nicsim.eventloop import EventLoop
from repro.nicsim.link import Wire
from repro.nicsim.nic import SimFrame


class StoreAndForwardSwitch:
    """A single-output switch fed by any number of input wires."""

    def __init__(
        self,
        loop: EventLoop,
        forwarding_latency_ns: float = 800.0,
        queue_bytes: int = 512 * 1024,
    ) -> None:
        self.loop = loop
        self.forwarding_latency_ns = forwarding_latency_ns
        self.queue_bytes = queue_bytes
        self.output: Optional[Wire] = None
        self._queued_bytes = 0
        self.rx_packets = 0
        self.rx_crc_errors = 0
        self.tx_packets = 0
        self.dropped = 0

    def connect_output(self, wire: Wire) -> None:
        self.output = wire

    def ingress(self, frame: SimFrame, arrival_ps: int) -> None:
        """Wire-sink entry point for any input port."""
        if not frame.fcs_ok:
            # The switch validates the FCS after full reception and drops
            # the frame: the CRC-gap filler becomes a real gap downstream.
            self.rx_crc_errors += 1
            return
        self.rx_packets += 1
        if self._queued_bytes + frame.size > self.queue_bytes:
            self.dropped += 1
            return
        self._queued_bytes += frame.size

        def forward(frame=frame) -> None:
            self._queued_bytes -= frame.size
            self.tx_packets += 1
            if self.output is not None:
                self.output.transmit(frame, frame.size)

        self.loop.schedule(round(self.forwarding_latency_ns * 1000), forward)
