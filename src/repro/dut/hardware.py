"""A hardware-appliance DuT that is *not* transparent to invalid frames.

Section 8.4: "our approach is optimized for experiments in which the DuT is
a software-based packet processing system... Hardware might be affected by
an invalid packet.  In such a scenario, we suggest to route the test
traffic through a store-and-forward switch".

This model makes the problem concrete: the appliance's lookup pipeline
processes *every* arriving frame — including bad-CRC fillers, which it only
discards after the lookup stage — so CRC-gap filler load eats into its
forwarding capacity and inflates latency.  Benches use it to demonstrate
why the switch workaround exists and that the workaround restores clean
behaviour.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.nicsim.eventloop import EventLoop
from repro.nicsim.link import Wire
from repro.nicsim.nic import SimFrame


class HardwareAppliance:
    """A fixed-pipeline forwarding appliance.

    Every frame, valid or not, occupies one pipeline slot for
    ``pipeline_ns``; invalid frames are discarded at the end of the
    pipeline instead of being forwarded.
    """

    def __init__(
        self,
        loop: EventLoop,
        pipeline_ns: float = 400.0,
        queue_frames: int = 1024,
    ) -> None:
        self.loop = loop
        self.pipeline_ns = pipeline_ns
        self.queue_frames = queue_frames
        self.output: Optional[Wire] = None
        self._queue: Deque[SimFrame] = deque()
        self._busy = False
        self.forwarded = 0
        self.discarded_invalid = 0
        self.dropped = 0
        self.latency_samples_ns = []

    def connect_output(self, wire: Wire) -> None:
        self.output = wire

    def ingress(self, frame: SimFrame, arrival_ps: int) -> None:
        if len(self._queue) >= self.queue_frames:
            self.dropped += 1
            return
        frame.meta["hw_arrival_ps"] = arrival_ps
        self._queue.append(frame)
        if not self._busy:
            self._process_next()

    def _process_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        frame = self._queue.popleft()

        def done(frame=frame) -> None:
            if frame.fcs_ok:
                self.forwarded += 1
                self.latency_samples_ns.append(
                    (self.loop.now_ps - frame.meta["hw_arrival_ps"]) / 1000.0
                )
                if self.output is not None:
                    self.output.transmit(frame, frame.size)
            else:
                # The invalid frame consumed a pipeline slot anyway.
                self.discarded_invalid += 1
            self._process_next()

        self.loop.schedule(round(self.pipeline_ns * 1000), done)
