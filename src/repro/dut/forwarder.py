"""Event-driven Open-vSwitch-like forwarder.

Plugs into the NIC simulation as a wire sink: frames arrive from the load
generator's wire, pass the DuT NIC's CRC check (invalid CRC-gap fillers are
dropped in hardware and only counted), queue in the rx ring, and are
forwarded by a single-core software switch with NAPI/ITR semantics onto the
output wire.

This component is for integration tests and examples; benches over millions
of packets use :mod:`repro.dut.fastpath`, which implements identical
semantics without per-packet event scheduling.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from repro.dut.fastpath import (
    DEFAULT_PIPELINE_NS,
    DEFAULT_RING_SIZE,
    DEFAULT_SERVICE_NS,
)
from repro.dut.interrupts import InterruptModerator, ItrConfig
from repro.nicsim.eventloop import EventLoop
from repro.nicsim.link import Wire
from repro.nicsim.nic import SimFrame


@dataclass
class DutConfig:
    """Forwarder parameters; defaults match the paper's OvS DuT."""

    service_ns: float = DEFAULT_SERVICE_NS
    ring_size: int = DEFAULT_RING_SIZE
    pipeline_ns: float = DEFAULT_PIPELINE_NS
    itr: ItrConfig = field(default_factory=ItrConfig)


class OvsForwarder:
    """A single-core software forwarder with interrupt moderation."""

    def __init__(self, loop: EventLoop, config: Optional[DutConfig] = None) -> None:
        self.loop = loop
        self.config = config or DutConfig()
        self.moderator = InterruptModerator(self.config.itr)
        self.ring: Deque[SimFrame] = deque()
        self.output: Optional[Wire] = None
        self._busy = False
        self._interrupt_scheduled = False
        # Counters.
        self.rx_crc_errors = 0
        self.rx_packets = 0
        self.rx_dropped = 0
        self.forwarded = 0
        self._start_ps: Optional[int] = None
        self._last_activity_ps = 0
        #: Fault injection (``repro.faults``): multiplies the per-packet
        #: service time — a saturated forwarder (>1.0) drains slower, so
        #: its rx ring fills and ``rx_dropped`` climbs.
        self.overload = 1.0
        #: In-dataplane ring-residence histogram
        #: (``latency.hop.dut.ring``), attached by
        #: :meth:`repro.metrics.dataplane.DataplaneObserver.attach_dut`.
        self.dp_ring = None

    def set_overload(self, factor: float) -> None:
        """Scale the per-packet service time (DuT overload fault)."""
        self.overload = factor

    def register_metrics(self, registry) -> None:
        """Publish forwarder state under ``dut.*`` (pull-based)."""
        rx = registry.counter("dut.rx.packets", lambda: self.rx_packets,
                              help="frames accepted into the DuT ring")
        fwd = registry.counter("dut.forwarded", lambda: self.forwarded,
                               help="frames forwarded out the egress wire")
        registry.rate("dut.rx.pps", rx)
        registry.rate("dut.forwarded.pps", fwd)
        registry.gauge("dut.ring.depth", lambda: len(self.ring),
                       help="frames queued in the forwarder ring")
        registry.counter("dut.rx.dropped", lambda: self.rx_dropped,
                         help="frames dropped on ring overflow")
        registry.counter("dut.rx.crc_errors", lambda: self.rx_crc_errors)
        registry.counter("dut.interrupts",
                         lambda: self.moderator.interrupts,
                         help="interrupts fired (after moderation)")
        registry.gauge("dut.overload", lambda: self.overload,
                       help="service-time multiplier (1.0 = nominal)")

    def connect_output(self, wire: Wire) -> None:
        """Attach the wire the forwarder transmits onto."""
        self.output = wire

    # -- ingress (wire sink) -------------------------------------------------

    def ingress(self, frame: SimFrame, arrival_ps: int) -> None:
        """Receive a frame from the wire (use as ``wire.connect`` sink).

        Deliberately *unbatchable*: interrupt moderation and the NAPI poll
        loop schedule events relative to the loop's **current** time, so
        every arrival must be its own event for the ITR timing to come out
        right.  The batch tier's run detector recognizes this sink is not
        a plain ``NicPort.receive`` and falls back with reason
        ``sink-unbatchable`` — topologies through the DuT run event-by-
        event on the segment feeding it, bit-identical by construction.
        """
        if self._start_ps is None:
            self._start_ps = arrival_ps
        self._last_activity_ps = arrival_ps
        tracer = self.loop.tracer
        if not frame.fcs_ok:
            # Dropped by the DuT NIC before it reaches any software — the
            # load of invalid packets causes no system activity (Section 8.2).
            self.rx_crc_errors += 1
            if tracer is not None:
                tracer.emit("drop", "dut_drop_fcs",
                            frame=tracer.frame_id(frame), size=frame.size)
            return
        self.moderator.observe_arrival(arrival_ps / 1000.0)
        if len(self.ring) >= self.config.ring_size:
            self.rx_dropped += 1
            if tracer is not None:
                tracer.emit("drop", "dut_drop_ring",
                            frame=tracer.frame_id(frame), size=frame.size)
            return
        frame.meta["dut_arrival_ps"] = arrival_ps
        self.ring.append(frame)
        self.rx_packets += 1
        if not self._busy:
            self._schedule_interrupt()

    # -- interrupt + NAPI machinery -----------------------------------------------

    def _schedule_interrupt(self) -> None:
        if self._interrupt_scheduled or self._busy:
            return
        self._interrupt_scheduled = True
        now_ns = self.loop.now_ps / 1000.0
        fire_ns = max(now_ns, self.moderator.next_allowed_ns())
        self.loop.schedule(round((fire_ns - now_ns) * 1000), self._interrupt)

    def _interrupt(self) -> None:
        self._interrupt_scheduled = False
        if self._busy or not self.ring:
            return
        self.moderator.fire(self.loop.now_ps / 1000.0)
        if self.loop.tracer is not None:
            self.loop.tracer.emit("irq", "dut_irq", n=self.moderator.interrupts,
                                  pending=len(self.ring))
        self._busy = True
        overhead_ps = round(self.config.itr.interrupt_overhead_ns * 1000)
        self.loop.schedule(overhead_ps, self._poll)

    def _poll(self) -> None:
        """NAPI poll: process one packet, then re-poll or go idle."""
        if not self.ring:
            # Ring drained: re-enable interrupts.
            self._busy = False
            if self.ring:
                self._schedule_interrupt()
            return
        frame = self.ring.popleft()
        if self.dp_ring is not None:
            arrival = frame.meta.get("dut_arrival_ps")
            if arrival is not None:
                self.dp_ring.observe((self.loop.now_ps - arrival) / 1000.0)
        service_ps = round(self.config.service_ns * self.overload * 1000)

        def done(frame=frame) -> None:
            self.moderator.account(1, frame.size)
            self.forwarded += 1
            pipeline_ps = round(self.config.pipeline_ns * 1000)
            departure = self.loop.now_ps + pipeline_ps
            frame.meta["dut_departure_ps"] = departure
            if self.output is not None:
                out = self.output

                def egress(frame=frame, out=out) -> None:
                    out.transmit(frame, frame.size)

                self.loop.schedule(pipeline_ps, egress)
            self._poll()

        self.loop.schedule(service_ps, done)

    # -- results ---------------------------------------------------------------------

    def counters(self) -> dict:
        """Stable counter snapshot for differential comparisons.

        ``tests/test_batch_equivalence.py`` diffs this dict between batch
        and event runs of every DuT topology; anything order- or
        timing-sensitive the forwarder observes belongs here.
        """
        return {
            "rx_packets": self.rx_packets,
            "rx_dropped": self.rx_dropped,
            "rx_crc_errors": self.rx_crc_errors,
            "forwarded": self.forwarded,
            "ring_depth": len(self.ring),
            "interrupts": self.moderator.interrupts,
        }

    @property
    def interrupts(self) -> int:
        return self.moderator.interrupts

    def interrupt_rate_hz(self) -> float:
        if self._start_ps is None:
            return 0.0
        duration_ns = (self._last_activity_ps - self._start_ps) / 1000.0
        return self.moderator.rate_hz(duration_ns)
