"""Vectorizable forwarder simulation over arrival-time arrays.

The benches for Figures 7, 10 and 11 need millions of packets; driving the
event loop for each would dominate runtime.  This module simulates the same
forwarder semantics — NAPI polling, adaptive ITR, a finite rx ring, fixed
per-packet service cost — in a single pass over a sorted arrival-time
array.

Semantics (matching :class:`repro.dut.forwarder.OvsForwarder`):

* if the CPU is idle when a packet arrives, an interrupt fires no earlier
  than the moderation interval allows; the CPU wakes, pays the interrupt
  overhead, and polls;
* while the CPU is processing (NAPI poll mode), no interrupts fire and
  packets queue in the rx ring;
* a packet arriving to a full ring is dropped (the ~2 ms overload latency
  of Section 8.3 is the ring capacity times the service time);
* each processed packet costs ``service_ns``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro._optional import np, require_numpy

from repro.dut.interrupts import InterruptModerator, ItrConfig

#: Per-packet forwarding cost of the single-core Open vSwitch DuT.  The
#: paper's DuT overloads at ~1.9 Mpps (Section 8.3) → ~526 ns per packet.
DEFAULT_SERVICE_NS = 526.0
#: rx descriptor ring; 4096 × 526 ns ≈ 2.15 ms, the observed overload
#: latency plateau ("about 2 ms in this test setup").
DEFAULT_RING_SIZE = 4096
#: Constant per-packet pipeline latency through the DuT's kernel stack and
#: transmit path (independent of load; calibrates the Figure 11 baseline).
DEFAULT_PIPELINE_NS = 15_000.0


@dataclass
class FastForwarderResult:
    """Outcome of a fastpath run."""

    arrivals_ns: np.ndarray
    departures_ns: np.ndarray  # NaN for dropped packets
    latencies_ns: np.ndarray   # NaN for dropped packets
    dropped: int
    interrupts: int
    duration_ns: float
    moderator: InterruptModerator = field(repr=False, default=None)

    @property
    def forwarded(self) -> int:
        return int(np.sum(~np.isnan(self.departures_ns)))

    @property
    def interrupt_rate_hz(self) -> float:
        if self.duration_ns <= 0:
            return 0.0
        return self.interrupts / (self.duration_ns / 1e9)

    def latency_percentiles(self, percentiles=(25, 50, 75)) -> tuple:
        ok = self.latencies_ns[~np.isnan(self.latencies_ns)]
        if ok.size == 0:
            raise ValueError("no forwarded packets")
        return tuple(float(np.percentile(ok, p)) for p in percentiles)

    @property
    def drop_rate(self) -> float:
        if self.arrivals_ns.size == 0:
            return 0.0
        return self.dropped / self.arrivals_ns.size


def simulate_forwarder(
    arrivals_ns: np.ndarray,
    pkt_size: int = 64,
    service_ns: float = DEFAULT_SERVICE_NS,
    ring_size: int = DEFAULT_RING_SIZE,
    itr: Optional[ItrConfig] = None,
    pipeline_ns: float = DEFAULT_PIPELINE_NS,
) -> FastForwarderResult:
    """Run the forwarder over sorted packet arrival times (ns)."""
    require_numpy("the vectorized DuT fastpath")
    arrivals = np.asarray(arrivals_ns, dtype=float)
    if arrivals.size == 0:
        raise ValueError("no arrivals")
    if np.any(np.diff(arrivals) < 0):
        raise ValueError("arrival times must be sorted")
    moderator = InterruptModerator(itr or ItrConfig())
    overhead = moderator.config.interrupt_overhead_ns

    n = arrivals.size
    departures = np.full(n, np.nan)
    cpu_free = float("-inf")
    dropped = 0
    accepted = 0
    dep_ptr = 0          # departures are non-decreasing for accepted packets
    done_times = []      # departure times of accepted packets, in order

    for i in range(n):
        a = arrivals[i]
        moderator.observe_arrival(a)
        # Advance the departed pointer to compute ring occupancy.
        while dep_ptr < len(done_times) and done_times[dep_ptr] <= a:
            dep_ptr += 1
        if accepted - dep_ptr >= ring_size:
            dropped += 1
            continue
        if cpu_free <= a:
            # CPU idle, interrupts armed: fire (moderated) and wake.
            wake = max(a, moderator.next_allowed_ns())
            moderator.fire(wake)
            start = wake + overhead
        else:
            # NAPI poll mode: the packet is handled when the CPU gets to it.
            start = cpu_free
        dep = start + service_ns
        cpu_free = dep
        moderator.account(1, pkt_size)
        # The frame leaves the DuT after the (load-independent) tx pipeline.
        departures[i] = dep + pipeline_ns
        done_times.append(dep)
        accepted += 1

    duration = float(arrivals[-1] - arrivals[0]) if n > 1 else 0.0
    return FastForwarderResult(
        arrivals_ns=arrivals,
        departures_ns=departures,
        latencies_ns=departures - arrivals,
        dropped=dropped,
        interrupts=moderator.interrupts,
        duration_ns=duration,
        moderator=moderator,
    )
