"""Command-line interface.

The original MoonGen is launched as ``MoonGen <userscript> [args]``; the
reproduction ships the canonical measurement scripts as subcommands::

    moongen-repro quickstart --metrics out.jsonl
    moongen-repro load-latency --rate 1.0 --mode crc --pattern poisson
    moongen-repro inter-arrival --rate 500
    moongen-repro precision --rate 1.0 --csv fig8.csv
    moongen-repro rfc2544 --frame-size 64 --frame-size 128 --jobs 2
    moongen-repro timestamps
    moongen-repro trace --scenario load-latency --out run.jsonl
    moongen-repro bench --smoke --jobs 2
    moongen-repro sweep fig2-cores --jobs 4 --live
    moongen-repro faults --plan burst-loss --plan flap --jobs 2
    moongen-repro metrics quickstart --out metrics.jsonl
    moongen-repro profile quickstart

Custom userscripts use the library API directly (see examples/).
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
from typing import List, Optional

from repro import __version__, units


@contextlib.contextmanager
def _atomic_out(path: str, newline: str = "\n"):
    """Write a result file atomically: tmp + flush + fsync + ``os.replace``.

    A run killed mid-write leaves either the previous file or the
    complete new one on disk — never a torn half-write that a later
    resume or CI diff would misread (docs/RESILIENCE.md).
    """
    tmp = f"{path}.tmp"
    fh = open(tmp, "w", newline=newline)
    try:
        yield fh
        fh.flush()
        os.fsync(fh.fileno())
        fh.close()
        os.replace(tmp, path)
    except BaseException:
        fh.close()
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _resolve_faults_value(faults, seed: int):
    """Turn a ``--faults`` string into something ``MoonGenEnv`` accepts.

    Builtin plan names (``moongen-repro faults --list``) win, seeded with
    the command's ``--seed``; anything else passes through to
    :func:`repro.faults.load_plan` (a plan.json path or inline JSON).
    """
    if not faults:
        return None
    from repro.faults import builtin_plans

    plans = builtin_plans(seed=seed)
    return plans.get(faults, faults)


def _resolve_faults(args: argparse.Namespace):
    return _resolve_faults_value(args.faults, args.seed)


def _warn_unmatched_faults(env) -> None:
    """stderr note when a fault's target never registered (silent no-op)."""
    injector = getattr(env, "injector", None)
    if injector is None:
        return
    for index, target in injector.unmatched():
        print(f"warning: fault #{index} targets {target!r} which does not "
              "exist in this topology; it will not fire", file=sys.stderr)


def _metrics_interval_ns(args: argparse.Namespace) -> float:
    """Snapshot interval: ~20 samples over the run, at least 100 µs."""
    return max(100_000.0, args.duration_ms * 1e6 / 20.0)


def _write_metrics(snapshotter, out: str, command: str, seed: int,
                   fault_plan=None, fingerprints=None) -> None:
    """Finalize a snapshot series; write JSONL + provenance manifest."""
    from repro.metrics import RunManifest, write_jsonl

    snapshotter.finalize()
    with _atomic_out(out) as fh:
        write_jsonl(snapshotter.series, fh)
    manifest_path = RunManifest(
        command=command,
        seed=seed,
        jobs=1,
        config={"interval_ns": snapshotter.interval_ns,
                "metrics": snapshotter.registry.names()},
        fault_plan=(fault_plan.to_dict()
                    if hasattr(fault_plan, "to_dict") else fault_plan),
        result_fingerprint=snapshotter.series.fingerprint(),
        fingerprints=fingerprints,
    ).write(out)
    print(f"wrote {len(snapshotter.series)} metric snapshots to {out} "
          f"(fingerprint {snapshotter.series.fingerprint()}, "
          f"manifest {manifest_path})")


def _build_quickstart(seed: int, faults=None, metrics=False, batch=False,
                      scheduler=None, dataplane=False):
    """The quickstart topology: one CBR slave saturating a 10 GbE link."""
    from repro import MoonGenEnv

    env = MoonGenEnv(seed=seed, faults=faults, metrics=metrics, batch=batch,
                     scheduler=scheduler, dataplane=dataplane)
    tx = env.config_device(0, tx_queues=1)
    rx = env.config_device(1, rx_queues=1)
    env.connect(tx, rx)

    def slave(env, queue):
        mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(
            pkt_length=60, eth_dst=str(rx.mac)))
        bufs = mem.buf_array()
        while env.running():
            bufs.alloc(60)
            bufs.charge_random_fields(1)
            yield queue.send(bufs)

    env.launch(slave, env, tx.get_tx_queue(0))
    return env, tx, rx


def _build_dut_forward(seed: int, faults=None, metrics=False,
                       rate_pps: float = 1.5e6, frame_size: int = 64,
                       scheduler=None, dataplane=False):
    """CBR traffic through the simulated OvS DuT (load-latency shape)."""
    from repro import MoonGenEnv
    from repro.dut import OvsForwarder

    env = MoonGenEnv(seed=seed, cost_noise=False, faults=faults,
                     metrics=metrics, scheduler=scheduler,
                     dataplane=dataplane)
    tx = env.config_device(0, tx_queues=2)
    rx = env.config_device(1, rx_queues=1)
    dut = OvsForwarder(env.loop)
    env.connect_to_sink(tx, dut.ingress)
    dut.connect_output(env.wire_to_device(rx))
    env.register_dut(dut)

    load_queue = tx.get_tx_queue(0)
    load_queue.set_rate_pps(rate_pps, frame_size)

    def tx_task():
        mem = env.create_mempool()
        bufs = mem.buf_array(32)
        dst = str(rx.mac)
        src = str(tx.mac)
        while env.running():
            bufs.alloc(frame_size - 4)  # buffers exclude the FCS
            for buf in bufs:
                buf.eth_packet.fill(eth_src=src, eth_dst=dst,
                                    eth_type=0x0800)
            yield load_queue.send(bufs)

    def rx_task():
        rx_queue = rx.get_rx_queue(0)
        while env.running():
            rx_queue.try_fetch(64)
            yield env.sleep_us(10.0)

    env.launch(tx_task)
    env.launch(rx_task)
    return env, tx, rx, dut


def _cmd_quickstart(args: argparse.Namespace) -> int:
    env, tx, rx = _build_quickstart(args.seed,
                                    faults=_resolve_faults(args),
                                    metrics=bool(args.metrics),
                                    batch=args.batch,
                                    scheduler=args.scheduler,
                                    dataplane=bool(args.metrics))
    _warn_unmatched_faults(env)
    snapshotter = None
    if args.metrics:
        snapshotter = env.start_snapshotter(_metrics_interval_ns(args))
    env.wait_for_slaves(duration_ns=args.duration_ms * 1e6)
    pps = tx.tx_packets / (env.now_ns / 1e9)
    print(f"transmitted {tx.tx_packets} packets in {env.now_ns / 1e6:.2f} ms "
          f"simulated: {pps / 1e6:.2f} Mpps "
          f"(line rate {units.LINE_RATE_10G_64B_PPS / 1e6:.2f})")
    if env.batch is not None:
        print(env.batch.summary())
    if snapshotter is not None:
        lat_fp = env.dataplane.fingerprint()
        print(f"latency fingerprint {lat_fp}")
        _write_metrics(snapshotter, args.metrics, "moongen-repro quickstart",
                       args.seed, fingerprints={"latency": lat_fp})
    return 0


def _build_load_latency(seed: int, rate_mpps: float, mode: str,
                        pattern_name: str, probes: int, faults=None,
                        metrics=False, batch=False, scheduler=None,
                        dataplane=False):
    """The load-latency experiment, built but not yet run.

    Shared by :func:`_cmd_load_latency` and the ``--jobs`` worker
    replicas (:func:`_load_latency_point`), so both run the exact same
    topology and rate control.
    """
    from repro import MoonGenEnv, PoissonPattern
    from repro.core.latency import LoadLatencyExperiment
    from repro.dut import OvsForwarder

    env = MoonGenEnv(seed=seed, faults=faults, metrics=metrics, batch=batch,
                     scheduler=scheduler, dataplane=dataplane)
    tx = env.config_device(0, tx_queues=2)
    rx = env.config_device(1, rx_queues=1)
    dut = OvsForwarder(env.loop)
    env.connect_to_sink(tx, dut.ingress)
    dut.connect_output(env.wire_to_device(rx))
    env.register_dut(dut)

    pps = rate_mpps * 1e6
    pattern = (PoissonPattern(pps, seed=seed)
               if pattern_name == "poisson" else None)
    mode = mode if pattern is None else "crc"
    experiment = LoadLatencyExperiment(
        env, tx, rx, mode=mode, pattern=pattern,
        n_probes=probes, probe_interval_ns=50_000.0,
    )
    return env, tx, rx, dut, experiment, pps


def _load_latency_point(point, seed: int):
    """Worker replica of the load-latency run (the ``--jobs`` cross-check).

    Ignores the engine-derived per-point seed — the user's seed rides in
    the point itself, so every replica (and the in-process run) is the
    same simulation and must reproduce the same latency fingerprint.
    """
    env, tx, rx, dut, experiment, pps = _build_load_latency(
        seed=point["seed"], rate_mpps=point["rate"], mode=point["mode"],
        pattern_name=point["pattern"], probes=point["probes"],
        faults=_resolve_faults_value(point["faults"], point["seed"]),
        metrics=True, dataplane=True, batch=point["batch"],
        scheduler=point["scheduler"])
    experiment.run(pps, duration_ns=point["duration_ms"] * 1e6,
                   dut_crc_counter=lambda: dut.rx_crc_errors)
    return env.dataplane.fingerprint()


def _cmd_load_latency(args: argparse.Namespace) -> int:
    env, tx, rx, dut, experiment, pps = _build_load_latency(
        seed=args.seed, rate_mpps=args.rate, mode=args.mode,
        pattern_name=args.pattern, probes=args.probes,
        faults=_resolve_faults(args), metrics=bool(args.metrics),
        batch=args.batch, scheduler=args.scheduler,
        dataplane=bool(args.metrics))
    _warn_unmatched_faults(env)
    snapshotter = None
    if args.metrics:
        snapshotter = env.start_snapshotter(_metrics_interval_ns(args))

    mode = experiment.mode
    result = experiment.run(pps, duration_ns=args.duration_ms * 1e6,
                            dut_crc_counter=lambda: dut.rx_crc_errors)
    print(f"offered {args.rate:.2f} Mpps ({args.pattern} via {mode} rate control)")
    print(f"DuT forwarded {dut.forwarded} packets, dropped {dut.rx_dropped}, "
          f"fillers dropped in NIC: {result.dut_crc_drops}, "
          f"interrupt rate {dut.interrupt_rate_hz() / 1e3:.1f} kHz")
    if len(result.latency):
        q1, med, q3 = result.latency.quartiles()
        confidence = (f", confidence {result.probe_confidence:.2f}"
                      if result.probe_confidence < 1.0 else "")
        print(f"latency over {len(result.latency)} probes: "
              f"q1={q1 / 1e3:.1f} µs median={med / 1e3:.1f} µs "
              f"q3={q3 / 1e3:.1f} µs (lost {result.lost_probes}{confidence})")
    if env.batch is not None:
        print(env.batch.summary())
    if snapshotter is not None:
        lat_fp = env.dataplane.fingerprint()
        print(f"latency fingerprint {lat_fp}")
        if args.jobs and args.jobs > 1:
            from repro.parallel import run_parallel

            point = {"seed": args.seed, "rate": args.rate,
                     "mode": args.mode, "pattern": args.pattern,
                     "probes": args.probes, "faults": args.faults,
                     "duration_ms": args.duration_ms, "batch": args.batch,
                     "scheduler": args.scheduler}
            replicas = run_parallel(
                [dict(point, replica=i) for i in range(args.jobs)],
                _load_latency_point, jobs=args.jobs)
            bad = [fp for fp in replicas if fp != lat_fp]
            if bad:
                print(f"latency fingerprint DIVERGED in worker replicas: "
                      f"in-process {lat_fp}, workers {replicas}",
                      file=sys.stderr)
                return 1
            print(f"latency fingerprint verified across {args.jobs} "
                  "worker replicas")
        _write_metrics(snapshotter, args.metrics,
                       "moongen-repro load-latency", args.seed,
                       fingerprints={"latency": lat_fp})
    return 0


def _cmd_precision(args: argparse.Namespace) -> int:
    from repro.analysis.precision import (
        METHODS,
        audit_registry,
        format_audit_table,
        run_precision_audit,
        write_audit_csv,
    )
    from repro.metrics import RunManifest, to_prometheus

    results = run_precision_audit(
        rate_mpps=args.rate, frame_size=args.frame_size,
        duration_ns=args.duration_ms * 1e6, seed=args.seed,
        methods=tuple(args.methods) if args.methods else METHODS,
        jobs=args.jobs or 1, batch=args.batch, scheduler=args.scheduler)
    print(f"rate-control precision audit @ {args.rate:.2f} Mpps "
          f"({args.frame_size} B frames, {args.duration_ms:g} ms simulated)")
    print(format_audit_table(results))
    fingerprints = {f"interarrival.{r['method']}": r["fingerprint"]
                    for r in results}
    if args.csv:
        with _atomic_out(args.csv) as fh:
            write_audit_csv(results, fh)
        manifest_path = RunManifest(
            command="moongen-repro precision", seed=args.seed,
            jobs=args.jobs or 1,
            config={"rate_mpps": args.rate, "frame_size": args.frame_size,
                    "duration_ms": args.duration_ms,
                    "methods": [r["method"] for r in results]},
            fingerprints=fingerprints,
        ).write(args.csv)
        print(f"wrote histogram CSV to {args.csv} (manifest {manifest_path})")
    if args.prom:
        with _atomic_out(args.prom) as fh:
            fh.write(to_prometheus(audit_registry(results)))
        print(f"wrote Prometheus scrape file to {args.prom}")
    return 0


def _live_progress(label: str, report=None):
    """A ``run_parallel`` progress hook: one overwritten stderr line.

    Shows points done / total, an ETA extrapolated from the mean
    per-point wall time so far, and the last completed point's
    fingerprint (``fingerprint`` key of a result dict, else a stable
    hash of the value).  With a ``report``
    (:class:`~repro.supervise.DegradationReport`), supervision outcomes
    — resumed-from-journal, retried, poisoned counts — ride along on
    the same line.
    """
    import time as _time

    from repro.metrics.manifest import stable_hash
    from repro.supervise import PoisonedPoint

    start = _time.monotonic()

    def progress(done: int, total: int, result) -> None:
        elapsed = _time.monotonic() - start
        eta = elapsed / done * (total - done)
        if isinstance(result, PoisonedPoint):
            fp = "poisoned"
        elif isinstance(result, dict) and "fingerprint" in result:
            fp = result["fingerprint"]
        else:
            fp = stable_hash(result)
        extra = ""
        if report is not None:
            bits = []
            if report.resumed:
                bits.append(f"resumed {report.resumed}")
            if report.retried:
                bits.append(f"retried {report.retried}")
            if report.poisoned:
                bits.append(f"poisoned {len(report.poisoned)}")
            if bits:
                extra = " [" + ", ".join(bits) + "]"
        end = "\n" if done == total else ""
        print(f"\r{label}: {done}/{total} points, "
              f"eta {eta:5.1f}s, last {fp}{extra}", end=end,
              file=sys.stderr, flush=True)

    return progress


def _sweep_resilience(args):
    """Build ``(journal, policy, report)`` from the supervision flags.

    Returns ``None`` (after printing a usage error) when the flags are
    inconsistent: ``--resume`` without ``--journal``, or a ``--journal``
    path that already exists without ``--resume`` — an existing journal
    is completed work and is never silently overwritten.
    """
    from repro.supervise import (
        DegradationReport,
        SupervisePolicy,
        SweepJournal,
    )

    report = DegradationReport()
    journal = None
    quarantine = bool(getattr(args, "quarantine", False))
    if getattr(args, "resume", False) and not getattr(args, "journal", None):
        print("--resume requires --journal", file=sys.stderr)
        return None
    if getattr(args, "journal", None):
        if os.path.exists(args.journal) and not args.resume:
            print(f"journal {args.journal} already exists; pass --resume to "
                  "continue it (or remove the file to start over)",
                  file=sys.stderr)
            return None
        journal = SweepJournal(args.journal)
    policy = None
    if journal is not None or quarantine:
        policy = SupervisePolicy(quarantine=quarantine)
    return journal, policy, report


def _report_outcome(report) -> int:
    """Print the degradation report when anything degraded; exit code.

    Exit code 3 marks a sweep that completed *degraded* (poisoned
    points present): the artifacts are usable but partial, distinct
    from success (0), usage errors (2), and cancellation (128+signum).
    """
    if report.resumed or report.retried or report.degraded:
        print(report.format_table(), file=sys.stderr)
    return 3 if report.degraded else 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.metrics import to_prometheus, write_csv

    faults = _resolve_faults(args)
    if args.scenario == "quickstart":
        env, tx, rx = _build_quickstart(args.seed, faults=faults,
                                        metrics=True)
    else:
        env, tx, rx, _ = _build_dut_forward(args.seed, faults=faults,
                                            metrics=True)
    _warn_unmatched_faults(env)
    snapshotter = env.start_snapshotter(_metrics_interval_ns(args))
    env.wait_for_slaves(duration_ns=args.duration_ms * 1e6)
    if args.out:
        _write_metrics(snapshotter, args.out,
                       f"moongen-repro metrics {args.scenario}", args.seed,
                       fault_plan=faults)
    else:
        snapshotter.finalize()
        sys.stdout.write(snapshotter.series.to_jsonl())
    if args.csv:
        with _atomic_out(args.csv) as fh:
            write_csv(snapshotter.series, fh)
        print(f"wrote CSV series to {args.csv}")
    if args.prom:
        with _atomic_out(args.prom) as fh:
            fh.write(to_prometheus(env.metrics))
        print(f"wrote Prometheus scrape file to {args.prom}")
    final = snapshotter.series.final_values()
    print(f"scenario {args.scenario!r}: {len(snapshotter.series)} snapshots "
          f"of {len(env.metrics)} metrics over {env.now_ns / 1e6:.2f} ms; "
          f"final nic0.tx.packets={final.get('nic0.tx.packets')} "
          f"(device says {tx.tx_packets})")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.metrics import profile_env

    faults = _resolve_faults(args)
    if args.scenario == "quickstart":
        env, _, _ = _build_quickstart(args.seed, faults=faults)
    else:
        env, _, _, _ = _build_dut_forward(args.seed, faults=faults)
    _warn_unmatched_faults(env)
    report = profile_env(env, duration_ns=args.duration_ms * 1e6)
    print(report.format_table())
    if args.json:
        with _atomic_out(args.json) as fh:
            fh.write(report.to_json())
            fh.write("\n")
        print(f"wrote profile JSON to {args.json}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults import builtin_plans
    from repro.faults.runner import run_matrix

    plans = builtin_plans()
    if args.list:
        print("builtin fault plans:")
        for name, plan in sorted(plans.items()):
            kinds = ", ".join(type(f).__name__ for f in plan.faults)
            print(f"  {name:<12} {kinds}")
        return 0
    names = args.plans or sorted(plans)
    resilience = _sweep_resilience(args)
    if resilience is None:
        return 2
    journal, policy, report = resilience
    progress = _live_progress("faults", report=report) if args.live else None
    results = run_matrix(names, seed=args.seed, plan_seed=args.plan_seed,
                         jobs=args.jobs or 1, progress=progress,
                         journal=journal, supervise=policy, report=report)
    if args.json:
        import json

        print(json.dumps(results, indent=2, sort_keys=True))
        return _report_outcome(report)
    print(f"{'plan':<12} {'tx':>7} {'rx':>7} {'lost':>6} {'gaps':>5} "
          f"{'worst':>6} {'crc':>5} {'flaps':>5} {'fingerprint':>16}")
    for name in names:
        r = results[name]
        if r.get("poisoned"):
            print(f"{name:<12} poisoned after {r['attempts']} attempt(s): "
                  f"{r['error']}")
            continue
        print(f"{name:<12} {r['tx_packets']:>7} {r['rx_packets']:>7} "
              f"{r['seq_lost']:>6} {r['seq_gap_events']:>5} "
              f"{r['seq_longest_gap']:>6} {r['rx_crc_errors']:>5} "
              f"{r['rx_link_changes']:>5} {r['fingerprint']:>16}")
    return _report_outcome(report)


def _cmd_inter_arrival(args: argparse.Namespace) -> int:
    from repro.analysis import measure_interarrival
    from repro.generators import MoonGenHwRateModel, PktgenDpdkModel, ZsendModel

    pps = args.rate * 1e3
    for model in (MoonGenHwRateModel(), PktgenDpdkModel(), ZsendModel()):
        departures = model.departures_ns(pps, args.packets, seed=args.seed)
        stats = measure_interarrival(departures, pps, model.name)
        print(stats.format_row())
    return 0


def _cmd_rfc2544(args: argparse.Namespace) -> int:
    from repro.analysis.rfc2544 import throughput_sweep

    sizes = tuple(args.frame_sizes) if args.frame_sizes else (64,)
    results = throughput_sweep(sizes, resolution=args.resolution,
                               seed=args.seed,
                               duration_s=args.duration_ms / 1e3,
                               jobs=args.jobs or 1)
    print(f"{'size [B]':>8} {'line Mpps':>10} {'zero-loss Mpps':>15} "
          f"{'Gbit/s':>8} {'trials':>7}")
    for result in results:
        line = units.line_rate_pps(result.frame_size, units.SPEED_10G)
        print(f"{result.frame_size:>8} {line / 1e6:>10.2f} "
              f"{result.throughput_mpps:>15.2f} "
              f"{result.throughput_gbps():>8.2f} {len(result.trials):>7}")
    if args.verbose:
        for result in results:
            print(f"\nframe size {result.frame_size} B:")
            for trial in result.trials:
                verdict = ("pass" if trial.passed
                           else f"{trial.loss_fraction * 100:.2f}% loss")
                print(f"  offered {trial.offered_pps / 1e6:7.3f} Mpps: "
                      f"{verdict}")
    return 0


def _cmd_timestamps(args: argparse.Namespace) -> int:
    from repro import MoonGenEnv, Timestamper
    from repro.nicsim.link import COPPER_CAT5E, FIBER_OM3, Cable
    from repro.nicsim.nic import CHIP_82599, CHIP_X540

    setups = [("82599/fiber", CHIP_82599, FIBER_OM3),
              ("X540/copper", CHIP_X540, COPPER_CAT5E)]
    for name, chip, medium in setups:
        env = MoonGenEnv(seed=args.seed)
        a = env.config_device(0, tx_queues=1, rx_queues=1, chip=chip)
        b = env.config_device(1, tx_queues=1, rx_queues=1, chip=chip)
        env.connect(a, b, cable=Cable(medium, args.cable_length))
        ts = Timestamper(env, a.get_tx_queue(0), b, seed=args.seed)
        env.launch(ts.probe_task, args.probes, 10_000.0)
        env.wait_for_slaves(duration_ns=args.probes * 30_000.0)
        expected = medium.modulation_ns + medium.propagation_ns(args.cable_length)
        print(f"{name}: {args.cable_length} m cable, "
              f"median latency {ts.histogram.median():.1f} ns "
              f"(physical {expected:.1f} ns, {len(ts.histogram)} probes)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.trace import CATEGORIES
    from repro.trace.scenarios import SCENARIOS, run_scenario

    categories = None
    if args.categories:
        categories = tuple(c.strip() for c in args.categories.split(",") if c.strip())
        unknown = set(categories) - set(CATEGORIES)
        if unknown:
            print(f"unknown trace categories: {sorted(unknown)} "
                  f"(valid: {', '.join(CATEGORIES)})", file=sys.stderr)
            return 2
    text = run_scenario(args.scenario, seed=args.seed, categories=categories)
    if args.out:
        with _atomic_out(args.out) as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)
    if args.summary:
        import collections
        import json

        counts = collections.Counter(
            json.loads(line)["kind"] for line in text.splitlines())
        total = sum(counts.values())
        print(f"scenario {args.scenario!r} (seed {args.seed}): "
              f"{total} records", file=sys.stderr)
        for kind, n in sorted(counts.items(), key=lambda kv: -kv[1]):
            print(f"  {kind:20s} {n}", file=sys.stderr)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import time

    from repro import perf

    jobs = args.jobs or 1
    resilience = _sweep_resilience(args)
    if resilience is None:
        return 2
    journal, policy, report = resilience
    try:
        start = time.perf_counter()
        results = perf.run_suite(args.scenarios, smoke=args.smoke,
                                 repeats=args.repeats, jobs=jobs,
                                 batch=args.batch, scheduler=args.scheduler,
                                 journal=journal, supervise=policy,
                                 report=report)
        sweep_wall_s = time.perf_counter() - start
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    doc = perf.write_bench(args.out, results, rebaseline=args.rebaseline,
                           smoke=args.smoke, jobs=jobs,
                           sweep_wall_s=sweep_wall_s, batch=args.batch,
                           scheduler=args.scheduler)
    print(perf.format_report(doc))
    if args.batch and args.verbose:
        for name in sorted(results):
            stats = results[name].get("batch_stats")
            if not isinstance(stats, dict):
                continue
            print(f"\n{name}: batch tier — {stats['frames']} frames in "
                  f"{stats['trains']} trains, "
                  f"~{stats['events_saved']} events saved")
            fallbacks = stats.get("fallbacks") or {}
            if fallbacks:
                print(f"  {'fallback reason':<24} {'kicks':>8}")
                for reason, count in sorted(fallbacks.items(),
                                            key=lambda kv: -kv[1]):
                    print(f"  {reason:<24} {count:>8}")
            else:
                print("  no event-path fallbacks")
    print(f"\nsuite wall time {sweep_wall_s:.2f} s with jobs={jobs}")
    print(f"wrote {args.out} (+ manifest)")
    if args.metrics:
        # One extra *instrumented* run of the bench topology: the perf
        # scenarios themselves stay uninstrumented (their numbers feed
        # baselines), this sidecar series shows what the workload did.
        env, _, _, _ = _build_dut_forward(args.seed, metrics=True)
        snapshotter = env.start_snapshotter(interval_ns=200_000.0)
        env.wait_for_slaves(duration_ns=4e6)
        _write_metrics(snapshotter, args.metrics, "moongen-repro bench",
                       args.seed)
    for warning in perf.check_regression(doc, threshold=args.warn_threshold):
        print(f"::warning::{warning}", file=sys.stderr)
    return _report_outcome(report)


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.parallel.sweeps import SWEEPS, format_sweep_table

    if not args.name:
        print("available sweeps:")
        for spec in SWEEPS.values():
            print(f"  {spec.name:<12} {spec.description}")
        return 0
    spec = SWEEPS.get(args.name)
    if spec is None:
        print(f"unknown sweep {args.name!r}; available: "
              f"{', '.join(sorted(SWEEPS))}", file=sys.stderr)
        return 2
    points = None
    if args.points:
        try:
            points = [int(p) for p in args.points.split(",") if p.strip()]
        except ValueError:
            print(f"--points must be comma-separated integers: "
                  f"{args.points!r}", file=sys.stderr)
            return 2
        if not points:
            print("--points selected no sweep points", file=sys.stderr)
            return 2
    resilience = _sweep_resilience(args)
    if resilience is None:
        return 2
    journal, policy, report = resilience
    progress = (_live_progress(f"sweep {spec.name}", report=report)
                if args.live else None)
    result = spec.build(points, root_seed=args.seed).run(
        jobs=args.jobs, progress=progress, journal=journal,
        supervise=policy, report=report)
    print(f"sweep {spec.name}: {spec.description}")
    print(format_sweep_table(spec, result))
    return _report_outcome(report)


def _add_resilience_args(p: argparse.ArgumentParser,
                         quarantine: bool = False) -> None:
    """``--journal``/``--resume`` (and optionally ``--quarantine``) flags.

    Shared by the sweep-shaped subcommands (bench/sweep/faults); see
    docs/RESILIENCE.md for the journal format and resume semantics.
    """
    p.add_argument("--journal", metavar="PATH",
                   help="crash-safe sweep journal (JSONL): every completed "
                        "point is fsync'd to this file as it lands, and a "
                        "--resume run skips the journaled points — results "
                        "and the sealed journal are bit-identical to an "
                        "uninterrupted run for any --jobs")
    p.add_argument("--resume", action="store_true",
                   help="continue an existing --journal (without this flag "
                        "an existing journal file is refused, never "
                        "overwritten)")
    if quarantine:
        p.add_argument("--quarantine", action="store_true",
                       help="when a point exhausts its attempt budget, "
                            "record it as poisoned and finish the sweep "
                            "with partial results and a degradation "
                            "report (exit code 3) instead of aborting")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="moongen-repro",
        description="MoonGen (IMC 2015) reproduction on simulated hardware",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    scheduler_help = ("event-loop scheduler backend: binary heap (default) "
                      "or the O(1) calendar queue; results are bit-identical "
                      "(default: $REPRO_SCHEDULER, else heap)")

    p = sub.add_parser("quickstart", help="saturate a simulated 10 GbE link")
    p.add_argument("--duration-ms", type=float, default=2.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--batch", action="store_true",
                   help="execute homogeneous event trains through the "
                        "vectorized batch tier (bit-identical output)")
    p.add_argument("--scheduler", choices=("heap", "calendar"), default=None,
                   help=scheduler_help)
    p.add_argument("--faults", metavar="PLAN",
                   help="fault plan: builtin name (see 'faults --list') or a plan.json path")
    p.add_argument("--metrics", metavar="OUT.JSONL",
                   help="sample the metrics registry during the run and "
                        "write the JSONL time series (+ manifest) here")
    p.set_defaults(func=_cmd_quickstart)

    p = sub.add_parser("load-latency",
                       help="load + latency through the simulated OvS DuT")
    p.add_argument("--rate", type=float, default=1.0, help="Mpps")
    p.add_argument("--mode", choices=("hardware", "crc"), default="hardware")
    p.add_argument("--pattern", choices=("cbr", "poisson"), default="cbr")
    p.add_argument("--duration-ms", type=float, default=20.0)
    p.add_argument("--probes", type=int, default=200)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--batch", action="store_true",
                   help="execute homogeneous event trains through the "
                        "vectorized batch tier (bit-identical output)")
    p.add_argument("--scheduler", choices=("heap", "calendar"), default=None,
                   help=scheduler_help)
    p.add_argument("--faults", metavar="PLAN",
                   help="fault plan: builtin name (see 'faults --list') or a plan.json path")
    p.add_argument("--metrics", metavar="OUT.JSONL",
                   help="sample the metrics registry during the run and "
                        "write the JSONL time series (+ manifest) here")
    p.add_argument("--jobs", type=int, default=None,
                   help="with --metrics: additionally re-run the experiment "
                        "in this many worker processes and require every "
                        "replica to reproduce the in-process latency "
                        "fingerprint (exit 1 on divergence)")
    p.set_defaults(func=_cmd_load_latency)

    p = sub.add_parser("inter-arrival",
                       help="compare generator rate-control precision")
    p.add_argument("--rate", type=float, default=500.0, help="kpps")
    p.add_argument("--packets", type=int, default=100_000)
    p.add_argument("--seed", type=int, default=42)
    p.set_defaults(func=_cmd_inter_arrival)

    p = sub.add_parser(
        "precision",
        help="audit rate-control precision with in-dataplane histograms",
        description="Reproduces the Figure 8 rate-control comparison "
                    "in-dataplane: drives the same two-port topology with "
                    "hardware CBR, CRC-gap software rate control, and "
                    "naive bursty software pacing, histogramming rx "
                    "inter-arrival gaps at the receiving NIC "
                    "(repro.analysis.precision).  Per-method fingerprints "
                    "are bit-identical for any --jobs value, either "
                    "scheduler backend, and with or without --batch.",
    )
    p.add_argument("--rate", type=float, default=1.0, help="Mpps")
    p.add_argument("--frame-size", type=int, default=64, metavar="BYTES")
    p.add_argument("--duration-ms", type=float, default=4.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--method", action="append", dest="methods",
                   choices=("hardware", "crc", "software-burst"),
                   help="audit only this mechanism; repeatable "
                        "(default: all three)")
    p.add_argument("--jobs", type=int, default=None,
                   help="fan the per-method simulations across this many "
                        "worker processes (default: 1, serial; results "
                        "are bit-identical either way)")
    p.add_argument("--batch", action="store_true",
                   help="execute homogeneous event trains through the "
                        "vectorized batch tier (bit-identical output)")
    p.add_argument("--scheduler", choices=("heap", "calendar"), default=None,
                   help=scheduler_help)
    p.add_argument("--csv", metavar="OUT.CSV",
                   help="write the per-method bucket histograms as CSV "
                        "(+ manifest with per-method fingerprints)")
    p.add_argument("--prom", metavar="OUT.PROM",
                   help="write the per-method histograms as a Prometheus "
                        "text-format scrape file")
    p.set_defaults(func=_cmd_precision)

    p = sub.add_parser(
        "rfc2544",
        help="RFC 2544 zero-loss throughput search",
        description="Binary-searches the zero-loss rate per frame size "
                    "(repeat --frame-size for several sizes; searches "
                    "fan out across --jobs workers) and prints one "
                    "summary table.",
    )
    p.add_argument("--frame-size", type=int, action="append",
                   dest="frame_sizes", metavar="BYTES",
                   help="frame size in bytes; repeatable (default: 64)")
    p.add_argument("--resolution", type=float, default=0.01)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--duration-ms", type=float, default=40.0,
                   help="simulated duration per trial (default: 40)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes for multi-size sweeps "
                        "(default: 1, serial)")
    p.add_argument("--verbose", action="store_true",
                   help="also print every binary-search trial")
    p.set_defaults(func=_cmd_rfc2544)

    p = sub.add_parser("timestamps", help="hardware timestamping accuracy")
    p.add_argument("--cable-length", type=float, default=2.0, help="meters")
    p.add_argument("--probes", type=int, default=200)
    p.add_argument("--seed", type=int, default=5)
    p.set_defaults(func=_cmd_timestamps)

    p = sub.add_parser(
        "trace",
        help="run a canonical scenario with structured tracing, emit JSONL",
        description="Runs a seeded canonical scenario with the repro.trace "
                    "subsystem enabled and writes the JSONL trace to stdout "
                    "or --out.  The same scenarios back the golden-trace "
                    "regression tests (docs/TRACING.md).",
    )
    p.add_argument("--scenario", choices=("load-latency", "poisson", "faults"),
                   default="load-latency")
    p.add_argument("--seed", type=int, default=11)
    p.add_argument("--out", help="write the trace to this file (default stdout)")
    p.add_argument("--categories",
                   help="comma-separated record categories (default: golden set)")
    p.add_argument("--summary", action="store_true",
                   help="print per-kind record counts to stderr")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "bench",
        help="run the pinned perf suite, update BENCH_core.json",
        description="Runs the continuous perf-regression harness "
                    "(repro.perf): pinned hot-path scenarios measured "
                    "best-of-N, recorded in BENCH_core.json with speedup "
                    "ratios against the per-mode baseline.  Regressions "
                    "print ::warning:: lines but never fail the run "
                    "(docs/PERFORMANCE.md).",
    )
    p.add_argument("--smoke", action="store_true",
                   help="short runs (CI-sized workloads)")
    p.add_argument("--batch", action="store_true",
                   help="run scenarios under the vectorized batch tier; "
                        "results land in the '-batch' modes and "
                        "delta_vs_event records the speedup over the "
                        "event-by-event baseline")
    p.add_argument("--scheduler", choices=("heap", "calendar"),
                   default="heap",
                   help="event-loop scheduler backend; 'calendar' runs "
                        "land in the '-calendar' modes and delta_vs_heap "
                        "records the speedup over the heap baseline")
    p.add_argument("--verbose", action="store_true",
                   help="with --batch: per-scenario batch-tier table "
                        "(trains, frames, events saved, and a fallback-"
                        "reason breakdown)")
    p.add_argument("--scenario", action="append", dest="scenarios",
                   help="run only this scenario (repeatable)")
    p.add_argument("--repeats", type=int, default=3,
                   help="rounds per scenario; fastest wall time wins")
    p.add_argument("--out", default="BENCH_core.json",
                   help="trajectory file (default BENCH_core.json)")
    p.add_argument("--rebaseline", action="store_true",
                   help="replace the stored baseline for this mode")
    p.add_argument("--warn-threshold", type=float, default=0.85,
                   help="warn when events/sec falls below this ratio "
                        "of baseline (default 0.85)")
    p.add_argument("--jobs", type=int, default=None,
                   help="shard scenario rounds across this many worker "
                        "processes (default: 1, serial; fingerprints are "
                        "identical either way, but wall-clock metrics "
                        "are noisier when workers share cores)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--metrics", metavar="OUT.JSONL",
                   help="also run one instrumented bench-shaped simulation "
                        "and write its metrics time series (+ manifest)")
    _add_resilience_args(p)
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "sweep",
        help="run a named parameter sweep through the parallel engine",
        description="Runs one of the registered paper sweeps "
                    "(repro.parallel.sweeps) with per-point seeds derived "
                    "from --seed, fanned across --jobs worker processes, "
                    "and prints a point/value table.  Results are "
                    "bit-identical for any --jobs value.  Run without a "
                    "name to list the available sweeps.",
    )
    p.add_argument("name", nargs="?", default=None,
                   help="sweep to run (omit to list)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: host cores)")
    p.add_argument("--points", help="comma-separated subset of sweep points")
    p.add_argument("--seed", type=int, default=0,
                   help="root seed for per-point seed derivation")
    p.add_argument("--live", action="store_true",
                   help="one-line live progress on stderr (points done / "
                        "ETA / last fingerprint / supervision counts)")
    _add_resilience_args(p, quarantine=True)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "faults",
        help="run chaos scenarios under fault plans, print fingerprints",
        description="Runs the canonical chaos scenario (repro.faults.runner) "
                    "under one or more fault plans — builtin names or paths "
                    "to plan.json files — and prints per-plan degradation "
                    "counters plus a deterministic fingerprint.  Results are "
                    "bit-identical for any --jobs value; the CI fault-matrix "
                    "job diffs the --json output of serial and sharded runs.",
    )
    p.add_argument("--plan", action="append", dest="plans", metavar="NAME",
                   help="builtin plan name or path to a plan.json; "
                        "repeatable (default: all builtin plans)")
    p.add_argument("--list", action="store_true",
                   help="list the builtin plans and exit")
    p.add_argument("--seed", type=int, default=0,
                   help="scenario seed (default: 0)")
    p.add_argument("--plan-seed", type=int, default=None,
                   help="seed for the fault streams (default: --seed)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: 1, serial)")
    p.add_argument("--json", action="store_true",
                   help="emit the full result dicts as JSON")
    p.add_argument("--live", action="store_true",
                   help="one-line live progress on stderr (plans done / "
                        "ETA / last fingerprint / supervision counts)")
    _add_resilience_args(p, quarantine=True)
    p.set_defaults(func=_cmd_faults)

    p = sub.add_parser(
        "metrics",
        help="run a scenario with the metrics registry sampled, emit JSONL",
        description="Runs a canonical scenario with run-wide telemetry "
                    "(repro.metrics) enabled: every component registers "
                    "its counters/gauges and a sim-time snapshotter "
                    "samples them into a deterministic time series "
                    "(docs/METRICS.md).  Writes JSONL to stdout or --out "
                    "(with a provenance manifest), optionally CSV and a "
                    "Prometheus text-format scrape file.",
    )
    p.add_argument("scenario", choices=("quickstart", "load-latency"),
                   help="topology to run instrumented")
    p.add_argument("--duration-ms", type=float, default=2.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--faults", metavar="PLAN",
                   help="fault plan: builtin name (see 'faults --list') or a plan.json path")
    p.add_argument("--out", metavar="OUT.JSONL",
                   help="write the JSONL series here (default: stdout); "
                        "a .manifest.json is written next to it")
    p.add_argument("--csv", metavar="OUT.CSV",
                   help="also write the series as CSV")
    p.add_argument("--prom", metavar="OUT.PROM",
                   help="also write final values as a Prometheus "
                        "text-format scrape file")
    p.set_defaults(func=_cmd_metrics)

    p = sub.add_parser(
        "profile",
        help="self-profile the event loop, attribute wall-time per category",
        description="Runs a scenario with a per-event wall-clock latch "
                    "and prints host-time attribution per category "
                    "(nic/wire/dut/process/scheduler/...) plus the top "
                    "callbacks — the tool for localizing BENCH_core.json "
                    "regressions (docs/METRICS.md).",
    )
    p.add_argument("scenario", choices=("quickstart", "load-latency"),
                   help="topology to profile")
    p.add_argument("--duration-ms", type=float, default=2.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--faults", metavar="PLAN",
                   help="fault plan: builtin name (see 'faults --list') or a plan.json path")
    p.add_argument("--json", metavar="OUT.JSON",
                   help="also write the full report as JSON")
    p.set_defaults(func=_cmd_profile)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.errors import SweepCancelledError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except SweepCancelledError as exc:
        # Clean cancellation: children already terminated, journal
        # already flushed and closed by the engine.
        print(f"\n{exc}", file=sys.stderr)
        return exc.exit_code
    except KeyboardInterrupt:
        print("\ninterrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
