#!/usr/bin/env python3
"""Regenerate the paper's figure data as CSV files for plotting.

Writes one CSV per figure/table into ``results/`` (Figure 8 histograms,
Table 4 metrics, Figure 7 interrupt-rate curves, Figure 11 latency
curves).  Pair with any plotting tool to redraw the paper's charts.

Run:  python examples/generate_results.py [output_dir]
"""

import csv
import sys
from pathlib import Path

from repro import units
from repro.analysis import measure_interarrival, rate_control_table_row
from repro.analysis.interarrival import histogram_bins_64ns
from repro.core.ratecontrol import PoissonPattern
from repro.dut import simulate_forwarder
from repro.generators import (
    MoonGenCrcGapModel,
    MoonGenHwRateModel,
    PktgenDpdkModel,
    ZsendModel,
)

N_PACKETS = 200_000
MODELS = (MoonGenHwRateModel(), PktgenDpdkModel(), ZsendModel())


def write_fig8_and_table4(outdir: Path) -> None:
    table_rows = []
    for pps in (500_000, 1_000_000):
        for model in MODELS:
            departures = model.departures_ns(pps, N_PACKETS, seed=42)
            stats = measure_interarrival(departures, pps, model.name)
            table_rows.append(rate_control_table_row(stats))
            name = model.name.lower().replace("-", "_")
            with open(outdir / f"fig8_{name}_{pps // 1000}kpps.csv", "w",
                      newline="") as fh:
                writer = csv.writer(fh)
                writer.writerow(["interarrival_ns", "probability_pct"])
                for edge, pct in histogram_bins_64ns(stats).items():
                    writer.writerow([edge, f"{pct:.4f}"])
    with open(outdir / "table4_rate_control.csv", "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(table_rows[0]))
        writer.writeheader()
        writer.writerows(table_rows)


def write_fig7(outdir: Path) -> None:
    hw = MoonGenHwRateModel(speed_bps=units.SPEED_10G)
    zs = ZsendModel(speed_bps=units.SPEED_10G)
    with open(outdir / "fig7_interrupt_rate.csv", "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["offered_mpps", "moongen_hz", "zsend_hz"])
        for mpps in (0.1, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75):
            n = max(int(mpps * 1e6 * 0.03), 2000)
            m = simulate_forwarder(hw.departures_ns(mpps * 1e6, n, seed=11))
            z = simulate_forwarder(zs.departures_ns(mpps * 1e6, n, seed=11))
            writer.writerow([mpps, f"{m.interrupt_rate_hz:.0f}",
                             f"{z.interrupt_rate_hz:.0f}"])


def write_fig11(outdir: Path) -> None:
    crc = MoonGenCrcGapModel(speed_bps=units.SPEED_10G)
    hw = MoonGenHwRateModel(speed_bps=units.SPEED_10G)
    with open(outdir / "fig11_latency.csv", "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([
            "offered_mpps",
            "cbr_q1_us", "cbr_median_us", "cbr_q3_us",
            "poisson_q1_us", "poisson_median_us", "poisson_q3_us",
        ])
        for mpps in (0.1, 0.4, 0.7, 1.0, 1.3, 1.6, 1.9, 2.2):
            n = max(int(mpps * 1e6 * 0.02), 2000)
            cbr = simulate_forwarder(hw.departures_ns(mpps * 1e6, n, seed=13))
            poisson = simulate_forwarder(crc.departures_for_pattern(
                PoissonPattern(mpps * 1e6, seed=13), n))
            row = [mpps]
            for res in (cbr, poisson):
                row += [f"{q / 1e3:.2f}" for q in res.latency_percentiles()]
            writer.writerow(row)


def main():
    outdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("results")
    outdir.mkdir(parents=True, exist_ok=True)
    write_fig8_and_table4(outdir)
    write_fig7(outdir)
    write_fig11(outdir)
    files = sorted(p.name for p in outdir.glob("*.csv"))
    print(f"wrote {len(files)} CSV files to {outdir}/:")
    for name in files:
        print(f"  {name}")


if __name__ == "__main__":
    main()
