#!/usr/bin/env python3
"""l2-bursts: bursty traffic via the CRC-gap rate control (Section 9).

Generates bursts of back-to-back packets separated by pauses — a pattern
hardware rate control cannot express (it is CBR-only, Section 7.2) — and
verifies the burst structure on the receive side with per-packet 82580
timestamps.

Run:  python examples/l2_bursts.py [burst_size] [rate_mpps]
"""

import sys

from repro import MoonGenEnv, UniformBurstPattern, units
from repro.core.measure import InterArrivalMeasurement
from repro.core.ratecontrol import GapFiller
from repro.nicsim.nic import CHIP_82580, CHIP_X540

N_PACKETS = 600


def main():
    burst_size = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    rate_mpps = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5

    env = MoonGenEnv(seed=29)
    tx = env.config_device(0, tx_queues=1, chip=CHIP_X540,
                           speed_bps=units.SPEED_1G)
    rx = env.config_device(1, rx_queues=1, chip=CHIP_82580)
    env.connect(tx, rx)

    measurement = InterArrivalMeasurement(env, rx)
    env.launch(measurement.task, N_PACKETS)

    pattern = UniformBurstPattern(
        pps=rate_mpps * 1e6, burst_size=burst_size,
        frame_size=64, speed_bps=units.SPEED_1G,
    )
    filler = GapFiller(frame_size=64, speed_bps=units.SPEED_1G)

    def craft(buf, index):
        buf.eth_packet.fill(eth_type=0x0800)

    env.launch(filler.load_task, env, tx.get_tx_queue(0), pattern,
               N_PACKETS, craft)
    env.wait_for_slaves(duration_ns=N_PACKETS * (1e9 / (rate_mpps * 1e6)) * 2
                        + 5e6)

    hist = measurement.histogram
    wire_gap = units.frame_time_ns(64, units.SPEED_1G)
    in_burst = hist.fraction_below(wire_gap + 33)
    print(f"sent {N_PACKETS} packets: bursts of {burst_size} at "
          f"{rate_mpps} Mpps average")
    print(f"received gaps: {len(hist)} samples, mean "
          f"{hist.avg():.0f} ns (target {1e9 / (rate_mpps * 1e6):.0f} ns)")
    print(f"back-to-back fraction: {in_burst * 100:.1f}% "
          f"(expected {(burst_size - 1) / burst_size * 100:.1f}%)")
    print(f"pause gap: {hist.max():.0f} ns")


if __name__ == "__main__":
    main()
