#!/usr/bin/env python3
"""inter-arrival-times: compare the rate-control precision of generators.

Reproduces the Section 7.3 measurement in miniature: inter-arrival time
histograms (64 ns bins, the 82580's precision) and the Table 4 metrics for
MoonGen's hardware rate control, Pktgen-DPDK and zsend at 500 and
1000 kpps on a GbE link.

Run:  python examples/inter_arrival_times.py [n_packets]
"""

import sys

from repro.analysis import measure_interarrival
from repro.analysis.interarrival import histogram_bins_64ns
from repro.generators import MoonGenHwRateModel, PktgenDpdkModel, ZsendModel


def ascii_histogram(stats, width: int = 50, max_bins: int = 24) -> None:
    """Figure 8 as ASCII art: probability per 64 ns bin."""
    bins = histogram_bins_64ns(stats)
    peak = max(bins.values())
    shown = 0
    for edge, pct in bins.items():
        if pct < 0.05:
            continue
        if shown >= max_bins:
            print("     ...")
            break
        bar = "#" * max(1, round(pct / peak * width))
        print(f"  {edge / 1000.0:7.3f} µs | {bar} {pct:.1f}%")
        shown += 1


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 100_000

    models = (MoonGenHwRateModel(), PktgenDpdkModel(), ZsendModel())
    for pps in (500_000, 1_000_000):
        print(f"\n=== target rate {pps // 1000} kpps "
              f"(inter-arrival target {1e9 / pps:.0f} ns) ===")
        for model in models:
            departures = model.departures_ns(pps, n, seed=42)
            stats = measure_interarrival(departures, pps, model.name)
            print(f"\n{stats.format_row()}")
            ascii_histogram(stats)


if __name__ == "__main__":
    main()
