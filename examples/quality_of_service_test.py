#!/usr/bin/env python3
"""The paper's Section 4 example: a quality-of-service test.

Two transmit tasks generate two UDP flows — prioritized foreground traffic
on port 43 and background traffic on port 42 — with hardware rate control,
a counter task measures per-flow throughput, and a timestamping task
measures per-flow latency.  This mirrors quality-of-service-test.lua
(Listings 1–3) including the timestamping task the listings omit.

Run:  python examples/quality_of_service_test.py [fg_rate_mbps] [bg_rate_mbps]
"""

import sys

from repro import MoonGenEnv, PktRxCounter, Timestamper, parse_ip_address

PKT_SIZE = 120  # 124 B frames on the wire (the paper's PKT_SIZE)
DURATION_NS = 50_000_000  # 50 ms simulated


def load_slave(env, queue, port, dst_mac):
    """Listing 2: generate UDP packets from randomized source IPs."""
    mem = env.create_mempool(
        fill=lambda buf: buf.udp_packet.fill(
            pkt_length=PKT_SIZE,
            eth_src="02:00:00:00:00:00",  # queue MAC in the original
            eth_dst=dst_mac,
            ip_dst="192.168.1.1",
            udp_src=1234,
            udp_dst=port,
        )
    )
    base_ip = parse_ip_address("10.0.0.1")
    bufs = mem.buf_array()
    import random
    rng = random.Random(port)
    sent_total = 0
    while env.running():
        bufs.alloc(PKT_SIZE)
        for buf in bufs:
            buf.udp_packet.ip.src = base_ip + rng.randrange(255)
        bufs.charge_random_fields(1)
        bufs.offload_udp_checksums()
        sent = yield queue.send(bufs)
        sent_total += sent
    return sent_total


def counter_slave(env, queue, counters, stream):
    """Listing 3: count received packets per UDP destination port."""
    mem = env.create_mempool()
    bufs = mem.buf_array()
    while env.running():
        rx = yield queue.recv(bufs, timeout_ns=1_000_000)
        for i in range(rx):
            buf = bufs[i]
            if buf.pkt.classify() != "udp4":
                continue  # PTP probes share the link with the UDP flows
            port = buf.udp_packet.udp.get_dst_port()
            ctr = counters.get(port)
            if ctr is None:
                ctr = PktRxCounter(port, "plain", now_ns=lambda: env.now_ns,
                                   stream=stream)
                counters[port] = ctr
            ctr.count_packet(buf)
        bufs.free_all()


def main():
    fg_rate = float(sys.argv[1]) if len(sys.argv) > 1 else 100.0
    bg_rate = float(sys.argv[2]) if len(sys.argv) > 2 else 800.0

    env = MoonGenEnv(seed=7)
    # Listing 1: one tx device with two queues, one rx device.
    t_dev = env.config_device(0, rx_queues=1, tx_queues=3)
    r_dev = env.config_device(1, rx_queues=1, tx_queues=1)
    env.connect(t_dev, r_dev)
    env.wait_for_links()

    t_dev.get_tx_queue(0).set_rate(bg_rate)
    t_dev.get_tx_queue(1).set_rate(fg_rate)

    env.launch(load_slave, env, t_dev.get_tx_queue(0), 42, r_dev.mac)
    env.launch(load_slave, env, t_dev.get_tx_queue(1), 43, r_dev.mac)
    counters = {}
    env.launch(counter_slave, env, r_dev.get_rx_queue(0), counters, sys.stdout)

    # The timestamping task from the full example script: sample latencies
    # through the same path using hardware PTP timestamps on queue 2.
    ts = Timestamper(env, t_dev.get_tx_queue(2), r_dev, pkt_size=PKT_SIZE + 4)
    env.launch(ts.probe_task, 200, 100_000.0)

    env.wait_for_slaves(duration_ns=DURATION_NS)
    for ctr in counters.values():
        ctr.finalize()
    print(f"\nbackground (port 42) configured at {bg_rate} Mbit/s, "
          f"foreground (port 43) at {fg_rate} Mbit/s")
    if len(ts.histogram):
        print(f"latency over {len(ts.histogram)} timestamped probes: "
              f"{ts.histogram.summary()}")


if __name__ == "__main__":
    main()
