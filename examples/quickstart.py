#!/usr/bin/env python3
"""Quickstart: saturate a simulated 10 GbE link with minimum-sized UDP packets.

The structure mirrors Listing 2 of the paper: a memory pool whose fill
callback pre-initializes every packet, a bufArray processed in batches, a
transmit loop that touches only the fields that change per packet, and a
manual tx counter.

Run:  python examples/quickstart.py
"""

from repro import ManualTxCounter, MoonGenEnv, parse_ip_address
from repro.units import to_mpps

PKT_SIZE = 60  # 64 B on the wire: the buffer excludes the 4 B FCS
DURATION_NS = 2_000_000  # 2 ms of simulated time


def load_slave(env, queue, dst_mac, counter):
    """The transmit loop (Listing 2): alloc, mutate, offload, send."""
    mem = env.create_mempool(
        fill=lambda buf: buf.udp_packet.fill(
            pkt_length=PKT_SIZE,
            eth_src="02:00:00:00:00:00",
            eth_dst=dst_mac,
            ip_dst="192.168.1.1",
            udp_src=1234,
            udp_dst=319,
        )
    )
    base_ip = parse_ip_address("10.0.0.1")
    bufs = mem.buf_array()
    i = 0
    while env.running():
        bufs.alloc(PKT_SIZE)
        for buf in bufs:
            buf.udp_packet.ip.src = base_ip + (i & 0xFF)
            i += 1
        bufs.charge_random_fields(1)  # timing cost of the varying field
        bufs.offload_udp_checksums()
        sent = yield queue.send(bufs)
        counter.update_with_size(sent, PKT_SIZE + 4)


def counter_slave(env, queue):
    """Count received packets until the experiment stops."""
    mem = env.create_mempool()
    bufs = mem.buf_array()
    received = 0
    while env.running():
        rx = yield queue.recv(bufs, timeout_ns=100_000)
        received += rx
        bufs.free_all()
    return received


def main():
    env = MoonGenEnv(seed=1)
    tx_dev = env.config_device(0, tx_queues=1)
    rx_dev = env.config_device(1, rx_queues=1)
    env.connect(tx_dev, rx_dev)
    env.wait_for_links()

    counter = ManualTxCounter("quickstart", "plain", now_ns=lambda: env.now_ns)
    env.launch(load_slave, env, tx_dev.get_tx_queue(0), rx_dev.mac, counter)
    rx_task = env.launch(counter_slave, env, rx_dev.get_rx_queue(0))
    env.wait_for_slaves(duration_ns=DURATION_NS)
    counter.finalize()

    seconds = env.now_ns / 1e9
    print(f"transmitted : {tx_dev.tx_packets} packets "
          f"({to_mpps(tx_dev.tx_packets / seconds):.2f} Mpps)")
    print(f"received    : {rx_dev.rx_packets} packets "
          f"(slave counted {rx_task.result})")
    print("10 GbE line rate with 64 B frames is 14.88 Mpps — one simulated "
          "core sustains it, as in Section 5.2 of the paper.")


if __name__ == "__main__":
    main()
