#!/usr/bin/env python3
"""RFC 2544 throughput test against the simulated Open vSwitch DuT.

The hardware packet generators MoonGen replaces are "tailored to special
use cases such as performing RFC 2544 compliant device tests" (Section 2).
With precise software rate control and loss accounting, the reproduction
runs the same methodology: a binary search for the highest zero-loss rate,
per standard frame size.

Run:  python examples/rfc2544_throughput.py [frame_size ...]
"""

import sys

from repro import units
from repro.analysis.rfc2544 import default_loss_probe, throughput_test


def main():
    sizes = [int(a) for a in sys.argv[1:]] or [64, 512, 1518]
    print("RFC 2544 throughput test (simulated single-core OvS forwarder)")
    print(f"{'frame':>6}  {'line rate':>10}  {'zero-loss rate':>14}  trials")
    for size in sizes:
        line = units.line_rate_pps(size, units.SPEED_10G)
        result = throughput_test(
            default_loss_probe(frame_size=size, duration_s=0.03),
            line, frame_size=size, resolution=0.01,
        )
        print(f"{size:>4} B  {line / 1e6:>7.2f} Mpps  "
              f"{result.throughput_mpps:>9.2f} Mpps  "
              f"{len(result.trials)}")
    print("\nSmall frames are pps-bound by the DuT (~1.9 Mpps, the overload "
          "point of Section 8.3); for large frames the line rate in packets "
          "per second drops below the DuT's capacity, so it forwards at "
          "line rate without loss.")


if __name__ == "__main__":
    main()
