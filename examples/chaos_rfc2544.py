#!/usr/bin/env python3
"""RFC 2544 throughput search on a faulty link: the degradation table.

RFC 2544 proper demands *zero* loss per trial.  On a channel with
scheduled burst loss (the Gilbert–Elliott regime of ``repro.faults``)
that criterion is unsatisfiable — some loss is intrinsic to the medium,
every rate fails, and the binary search degenerates to its floor rate
instead of characterizing the DuT.  Budgeting the channel's intrinsic
loss with ``throughput_test(loss_tolerance=...)`` keeps the search
convergent: this script runs the same search under increasing loss
budgets and prints how the measured "throughput" recovers from the
degenerate floor to the DuT's true overload point (~1.9 Mpps for 64 B
frames, Section 8.3) once the budget covers the channel.

Run:  python examples/chaos_rfc2544.py [frame_size]
"""

import sys

from repro import units
from repro.analysis.rfc2544 import default_loss_probe, throughput_test
from repro.faults import GilbertElliott
from repro.parallel.seeding import seed_for

SEED = 7

#: The channel: rare burst starts, short bursts, heavy in-burst loss —
#: a stationary intrinsic loss of roughly 6 %.
CHANNEL = dict(p_good_bad=0.02, p_bad_good=0.25, loss_good=0.0, loss_bad=0.8)


def bursty_probe(frame_size, duration_s=0.008, seed=SEED):
    """A loss probe whose channel adds Gilbert–Elliott burst loss.

    DuT loss comes from the usual simulated forwarder; frames the DuT
    forwards then cross the faulty link.  Each trial draws its own
    deterministically seeded loss stream (keyed by the offered rate), so
    the whole search replays bit-identically.
    """
    dut_probe = default_loss_probe(frame_size=frame_size,
                                   duration_s=duration_s, seed=seed)

    def probe(pps):
        dut_loss = dut_probe(pps)
        n = max(int(pps * duration_s), 100)
        forwarded = max(int(n * (1.0 - dut_loss)), 1)
        model = GilbertElliott(
            seed_for(seed, ("chaos-rfc2544", frame_size, round(pps))),
            **CHANNEL)
        for _ in range(forwarded):
            model(frame_size)
        channel_loss = model.loss_fraction()
        return dut_loss + (1.0 - dut_loss) * channel_loss

    return probe


def main():
    frame_size = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    line = units.line_rate_pps(frame_size, units.SPEED_10G)
    probe = bursty_probe(frame_size)

    print(f"RFC 2544 search, {frame_size} B frames over a bursty link "
          f"(~6 % intrinsic loss, Gilbert-Elliott)")
    print(f"{'tolerance':>9}  {'throughput':>12}  {'trials':>6}  verdict")
    floor = line * 0.01
    for tolerance in (0.0, 0.02, 0.05, 0.08, 0.12):
        result = throughput_test(probe, line, frame_size=frame_size,
                                 resolution=0.02, min_rate_pps=floor,
                                 loss_tolerance=tolerance)
        degenerate = result.throughput_pps <= floor * 1.5
        verdict = ("degenerate (channel loss exceeds the budget)"
                   if degenerate else "converged on the DuT")
        print(f"{tolerance:>8.0%}  {result.throughput_mpps:>7.2f} Mpps  "
              f"{len(result.trials):>6}  {verdict}")

    print("\nBelow the channel's intrinsic loss the search collapses to its "
          "floor rate — the strict RFC 2544 criterion measures the *link*, "
          "not the DuT.  Once the loss budget covers the channel, the "
          "search converges on the DuT's real overload point again.")


if __name__ == "__main__":
    main()
