#!/usr/bin/env python3
"""drift: measure clock drift between NIC pairs (Section 6.3).

The paper's drift.lua measurement: read the difference between two port
clocks twice, a known interval apart, and report the drift in µs/s.
Reproduces the observations of Section 6.3: directly connected X540 ports
synchronize to the physical layer (no drift), while ports on different
NICs drift — worst case 35 µs/s between a mainboard and a discrete NIC.

Run:  python examples/drift.py
"""

import random

from repro import MoonGenEnv
from repro.core.timestamping import measure_drift, sync_clocks

#: (pair description, configured drift in ppm) — Section 6.3's cases.
PAIRS = [
    ("two directly connected X540 ports (PHY-synchronized)", 0.0),
    ("two ports on different NICs (typical)", 7.5),
    ("mainboard NIC vs discrete NIC (worst case)", 35.0),
]


def main():
    rng = random.Random(1)
    print("clock drift measurements (drift.lua):\n")
    for description, drift_ppm in PAIRS:
        env = MoonGenEnv(seed=2)
        a = env.config_device(0, tx_queues=1, rx_queues=1,
                              clock_drift_ppm=drift_ppm)
        b = env.config_device(1, tx_queues=1, rx_queues=1)
        env.connect(a, b)
        measured = measure_drift(a.clock, b.clock, rng)
        print(f"  {description}:")
        print(f"    measured drift: {measured:+.2f} µs/s "
              f"(configured {drift_ppm} ppm)")
        # Show what resynchronisation buys (Section 6.3's conclusion).
        sync_clocks(a.clock, b.clock, rng)
        residual = abs(a.clock.raw_time_ns() - b.clock.raw_time_ns())
        print(f"    offset right after resync: {residual:.1f} ns "
              f"(±1 clock cycle)\n")
    print("MoonGen resynchronizes before each timestamped packet, turning "
          "even 35 µs/s into a 0.0035 % relative error (Section 6.3).")


if __name__ == "__main__":
    main()
