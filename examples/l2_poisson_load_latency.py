#!/usr/bin/env python3
"""l2-poisson-load-latency: Poisson traffic via the CRC-gap mechanism.

Hardware rate control only does CBR; arbitrary patterns need the paper's
novel software rate control (Section 8): the wire is kept full and the gaps
between valid packets are occupied by frames with an intentionally broken
CRC.  The DuT's NIC drops those in hardware — watch its ``rx_crc_errors``
counter — so the valid packets arrive Poisson-distributed with hardware
precision.

Run:  python examples/l2_poisson_load_latency.py [rate_mpps]
"""

import sys

from repro import MoonGenEnv, PoissonPattern, Timestamper
from repro.core.ratecontrol import GapFiller
from repro.dut import OvsForwarder
from repro.units import MIN_FRAME_SIZE, SPEED_10G

DURATION_NS = 30_000_000  # 30 ms simulated


def main():
    rate_mpps = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0

    env = MoonGenEnv(seed=13)
    tx_dev = env.config_device(0, tx_queues=2)
    rx_dev = env.config_device(1, rx_queues=1)

    dut = OvsForwarder(env.loop)
    env.connect_to_sink(tx_dev, dut.ingress)
    dut.connect_output(env.wire_to_device(rx_dev))

    pattern = PoissonPattern(rate_mpps * 1e6, seed=17)
    filler = GapFiller(frame_size=MIN_FRAME_SIZE, speed_bps=SPEED_10G)
    n_packets = int(rate_mpps * 1e6 * DURATION_NS / 1e9)

    preview = filler.plan_pattern(PoissonPattern(rate_mpps * 1e6, seed=17), 8)
    print("wire schedule (Figure 9; i* frames carry a broken CRC):")
    print(" ", preview.render_wire(5), "\n")

    def craft(buf, index):
        buf.eth_packet.fill(
            eth_src="02:00:00:00:00:00", eth_dst=str(rx_dev.mac),
            eth_type=0x0800,
        )

    env.launch(
        filler.load_task, env, tx_dev.get_tx_queue(0), pattern,
        n_packets, craft,
    )
    ts = Timestamper(env, tx_dev.get_tx_queue(1), rx_dev)
    env.launch(ts.probe_task, 300, 80_000.0)

    env.wait_for_slaves(duration_ns=DURATION_NS)

    seconds = env.now_ns / 1e9
    print(f"offered load      : {rate_mpps:.2f} Mpps Poisson "
          f"(CRC-gap software rate control)")
    print(f"tx frames total   : {tx_dev.tx_packets} "
          f"(valid + invalid fillers, wire kept full)")
    print(f"DuT saw           : {dut.forwarded} valid packets forwarded, "
          f"{dut.rx_crc_errors} fillers dropped in hardware")
    if len(ts.histogram):
        q1, med, q3 = ts.histogram.quartiles()
        print(f"latency ({len(ts.histogram)} probes): q1={q1 / 1e3:.1f} µs  "
              f"median={med / 1e3:.1f} µs  q3={q3 / 1e3:.1f} µs")


if __name__ == "__main__":
    main()
