#!/usr/bin/env python3
"""Internet-wide SYN scan — the Section 10 application, simulated.

A SYN scanner sweeps an address range from a 10 GbE uplink at a controlled
rate (rate-limited hardware queue + wrapping-counter address generation);
a simulated responder population answers a deterministic subset of
addresses.  The scan recovers exactly the responders.

Run:  python examples/internet_scan.py [n_addresses] [responder_density]
"""

import sys

from repro import MoonGenEnv
from repro.apps import ResponderPopulation, SynScanner


def main():
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    density = float(sys.argv[2]) if len(sys.argv) > 2 else 0.08

    env = MoonGenEnv(seed=23)
    dev = env.config_device(0, tx_queues=1, rx_queues=1)
    population = ResponderPopulation(
        env.loop, response_probability=density, rst_probability=0.25,
        latency_ns=80_000.0, seed=23,
    )
    env.connect_to_sink(dev, population.ingress)
    population.connect_output(env.wire_to_device(dev))

    scanner = SynScanner(env, dev, "45.0.0.0", count, probe_rate_pps=5e6)
    env.launch(scanner.scan_task)
    env.launch(scanner.collect_task)
    env.wait_for_slaves(duration_ns=count * 250.0 + 10e6)

    expected = population.expected_responders("45.0.0.0", count)
    print(f"scanned {scanner.probes_sent} addresses at "
          f"{scanner.probes_sent / (env.now_ns / 1e9) / 1e6:.2f} Mpps")
    print(f"open hosts found : {scanner.open_hosts} "
          f"(ground truth {expected})")
    print(f"closed (RST)     : {scanner.rst_seen}")
    print(f"silent           : {count - scanner.open_hosts - scanner.rst_seen}")
    sample = sorted(scanner.responders)[:5]
    print("first responders :", ", ".join(str(ip) for ip in sample))


if __name__ == "__main__":
    main()
