#!/usr/bin/env python3
"""Capture simulated traffic to pcap and replay it with original timing.

Demonstrates the trace workflow: a bursty flow is captured at the receiver
into a standard pcap file, then replayed through the CRC-gap rate control,
which reproduces the trace's inter-packet gaps with byte-level precision —
something neither a pcap-replaying "barebone" generator with software
pacing nor hardware CBR generators can do (Sections 2 and 8).

Run:  python examples/pcap_replay.py [n_packets]
"""

import io
import sys

import numpy as np

from repro import MoonGenEnv, UniformBurstPattern
from repro.core.ratecontrol import CustomGapPattern, GapFiller
from repro.packet.pcap import (
    PcapReader,
    PcapWriter,
    capture_rx_queue,
    trace_gaps_ns,
)


def capture_phase(n_packets: int) -> bytes:
    """Generate a bursty flow and capture it at the receiver as pcap."""
    env = MoonGenEnv(seed=21)
    tx = env.config_device(0, tx_queues=1)
    rx = env.config_device(1, rx_queues=1)
    rx.get_rx_queue(0).sim.ring_size = n_packets + 64
    env.connect(tx, rx)
    pattern = UniformBurstPattern(pps=1e6, burst_size=8)
    filler = GapFiller()

    def craft(buf, index):
        buf.pkt.udp_packet.fill(
            pkt_length=60, eth_src=str(tx.mac), eth_dst=str(rx.mac),
            udp_src=1234, udp_dst=4321,
        )

    env.launch(filler.load_task, env, tx.get_tx_queue(0), pattern,
               n_packets, craft)
    env.wait_for_slaves(duration_ns=n_packets * 1_500.0)

    records = capture_rx_queue(rx.get_rx_queue(0), n_packets + 64)
    stream = io.BytesIO()
    PcapWriter(stream).write_all(records)
    return stream.getvalue()


def replay_phase(pcap_bytes: bytes):
    """Replay the captured trace and compare the realised timing."""
    records = PcapReader(io.BytesIO(pcap_bytes)).read_all()
    gaps = trace_gaps_ns(records)
    plan = GapFiller().plan(CustomGapPattern(gaps).gaps_ns(len(gaps)))
    return np.asarray(gaps), plan


def main():
    n_packets = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    pcap_bytes = capture_phase(n_packets)
    print(f"captured {n_packets} packets into {len(pcap_bytes)} bytes of pcap")

    gaps, plan = replay_phase(pcap_bytes)
    err = np.abs(plan.actual_gaps_ns - gaps)
    print(f"replayed {len(gaps)} inter-packet gaps through the CRC-gap "
          f"rate control:")
    print(f"  original gap range : {gaps.min():.1f} .. {gaps.max():.1f} ns")
    print(f"  mean timing error  : {err.mean():.2f} ns")
    print(f"  worst timing error : {err.max():.2f} ns")
    print(f"  filler frames used : {plan.n_fillers}")
    print("\nThe burst structure (8 packets back-to-back, then a pause) "
          "survives the replay byte-exact; only gaps inside the "
          "unrepresentable 0.8-60.8 ns range are skip-and-stretch "
          "approximated (Section 8.4).")


if __name__ == "__main__":
    main()
