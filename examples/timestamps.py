#!/usr/bin/env python3
"""timestamps: hardware timestamping precision on loop-back cables.

Reproduces Section 6.1's methodology in miniature: two ports connected by a
known cable, clocks synchronised with the 7-read median algorithm, and the
latency of PTP probes measured with the NICs' timestamp registers.  The
measured latency follows t = k + l / v_p — modulation constant plus
propagation delay — with the chip-specific quantization artifacts
(12.8 ns latch grid on the 82599, PHY block-code jitter on the X540).

Run:  python examples/timestamps.py
"""

from collections import Counter

from repro import MoonGenEnv, Timestamper
from repro.nicsim.link import COPPER_CAT5E, FIBER_OM3, Cable
from repro.nicsim.nic import CHIP_82599, CHIP_X540

SETUPS = [
    ("82599 + OM3 fiber", CHIP_82599, FIBER_OM3, (2.0, 8.5, 20.0)),
    ("X540 + Cat5e copper", CHIP_X540, COPPER_CAT5E, (2.0, 10.0, 50.0)),
]


def measure(chip, medium, length_m, n_probes=300):
    env = MoonGenEnv(seed=5)
    a = env.config_device(0, tx_queues=1, rx_queues=1, chip=chip)
    b = env.config_device(1, tx_queues=1, rx_queues=1, chip=chip)
    env.connect(a, b, cable=Cable(medium, length_m))
    ts = Timestamper(env, a.get_tx_queue(0), b, seed=9)
    env.launch(ts.probe_task, n_probes, 10_000.0)
    env.wait_for_slaves(duration_ns=n_probes * 25_000.0)
    return ts.histogram


def main():
    for name, chip, medium, lengths in SETUPS:
        print(f"\n=== {name} (k = {medium.modulation_ns} ns, "
              f"v_p = {medium.velocity_factor:.2f} c) ===")
        for length in lengths:
            hist = measure(chip, medium, length)
            expected = medium.modulation_ns + medium.propagation_ns(length)
            values = Counter(round(s, 1) for s in hist.samples)
            modes = ", ".join(
                f"{v} ns ({c * 100 // len(hist)}%)"
                for v, c in values.most_common(3)
            )
            print(f"  {length:5.1f} m cable: median {hist.median():7.1f} ns "
                  f"(true latency {expected:7.1f} ns)  observed: {modes}")


if __name__ == "__main__":
    main()
