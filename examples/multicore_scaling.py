#!/usr/bin/env python3
"""Multi-core scaling under heavy per-packet load (Figure 2).

Each core runs the heavy randomization script of Section 5.3 — eight random
numbers per packet for addresses, ports, and payload — and transmits to its
own queue on two shared 10 GbE ports.  At 1.2 GHz per-core throughput is
CPU-bound; adding cores scales linearly until the two links saturate at
2 x 14.88 = 29.76 Mpps.

The sweep points (one full simulation per core count) are independent, so
they fan out across *host* cores through ``repro.parallel.run_parallel``
— the same worker-pool shape the paper uses for its data plane.  Results
are bit-identical for any ``--jobs`` value.

Run:  python examples/multicore_scaling.py [max_cores] [--jobs N]
"""

import sys
import time

from repro import MoonGenEnv
from repro.parallel import default_jobs, run_parallel
from repro.units import LINE_RATE_10G_64B_PPS, to_mpps

PKT_SIZE = 60
FREQ_HZ = 1.2e9
DURATION_NS = 400_000  # 0.4 ms per configuration


def heavy_slave(env, queues, dst_mac):
    """Randomize addresses, ports, and payload: 8 random fields per packet."""
    mem = env.create_mempool(
        fill=lambda buf: buf.udp_packet.fill(
            pkt_length=PKT_SIZE,
            eth_src="02:00:00:00:00:00",
            eth_dst=dst_mac,
        )
    )
    arrays = [mem.buf_array() for _ in queues]
    while env.running():
        for queue, bufs in zip(queues, arrays):
            bufs.alloc(PKT_SIZE)
            bufs.charge_random_fields(8)
            bufs.offload_ip_checksums()
            yield queue.send(bufs)


def run(n_cores: int) -> float:
    env = MoonGenEnv(seed=3, core_freq_hz=FREQ_HZ)
    ports = [env.config_device(i, tx_queues=max(1, n_cores)) for i in (0, 1)]
    sinks = [env.config_device(i + 2, rx_queues=1) for i in (0, 1)]
    for port, sink in zip(ports, sinks):
        env.connect(port, sink)
    for core in range(n_cores):
        queues = [port.get_tx_queue(core) for port in ports]
        env.launch(heavy_slave, env, queues, sinks[0].mac)
    env.wait_for_slaves(duration_ns=DURATION_NS)
    seconds = env.now_ns / 1e9
    return sum(p.tx_packets for p in ports) / seconds


def _sweep_point(n_cores, _seed):
    """One simulated core count; the env seed is pinned inside run()."""
    return run(n_cores)


def main():
    argv = list(sys.argv[1:])
    jobs = default_jobs()
    if "--jobs" in argv:
        at = argv.index("--jobs")
        jobs = int(argv[at + 1])
        del argv[at:at + 2]
    max_cores = int(argv[0]) if argv else 8
    line_rate = to_mpps(2 * LINE_RATE_10G_64B_PPS)

    points = list(range(1, max_cores + 1))
    start = time.perf_counter()
    rates = run_parallel(points, _sweep_point, jobs=jobs)
    wall = time.perf_counter() - start

    print(f"cores  rate [Mpps]  (2x10GbE line rate = {line_rate:.2f} Mpps)")
    for cores, pps in zip(points, rates):
        mpps = to_mpps(pps)
        bar = "#" * round(mpps)
        print(f"{cores:5d}  {mpps:11.2f}  {bar}")
    print(f"swept {len(points)} configurations in {wall:.2f} s "
          f"with {jobs} worker(s)")


if __name__ == "__main__":
    main()
