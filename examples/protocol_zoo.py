#!/usr/bin/env python3
"""Generate every traffic type the original ships example scripts for.

Section 3.4 / Section 10: "MoonGen comes with example scripts for
generating load with IPv4, IPv6, IPsec, ICMP, UDP, and TCP packets".
This example crafts one flow per protocol on separate transmit queues of
a single port and classifies what arrives on the other side.

Run:  python examples/protocol_zoo.py
"""

from collections import Counter

from repro import MoonGenEnv

DURATION_NS = 1_000_000  # 1 ms
PKT = 80


def make_slave(kind, dst_mac):
    """A transmit loop for one protocol type."""

    def fill(buf):
        p = buf.pkt
        if kind == "udp4":
            p.udp_packet.fill(pkt_length=PKT, eth_dst=dst_mac,
                              ip_dst="10.0.0.2", udp_src=1000, udp_dst=2000)
        elif kind == "tcp4":
            p.tcp_packet.fill(pkt_length=PKT, eth_dst=dst_mac,
                              ip_dst="10.0.0.2", tcp_src=80, tcp_dst=1234,
                              tcp_flags=0x02)  # SYN
        elif kind == "icmp4":
            p.icmp_packet.fill(pkt_length=PKT, eth_dst=dst_mac,
                               ip_dst="10.0.0.2", icmp_id=7)
        elif kind == "udp6":
            p.udp6_packet.fill(pkt_length=PKT, eth_dst=dst_mac,
                               ip_src="2001:db8::1", ip_dst="2001:db8::2",
                               udp_src=1000, udp_dst=2000)
        elif kind == "esp":
            p.esp_packet.fill(pkt_length=PKT, eth_dst=dst_mac,
                              ip_dst="10.0.0.2", esp_spi=0x1001, esp_seq=1)
        elif kind == "arp":
            p.arp_packet.fill(eth_dst="ff:ff:ff:ff:ff:ff",
                              arp_proto_src="10.0.0.1",
                              arp_proto_dst="10.0.0.2")

    def slave(env, queue):
        mem = env.create_mempool(fill=fill)
        bufs = mem.buf_array(16)
        seq = 0
        while env.running():
            bufs.alloc(PKT if kind != "arp" else 60)
            if kind == "esp":
                for buf in bufs:
                    buf.pkt.esp_packet.esp.sequence = seq
                    seq += 1
                bufs.charge_counter_fields(1)
            if kind in ("udp4", "tcp4", "icmp4"):
                bufs.offload_ip_checksums()
            yield queue.send(bufs)

    return slave


def counter_slave(env, queue, counts):
    mem = env.create_mempool()
    bufs = mem.buf_array(64)
    while env.running():
        n = yield queue.recv(bufs, timeout_ns=200_000)
        for i in range(n):
            counts[bufs[i].pkt.classify()] += 1
        bufs.free_all()


def main():
    kinds = ("udp4", "tcp4", "icmp4", "udp6", "esp", "arp")
    env = MoonGenEnv(seed=19)
    tx = env.config_device(0, tx_queues=len(kinds))
    rx = env.config_device(1, rx_queues=1)
    env.connect(tx, rx)

    for i, kind in enumerate(kinds):
        env.launch(make_slave(kind, str(rx.mac)), env, tx.get_tx_queue(i))
    counts = Counter()
    env.launch(counter_slave, env, rx.get_rx_queue(0), counts)
    env.wait_for_slaves(duration_ns=DURATION_NS)

    total = sum(counts.values())
    print(f"received {total} packets over {env.now_ns / 1e6:.2f} ms:")
    for kind, count in counts.most_common():
        print(f"  {kind:>6}: {count:6d} ({count / total * 100:.1f}%)")
    expected = {"udp4", "tcp4", "icmp4", "udp6", "ip4", "arp"}
    print("\nAll six protocol generators of the original's example set are "
          "active (ESP classifies as ip4: the payload is opaque ciphertext).")
    assert expected <= set(counts), f"missing: {expected - set(counts)}"


if __name__ == "__main__":
    main()
