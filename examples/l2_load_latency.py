#!/usr/bin/env python3
"""l2-load-latency: CBR load through a software forwarder, with latency.

The work-horse script of the paper's evaluation (Section 9): one queue
generates constant-bit-rate load using hardware rate control, a second
queue sends timestamped PTP probes sampling the forwarding latency of the
device under test — here the simulated single-core Open vSwitch forwarder
of Section 7.4.

Run:  python examples/l2_load_latency.py [rate_mpps]
"""

import sys

from repro import MoonGenEnv, Timestamper
from repro.dut import OvsForwarder
from repro.units import MIN_FRAME_SIZE

DURATION_NS = 30_000_000  # 30 ms simulated
PKT_SIZE = MIN_FRAME_SIZE - 4  # 64 B frames


def load_slave(env, queue, dst_mac):
    mem = env.create_mempool(
        fill=lambda buf: buf.eth_packet.fill(
            eth_src="02:00:00:00:00:00", eth_dst=dst_mac, eth_type=0x0800
        )
    )
    bufs = mem.buf_array()
    while env.running():
        bufs.alloc(PKT_SIZE)
        yield queue.send(bufs)


def main():
    rate_mpps = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0

    env = MoonGenEnv(seed=11)
    tx_dev = env.config_device(0, tx_queues=2)
    rx_dev = env.config_device(1, rx_queues=1)

    # Wire topology: loadgen port 0 -> DuT -> loadgen port 1.
    dut = OvsForwarder(env.loop)
    env.connect_to_sink(tx_dev, dut.ingress)
    dut.connect_output(env.wire_to_device(rx_dev))

    load_queue = tx_dev.get_tx_queue(0)
    load_queue.set_rate_pps(rate_mpps * 1e6, MIN_FRAME_SIZE)
    env.launch(load_slave, env, load_queue, rx_dev.mac)

    ts = Timestamper(env, tx_dev.get_tx_queue(1), rx_dev)
    env.launch(ts.probe_task, 400, 50_000.0)

    env.wait_for_slaves(duration_ns=DURATION_NS)

    seconds = env.now_ns / 1e9
    print(f"offered load     : {rate_mpps:.2f} Mpps CBR (hardware rate control)")
    print(f"DuT forwarded    : {dut.forwarded} packets "
          f"({dut.forwarded / seconds / 1e6:.2f} Mpps), "
          f"dropped {dut.rx_dropped}, interrupts {dut.interrupts} "
          f"({dut.interrupt_rate_hz() / 1e3:.1f} kHz)")
    if len(ts.histogram):
        h = ts.histogram
        q1, med, q3 = h.quartiles()
        print(f"latency ({len(h)} probes): "
              f"q1={q1 / 1e3:.1f} µs  median={med / 1e3:.1f} µs  "
              f"q3={q3 / 1e3:.1f} µs  (lost {ts.lost_probes})")


if __name__ == "__main__":
    main()
