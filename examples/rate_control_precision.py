#!/usr/bin/env python3
"""rate-control-precision: Figure 8 measured in the dataplane itself.

Where ``inter_arrival_times.py`` replays analytic generator models, this
example runs the three rate-control methods as *full simulations* — NIC
rings, wires, CRC filler frames and all — with the in-dataplane latency
observation layer armed (``MoonGenEnv(metrics=True, dataplane=True)``).
The receive port accumulates FCS-gated inter-arrival times into log2
histograms as frames arrive, in simulation time; nothing is recorded
host-side and replayed.

Three methods, the Section 8 comparison:

* ``hardware``       — NIC CBR pacing (``set_rate_pps``), the precise one,
* ``crc``            — software pacing with bad-CRC filler frames, equally
                       precise because the wire never idles,
* ``software-burst`` — naive timer-driven bursts, which micro-burst: the
                       median gap collapses while the tail explodes.

Run:  python examples/rate_control_precision.py [rate_mpps] [duration_ms]
"""

import sys

from repro.analysis.precision import format_audit_table, run_precision_audit


def ascii_histogram(result, width: int = 40, max_rows: int = 10) -> None:
    """The method's inter-arrival log2 histogram as ASCII art."""
    buckets = {int(i): c for i, c in result["histogram"]["buckets"].items()}
    total = result["histogram"]["total"]
    peak = max(buckets.values())
    shown = 0
    for i in sorted(buckets):
        count = buckets[i]
        if shown >= max_rows:
            break
        lo = 0 if i == 0 else 1 << (i - 1)
        bar = "#" * max(1, round(count / peak * width))
        print(f"  [{lo:>8} ns, {1 << i:>8} ns) | {bar} "
              f"{100.0 * count / total:.1f}%")
        shown += 1


def main():
    rate_mpps = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    duration_ms = float(sys.argv[2]) if len(sys.argv) > 2 else 2.0

    results = run_precision_audit(rate_mpps=rate_mpps,
                                  duration_ns=duration_ms * 1e6, seed=1)
    gap_ns = results[0]["target_gap_ns"]
    print(f"rate-control precision audit at {rate_mpps:g} Mpps "
          f"(target gap {gap_ns:.1f} ns)\n")
    print(format_audit_table(results))

    for result in results:
        print(f"\n{result['method']} inter-arrival histogram:")
        ascii_histogram(result)

    hardware, crc, burst = results
    print("\nhardware and CRC-gap pacing hold the target gap "
          f"({hardware['mean_ns']:.1f} / {crc['mean_ns']:.1f} ns mean); "
          "bursty software pacing micro-bursts "
          f"(p50 {burst['percentiles']['p50']:.1f} ns, "
          f"p99 {burst['percentiles']['p99']:.1f} ns).")


if __name__ == "__main__":
    main()
